//! CLI subcommand implementations (pure functions printing to a writer, so
//! they are unit-testable without spawning processes).

use prs_core::prelude::*;
use std::io::Write;

/// `prs decompose`: print the bottleneck decomposition and classes.
pub fn cmd_decompose(g: &Graph, out: &mut dyn Write) -> std::io::Result<()> {
    let bd = match decompose(g) {
        Ok(bd) => bd,
        Err(e) => {
            writeln!(out, "error: {e}")?;
            return Ok(());
        }
    };
    writeln!(out, "bottleneck decomposition ({} pairs):", bd.k())?;
    for (i, p) in bd.pairs().iter().enumerate() {
        writeln!(
            out,
            "  (B_{i}, C_{i}) = ({:?}, {:?})   α_{i} = {}",
            p.b.to_vec(),
            p.c.to_vec(),
            p.alpha
        )?;
    }
    for v in 0..g.n() {
        writeln!(
            out,
            "  agent {v}: w = {}, class {:?}, α_v = {}, U_v = {}",
            g.weight(v),
            bd.class_of(v),
            bd.alpha_of(v),
            bd.utility(g, v)
        )?;
    }
    Ok(())
}

/// `prs allocate`: print the BD allocation edge by edge.
pub fn cmd_allocate(g: &Graph, out: &mut dyn Write) -> std::io::Result<()> {
    let bd = match decompose(g) {
        Ok(bd) => bd,
        Err(e) => {
            writeln!(out, "error: {e}")?;
            return Ok(());
        }
    };
    let alloc = allocate(g, &bd);
    writeln!(out, "BD allocation:")?;
    for &(u, v) in g.edges() {
        let f = alloc.sent(u, v);
        let b = alloc.sent(v, u);
        writeln!(out, "  {u} → {v}: {f}    {v} → {u}: {b}")?;
    }
    for v in 0..g.n() {
        writeln!(out, "  U_{v} = {}", alloc.utility(v))?;
    }
    Ok(())
}

/// `prs dynamics`: run the protocol and report convergence.
pub fn cmd_dynamics(g: &Graph, eps: f64, out: &mut dyn Write) -> std::io::Result<()> {
    let bd = match decompose(g) {
        Ok(bd) => bd,
        Err(e) => {
            writeln!(out, "error: {e}")?;
            return Ok(());
        }
    };
    let target: Vec<f64> = bd.utilities(g).iter().map(|u| u.to_f64()).collect();
    let mut eng = F64Engine::new(g);
    let rep = eng.run_until_close(&target, eps, 2_000_000);
    writeln!(
        out,
        "proportional response: converged = {} after {} rounds (residual {:.3e})",
        rep.converged, rep.rounds, rep.final_error
    )?;
    for (v, u) in eng.utilities().iter().enumerate() {
        writeln!(out, "  U_{v}(t) = {u:.6}   (equilibrium {:.6})", target[v])?;
    }
    Ok(())
}

/// `prs attack`: optimize a Sybil attack for one ring agent.
pub fn cmd_attack(g: &Graph, v: usize, out: &mut dyn Write) -> std::io::Result<()> {
    if !g.is_ring() {
        writeln!(
            out,
            "error: `attack` requires a ring instance (use `general-attack`)"
        )?;
        return Ok(());
    }
    if v >= g.n() {
        writeln!(out, "error: vertex {v} out of range")?;
        return Ok(());
    }
    if let Some(z) = g.weights().iter().position(|w| !w.is_positive()) {
        writeln!(
            out,
            "error: agent {z} has non-positive weight; the attack model requires w > 0"
        )?;
        return Ok(());
    }
    let outcome = best_sybil_split(g, v, &AttackConfig::default());
    let w2 = g.weight(v) - &outcome.best.w1;
    writeln!(out, "agent {v} (w = {}):", g.weight(v))?;
    writeln!(out, "  honest utility U_v = {}", outcome.honest_utility)?;
    writeln!(out, "  best split        = ({}, {})", outcome.best.w1, w2)?;
    writeln!(out, "  attack payoff     = {}", outcome.best.total())?;
    writeln!(
        out,
        "  incentive ratio ζ = {} (≈{:.6}; Theorem 8 bound: 2)",
        outcome.ratio,
        outcome.ratio_f64()
    )?;
    Ok(())
}

/// `prs general-attack`: the Definition 7 attack on an arbitrary graph.
pub fn cmd_general_attack(g: &Graph, v: usize, out: &mut dyn Write) -> std::io::Result<()> {
    use prs_core::sybil::{best_general_sybil, GeneralAttackConfig};
    if v >= g.n() {
        writeln!(out, "error: vertex {v} out of range")?;
        return Ok(());
    }
    if g.degree(v) < 2 {
        writeln!(
            out,
            "error: agent {v} has degree < 2; no Sybil split exists"
        )?;
        return Ok(());
    }
    let outcome = best_general_sybil(g, v, &GeneralAttackConfig::default());
    writeln!(out, "agent {v} (degree {}):", g.degree(v))?;
    writeln!(out, "  honest utility U_v  = {}", outcome.honest_utility)?;
    writeln!(out, "  best payoff found   = {}", outcome.best_payoff)?;
    writeln!(out, "  neighbor partition  = {:?}", outcome.best_partition)?;
    writeln!(
        out,
        "  identity weights    = {:?}",
        outcome
            .best_weights
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
    )?;
    writeln!(
        out,
        "  ζ_v lower bound     = {} (≈{:.6}; conjectured bound: 2)",
        outcome.ratio,
        outcome.ratio.to_f64()
    )?;
    Ok(())
}

/// `prs audit`: the full paper-claim battery on a ring instance. With
/// `stats = true`, also prints the flow-engine instrumentation counters
/// accumulated while the battery ran (max-flows, Dinkelbach iterations,
/// fast-path hit rate, arena reuse — see `prs_flow::stats`).
pub fn cmd_audit(g: &Graph, stats: bool, out: &mut dyn Write) -> std::io::Result<()> {
    if !g.is_ring() {
        writeln!(out, "error: `audit` requires a ring instance")?;
        return Ok(());
    }
    let ring = match prs_core::RingInstance::new(g.weights().to_vec()) {
        Ok(r) => r,
        Err(e) => {
            writeln!(out, "error: {e}")?;
            return Ok(());
        }
    };
    let before = prs_core::flow::stats::snapshot();
    let audit = audit_paper_claims(
        &ring,
        &AttackConfig::new()
            .with_grid(16)
            .with_zoom_levels(3)
            .with_keep(2),
        12,
    );
    writeln!(out, "paper-claim audit:")?;
    writeln!(
        out,
        "  Proposition 3 (invariants)      : {}",
        mark(audit.prop3)
    )?;
    writeln!(
        out,
        "  Proposition 6 (allocation)      : {}",
        mark(audit.prop6)
    )?;
    writeln!(
        out,
        "  Lemma 9 (honest split neutral)  : {}",
        mark(audit.lemma9)
    )?;
    writeln!(
        out,
        "  Theorem 10 (misreport monotone) : {}",
        mark(audit.theorem10)
    )?;
    writeln!(
        out,
        "  Proposition 11 (α monotone)     : {}",
        mark(audit.prop11)
    )?;
    writeln!(
        out,
        "  Lemmas 14/20 (path cases)       : {}",
        mark(audit.cases)
    )?;
    writeln!(
        out,
        "  Stage lemmas 16/18/22/24        : {}",
        mark(audit.stages)
    )?;
    writeln!(
        out,
        "  Theorem 8 (ζ ≤ 2)               : {}",
        mark(audit.theorem8)
    )?;
    writeln!(
        out,
        "  max ζ_v observed                : {} (≈{:.6})",
        audit.max_ratio,
        audit.max_ratio.to_f64()
    )?;
    if stats {
        let delta = prs_core::flow::stats::snapshot().since(&before);
        writeln!(out, "flow-engine stats:")?;
        for line in delta.render().lines() {
            writeln!(out, "  {line}")?;
        }
        // Machine-readable mirror of the same delta (rate keys omitted when
        // no rounds ran — NaN has no JSON representation).
        writeln!(out, "  json {}", delta.to_json())?;
    }
    Ok(())
}

/// `prs sweep`: exact misreport sweep of one agent's reported weight —
/// the Proposition 11 experiment as a command. Prints the constant-shape
/// intervals and localized breakpoints of `x ↦ 𝓑(G_{v→x})`.
pub fn cmd_sweep(g: &Graph, v: usize, out: &mut dyn Write) -> std::io::Result<()> {
    if v >= g.n() {
        writeln!(out, "error: vertex {v} out of range")?;
        return Ok(());
    }
    let fam = MisreportFamily::new(g.clone(), v);
    let result = sweep(&fam, &SweepConfig::default());
    writeln!(
        out,
        "misreport sweep for agent {v} (true weight {}):",
        fam.true_weight()
    )?;
    writeln!(
        out,
        "  {} exact samples, {} constant-shape intervals",
        result.samples.len(),
        result.intervals.len()
    )?;
    for (i, iv) in result.intervals.iter().enumerate() {
        writeln!(
            out,
            "  interval {i}: x ∈ [{}, {}]  class {:?}  ({} pairs)",
            iv.lo,
            iv.hi,
            iv.focus_class,
            iv.shape.len()
        )?;
    }
    for bp in result.breakpoints() {
        writeln!(out, "  breakpoint ≈ {bp}")?;
    }
    Ok(())
}

/// `prs certified-attack`: symbolic per-interval attack optimization.
pub fn cmd_certified_attack(g: &Graph, v: usize, out: &mut dyn Write) -> std::io::Result<()> {
    if !g.is_ring() {
        writeln!(out, "error: `certified-attack` requires a ring instance")?;
        return Ok(());
    }
    if v >= g.n() {
        writeln!(out, "error: vertex {v} out of range")?;
        return Ok(());
    }
    if let Some(z) = g.weights().iter().position(|w| !w.is_positive()) {
        writeln!(
            out,
            "error: agent {z} has non-positive weight; the attack model requires w > 0"
        )?;
        return Ok(());
    }
    let cert = prs_core::sybil::certified_best_split(g, v, 32, 35);
    writeln!(out, "agent {v} (w = {}):", g.weight(v))?;
    writeln!(out, "  honest utility U_v  = {}", cert.honest_utility)?;
    writeln!(out, "  certified best w1   = {}", cert.best_w1)?;
    writeln!(out, "  certified payoff    = {}", cert.best_payoff)?;
    writeln!(
        out,
        "  incentive ratio ζ   = {} (≈{:.6}; analyzed {} shape intervals)",
        cert.ratio,
        cert.ratio.to_f64(),
        cert.intervals
    )?;
    Ok(())
}

/// `prs eg`: solve the Eisenberg–Gale program and compare to Prop. 6.
pub fn cmd_eg(g: &Graph, out: &mut dyn Write) -> std::io::Result<()> {
    use prs_core::eg::{solve, EgConfig};
    let bd = match decompose(g) {
        Ok(bd) => bd,
        Err(e) => {
            writeln!(out, "error: {e}")?;
            return Ok(());
        }
    };
    let sol = solve(g, &EgConfig::default());
    writeln!(
        out,
        "Eisenberg–Gale mirror descent: {} iterations (converged = {})",
        sol.iters, sol.converged
    )?;
    writeln!(out, "  v | EG utility | BD utility (Prop. 6)")?;
    for v in 0..g.n() {
        writeln!(
            out,
            "  {v} | {:>10.6} | {:>10.6}",
            sol.utilities[v],
            bd.utility(g, v).to_f64()
        )?;
    }
    Ok(())
}

/// `prs update`: replay a JSONL churn script against one long-lived
/// incremental [`DecompositionSession`] that owns the instance. Each
/// non-empty, non-`#` line is one event — a JSON object with an `"op"` of
/// `set_weight` (`v`, `w`), `add_edge` / `remove_edge` (`u`, `v`), or
/// `batch` (`deltas`: an array of such objects, applied atomically). The
/// per-event line reports which serving tier answered it (unchanged /
/// recertified / recomputed) or that the event was rejected and rolled
/// back. With `stats = true`, the flow-engine counter delta accumulated by
/// the replay (including the `bd.delta_*` tier counters) is printed after
/// the final decomposition.
pub fn cmd_update(
    g: &Graph,
    script: &str,
    stats: bool,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    let mut session = DecompositionSession::new(g.clone());
    match session.current() {
        Ok(bd) => writeln!(
            out,
            "initial decomposition: {} pairs over {} agents",
            bd.k(),
            g.n()
        )?,
        Err(e) => {
            writeln!(out, "error: {e}")?;
            return Ok(());
        }
    }
    let before = prs_core::flow::stats::snapshot();
    let (mut unchanged, mut recertified, mut recomputed, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    for (idx, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let delta = match parse_delta(line) {
            Ok(d) => d,
            Err(msg) => {
                writeln!(out, "error: script line {lineno}: {msg}")?;
                return Ok(());
            }
        };
        let ops = delta.len();
        match session.apply(delta) {
            Ok(UpdateOutcome::Unchanged) => {
                unchanged += 1;
                writeln!(out, "  event {lineno}: {ops} op(s) → unchanged")?;
            }
            Ok(UpdateOutcome::Recertified { rounds }) => {
                recertified += 1;
                writeln!(
                    out,
                    "  event {lineno}: {ops} op(s) → recertified ({rounds} round(s) re-ran a flow)"
                )?;
            }
            Ok(UpdateOutcome::Recomputed) => {
                recomputed += 1;
                writeln!(out, "  event {lineno}: {ops} op(s) → recomputed")?;
            }
            Err(e) => {
                rejected += 1;
                writeln!(out, "  event {lineno}: rejected ({e})")?;
            }
        }
    }
    writeln!(
        out,
        "replayed {} event(s): {unchanged} unchanged, {recertified} recertified, \
         {recomputed} recomputed, {rejected} rejected",
        unchanged + recertified + recomputed + rejected
    )?;
    let final_bd = match session.current() {
        Ok(bd) => bd.clone(),
        Err(e) => {
            writeln!(out, "error: {e}")?;
            return Ok(());
        }
    };
    let final_g = session.graph().cloned().unwrap_or_else(|| g.clone());
    writeln!(out, "final decomposition ({} pairs):", final_bd.k())?;
    for (i, p) in final_bd.pairs().iter().enumerate() {
        writeln!(
            out,
            "  (B_{i}, C_{i}) = ({:?}, {:?})   α_{i} = {}",
            p.b.to_vec(),
            p.c.to_vec(),
            p.alpha
        )?;
    }
    for v in 0..final_g.n() {
        writeln!(
            out,
            "  agent {v}: w = {}, class {:?}, α_v = {}, U_v = {}",
            final_g.weight(v),
            final_bd.class_of(v),
            final_bd.alpha_of(v),
            final_bd.utility(&final_g, v)
        )?;
    }
    if stats {
        let delta = prs_core::flow::stats::snapshot().since(&before);
        writeln!(out, "flow-engine stats:")?;
        for line in delta.render().lines() {
            writeln!(out, "  {line}")?;
        }
        writeln!(out, "  json {}", delta.to_json())?;
    }
    Ok(())
}

/// How many processed events between live snapshot prints in
/// [`cmd_watch`].
const WATCH_SNAPSHOT_EVERY: u64 = 8;

/// `prs watch`: replay a churn script (the [`cmd_update`] format) with
/// the live metrics layer armed — streaming histograms feeding
/// mid-replay JSONL snapshot lines (printed every
/// [`WATCH_SNAPSHOT_EVERY`] events and at the end, each line a JSON
/// object starting with `{"layer":`), the SLO watchdog (when `slo_ms`
/// sets a latency ceiling on the session's delta spans), and the flight
/// recorder (dumping anomaly excerpts under `dump_dir` when given).
/// This is the `take()`-free service-operation mode: no trace buffer
/// grows, yet p50/p90/p99 per span stay visible throughout.
pub fn cmd_watch(
    g: &Graph,
    script: &str,
    dump_dir: Option<&str>,
    slo_ms: Option<u64>,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    use prs_core::trace::metrics;
    let mut flight = metrics::FlightConfig::new();
    if let Some(dir) = dump_dir {
        flight = flight.with_dump_dir(dir);
    }
    let mut slo = metrics::SloConfig::new();
    if let Some(ms) = slo_ms {
        let ns = ms.saturating_mul(1_000_000);
        slo = slo
            .with_latency("bd.delta_apply", ns)
            .with_latency("bd.session_round", ns);
    }
    let breaches0 = metrics::slo_breach_count();
    let anomalies0 = metrics::anomaly_count();
    let dumps0 = metrics::flight_dump_count();
    metrics::reset();
    metrics::install(
        &metrics::MetricsConfig::new()
            .with_slo(slo)
            .with_flight(flight),
    );

    let mut session = DecompositionSession::new(g.clone());
    match session.current() {
        Ok(bd) => writeln!(
            out,
            "initial decomposition: {} pairs over {} agents",
            bd.k(),
            g.n()
        )?,
        Err(e) => {
            metrics::disable();
            writeln!(out, "error: {e}")?;
            return Ok(());
        }
    }
    let mut processed = 0u64;
    for (idx, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        let delta = match parse_delta(line) {
            Ok(d) => d,
            Err(msg) => {
                metrics::disable();
                writeln!(out, "error: script line {lineno}: {msg}")?;
                return Ok(());
            }
        };
        let ops = delta.len();
        let tier = match session.apply(delta) {
            Ok(UpdateOutcome::Unchanged) => "unchanged".to_string(),
            Ok(UpdateOutcome::Recertified { rounds }) => {
                format!("recertified ({rounds} round(s))")
            }
            Ok(UpdateOutcome::Recomputed) => "recomputed".to_string(),
            Err(e) => format!("rejected ({e})"),
        };
        writeln!(out, "  event {lineno}: {ops} op(s) → {tier}")?;
        processed += 1;
        if processed.is_multiple_of(WATCH_SNAPSHOT_EVERY) {
            write!(out, "{}", metrics::snapshot_jsonl())?;
        }
    }
    // Final snapshot: the live state of every histogram, unconditionally.
    write!(out, "{}", metrics::snapshot_jsonl())?;
    writeln!(
        out,
        "watch: {processed} event(s), {} SLO breach(es), {} anomaly(ies), {} flight dump(s)",
        metrics::slo_breach_count().saturating_sub(breaches0),
        metrics::anomaly_count().saturating_sub(anomalies0),
        metrics::flight_dump_count().saturating_sub(dumps0),
    )?;
    metrics::disable();
    Ok(())
}

/// Exact-BD cross-checks on the post-churn swarm are only attempted when
/// the live population fits a closed-form decomposition run.
const SWARM_BD_CHECK_MAX: usize = 512;

/// The empirical Sybil probe runs `n × 7` full swarm simulations, so it is
/// reserved for small rings.
const SWARM_SYBIL_PROBE_MAX: usize = 12;

/// `prs swarm`: run the struct-of-arrays engine to convergence, optionally
/// replicating the ring to `--agents N` and replaying a JSONL membership
/// script (`{"op": join|leave|rewire, ...}` with an optional `round` field
/// naming the protocol round the event fires at). Reports the convergence
/// round, the max utility deviation from the exact BD allocation on the
/// surviving topology, and the empirical incentive ratio (a grid-probed
/// Sybil best response on small rings, plus the in-vivo fairness spread).
pub fn cmd_swarm(
    g: &Graph,
    agents: Option<usize>,
    rounds: Option<usize>,
    churn: Option<&str>,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    // `--agents N`: tile the instance's weight pattern around an N-ring.
    let expanded;
    let g = match agents {
        Some(n) if n != g.n() => {
            if !g.is_ring() {
                writeln!(out, "error: --agents replication requires a ring instance")?;
                return Ok(());
            }
            if n < 3 {
                writeln!(out, "error: --agents must be at least 3")?;
                return Ok(());
            }
            let tiled: Vec<Rational> = (0..n).map(|v| g.weight(v % g.n()).clone()).collect();
            expanded = match builders::ring(tiled) {
                Ok(big) => big,
                Err(e) => {
                    writeln!(out, "error: {e}")?;
                    return Ok(());
                }
            };
            &expanded
        }
        _ => g,
    };

    // Parse the whole script up front so a typo on line 7 fails before any
    // rounds run, matching `cmd_update`'s replay discipline.
    let mut events: Vec<(usize, usize, MembershipEvent)> = Vec::new();
    if let Some(script) = churn {
        for (idx, raw) in script.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            match parse_membership_event(line) {
                Ok((round, ev)) => events.push((lineno, round, ev)),
                Err(msg) => {
                    writeln!(out, "error: script line {lineno}: {msg}")?;
                    return Ok(());
                }
            }
        }
    }

    let max_rounds = rounds.unwrap_or(100_000);
    let mut swarm = SoaSwarm::new(g);
    writeln!(
        out,
        "struct-of-arrays swarm: {} agent(s), {} edge(s)",
        g.n(),
        g.edges().len()
    )?;

    // Replay churn in file order, stepping the protocol up to each event's
    // round first (events never rewind; an earlier round fires immediately).
    for (lineno, round, ev) in &events {
        while swarm.round() < (*round).min(max_rounds) {
            swarm.step();
        }
        match swarm.apply(ev) {
            Ok(outcome) => writeln!(
                out,
                "  event {lineno} @ round {}: {} → {}",
                swarm.round(),
                describe_membership_event(ev),
                describe_membership_outcome(&outcome)
            )?,
            Err(e) => writeln!(
                out,
                "  event {lineno} @ round {}: rejected ({e})",
                swarm.round()
            )?,
        }
    }

    let cfg = SwarmConfig {
        max_rounds: max_rounds.saturating_sub(swarm.round()),
        ..SwarmConfig::default()
    };
    let m = swarm.run(&cfg);
    writeln!(
        out,
        "proportional response: converged = {} after {} round(s); {} live agent(s)",
        m.converged,
        swarm.round(),
        swarm.live_agents()
    )?;

    // Max deviation from the exact BD allocation on the surviving topology.
    let live_snapshot = if swarm.live_agents() <= SWARM_BD_CHECK_MAX {
        match swarm.to_graph() {
            Ok(snap) => Some(snap),
            Err(e) => {
                writeln!(out, "BD cross-check skipped: {e}")?;
                None
            }
        }
    } else {
        writeln!(
            out,
            "BD cross-check skipped ({} live agents > {SWARM_BD_CHECK_MAX})",
            swarm.live_agents()
        )?;
        None
    };
    if let Some((live_g, slot_of)) = &live_snapshot {
        match decompose(live_g) {
            Ok(bd) => {
                let mut max_dev = 0.0f64;
                for (i, &slot) in slot_of.iter().enumerate() {
                    let want = bd.utility(live_g, i).to_f64();
                    max_dev = max_dev.max((m.utilities[slot] - want).abs());
                }
                writeln!(
                    out,
                    "max |U_swarm − U_BD| = {max_dev:.3e} over {} live agent(s)",
                    slot_of.len()
                )?;
            }
            Err(e) => writeln!(out, "BD cross-check skipped: {e}")?,
        }
    }

    // Empirical incentive ratio. The in-vivo proxy (spread of the
    // download-per-capacity rates) always prints; on small surviving rings
    // a grid of Sybil splits probes the best protocol-level deviation.
    let spread = swarm.fairness_spread();
    if spread.is_nan() {
        writeln!(out, "fairness spread max/min(Ū_v/w_v): n/a (no live capacity)")?;
    } else {
        writeln!(out, "fairness spread max/min(Ū_v/w_v) = {spread:.9}")?;
    }
    match &live_snapshot {
        Some((live_g, _)) if live_g.is_ring() && live_g.n() <= SWARM_SYBIL_PROBE_MAX => {
            let honest = {
                let mut s = SoaSwarm::new(live_g);
                s.run(&SwarmConfig::default()).utilities
            };
            let weights = live_g.weights_f64();
            let mut best = 1.0f64;
            let mut best_agent = 0usize;
            let mut best_split = 4u32;
            for v in 0..live_g.n() {
                if weights[v] <= 0.0 || honest[v] <= 0.0 {
                    continue;
                }
                for k in 1..8u32 {
                    let w1 = weights[v] * f64::from(k) / 8.0;
                    let w2 = weights[v] - w1;
                    let mut s = SoaSwarm::with_strategies(live_g, |a| {
                        if a == v {
                            Strategy::Sybil { w1, w2 }
                        } else {
                            Strategy::Honest
                        }
                    });
                    let ratio = s.run(&SwarmConfig::default()).utilities[v] / honest[v];
                    if ratio > best {
                        best = ratio;
                        best_agent = v;
                        best_split = k;
                    }
                }
            }
            writeln!(
                out,
                "empirical incentive ratio ζ̂ = {best:.6} \
                 (Sybil grid: agent {best_agent}, split {best_split}/8·w; Theorem 8 bound: 2)"
            )?;
        }
        Some((live_g, _)) if !live_g.is_ring() => {
            writeln!(out, "Sybil probe skipped (surviving topology is not a ring)")?;
        }
        Some((live_g, _)) => {
            writeln!(
                out,
                "Sybil probe skipped ({} live agents > {SWARM_SYBIL_PROBE_MAX})",
                live_g.n()
            )?;
        }
        None => {}
    }
    Ok(())
}

fn describe_membership_event(ev: &MembershipEvent) -> String {
    match ev {
        MembershipEvent::Join { capacity, peers } => {
            format!("join(w = {capacity}, peers {peers:?})")
        }
        MembershipEvent::Leave { agent } => format!("leave(agent {agent})"),
        MembershipEvent::Rewire { agent } => format!("rewire(agent {agent})"),
    }
}

fn describe_membership_outcome(outcome: &MembershipOutcome) -> String {
    match outcome {
        MembershipOutcome::Joined(v) => format!("joined as agent {v}"),
        MembershipOutcome::Left => "left".to_string(),
        MembershipOutcome::Rewired { dropped, added } => {
            format!("rewired: dropped {dropped}, added {added}")
        }
        MembershipOutcome::NoOp => "no-op".to_string(),
    }
}

/// Parse one membership-script event (a JSON object per line) for
/// [`cmd_swarm`]: `{"op": "join", "capacity": w, "peers": [..]}`,
/// `{"op": "leave", "agent": v}`, or `{"op": "rewire", "agent": v}`, each
/// with an optional `"round": r` naming the protocol round it fires at.
fn parse_membership_event(text: &str) -> Result<(usize, MembershipEvent), String> {
    let body = text
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "event must be a JSON object".to_string())?;
    let pairs = split_top_level_pairs(body)?;
    let round = match field(&pairs, "round") {
        Ok(raw) => raw
            .parse::<usize>()
            .map_err(|_| "field `round` must be a round number".to_string())?,
        Err(_) => 0,
    };
    let ev = match unquote(field(&pairs, "op")?) {
        "join" => {
            let capacity = field(&pairs, "capacity")?
                .parse::<f64>()
                .map_err(|_| "field `capacity` must be a number".to_string())?;
            let inner = field(&pairs, "peers")?
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| "`peers` must be an array".to_string())?;
            let peers = inner
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| "`peers` entries must be agent ids".to_string())
                })
                .collect::<Result<Vec<_>, String>>()?;
            MembershipEvent::Join { capacity, peers }
        }
        "leave" => MembershipEvent::Leave {
            agent: vertex_field(&pairs, "agent")?,
        },
        "rewire" => MembershipEvent::Rewire {
            agent: vertex_field(&pairs, "agent")?,
        },
        other => return Err(format!("unknown op `{other}`")),
    };
    Ok((round, ev))
}

/// Parse one churn-script event (a JSON object; `batch` nests one level of
/// objects inside a `deltas` array) into a [`Delta`]. Hand-rolled like
/// every other JSON surface in this workspace.
fn parse_delta(text: &str) -> Result<Delta, String> {
    let t = text.trim();
    let body = t
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "event must be a JSON object".to_string())?;
    let pairs = split_top_level_pairs(body)?;
    let op = unquote(field(&pairs, "op")?);
    match op {
        "set_weight" => Ok(Delta::SetWeight {
            v: vertex_field(&pairs, "v")?,
            w: weight_field(&pairs, "w")?,
        }),
        "add_edge" => Ok(Delta::AddEdge {
            u: vertex_field(&pairs, "u")?,
            v: vertex_field(&pairs, "v")?,
        }),
        "remove_edge" => Ok(Delta::RemoveEdge {
            u: vertex_field(&pairs, "u")?,
            v: vertex_field(&pairs, "v")?,
        }),
        "batch" => {
            let arr = field(&pairs, "deltas")?;
            let inner = arr
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(|| "`deltas` must be an array".to_string())?;
            let deltas = split_top_level_objects(inner)?
                .iter()
                .map(|o| parse_delta(o))
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Delta::Batch(deltas))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Split the inside of a JSON object into top-level `(key, raw value)`
/// pairs; values keep their raw text (quoted strings, numbers, arrays).
fn split_top_level_pairs(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let stripped = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted key at `{rest}`"))?;
        let end = stripped
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = stripped[..end].to_string();
        let value_part = stripped[end + 1..]
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("expected `:` after key `{key}`"))?
            .trim_start();
        let mut depth = 0usize;
        let mut in_str = false;
        let mut split = value_part.len();
        for (i, ch) in value_part.char_indices() {
            match ch {
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => {
                    depth = depth
                        .checked_sub(1)
                        .ok_or_else(|| "unbalanced brackets".to_string())?;
                }
                ',' if !in_str && depth == 0 => {
                    split = i;
                    break;
                }
                _ => {}
            }
        }
        pairs.push((key, value_part[..split].trim().to_string()));
        rest = value_part[split..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(pairs)
}

/// Split the inside of a JSON array into its top-level `{…}` elements.
fn split_top_level_objects(body: &str) -> Result<Vec<String>, String> {
    let mut objs = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut start = None;
    for (i, ch) in body.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '{' if !in_str => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' if !in_str => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| "unbalanced braces in batch".to_string())?;
                if depth == 0 {
                    if let Some(s) = start.take() {
                        objs.push(body[s..=i].to_string());
                    }
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_str {
        return Err("unterminated batch".to_string());
    }
    Ok(objs)
}

fn field<'a>(pairs: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn unquote(raw: &str) -> &str {
    raw.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or(raw)
}

fn vertex_field(pairs: &[(String, String)], key: &str) -> Result<usize, String> {
    field(pairs, key)?
        .parse::<usize>()
        .map_err(|_| format!("field `{key}` must be a vertex index"))
}

fn weight_field(pairs: &[(String, String)], key: &str) -> Result<Rational, String> {
    unquote(field(pairs, key)?)
        .parse::<Rational>()
        .map_err(|_| format!("field `{key}` must be a rational weight"))
}

fn mark(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "VIOLATED"
    }
}

/// Usage text.
pub const USAGE: &str = "\
prs — resource sharing over rings (IPPS'20 reproduction)

USAGE:
    prs <command> <instance-file> [args]

COMMANDS:
    decompose <file>              bottleneck decomposition, classes, utilities
    allocate <file>               the BD allocation, edge by edge
    dynamics <file> [eps]         run the proportional response protocol
    attack <file> <vertex>        optimal Sybil attack on a ring agent
    general-attack <file> <vertex>   Definition 7 attack on any graph
    certified-attack <file> <vertex> symbolic (certified) attack optimum
    eg <file>                     Eisenberg–Gale solve vs Proposition 6
    sweep <file> <vertex>         exact misreport sweep (Prop. 11 intervals)
    update <file> <script.jsonl>  replay a churn script against one
                                  incremental session; each line is an event
                                  ({\"op\": set_weight|add_edge|remove_edge|batch})
    watch <file> <script.jsonl> [dump-dir] [slo-ms]
                                  replay a churn script with live metrics:
                                  streaming p50/p90/p99 snapshot lines
                                  mid-replay, SLO watchdog (slo-ms = latency
                                  ceiling on the delta spans), and anomaly
                                  flight-recorder dumps under dump-dir
    swarm <file> [--agents N] [--rounds R] [--churn script.jsonl]
                                  run the struct-of-arrays swarm engine to
                                  convergence (--agents: tile the ring's
                                  weights to N agents; --churn: JSONL
                                  membership events, one per line,
                                  {\"op\": join|leave|rewire, \"round\": r});
                                  reports the convergence round, max utility
                                  deviation from the exact BD allocation,
                                  and the empirical incentive ratio
    audit <file> [--stats]        run every paper-claim check on a ring
                                  (--stats: print flow-engine counters)

TRACING (any command):
    --trace                       print a span/counter summary after the run
    --trace=FILE                  write Chrome trace-event JSON (Perfetto)
    --trace-jsonl=FILE            write the raw event log, one JSON per line

INSTANCE FILES:
    ring                          # or `path` / `graph`
    weights: 3 1 4 1/2 5          # exact rationals
    edges: 0-1 1-2                # only for `graph`
";

#[cfg(test)]
mod tests {
    use super::*;
    use prs_core::graph::builders;
    use prs_core::numeric::int;

    fn ring() -> Graph {
        builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap()
    }

    fn capture(f: impl FnOnce(&mut dyn Write) -> std::io::Result<()>) -> String {
        let mut buf = Vec::new();
        f(&mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn decompose_output_lists_all_agents() {
        let out = capture(|w| cmd_decompose(&ring(), w));
        for v in 0..5 {
            assert!(out.contains(&format!("agent {v}")), "{out}");
        }
        assert!(out.contains("α_0 = 1/2"), "{out}");
    }

    #[test]
    fn allocate_output_balances() {
        let out = capture(|w| cmd_allocate(&ring(), w));
        assert!(out.contains("U_0 = 5"), "{out}");
    }

    #[test]
    fn dynamics_reports_convergence() {
        let out = capture(|w| cmd_dynamics(&ring(), 1e-8, w));
        assert!(out.contains("converged = true"), "{out}");
    }

    #[test]
    fn attack_reports_ratio_within_bound() {
        let out = capture(|w| cmd_attack(&ring(), 0, w));
        assert!(out.contains("incentive ratio"), "{out}");
        assert!(!out.contains("error"), "{out}");
    }

    #[test]
    fn attack_rejects_non_ring() {
        let path = builders::path(vec![int(1), int(2), int(3)]).unwrap();
        let out = capture(|w| cmd_attack(&path, 0, w));
        assert!(out.contains("requires a ring"), "{out}");
    }

    #[test]
    fn general_attack_works_on_graphs() {
        let star = builders::star(vec![int(4), int(1), int(2), int(3)]).unwrap();
        let out = capture(|w| cmd_general_attack(&star, 0, w));
        assert!(out.contains("ζ_v lower bound"), "{out}");
        let leaf = capture(|w| cmd_general_attack(&star, 1, w));
        assert!(leaf.contains("degree < 2"), "{leaf}");
    }

    #[test]
    fn audit_prints_all_checks() {
        let out = capture(|w| cmd_audit(&ring(), false, w));
        assert_eq!(out.matches(": ok").count(), 8, "{out}");
        assert!(!out.contains("VIOLATED"), "{out}");
        assert!(!out.contains("flow-engine stats"), "{out}");
    }

    #[test]
    fn audit_with_stats_prints_counters() {
        let out = capture(|w| cmd_audit(&ring(), true, w));
        assert_eq!(out.matches(": ok").count(), 8, "{out}");
        assert!(out.contains("flow-engine stats"), "{out}");
        assert!(out.contains("exact max-flows"), "{out}");
        assert!(out.contains("fast-path"), "{out}");
        assert!(out.contains("session"), "{out}");
    }

    #[test]
    fn audit_stats_json_line_is_valid_json() {
        // Regression: the machine-readable stats line must never carry a
        // bare `NaN` (no JSON representation) — the rate keys are omitted
        // when no rounds of their kind ran.
        let out = capture(|w| cmd_audit(&ring(), true, w));
        let json_line = out
            .lines()
            .find(|l| l.trim_start().starts_with("json "))
            .expect("stats json line present");
        assert!(!json_line.contains("NaN"), "{json_line}");
        let body = json_line.trim_start().trim_start_matches("json ");
        assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
        assert!(body.contains("\"exact_max_flows\""), "{body}");
    }

    #[test]
    fn sweep_reports_intervals_and_breakpoints() {
        let out = capture(|w| cmd_sweep(&ring(), 0, w));
        assert!(out.contains("misreport sweep for agent 0"), "{out}");
        assert!(out.contains("constant-shape intervals"), "{out}");
        assert!(out.contains("interval 0"), "{out}");
    }

    #[test]
    fn sweep_rejects_out_of_range_vertex() {
        let out = capture(|w| cmd_sweep(&ring(), 99, w));
        assert!(out.contains("out of range"), "{out}");
    }

    #[test]
    fn certified_attack_reports() {
        let out = capture(|w| cmd_certified_attack(&ring(), 0, w));
        assert!(out.contains("certified payoff"), "{out}");
    }

    #[test]
    fn eg_command_compares_utilities() {
        let out = capture(|w| cmd_eg(&ring(), w));
        assert!(out.contains("EG utility"), "{out}");
        assert!(out.contains("Eisenberg"), "{out}");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let degenerate = Graph::new(vec![int(1), int(1), int(1)], &[(0, 1)]).unwrap();
        let out = capture(|w| cmd_decompose(&degenerate, w));
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn delta_parser_handles_nesting_and_rationals() {
        use prs_core::numeric::ratio;
        let d = parse_delta(
            r#"{"op":"batch","deltas":[{"op":"set_weight","v":2,"w":"7/3"},{"op":"remove_edge","u":1,"v":2}]}"#,
        )
        .unwrap();
        assert_eq!(
            d,
            Delta::Batch(vec![
                Delta::SetWeight {
                    v: 2,
                    w: ratio(7, 3)
                },
                Delta::RemoveEdge { u: 1, v: 2 },
            ])
        );
        // Bare-number weights work too.
        assert_eq!(
            parse_delta(r#"{"op":"set_weight","v":0,"w":5}"#).unwrap(),
            Delta::SetWeight { v: 0, w: int(5) }
        );
        assert!(parse_delta("[1,2]").is_err());
        assert!(parse_delta(r#"{"op":"warp"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(parse_delta(r#"{"op":"set_weight","v":0}"#)
            .unwrap_err()
            .contains("missing field `w`"));
    }

    #[test]
    fn update_replays_script_and_reports_tiers() {
        // Ring edges are (0,1)…(4,0): re-adding (0,1) and a self-cancelling
        // batch are both served `unchanged`; the weight moves re-decompose.
        let script = r#"
# churn script
{"op":"set_weight","v":0,"w":"7/2"}
{"op":"batch","deltas":[{"op":"add_edge","u":0,"v":2},{"op":"remove_edge","u":0,"v":2}]}
{"op":"add_edge","u":0,"v":1}
{"op":"set_weight","v":4,"w":6}
"#;
        let out = capture(|w| cmd_update(&ring(), script, false, w));
        assert!(out.contains("initial decomposition"), "{out}");
        assert!(out.contains("→ unchanged"), "{out}");
        assert!(out.contains("replayed 4 event(s)"), "{out}");
        assert!(out.contains("2 unchanged"), "{out}");
        assert!(out.contains("0 rejected"), "{out}");
        assert!(out.contains("final decomposition"), "{out}");
        assert!(out.contains("agent 0: w = 7/2"), "{out}");
        assert!(out.contains("agent 4: w = 6"), "{out}");
        assert!(!out.contains("flow-engine stats"), "{out}");
    }

    #[test]
    fn update_reports_rejections_and_continues() {
        let script = "{\"op\":\"set_weight\",\"v\":99,\"w\":\"1\"}\n\
                      {\"op\":\"set_weight\",\"v\":1,\"w\":\"2\"}\n";
        let out = capture(|w| cmd_update(&ring(), script, false, w));
        assert!(out.contains("event 1: rejected"), "{out}");
        assert!(out.contains("1 rejected"), "{out}");
        assert!(out.contains("replayed 2 event(s)"), "{out}");
        assert!(out.contains("agent 1: w = 2"), "{out}");
    }

    #[test]
    fn update_script_errors_abort_with_line_numbers() {
        let out = capture(|w| cmd_update(&ring(), "{\"op\":\"warp\"}", false, w));
        assert!(out.contains("error: script line 1"), "{out}");
        assert!(out.contains("unknown op"), "{out}");
    }

    #[test]
    fn update_with_stats_prints_delta_tier_counters() {
        let script = "{\"op\":\"set_weight\",\"v\":0,\"w\":\"2\"}\n\
                      {\"op\":\"add_edge\",\"u\":0,\"v\":1}\n";
        let out = capture(|w| cmd_update(&ring(), script, true, w));
        assert!(out.contains("flow-engine stats"), "{out}");
        assert!(out.contains("delta unchanged"), "{out}");
        assert!(out.contains("delta recertified"), "{out}");
        assert!(out.contains("\"delta_unchanged\""), "{out}");
    }

    // The metrics layer is process-global; the watch tests install/reset
    // it, so they must not interleave with each other.
    static WATCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn watch_prints_live_snapshots_and_summary() {
        let _g = WATCH_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let script = "{\"op\":\"set_weight\",\"v\":0,\"w\":\"7/2\"}\n\
                      {\"op\":\"set_weight\",\"v\":4,\"w\":6}\n";
        // Generous 10s SLO: watchdog armed but quiet, output deterministic.
        let out = capture(|w| cmd_watch(&ring(), script, None, Some(10_000), w));
        assert!(out.contains("initial decomposition"), "{out}");
        assert!(out.contains("event 1:"), "{out}");
        let snaps: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("{\"layer\": \""))
            .collect();
        assert!(!snaps.is_empty(), "live snapshot lines expected:\n{out}");
        assert!(
            snaps
                .iter()
                .any(|l| l.contains("\"name\": \"delta_apply\"")),
            "{out}"
        );
        for l in &snaps {
            assert!(
                l.contains("\"count\": ")
                    && l.contains("\"p50_ns\": ")
                    && l.contains("\"p99_ns\": "),
                "snapshot schema: {l}"
            );
        }
        assert!(out.contains("watch: 2 event(s)"), "{out}");
        assert!(out.contains("flight dump(s)"), "{out}");
    }

    #[test]
    fn watch_zero_slo_fires_watchdog() {
        let _g = WATCH_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let script = "{\"op\":\"set_weight\",\"v\":0,\"w\":\"9/2\"}\n";
        let out = capture(|w| cmd_watch(&ring(), script, None, Some(0), w));
        assert!(out.contains("watch: 1 event(s)"), "{out}");
        assert!(!out.contains(" 0 SLO breach(es)"), "{out}");
    }

    #[test]
    fn swarm_reports_convergence_deviation_and_ratio() {
        let out = capture(|w| cmd_swarm(&ring(), None, None, None, w));
        assert!(out.contains("struct-of-arrays swarm: 5 agent(s)"), "{out}");
        assert!(out.contains("converged = true"), "{out}");
        assert!(out.contains("5 live agent(s)"), "{out}");
        assert!(out.contains("max |U_swarm − U_BD| = "), "{out}");
        assert!(out.contains("fairness spread"), "{out}");
        assert!(out.contains("empirical incentive ratio ζ̂ = "), "{out}");
        assert!(out.contains("Theorem 8 bound: 2"), "{out}");
    }

    #[test]
    fn swarm_agents_flag_tiles_the_ring() {
        let out = capture(|w| cmd_swarm(&ring(), Some(8), None, None, w));
        assert!(out.contains("struct-of-arrays swarm: 8 agent(s)"), "{out}");
        assert!(out.contains("converged = true"), "{out}");
        let path = builders::path(vec![int(1), int(2), int(3)]).unwrap();
        let out = capture(|w| cmd_swarm(&path, Some(8), None, None, w));
        assert!(out.contains("requires a ring instance"), "{out}");
    }

    #[test]
    fn swarm_rounds_cap_stops_early() {
        let out = capture(|w| cmd_swarm(&ring(), None, Some(3), None, w));
        assert!(out.contains("converged = false after 3 round(s)"), "{out}");
    }

    #[test]
    fn swarm_churn_script_applies_events_between_rounds() {
        let script = "# join a newcomer on arc (0,2), then retire agent 1\n\
                      {\"op\":\"join\",\"capacity\":2,\"peers\":[0,2],\"round\":3}\n\
                      {\"op\":\"leave\",\"agent\":1,\"round\":5}\n";
        let out = capture(|w| cmd_swarm(&ring(), None, None, Some(script), w));
        assert!(out.contains("event 2 @ round 3: join"), "{out}");
        assert!(out.contains("joined as agent 5"), "{out}");
        assert!(out.contains("event 3 @ round 5: leave(agent 1) → left"), "{out}");
        assert!(out.contains("converged = true"), "{out}");
        assert!(out.contains("5 live agent(s)"), "{out}");
        // The surviving topology is a 5-ring again, so both cross-checks run.
        assert!(out.contains("max |U_swarm − U_BD| = "), "{out}");
        assert!(out.contains("empirical incentive ratio ζ̂ = "), "{out}");
    }

    #[test]
    fn swarm_rejects_malformed_churn_lines() {
        let out = capture(|w| {
            cmd_swarm(&ring(), None, None, Some("{\"op\":\"frobnicate\"}"), w)
        });
        assert!(
            out.contains("error: script line 1: unknown op `frobnicate`"),
            "{out}"
        );
        let out = capture(|w| {
            cmd_swarm(&ring(), None, None, Some("{\"op\":\"join\",\"peers\":[0]}"), w)
        });
        assert!(out.contains("missing field `capacity`"), "{out}");
    }

    #[test]
    fn swarm_reports_rejected_events_without_dying() {
        // Leaving an unknown agent is a domain error, not a crash; the run
        // continues to convergence.
        let script = "{\"op\":\"leave\",\"agent\":99}\n";
        let out = capture(|w| cmd_swarm(&ring(), None, None, Some(script), w));
        assert!(out.contains("rejected ("), "{out}");
        assert!(out.contains("converged = true"), "{out}");
    }

    #[test]
    fn attack_rejects_zero_weight_agent() {
        // A zero-weight ring decomposes (the agent is just inert), but the
        // attack model divides by honest utility; both attack commands must
        // refuse with a message, not panic in the sweep.
        let g = prs_core::graph::builders::ring(vec![int(0), int(2), int(3)]).unwrap();
        let out = capture(|w| cmd_attack(&g, 1, w));
        assert!(out.contains("non-positive weight"), "{out}");
        let out = capture(|w| cmd_certified_attack(&g, 1, w));
        assert!(out.contains("non-positive weight"), "{out}");
    }
}
