//! `prs` — command-line front end for the resource-sharing toolkit.
//!
//! See [`commands::USAGE`] or run `prs` with no arguments.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

/// Where the recorded trace goes after the command finishes.
enum TraceOut {
    /// Bare `--trace`: human-readable span/counter summary on stdout.
    Summary,
    /// `--trace=FILE`: Chrome trace-event JSON (Perfetto/`chrome://tracing`).
    Chrome(String),
    /// `--trace-jsonl=FILE`: one JSON object per event.
    Jsonl(String),
}

fn run(args: &[String]) -> Result<(), String> {
    let stats = args.iter().any(|a| a == "--stats");
    let mut trace_out: Option<TraceOut> = None;
    for a in args {
        if a == "--trace" {
            trace_out = Some(TraceOut::Summary);
        } else if let Some(path) = a.strip_prefix("--trace=") {
            trace_out = Some(TraceOut::Chrome(path.to_string()));
        } else if let Some(path) = a.strip_prefix("--trace-jsonl=") {
            trace_out = Some(TraceOut::Jsonl(path.to_string()));
        }
    }
    let args: Vec<String> = args
        .iter()
        .filter(|a| *a != "--stats" && !a.starts_with("--trace"))
        .cloned()
        .collect();
    let Some(cmd) = args.first() else {
        return Err(commands::USAGE.to_string());
    };
    let file = args
        .get(1)
        .ok_or_else(|| format!("missing instance file\n\n{}", commands::USAGE))?;
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let graph = prs_core::parse::parse_instance(&text).map_err(|e| format!("{file}: {e}"))?;

    let mut stdout = std::io::stdout().lock();
    let vertex_arg = |idx: usize| -> Result<usize, String> {
        args.get(idx)
            .ok_or_else(|| "missing vertex argument".to_string())?
            .parse::<usize>()
            .map_err(|_| "vertex must be a non-negative integer".to_string())
    };

    if trace_out.is_some() {
        prs_core::trace::install(&prs_core::trace::TraceConfig::new().with_enabled(true));
    }

    let result = match cmd.as_str() {
        "decompose" => commands::cmd_decompose(&graph, &mut stdout),
        "allocate" => commands::cmd_allocate(&graph, &mut stdout),
        "dynamics" => {
            let eps = args
                .get(2)
                .map(|s| s.parse::<f64>().map_err(|_| "bad eps".to_string()))
                .transpose()?
                .unwrap_or(1e-8);
            commands::cmd_dynamics(&graph, eps, &mut stdout)
        }
        "attack" => commands::cmd_attack(&graph, vertex_arg(2)?, &mut stdout),
        "certified-attack" => commands::cmd_certified_attack(&graph, vertex_arg(2)?, &mut stdout),
        "eg" => commands::cmd_eg(&graph, &mut stdout),
        "general-attack" => commands::cmd_general_attack(&graph, vertex_arg(2)?, &mut stdout),
        "sweep" => commands::cmd_sweep(&graph, vertex_arg(2)?, &mut stdout),
        "update" => {
            let script = args
                .get(2)
                .ok_or_else(|| format!("missing churn script file\n\n{}", commands::USAGE))?;
            let text = std::fs::read_to_string(script)
                .map_err(|e| format!("cannot read {script}: {e}"))?;
            commands::cmd_update(&graph, &text, stats, &mut stdout)
        }
        "watch" => {
            let script = args
                .get(2)
                .ok_or_else(|| format!("missing churn script file\n\n{}", commands::USAGE))?;
            let text = std::fs::read_to_string(script)
                .map_err(|e| format!("cannot read {script}: {e}"))?;
            let dump_dir = args.get(3).map(String::as_str);
            let slo_ms = args
                .get(4)
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|_| "slo-ms must be a non-negative integer".to_string())
                })
                .transpose()?;
            commands::cmd_watch(&graph, &text, dump_dir, slo_ms, &mut stdout)
        }
        "swarm" => {
            let mut agents = None;
            let mut rounds = None;
            let mut churn_path: Option<String> = None;
            let mut i = 2;
            while i < args.len() {
                let (flag, inline) = match args[i].split_once('=') {
                    Some((f, v)) => (f.to_string(), Some(v.to_string())),
                    None => (args[i].clone(), None),
                };
                let value = match inline {
                    Some(v) => v,
                    None => {
                        i += 1;
                        args.get(i)
                            .cloned()
                            .ok_or_else(|| format!("flag `{flag}` needs a value"))?
                    }
                };
                match flag.as_str() {
                    "--agents" => {
                        agents = Some(value.parse::<usize>().map_err(|_| {
                            "--agents must be a non-negative integer".to_string()
                        })?);
                    }
                    "--rounds" => {
                        rounds = Some(value.parse::<usize>().map_err(|_| {
                            "--rounds must be a non-negative integer".to_string()
                        })?);
                    }
                    "--churn" => churn_path = Some(value),
                    other => {
                        return Err(format!(
                            "unknown swarm flag `{other}`\n\n{}",
                            commands::USAGE
                        ))
                    }
                }
                i += 1;
            }
            let churn_text = match &churn_path {
                Some(p) => Some(
                    std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?,
                ),
                None => None,
            };
            commands::cmd_swarm(&graph, agents, rounds, churn_text.as_deref(), &mut stdout)
        }
        "audit" => commands::cmd_audit(&graph, stats, &mut stdout),
        other => return Err(format!("unknown command `{other}`\n\n{}", commands::USAGE)),
    };

    if let Some(out) = trace_out {
        let trace = prs_core::trace::take();
        prs_core::trace::disable();
        let emit: std::io::Result<()> = match out {
            TraceOut::Summary => {
                use std::io::Write;
                write!(stdout, "{}", trace.summary())
            }
            TraceOut::Chrome(path) => std::fs::write(&path, trace.to_chrome_json()).map(|()| {
                use std::io::Write;
                let _ = writeln!(
                    stdout,
                    "trace: wrote {} events to {path} (open in Perfetto or chrome://tracing)",
                    trace.events.len()
                );
            }),
            TraceOut::Jsonl(path) => std::fs::write(&path, trace.to_jsonl()).map(|()| {
                use std::io::Write;
                let _ = writeln!(
                    stdout,
                    "trace: wrote {} events to {path}",
                    trace.events.len()
                );
            }),
        };
        emit.map_err(|e| format!("cannot write trace: {e}"))?;
    }
    result.map_err(|e| format!("io error: {e}"))
}
