//! Exact parameter sweeps with breakpoint localization.
//!
//! `𝓑(x)` is piecewise-constant (Section III-B): the shape — which vertices
//! sit in which pair, on which side — only changes at finitely many rational
//! breakpoints. The sweep samples the decomposition on a uniform rational
//! grid and then *bisects* (exactly, on rationals) every grid cell whose two
//! endpoints disagree, localizing each breakpoint to a configurable width.
//! Every evaluation is an exact decomposition; no floating point touches the
//! combinatorics.

use crate::family::GraphFamily;
use prs_bd::par::{worker_threads, SessionPool};
use prs_bd::{AgentClass, BottleneckDecomposition, DecompositionSession, SessionConfig};
use prs_graph::VertexId;
use prs_numeric::Rational;

/// One sampled point of a sweep.
#[derive(Clone, Debug)]
pub struct AlphaSample {
    /// Parameter value.
    pub x: Rational,
    /// `α_v(x)` of the focus vertex.
    pub alpha: Rational,
    /// `U_v(x)` of the focus vertex (Proposition 6 closed form).
    pub utility: Rational,
    /// Class of the focus vertex.
    pub class: AgentClass,
    /// The full decomposition at `x`.
    pub bd: BottleneckDecomposition,
}

/// A maximal parameter interval over which the decomposition shape is
/// constant (up to the sweep's localization width).
#[derive(Clone, Debug)]
pub struct ShapeInterval {
    /// Interval start (exact sample where this shape was first seen).
    pub lo: Rational,
    /// Interval end (last exact sample with this shape).
    pub hi: Rational,
    /// The pair-membership shape shared by all samples in the interval.
    pub shape: Vec<(Vec<VertexId>, Vec<VertexId>)>,
    /// `α`-ratios of the pairs at the `lo` sample.
    pub alphas_lo: Vec<Rational>,
    /// `α`-ratios of the pairs at the `hi` sample.
    pub alphas_hi: Vec<Rational>,
    /// Class of the focus vertex throughout the interval.
    pub focus_class: AgentClass,
}

/// Sweep parameters.
///
/// Construct via [`SweepConfig::new`] + `with_*` builders; the struct is
/// `#[non_exhaustive]` so new knobs (like the session cache controls) land
/// without breaking callers.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Number of uniform grid cells over the domain.
    pub grid: usize,
    /// Bisection steps used to localize each breakpoint
    /// (final width = cell width / 2^bits).
    pub refine_bits: u32,
    /// Warm-start decompositions from per-worker session caches
    /// (default `true`; results are bit-identical either way).
    pub warm_start: bool,
    /// Shape-cache capacity of each worker session (default `32`).
    pub cache_capacity: usize,
}

impl SweepConfig {
    /// The default sweep: 64 grid cells, 30-bit localization, warm sessions.
    pub fn new() -> Self {
        SweepConfig {
            grid: 64,
            refine_bits: 30,
            warm_start: true,
            cache_capacity: 32,
        }
    }

    /// Set the number of uniform grid cells.
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = grid;
        self
    }

    /// Set the per-breakpoint bisection depth.
    pub fn with_refine_bits(mut self, bits: u32) -> Self {
        self.refine_bits = bits;
        self
    }

    /// Enable or disable session warm-starts.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Set the per-session shape-cache capacity.
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache_capacity = cap;
        self
    }

    /// The session configuration implied by these sweep knobs.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig::new()
            .with_warm_start(self.warm_start)
            .with_cache_capacity(self.cache_capacity)
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig::new()
    }
}

/// Result of [`sweep`].
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// All evaluated samples in increasing parameter order (grid +
    /// bisection probes).
    pub samples: Vec<AlphaSample>,
    /// Maximal constant-shape intervals in order.
    pub intervals: Vec<ShapeInterval>,
}

impl SweepResult {
    /// The localized breakpoints: midpoints between consecutive intervals.
    pub fn breakpoints(&self) -> Vec<Rational> {
        self.intervals
            .windows(2)
            .map(|w| w[0].hi.midpoint(&w[1].lo))
            .collect()
    }

    /// The `(x, α_v, U_v)` series, e.g. for plotting Fig. 2 curves.
    pub fn curve(&self) -> Vec<(Rational, Rational, Rational)> {
        self.samples
            .iter()
            .map(|s| (s.x.clone(), s.alpha.clone(), s.utility.clone()))
            .collect()
    }
}

/// Decompose at `x`; `None` when the decomposition is undefined there
/// (possible only at domain boundaries, e.g. a 2-path whose partner reports
/// 0 — then its neighborhood weight is 0 and Proposition 3's `α₁ > 0`
/// premise fails).
fn sample<F: GraphFamily>(
    fam: &F,
    x: &Rational,
    session: &mut DecompositionSession,
) -> Option<AlphaSample> {
    let mut sp = prs_trace::span("deviation", "sample");
    sp.attr("x", || x.to_string());
    let g = fam.graph_at(x);
    let v = fam.focus_vertex();
    let bd = session.decompose(&g).ok()?;
    Some(AlphaSample {
        x: x.clone(),
        alpha: bd.alpha_of(v).clone(),
        utility: bd.utility(&g, v),
        class: bd.class_of(v),
        bd,
    })
}

/// Bisect one grid cell whose endpoints disagree in shape, returning the
/// refined `(left, right)` bracket samples.
fn refine_cell<F: GraphFamily>(
    fam: &F,
    mut a: AlphaSample,
    mut b: AlphaSample,
    refine_bits: u32,
    session: &mut DecompositionSession,
) -> (AlphaSample, AlphaSample) {
    let mut sp = prs_trace::span("deviation", "refine_cell");
    sp.attr("lo", || a.x.to_string());
    sp.attr("hi", || b.x.to_string());
    for _ in 0..refine_bits {
        let mid_x = a.x.midpoint(&b.x);
        let Some(mid) = sample(fam, &mid_x, session) else {
            break; // interior degeneracy: stop refining this cell
        };
        if mid.bd.shape() == a.bd.shape() {
            a = mid;
        } else {
            // The midpoint may match b's shape or be a third shape (two
            // breakpoints in the cell); either way the left boundary of
            // "not a's shape" lies in [a, mid].
            b = mid;
        }
    }
    (a, b)
}

/// Sweep a one-parameter family: exact decompositions on a uniform grid,
/// exact bisection where the shape changes.
///
/// Every evaluation is independent, so both passes fan out over scoped
/// worker threads; results are reassembled in parameter order, making the
/// output identical to a sequential sweep. The grid and bisection passes
/// share one [`SessionPool`]: each worker warm-starts its decompositions
/// from the shapes its session has already certified (piecewise-constant
/// `𝓑(x)` makes nearly every re-evaluation a cache hit).
pub fn sweep<F: GraphFamily + Sync>(fam: &F, cfg: &SweepConfig) -> SweepResult {
    let mut sp = prs_trace::span("deviation", "sweep");
    sp.attr("grid", || cfg.grid.to_string());
    sp.attr("refine_bits", || cfg.refine_bits.to_string());
    let (lo, hi) = fam.domain();
    assert!(lo < hi, "degenerate domain");
    let grid = cfg.grid.max(1);
    let width = &(&hi - &lo) / &Rational::from_integer(grid as i64);
    let pool = SessionPool::new(cfg.session_config());

    // Grid pass (boundary points where the decomposition is undefined are
    // skipped — see `sample`).
    let xs: Vec<Rational> = (0..=grid)
        .map(|i| &lo + &(&width * &Rational::from_integer(i as i64)))
        .collect();
    let mut samples: Vec<AlphaSample> = pool
        .map_indexed(xs.len(), worker_threads(xs.len()), |session, i| {
            sample(fam, &xs[i], session)
        })
        .into_iter()
        .flatten()
        .collect();
    assert!(
        !samples.is_empty(),
        "family undecomposable on the whole sampled domain"
    );

    // Bisection pass: localize boundaries inside cells whose endpoints have
    // different shapes. (A cell hiding ≥ 2 breakpoints with identical outer
    // shapes is resolved only if the grid is fine enough — documented
    // limitation; raise `grid` for adversarial families.) Cells refine
    // independently, one worker each, with grid-pass sessions re-checked out
    // of the pool — their caches already hold both shapes of each cell.
    let cells: Vec<(AlphaSample, AlphaSample)> = samples
        .windows(2)
        .filter(|w| w[0].bd.shape() != w[1].bd.shape())
        .map(|w| (w[0].clone(), w[1].clone()))
        .collect();
    let refined = pool.map_indexed(cells.len(), worker_threads(cells.len()), |session, i| {
        let (a, b) = cells[i].clone();
        refine_cell(fam, a, b, cfg.refine_bits, session)
    });
    let mut extra: Vec<AlphaSample> = Vec::new();
    for (a, b) in refined {
        extra.push(a);
        extra.push(b);
    }
    samples.extend(extra);
    samples.sort_by(|p, q| p.x.cmp(&q.x));
    samples.dedup_by(|p, q| p.x == q.x);

    // Interval assembly.
    let mut intervals: Vec<ShapeInterval> = Vec::new();
    for s in &samples {
        let shape = s.bd.shape();
        let alphas: Vec<Rational> = s.bd.pairs().iter().map(|p| p.alpha.clone()).collect();
        match intervals.last_mut() {
            Some(iv) if iv.shape == shape => {
                iv.hi = s.x.clone();
                iv.alphas_hi = alphas;
            }
            _ => intervals.push(ShapeInterval {
                lo: s.x.clone(),
                hi: s.x.clone(),
                shape,
                alphas_lo: alphas.clone(),
                alphas_hi: alphas,
                focus_class: s.class,
            }),
        }
    }

    sp.attr("samples", || samples.len().to_string());
    sp.attr("intervals", || intervals.len().to_string());
    let result = SweepResult { samples, intervals };
    if prs_trace::is_enabled() {
        // Each localized breakpoint is a point event carrying its exact
        // parameter value, so shape changes are visible on the timeline.
        for bp in result.breakpoints() {
            prs_trace::instant("deviation", "breakpoint", || vec![("x", bp.to_string())]);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::MisreportFamily;
    use prs_graph::builders;
    use prs_numeric::{int, ratio, Rational};

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn constant_shape_single_interval() {
        // Two-vertex path 1–4, agent 1 misreports: B = {1}, C = {0} holds
        // for all x ∈ (… well, until x < 1 where α crosses 1 …). Use agent 0
        // instead: weights (1, 4), agent 0 reports x ∈ [0, 1]: α({1}) = x/4,
        // α({0}) = 4/x ≥ 4 — B = {1} always, shape constant.
        let g = builders::path(ints(&[1, 4])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(8).with_refine_bits(10));
        assert_eq!(res.intervals.len(), 1);
        assert!(res.breakpoints().is_empty());
    }

    #[test]
    fn breakpoint_detected_and_localized() {
        // Path (1, x), agent 1 reports x ∈ [0, 10]: for x < 1 the shape is
        // B = {0}, C = {1} (α = x); for x > 1 it flips to B = {1}, C = {0}
        // (α = 1/x); at x* = 1 they merge into the point pair B = C = {0,1}
        // with α = 1. The sweep must detect the shape change at x = 1 and
        // localize it tightly.
        let g = builders::path(ints(&[1, 10])).unwrap();
        let fam = MisreportFamily::new(g, 1);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(25));
        assert!(res.intervals.len() >= 2, "expected a shape change");
        // The breakpoint estimate brackets x* = 1 within the refinement width.
        let bps = res.breakpoints();
        assert!(
            bps.iter().any(|b| (b - &int(1)).abs() < ratio(1, 1 << 15)),
            "breakpoints {bps:?} should include ≈1"
        );
        // Consecutive intervals are separated by tiny localized gaps.
        for w in res.intervals.windows(2) {
            let gap = &w[1].lo - &w[0].hi;
            assert!(!gap.is_negative());
            assert!(gap < ratio(1, 1 << 15), "gap {gap} too wide");
        }
    }

    #[test]
    fn samples_are_sorted_and_unique() {
        let g = builders::ring(ints(&[3, 1, 4, 1, 5])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(16).with_refine_bits(12));
        for w in res.samples.windows(2) {
            assert!(w[0].x < w[1].x);
        }
    }

    #[test]
    fn utilities_in_sweep_match_direct_decomposition() {
        let g = builders::ring(ints(&[2, 5, 3, 7])).unwrap();
        let fam = MisreportFamily::new(g.clone(), 1);
        let res = sweep(&fam, &SweepConfig::new().with_grid(10).with_refine_bits(4));
        for s in &res.samples {
            let g_x = g.with_weight(1, s.x.clone());
            let bd = prs_bd::decompose(&g_x).unwrap();
            assert_eq!(s.utility, bd.utility(&g_x, 1));
            assert_eq!(s.alpha, *bd.alpha_of(1));
        }
    }
}
