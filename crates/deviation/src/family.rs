//! One-parameter families of weighted graphs.

use prs_graph::{Graph, VertexId};
use prs_numeric::Rational;

/// A family of graphs indexed by a rational parameter on a closed interval.
///
/// The misreport analysis (`x` = reported weight) and the Sybil split
/// analysis (`x` = weight of the first fictitious node) are both instances.
pub trait GraphFamily {
    /// The graph at parameter value `x ∈ [domain.0, domain.1]`.
    fn graph_at(&self, x: &Rational) -> Graph;

    /// The closed parameter interval.
    fn domain(&self) -> (Rational, Rational);

    /// The vertex whose deviation is being analyzed (used by sweeps to
    /// track `α_v(x)`, `U_v(x)`, classes).
    fn focus_vertex(&self) -> VertexId;

    /// `d w_u / d x`: how vertex `u`'s weight moves with the parameter.
    /// All families in this workspace are affine in `x` with slopes in
    /// `{-1, 0, +1}` — which is what makes every pair's α-ratio a Möbius
    /// function of `x` inside a constant-shape interval (see
    /// [`crate::moebius`]). Default: only the focus vertex moves, slope +1.
    fn weight_slope(&self, u: VertexId) -> i64 {
        if u == self.focus_vertex() {
            1
        } else {
            0
        }
    }
}

/// The misreporting family of Section III-B: agent `v` reports `x ∈ [0, w_v]`
/// while all other weights stay fixed.
#[derive(Clone)]
pub struct MisreportFamily {
    base: Graph,
    v: VertexId,
}

impl MisreportFamily {
    /// Family for agent `v` on graph `g`; domain is `[0, w_v]`.
    pub fn new(base: Graph, v: VertexId) -> Self {
        assert!(v < base.n(), "vertex out of range");
        MisreportFamily { base, v }
    }

    /// The underlying graph (with the true weight).
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// The deviating agent.
    pub fn agent(&self) -> VertexId {
        self.v
    }

    /// The agent's true weight `w_v`.
    pub fn true_weight(&self) -> &Rational {
        self.base.weight(self.v)
    }
}

impl GraphFamily for MisreportFamily {
    fn graph_at(&self, x: &Rational) -> Graph {
        self.base.with_weight(self.v, x.clone())
    }

    fn domain(&self) -> (Rational, Rational) {
        (Rational::zero(), self.base.weight(self.v).clone())
    }

    fn focus_vertex(&self) -> VertexId {
        self.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::builders;
    use prs_numeric::{int, ratio};

    #[test]
    fn misreport_family_basics() {
        let g = builders::ring(vec![int(4), int(2), int(3)]).unwrap();
        let fam = MisreportFamily::new(g, 0);
        assert_eq!(fam.domain(), (int(0), int(4)));
        assert_eq!(fam.focus_vertex(), 0);
        let g_half = fam.graph_at(&ratio(1, 2));
        assert_eq!(g_half.weight(0), &ratio(1, 2));
        assert_eq!(g_half.weight(1), &int(2)); // others untouched
        assert_eq!(fam.base().weight(0), &int(4)); // base untouched
    }
}
