//! Proposition 12 / Fig. 3 — classifying breakpoint events exactly.
//!
//! When the reported weight `x` crosses a breakpoint, the pair containing
//! the deviating vertex either **merges** with a neighboring pair or
//! **splits** into two, and the α-ratios of all pairs involved coincide at
//! the junction (`α_j^i(b_i) = α_j^{i+1}(b_i) = α_{j+1}^{i+1}(b_i)` in the
//! paper's notation). This module classifies each event from the two
//! flanking constant-shape intervals and *verifies the junction identity
//! exactly* by evaluating the Möbius α-models at the exact breakpoint.

use crate::family::GraphFamily;
use crate::moebius::{exact_breakpoint, pair_moebius};
use crate::sweep::{ShapeInterval, SweepResult};
use prs_graph::VertexId;
use prs_numeric::Rational;

/// The kind of combinatorial event at a breakpoint, from the perspective of
/// increasing `x`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Two pairs of the left interval merge into one pair on the right
    /// (Prop 12-2b / 3b direction).
    Merge,
    /// One pair of the left interval splits into two on the right
    /// (Prop 12-2a / 3a direction).
    Split,
    /// The focus pair's member set is unchanged but its internal `B/C`
    /// structure reorganizes because its α-ratio reaches 1 (the terminal
    /// `B = C` form) — the transition underlying Case B-3 of Prop 11.
    Terminal,
    /// The shape changed in some other way (e.g. several pairs rearranged
    /// simultaneously through an α = 1 point).
    Other,
}

/// A classified breakpoint event.
#[derive(Clone, Debug)]
pub struct BreakpointEvent {
    /// The exact breakpoint, when the Möbius system pinned it down.
    pub x: Option<Rational>,
    /// Merge / split / other.
    pub kind: EventKind,
    /// Whether the focus vertex kept its (B/C) side across the event
    /// (Prop 12-(1); `Both` is compatible with either side).
    pub focus_class_preserved: bool,
    /// Whether the junction α-identity was verified exactly (requires an
    /// exact breakpoint; `false` only means "not checkable", never
    /// "violated" — violations panic in tests instead).
    pub junction_identity_checked: bool,
}

fn find_pair_of(shape: &[(Vec<VertexId>, Vec<VertexId>)], v: VertexId) -> Option<usize> {
    shape
        .iter()
        .position(|(b, c)| b.contains(&v) || c.contains(&v))
}

fn as_set(pair: &(Vec<VertexId>, Vec<VertexId>)) -> Vec<VertexId> {
    let mut all: Vec<VertexId> = pair.0.iter().chain(&pair.1).copied().collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Classify the event between two adjacent constant-shape intervals.
pub fn classify_event<F: GraphFamily>(
    fam: &F,
    left: &ShapeInterval,
    right: &ShapeInterval,
) -> BreakpointEvent {
    let v = fam.focus_vertex();
    let x = exact_breakpoint(fam, left, right);

    // Prop 12-(1): the focus vertex's class survives the breakpoint (Both
    // bridges the two sides). A C ↔ B flip is legal only through an α = 1
    // point (Prop 11 Case B-3); that point interval may be unsampled, so
    // accept the flip iff the junction α is exactly 1.
    use prs_bd::AgentClass;
    let junction_alpha_is_one = x.as_ref().is_some_and(|bp| {
        find_pair_of(&left.shape, v)
            .and_then(|li| pair_moebius(fam, &left.lo, li))
            .and_then(|m| m.eval(bp))
            .is_some_and(|a| a == Rational::one())
    });
    let focus_class_preserved = left.focus_class == right.focus_class
        || matches!(left.focus_class, AgentClass::Both)
        || matches!(right.focus_class, AgentClass::Both)
        || junction_alpha_is_one;

    // Detect merge/split around the focus pair by member-set algebra.
    let kind = (|| {
        let li = find_pair_of(&left.shape, v)?;
        let ri = find_pair_of(&right.shape, v)?;
        let l_members = as_set(&left.shape[li]);
        let r_members = as_set(&right.shape[ri]);
        if l_members == r_members {
            // Same members: either nothing happened to the focus pair
            // (Other) or its B/C structure reorganized at α = 1 (Terminal).
            let l_bc_equal = left.shape[li].0 == left.shape[li].1;
            let r_bc_equal = right.shape[ri].0 == right.shape[ri].1;
            return Some(if l_bc_equal != r_bc_equal {
                EventKind::Terminal
            } else {
                EventKind::Other
            });
        }
        // Split: the left focus pair equals the union of the right focus
        // pair and one other right pair.
        if l_members.len() > r_members.len() {
            for (oi, other) in right.shape.iter().enumerate() {
                if oi == ri {
                    continue;
                }
                let mut union = as_set(other);
                union.extend(&r_members);
                union.sort_unstable();
                union.dedup();
                if union == l_members {
                    return Some(EventKind::Split);
                }
            }
        } else {
            // Merge: the right focus pair equals the union of the left
            // focus pair and one other left pair.
            for (oi, other) in left.shape.iter().enumerate() {
                if oi == li {
                    continue;
                }
                let mut union = as_set(other);
                union.extend(&l_members);
                union.sort_unstable();
                union.dedup();
                if union == r_members {
                    return Some(EventKind::Merge);
                }
            }
        }
        Some(EventKind::Other)
    })()
    .unwrap_or(EventKind::Other);

    // Junction identity: at the exact breakpoint, the α of the focus pair
    // computed from the left model equals the α computed from the right
    // model (and hence all pairs involved in the merge/split agree there).
    let junction_identity_checked = match (&x, &kind) {
        (Some(_), EventKind::Terminal) => {
            // Terminal events must sit exactly at α = 1.
            if junction_alpha_is_one {
                true
            } else {
                // prs-lint: allow(panic, reason = "refutation contract: a junction α ≠ 1 falsifies Proposition 12 and must abort with the witness, not be reported as an ordinary error")
                panic!("Terminal event whose junction α ≠ 1");
            }
        }
        (Some(bp), EventKind::Merge | EventKind::Split) => {
            let check = (|| {
                let li = find_pair_of(&left.shape, v)?;
                let ri = find_pair_of(&right.shape, v)?;
                let lm = pair_moebius(fam, &left.lo, li)?;
                let rm = pair_moebius(fam, &right.hi, ri)?;
                let lv = lm.eval(bp)?;
                let rv = rm.eval(bp)?;
                Some(lv == rv)
            })();
            match check {
                Some(true) => true,
                Some(false) => {
                    // prs-lint: allow(panic, reason = "refutation contract: a junction identity violation falsifies Proposition 12 and must abort with the witness")
                    panic!("Proposition 12 junction identity violated at breakpoint {bp}")
                }
                None => false,
            }
        }
        _ => false,
    };

    BreakpointEvent {
        x,
        kind,
        focus_class_preserved,
        junction_identity_checked,
    }
}

/// Classify every breakpoint of a sweep.
pub fn classify_events<F: GraphFamily>(fam: &F, res: &SweepResult) -> Vec<BreakpointEvent> {
    res.intervals
        .windows(2)
        .map(|w| classify_event(fam, &w[0], &w[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::MisreportFamily;
    use crate::sweep::{sweep, SweepConfig};
    use prs_graph::{builders, random};
    use prs_numeric::{int, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn merge_event_on_known_ring() {
        // Ring (6,2,4,3,5), agent 0: at x = 4 the focus pair merges with the
        // rest of the graph into the terminal α = 1 pair.
        let g = builders::ring(ints(&[6, 2, 4, 3, 5])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(32).with_refine_bits(24));
        let events = classify_events(&fam, &res);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.x, Some(int(4)));
        // The focus pair already spans all of V on the left; at x = 4 its
        // α-ratio reaches 1 and the B/C structure collapses to B = C.
        assert_eq!(e.kind, EventKind::Terminal, "{e:?}");
        assert!(e.focus_class_preserved);
        assert!(e.junction_identity_checked);
    }

    #[test]
    fn two_path_crossover_events() {
        // Path (1, x), agent 1: B = {0} merges into B = C = {0,1} at x = 1⁻
        // and splits again to B = {1} for x > 1 — the point interval at
        // x* = 1 may or may not be sampled; each detected event must be
        // merge/split/other with class preservation.
        let g = builders::path(ints(&[1, 10])).unwrap();
        let fam = MisreportFamily::new(g, 1);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(22));
        let events = classify_events(&fam, &res);
        assert!(!events.is_empty());
        for e in &events {
            assert!(e.focus_class_preserved, "{e:?}");
        }
    }

    #[test]
    fn random_rings_events_never_violate_prop12() {
        // classify_event panics on a junction-identity violation; running it
        // broadly is the test.
        let mut rng = StdRng::seed_from_u64(321);
        for _ in 0..6 {
            let g = random::random_ring(&mut rng, 6, 1, 10);
            for v in 0..2 {
                let fam = MisreportFamily::new(g.clone(), v);
                let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(20));
                for e in classify_events(&fam, &res) {
                    assert!(e.focus_class_preserved, "{e:?} on {:?}", g.weights());
                }
            }
        }
    }
}
