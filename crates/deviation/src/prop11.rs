//! Proposition 11 / Fig. 2: the three possible shapes of `α_v(x)`.

use crate::family::{GraphFamily, MisreportFamily};
use prs_bd::{decompose, AgentClass};
use prs_numeric::Rational;

/// Which of the three Proposition 11 cases a misreport family falls into.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Prop11Case {
    /// Case B-1: `v` is C-class for all `x ∈ [0, w_v]`; `α_v` non-decreasing.
    B1,
    /// Case B-2: `v` is B-class for all `x ∈ [0, w_v]`; `α_v` non-increasing.
    B2,
    /// Case B-3: a crossover `x* ∈ (0, w_v]` with `α_v(x*) = 1`; C-class and
    /// non-decreasing below, B-class and non-increasing above. The payload
    /// is `x*` localized to an interval `[lo, hi]` of width
    /// `≤ w_v / 2^refine_bits`.
    B3 {
        /// Lower end of the crossover bracket (C-class here).
        lo: Rational,
        /// Upper end of the crossover bracket (B-class here).
        hi: Rational,
    },
}

/// Is `v` effectively B-class at reported weight `x`? (`Both` counts as B:
/// the crossover case has `α_v = 1` exactly at `x*`.)
fn is_b_class(fam: &MisreportFamily, x: &Rational) -> bool {
    let g = fam.graph_at(x);
    // prs-lint: allow(panic, reason = "the family samples x inside its positive-weight domain, where the decomposition always exists")
    let bd = decompose(&g).expect("decomposable at sampled x");
    matches!(
        bd.class_of(fam.focus_vertex()),
        AgentClass::B | AgentClass::Both
    )
}

/// Classify the α-curve of a misreport family per Proposition 11.
///
/// Uses the proposition's own monotone structure: by Case B-1/B-2, the class
/// as a function of `x` is a (possibly trivial) step — C-class below the
/// crossover, B-class above it — so binary search on the class is sound.
/// `refine_bits` controls the localization width of `x*` in Case B-3.
pub fn classify_prop11(fam: &MisreportFamily, refine_bits: u32) -> Prop11Case {
    let (zero, w_v) = fam.domain();
    assert!(w_v.is_positive(), "agent must own positive weight");
    // Probe just above zero (x = 0 itself can be degenerate) and at w_v.
    let eps = &w_v / &Rational::from_integer(1 << 20);

    let b_at_top = is_b_class(fam, &w_v);
    if !b_at_top {
        // C-class at the top ⟹ C-class everywhere (Case B-1): if v were
        // B-class at some x < w_v, Case B-2/B-3 monotonicity would keep it
        // B-class up to w_v.
        return Prop11Case::B1;
    }
    let b_at_bottom = is_b_class(fam, &eps);
    if b_at_bottom {
        // B-class near zero ⟹ B-class everywhere (Case B-2).
        return Prop11Case::B2;
    }
    // Mixed: a crossover exists; binary search for it.
    let mut lo = eps; // C-class here
    let mut hi = w_v; // B-class here
    let _ = zero;
    for _ in 0..refine_bits {
        let mid = lo.midpoint(&hi);
        if is_b_class(fam, &mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Prop11Case::B3 { lo, hi }
}

/// Verify the monotonicity clauses of Proposition 11 on a sampled grid:
/// `α_v` non-decreasing over C-class samples and non-increasing over B-class
/// samples, in parameter order. Returns the first violation, if any.
pub fn check_prop11_monotonicity(
    samples: &[(Rational, Rational, AgentClass)],
) -> Result<(), String> {
    let mut last_c: Option<&Rational> = None;
    let mut last_b: Option<&Rational> = None;
    for (x, alpha, class) in samples {
        match class {
            AgentClass::C => {
                if let Some(prev) = last_c {
                    if alpha < prev {
                        return Err(format!("α_v decreased on C-class segment at x = {x}"));
                    }
                }
                last_c = Some(alpha);
            }
            AgentClass::B => {
                if let Some(prev) = last_b {
                    if alpha > prev {
                        return Err(format!("α_v increased on B-class segment at x = {x}"));
                    }
                }
                last_b = Some(alpha);
            }
            AgentClass::Both => {
                // α_v = 1 exactly; both monotone chains pass through it.
                last_c = None;
                last_b = None;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::MisreportFamily;
    use crate::sweep::{sweep, SweepConfig};
    use prs_graph::{builders, random};
    use prs_numeric::{int, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn light_agent_next_to_heavy_is_case_b1() {
        // Agent 0 (w=1) vs heavy neighbor (w=10) on a 2-path: however much 0
        // reports up to 1, it stays C-class.
        let g = builders::path(ints(&[1, 10])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        assert_eq!(classify_prop11(&fam, 20), Prop11Case::B1);
    }

    #[test]
    fn heavy_agent_is_case_b2_or_b3() {
        // Agent 1 (w=10) vs light neighbor: reporting x ∈ [0, 10] crosses
        // α_v = 1 at x = 1 — Case B-3 with x* = 1.
        let g = builders::path(ints(&[1, 10])).unwrap();
        let fam = MisreportFamily::new(g, 1);
        match classify_prop11(&fam, 30) {
            Prop11Case::B3 { lo, hi } => {
                assert!(
                    lo <= int(1) && int(1) <= hi,
                    "x* = 1 expected, got [{lo}, {hi}]"
                );
            }
            other => panic!("expected B-3, got {other:?}"),
        }
    }

    #[test]
    fn case_b2_on_ring() {
        // Ring (1, 10, 1, 10): agents 1, 3 are heavy. Agent 1 reporting
        // x ∈ [0, 10]: its neighbors total weight 2; α_v(x) = … it remains
        // B-class at x = 2/2⋅… — verify whichever case comes out is
        // consistent with a full sweep.
        let g = builders::ring(ints(&[1, 10, 1, 10])).unwrap();
        let fam = MisreportFamily::new(g, 1);
        let case = classify_prop11(&fam, 20);
        let res = sweep(&fam, &SweepConfig::new().with_grid(40).with_refine_bits(12));
        let series: Vec<_> = res
            .samples
            .iter()
            .filter(|s| s.x.is_positive())
            .map(|s| (s.x.clone(), s.alpha.clone(), s.class))
            .collect();
        check_prop11_monotonicity(&series).unwrap();
        // The case must agree with the observed classes.
        let any_b = series
            .iter()
            .any(|(_, _, c)| matches!(c, prs_bd::AgentClass::B));
        let any_c = series
            .iter()
            .any(|(_, _, c)| matches!(c, prs_bd::AgentClass::C));
        match case {
            Prop11Case::B1 => assert!(!any_b),
            Prop11Case::B2 => assert!(!any_c),
            Prop11Case::B3 { .. } => {
                assert!(any_b && any_c || series.iter().any(|(_, a, _)| a == &int(1)))
            }
        }
    }

    #[test]
    fn random_rings_satisfy_prop11_monotonicity() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..8 {
            let g = random::random_ring(&mut rng, 6, 1, 10);
            for v in 0..3 {
                let fam = MisreportFamily::new(g.clone(), v);
                let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(10));
                let series: Vec<_> = res
                    .samples
                    .iter()
                    .filter(|s| s.x.is_positive())
                    .map(|s| (s.x.clone(), s.alpha.clone(), s.class))
                    .collect();
                check_prop11_monotonicity(&series)
                    .unwrap_or_else(|e| panic!("{e} on {:?} v={v}", g.weights()));
            }
        }
    }
}
