#![warn(missing_docs)]
//! # prs-deviation — single-parameter deviation analysis
//!
//! Section III-B of the paper studies how the bottleneck decomposition, the
//! α-ratio `α_v(x)` and the utility `U_v(x)` of an agent `v` respond to a
//! *single scalar parameter* — the weight `x ∈ [0, w_v]` that `v` reports.
//! The key structural facts (all reproduced executable here):
//!
//! * `𝓑(x)` is piecewise-constant in `x`: the domain splits into finitely
//!   many intervals `⟨a_i, b_i⟩` with a fixed combinatorial shape inside
//!   each ([`sweep`]).
//! * **Theorem 10**: `U_v(x)` is continuous and monotone non-decreasing.
//! * **Proposition 11 / Fig. 2**: `α_v(x)` is non-decreasing while `v` is
//!   C-class, non-increasing while B-class, with at most one crossover `x*`
//!   where `α_v(x*) = 1` (cases B-1 / B-2 / B-3, [`classify_prop11`]).
//! * **Proposition 12 / Fig. 3**: at a breakpoint the pair containing `v`
//!   merges with, or splits from, a neighboring pair, with the α-ratios
//!   agreeing at the junction; `v` never switches class at a breakpoint.
//!
//! The same sweep machinery is reused by `prs-sybil` for the two-endpoint
//! family `P_v(w₁, w_v − w₁)` — any one-parameter family of graphs
//! implementing [`GraphFamily`] can be swept.

pub mod family;
pub mod moebius;
pub mod prop11;
pub mod prop12;
pub mod stability;
pub mod sweep;
pub mod theorem10;

pub use family::{GraphFamily, MisreportFamily};
pub use moebius::{exact_breakpoint, exact_breakpoints, pair_moebius, Moebius};
pub use prop11::{classify_prop11, Prop11Case};
pub use prop12::{classify_events, BreakpointEvent, EventKind};
pub use stability::{interval_cell, stability_cells};
pub use sweep::{sweep, AlphaSample, ShapeInterval, SweepConfig, SweepResult};
pub use theorem10::{check_theorem10_monotonicity, Theorem10Report};
