//! Sweep intervals as reusable [`StabilityCell`] certificates.
//!
//! A constant-shape interval of a one-parameter misreport family is exactly
//! the Proposition 11/12 "breakpoint cell" the incremental decomposition
//! session consumes: while the focus vertex's reported weight stays inside
//! `[lo, hi]`, the combinatorial shape is fixed and every pair's α-ratio
//! follows an exact Möbius curve of the moving weight. This module converts
//! [`ShapeInterval`]s into [`StabilityCell`]s, **endpoint-verified**: a cell
//! is emitted only when the Möbius model fitted at `lo` reproduces the
//! measured α-ratios at *both* ends of the interval (the same consistency
//! proof as [`verify_interval`](crate::moebius::verify_interval)).
//!
//! Sessions treat installed cells as predictions and re-prove every
//! predicted α̂ through the certification max-flow before trusting it (see
//! `DESIGN.md` §3.3), so an over-wide or stale cell can cost a retried flow
//! but can never change a result. Cells only predict for families whose
//! sole moving weight is the focus vertex (the default
//! [`weight_slope`](crate::family::GraphFamily::weight_slope) model);
//! [`interval_cell`] refuses families that move other vertices.

use crate::family::GraphFamily;
use crate::moebius::pair_moebius;
use crate::sweep::{ShapeInterval, SweepResult};
use prs_bd::{CellMoebius, StabilityCell};

/// Build the endpoint-verified [`StabilityCell`] of one constant-shape
/// interval.
///
/// Returns `None` when the family moves any weight besides the focus
/// vertex's, when a pair's Möbius model cannot be fitted at `lo`, or when
/// the fitted model fails to reproduce the measured α-ratios at either
/// endpoint — in all such cases the interval remains usable as a plain
/// [`ShapeInterval`]; the session simply gets no prediction there.
pub fn interval_cell<F: GraphFamily>(fam: &F, interval: &ShapeInterval) -> Option<StabilityCell> {
    let focus = fam.focus_vertex();
    // The cell is parameterized by the focus vertex's own weight, so the
    // family must be the single-weight model: slope 1 at the focus, 0
    // elsewhere. (Sybil split families move two weights and are rejected.)
    let g = fam.graph_at(&interval.lo);
    for u in 0..g.n() {
        let expect = if u == focus { 1 } else { 0 };
        if fam.weight_slope(u) != expect {
            return None;
        }
    }
    let mut alphas = Vec::with_capacity(interval.shape.len());
    for pair_idx in 0..interval.shape.len() {
        let m = pair_moebius(fam, &interval.lo, pair_idx)?;
        if m.eval(&interval.lo)? != interval.alphas_lo[pair_idx]
            || m.eval(&interval.hi)? != interval.alphas_hi[pair_idx]
        {
            return None;
        }
        // Coefficient order differs between the two crates' conventions:
        // deviation's Moebius is (p + q·x)/(r + s·x) with p,r the constant
        // terms, while CellMoebius is (p·x + q)/(r·x + s) with q,s constant.
        alphas.push(CellMoebius {
            p: m.q,
            q: m.p,
            r: m.s,
            s: m.r,
        });
    }
    Some(StabilityCell {
        vertex: focus,
        lo: interval.lo.clone(),
        hi: interval.hi.clone(),
        shape: interval.shape.clone(),
        alphas,
    })
}

/// All endpoint-verified cells of a sweep, in parameter order.
///
/// Intervals failing verification are skipped silently — see
/// [`interval_cell`] for when that happens.
pub fn stability_cells<F: GraphFamily>(fam: &F, res: &SweepResult) -> Vec<StabilityCell> {
    res.intervals
        .iter()
        .filter_map(|iv| interval_cell(fam, iv))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::MisreportFamily;
    use crate::sweep::{sweep, SweepConfig};
    use prs_bd::{decompose, DecompositionSession, Delta, UpdateOutcome};
    use prs_graph::builders;
    use prs_numeric::{int, ratio, Rational};

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn cells_match_measured_alphas_across_their_intervals() {
        let g = builders::ring(ints(&[6, 2, 4, 3, 5])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(20));
        let cells = stability_cells(&fam, &res);
        assert_eq!(cells.len(), res.intervals.len(), "all intervals verify");
        for (cell, iv) in cells.iter().zip(&res.intervals) {
            assert_eq!(cell.vertex, 0);
            assert_eq!(cell.shape, iv.shape);
            assert_eq!(cell.alphas.len(), iv.shape.len());
            // Every *sample* inside the interval obeys the curves exactly.
            for s in res.samples.iter().filter(|s| cell.covers(0, &s.x)) {
                for (round, pair) in s.bd.pairs().iter().enumerate() {
                    let curve = cell.alpha_curve(round).unwrap();
                    assert_eq!(curve.eval(&s.x), Some(pair.alpha.clone()));
                }
            }
        }
    }

    #[test]
    fn exported_cells_predict_for_an_incremental_session() {
        // Sweep agent 0 of a ring, install the exported cells into a session
        // owning the same instance, then move agent 0's weight inside one
        // cell: the session must serve the delta from the recertified tier
        // (the cell predicted every round's α first try) and stay
        // bit-identical to a cold decomposition.
        let g = builders::ring(ints(&[6, 2, 4, 3, 5])).unwrap();
        let fam = MisreportFamily::new(g.clone(), 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(20));
        let cells = stability_cells(&fam, &res);
        assert!(!cells.is_empty());

        let mut session = DecompositionSession::new(g);
        session.current().unwrap();
        for cell in &cells {
            assert!(session.install_cell(cell.clone()));
        }

        // Pick an interior point of the cell containing the true weight 6.
        let cell = cells.iter().find(|c| c.covers(0, &int(6))).unwrap();
        let target = if cell.covers(0, &int(5)) {
            int(5)
        } else {
            cell.lo.midpoint(&cell.hi)
        };
        let out = session
            .apply(Delta::SetWeight {
                v: 0,
                w: target.clone(),
            })
            .unwrap();
        assert!(
            matches!(out, UpdateOutcome::Recertified { .. }),
            "cell-covered move must stay on the recertified tier, got {out:?}"
        );
        let cold = decompose(&fam.graph_at(&target)).unwrap();
        assert_eq!(*session.current().unwrap(), cold);
    }

    #[test]
    fn unverifiable_intervals_are_skipped_not_fabricated() {
        // A hand-built interval whose recorded α disagrees with the Möbius
        // model must be rejected by endpoint verification.
        let g = builders::ring(ints(&[6, 2, 4, 3, 5])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(20));
        let mut iv = res.intervals[0].clone();
        iv.alphas_hi[0] = ratio(999, 1000);
        assert!(interval_cell(&fam, &iv).is_none());
    }
}
