//! Theorem 10: `U_v(x)` is continuous and monotone non-decreasing.

use crate::family::GraphFamily;
use crate::sweep::SweepResult;
use prs_numeric::Rational;

/// Outcome of a Theorem 10 check over a sweep.
#[derive(Clone, Debug)]
pub struct Theorem10Report {
    /// No sample pair violated monotonicity (exact comparison).
    pub monotone: bool,
    /// Largest observed utility jump between *adjacent refined samples*
    /// around breakpoints, relative to the parameter gap — a discretized
    /// continuity certificate (bounded slope ⇒ no jump at the localized
    /// breakpoints).
    pub max_breakpoint_jump: Rational,
    /// First violation, if any, as `(x_left, x_right, U_left, U_right)`.
    pub violation: Option<(Rational, Rational, Rational, Rational)>,
}

/// Check monotone non-decrease of `U_v(x)` across all samples of a sweep,
/// and measure the largest utility gap across localized breakpoints.
pub fn check_theorem10_monotonicity<F: GraphFamily>(
    _fam: &F,
    res: &SweepResult,
) -> Theorem10Report {
    let mut violation = None;
    for w in res.samples.windows(2) {
        if w[1].utility < w[0].utility && violation.is_none() {
            violation = Some((
                w[0].x.clone(),
                w[1].x.clone(),
                w[0].utility.clone(),
                w[1].utility.clone(),
            ));
        }
    }
    // Continuity proxy: at each breakpoint the two flanking refined samples
    // are within 2^-refine_bits of each other in x; their utility gap bounds
    // the potential discontinuity.
    let mut max_jump = Rational::zero();
    for w in res.intervals.windows(2) {
        let left_u = &w[0].alphas_hi; // placeholder to silence clippy-ish unused
        let _ = left_u;
        // Find the flanking samples: last sample of interval i, first of i+1.
        let hi_x = &w[0].hi;
        let lo_x = &w[1].lo;
        let u_left = res
            .samples
            .iter()
            .find(|s| &s.x == hi_x)
            .map(|s| s.utility.clone());
        let u_right = res
            .samples
            .iter()
            .find(|s| &s.x == lo_x)
            .map(|s| s.utility.clone());
        if let (Some(a), Some(b)) = (u_left, u_right) {
            let jump = (&b - &a).abs();
            if jump > max_jump {
                max_jump = jump;
            }
        }
    }
    Theorem10Report {
        monotone: violation.is_none(),
        max_breakpoint_jump: max_jump,
        violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::MisreportFamily;
    use crate::sweep::{sweep, SweepConfig};
    use prs_graph::{builders, random};
    use prs_numeric::{int, ratio, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    fn check(g: prs_graph::Graph, v: usize) -> Theorem10Report {
        let fam = MisreportFamily::new(g, v);
        let res = sweep(&fam, &SweepConfig::new().with_grid(32).with_refine_bits(24));
        check_theorem10_monotonicity(&fam, &res)
    }

    #[test]
    fn utility_monotone_on_paths() {
        for weights in [[1i64, 2, 4], [5, 1, 5], [3, 3, 3]] {
            for v in 0..3 {
                let g = builders::path(ints(&weights)).unwrap();
                let rep = check(g, v);
                assert!(
                    rep.monotone,
                    "violation {:?} on {weights:?} v={v}",
                    rep.violation
                );
            }
        }
    }

    #[test]
    fn utility_monotone_on_random_rings() {
        let mut rng = StdRng::seed_from_u64(19);
        for _ in 0..6 {
            let g = random::random_ring(&mut rng, 7, 1, 12);
            for v in [0usize, 3] {
                let rep = check(g.clone(), v);
                assert!(
                    rep.monotone,
                    "violation {:?} on {:?} v={v}",
                    rep.violation,
                    g.weights()
                );
            }
        }
    }

    #[test]
    fn utility_continuous_across_breakpoints() {
        // Breakpoint jumps must shrink with the localization width — here we
        // just require they are already tiny at 24 bits.
        let g = builders::ring(ints(&[6, 2, 4, 3, 5])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(32).with_refine_bits(24));
        let rep = check_theorem10_monotonicity(&fam, &res);
        assert!(rep.monotone);
        assert!(
            rep.max_breakpoint_jump < ratio(1, 1 << 10),
            "suspicious jump {}",
            rep.max_breakpoint_jump
        );
    }

    #[test]
    fn reporting_full_weight_is_dominant() {
        // Monotonicity ⇒ truthful reporting maximizes U_v: U_v(x) ≤ U_v(w_v).
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..5 {
            let g = random::random_ring(&mut rng, 5, 1, 10);
            let v = 2;
            let bd_true = prs_bd::decompose(&g).unwrap();
            let honest = bd_true.utility(&g, v);
            for i in 1..8 {
                let x = &(g.weight(v) * &ratio(i, 8));
                let g_x = g.with_weight(v, x.clone());
                let bd = prs_bd::decompose(&g_x).unwrap();
                assert!(
                    bd.utility(&g_x, v) <= honest,
                    "misreport beat honesty on {:?}",
                    g.weights()
                );
            }
        }
    }

    #[test]
    fn zero_report_gives_zero_utility() {
        let g = builders::ring(ints(&[4, 2, 3, 1])).unwrap();
        let g0 = g.with_weight(0, Rational::zero());
        let bd = prs_bd::decompose(&g0).unwrap();
        assert_eq!(bd.utility(&g0, 0), int(0));
    }
}
