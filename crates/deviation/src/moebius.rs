//! Exact interval algebra: α-ratios as Möbius functions of the parameter.
//!
//! Inside a constant-shape interval of a one-parameter family, pair
//! memberships are fixed, and every vertex weight is affine in the
//! parameter (`w_u(x) = a_u + c_u·x`, slopes `c_u ∈ {-1, 0, +1}` — see
//! [`GraphFamily::weight_slope`]). Hence each pair's α-ratio is the Möbius
//! function
//!
//! ```text
//! α_i(x) = w(C_i)(x) / w(B_i)(x) = (p + q·x) / (r + s·x)
//! ```
//!
//! with integer-slope numerator/denominator. This module materializes those
//! coefficients **exactly** from a single sample, which buys two things the
//! bisection-only sweep cannot provide:
//!
//! 1. **Exact breakpoints** ([`exact_breakpoint`]): a merge/split event
//!    between the pair containing the focus vertex and a neighboring pair
//!    is an α-equality; since at most one of the two pairs contains the
//!    moving vertices, the equality is *linear* in `x` and solvable in
//!    closed form. The bisection bracket certifies which root is the event.
//! 2. **Exact Proposition 12 junction identities**: the α-ratios of the
//!    merging/splitting pairs agree exactly at the breakpoint
//!    (`α_j^i(b_i) = α_j^{i+1}(b_i) = …` in the paper's notation).

use crate::family::GraphFamily;
use crate::sweep::{ShapeInterval, SweepResult};
use prs_bd::decompose;
use prs_numeric::Rational;

/// The exact Möbius form `(p + q·x) / (r + s·x)` of one pair's α-ratio on a
/// constant-shape interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Moebius {
    /// Numerator constant term.
    pub p: Rational,
    /// Numerator slope.
    pub q: Rational,
    /// Denominator constant term.
    pub r: Rational,
    /// Denominator slope.
    pub s: Rational,
}

impl Moebius {
    /// Evaluate at `x`; `None` if the denominator vanishes there.
    pub fn eval(&self, x: &Rational) -> Option<Rational> {
        let den = &self.r + &(&self.s * x);
        if den.is_zero() {
            return None;
        }
        let num = &self.p + &(&self.q * x);
        Some(&num / &den)
    }

    /// Solve `self(x) = other(x)` when the equation is linear — which it is
    /// whenever at most one operand has nonzero slopes (at most one pair
    /// contains the moving vertices). Returns `None` for the degenerate
    /// identical / parallel cases or a genuinely quadratic instance.
    pub fn equality_root(&self, other: &Moebius) -> Option<Rational> {
        // (p1 + q1 x)(r2 + s2 x) = (p2 + q2 x)(r1 + s1 x)
        // A x² + B x + C = 0 with
        let a = &(&self.q * &other.s) - &(&other.q * &self.s);
        let b = &(&(&self.p * &other.s) + &(&self.q * &other.r))
            - &(&(&other.p * &self.s) + &(&other.q * &self.r));
        let c = &(&self.p * &other.r) - &(&other.p * &self.r);
        if !a.is_zero() {
            return None; // quadratic: not produced by our families
        }
        if b.is_zero() {
            return None; // identical or parallel
        }
        Some(&(-&c) / &b)
    }
}

/// Compute the exact Möbius coefficients of pair `pair_idx` of the
/// decomposition shape valid around sample `x0`.
///
/// Uses the family's weight model: `p = w(C)(x0) − slope(C)·x0`,
/// `q = slope(C)`, and likewise for `B` — all exact rationals.
pub fn pair_moebius<F: GraphFamily>(fam: &F, x0: &Rational, pair_idx: usize) -> Option<Moebius> {
    let g = fam.graph_at(x0);
    let bd = decompose(&g).ok()?;
    let pair = bd.pairs().get(pair_idx)?;

    let mut p = Rational::zero();
    let mut q = 0i64;
    for u in pair.c.iter() {
        p += g.weight(u);
        q += fam.weight_slope(u);
    }
    let mut r = Rational::zero();
    let mut s = 0i64;
    for u in pair.b.iter() {
        r += g.weight(u);
        s += fam.weight_slope(u);
    }
    let q = Rational::from_integer(q);
    let s = Rational::from_integer(s);
    // Shift the affine parts back to x = 0.
    let p = &p - &(&q * x0);
    let r = &r - &(&s * x0);
    Some(Moebius { p, q, r, s })
}

/// Verify that the Möbius model fitted at one end of a shape interval
/// reproduces the exact α-ratios at the other end — a consistency proof of
/// the piecewise-Möbius structure on this instance.
pub fn verify_interval<F: GraphFamily>(fam: &F, interval: &ShapeInterval) -> Result<(), String> {
    for pair_idx in 0..interval.shape.len() {
        let model = pair_moebius(fam, &interval.lo, pair_idx)
            .ok_or_else(|| format!("pair {pair_idx} not decomposable at interval start"))?;
        let at_hi = model
            .eval(&interval.hi)
            .ok_or_else(|| format!("pair {pair_idx}: denominator vanished"))?;
        if at_hi != interval.alphas_hi[pair_idx] {
            return Err(format!(
                "pair {pair_idx}: Möbius model predicts α = {at_hi} at x = {}, measured {}",
                interval.hi, interval.alphas_hi[pair_idx]
            ));
        }
    }
    Ok(())
}

/// Compute the **exact** breakpoint between two adjacent shape intervals,
/// by solving the α-equality of the focus pair against every pair of the
/// other interval and returning the unique root inside the bisection
/// bracket `[left.hi, right.lo]` (closed with a hair of slack on both
/// sides, since the bracket endpoints are themselves samples).
pub fn exact_breakpoint<F: GraphFamily>(
    fam: &F,
    left: &ShapeInterval,
    right: &ShapeInterval,
) -> Option<Rational> {
    let bracket_lo = &left.hi;
    let bracket_hi = &right.lo;

    let mut candidates: Vec<Rational> = Vec::new();
    for li in 0..left.shape.len() {
        let lm = pair_moebius(fam, &left.lo, li)?;
        for ri in 0..right.shape.len() {
            let rm = pair_moebius(fam, &right.hi, ri)?;
            if let Some(root) = lm.equality_root(&rm) {
                if &root >= bracket_lo && &root <= bracket_hi {
                    candidates.push(root);
                }
            }
        }
        // Also check α_i = 1 events (class crossovers at the terminal pair).
        let one = Moebius {
            p: Rational::one(),
            q: Rational::zero(),
            r: Rational::one(),
            s: Rational::zero(),
        };
        if let Some(root) = lm.equality_root(&one) {
            if &root >= bracket_lo && &root <= bracket_hi {
                candidates.push(root);
            }
        }
    }
    candidates.sort();
    candidates.dedup();
    match (candidates.pop(), candidates.pop()) {
        (Some(root), None) => Some(root),
        _ => None, // ambiguous bracket: refine the sweep further
    }
}

/// Exact breakpoints for a whole sweep (one entry per interval boundary;
/// `None` where the α-equality system was ambiguous at this bracket width).
pub fn exact_breakpoints<F: GraphFamily>(fam: &F, res: &SweepResult) -> Vec<Option<Rational>> {
    res.intervals
        .windows(2)
        .map(|w| exact_breakpoint(fam, &w[0], &w[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::MisreportFamily;
    use crate::sweep::{sweep, SweepConfig};
    use prs_graph::builders;
    use prs_numeric::{int, ratio, Rational};

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn moebius_eval_and_linear_root() {
        // f = (2 + x) / 4, g = 3/2 constant: equal at x = 4.
        let f = Moebius {
            p: int(2),
            q: int(1),
            r: int(4),
            s: int(0),
        };
        let g = Moebius {
            p: ratio(3, 2),
            q: int(0),
            r: int(1),
            s: int(0),
        };
        assert_eq!(f.eval(&int(2)).unwrap(), int(1));
        assert_eq!(f.equality_root(&g).unwrap(), int(4));
    }

    #[test]
    fn equality_root_rejects_parallel_and_quadratic() {
        let f = Moebius {
            p: int(1),
            q: int(1),
            r: int(2),
            s: int(0),
        };
        assert_eq!(f.equality_root(&f), None); // identical
        let g = Moebius {
            p: int(0),
            q: int(1),
            r: int(1),
            s: int(1),
        };
        let h = Moebius {
            p: int(1),
            q: int(1),
            r: int(1),
            s: int(0),
        };
        // g vs h: a = q_g·s_h − q_h·s_g = 0·? … compute: (0+x)(1+0x) vs
        // (1+x)(1+x): a = 1·0 − 1·1 = −1 ≠ 0 → quadratic → None.
        assert_eq!(g.equality_root(&h), None);
    }

    #[test]
    fn pair_moebius_matches_sampled_alphas() {
        let g = builders::ring(ints(&[6, 2, 4, 3, 5])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        // At x = 1 the shape is B = {2,4}, C = {0,1,3} (cf. experiment E7):
        // α₀(x) = (x + 2 + 3)/(4 + 5) = (5 + x)/9.
        let m = pair_moebius(&fam, &int(1), 0).unwrap();
        assert_eq!(m.eval(&int(1)).unwrap(), ratio(6, 9));
        assert_eq!(m.eval(&int(3)).unwrap(), ratio(8, 9));
        assert_eq!(
            m,
            Moebius {
                p: int(5),
                q: int(1),
                r: int(9),
                s: int(0)
            }
        );
    }

    #[test]
    fn interval_models_verify_across_sweeps() {
        let g = builders::ring(ints(&[6, 2, 4, 3, 5])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(20));
        for iv in &res.intervals {
            verify_interval(&fam, iv).unwrap();
        }
    }

    #[test]
    fn exact_breakpoint_on_known_instance() {
        // Ring (6,2,4,3,5), agent 0: E7 showed the single breakpoint sits at
        // x = 4 — where α₀(x) = (5+x)/9 crosses 1.
        let g = builders::ring(ints(&[6, 2, 4, 3, 5])).unwrap();
        let fam = MisreportFamily::new(g, 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(22));
        assert_eq!(res.intervals.len(), 2);
        let bp = exact_breakpoint(&fam, &res.intervals[0], &res.intervals[1]);
        assert_eq!(bp, Some(int(4)));
    }

    #[test]
    fn exact_breakpoint_two_path() {
        // Path (1, x), agent 1: breakpoint exactly at x = 1 (α = x meets
        // α = 1/x ⇔ both meet 1).
        let g = builders::path(ints(&[1, 10])).unwrap();
        let fam = MisreportFamily::new(g, 1);
        let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(22));
        let bps = exact_breakpoints(&fam, &res);
        assert!(bps.iter().flatten().any(|b| b == &int(1)), "{bps:?}");
    }
}
