//! Property tests for the graph substrate against std-collection oracles.

use proptest::prelude::*;
use prs_graph::{builders, Graph, VertexSet};
use prs_numeric::{int, Rational};
use std::collections::HashSet;

fn arb_sets() -> impl Strategy<Value = (usize, Vec<usize>, Vec<usize>)> {
    (8usize..120).prop_flat_map(|cap| {
        (
            Just(cap),
            proptest::collection::vec(0..cap, 0..cap),
            proptest::collection::vec(0..cap, 0..cap),
        )
    })
}

proptest! {
    // ---- VertexSet vs HashSet oracle -------------------------------------

    #[test]
    fn vertex_set_algebra_matches_hashset((cap, a_items, b_items) in arb_sets()) {
        let a = VertexSet::from_iter_cap(cap, a_items.iter().copied());
        let b = VertexSet::from_iter_cap(cap, b_items.iter().copied());
        let ha: HashSet<usize> = a_items.iter().copied().collect();
        let hb: HashSet<usize> = b_items.iter().copied().collect();

        let mut union: Vec<usize> = ha.union(&hb).copied().collect();
        union.sort_unstable();
        prop_assert_eq!(a.union(&b).to_vec(), union);

        let mut inter: Vec<usize> = ha.intersection(&hb).copied().collect();
        inter.sort_unstable();
        prop_assert_eq!(a.intersection(&b).to_vec(), inter);

        let mut diff: Vec<usize> = ha.difference(&hb).copied().collect();
        diff.sort_unstable();
        prop_assert_eq!(a.difference(&b).to_vec(), diff);

        prop_assert_eq!(a.len(), ha.len());
        prop_assert_eq!(a.is_disjoint(&b), ha.is_disjoint(&hb));
        prop_assert_eq!(a.is_subset(&b), ha.is_subset(&hb));
    }

    #[test]
    fn vertex_set_iter_sorted_unique((cap, items, _) in arb_sets()) {
        let s = VertexSet::from_iter_cap(cap, items.iter().copied());
        let v = s.to_vec();
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(v.iter().all(|&x| s.contains(x)));
    }

    // ---- Graph invariants ---------------------------------------------------

    #[test]
    fn ring_structure(n in 3usize..40, w in 1i64..50) {
        let g = builders::uniform_ring(n, int(w)).unwrap();
        prop_assert!(g.is_ring());
        prop_assert_eq!(g.m(), n);
        prop_assert_eq!(g.total_weight(), int(w * n as i64));
        for v in 0..n {
            prop_assert_eq!(g.degree(v), 2);
            // Neighbors are exactly the cyclic predecessor/successor.
            let nb = g.neighbors(v);
            prop_assert!(nb.contains(&((v + 1) % n)));
            prop_assert!(nb.contains(&((v + n - 1) % n)));
        }
    }

    #[test]
    fn adjacency_is_symmetric(n in 2usize..15, edges in proptest::collection::vec((0usize..15, 0usize..15), 0..40)) {
        let filtered: Vec<(usize, usize)> = {
            let mut seen = HashSet::new();
            edges
                .into_iter()
                .filter(|&(u, v)| u < n && v < n && u != v && seen.insert((u.min(v), u.max(v))))
                .collect()
        };
        let weights: Vec<Rational> = (0..n).map(|i| int(i as i64 + 1)).collect();
        let g = Graph::new(weights, &filtered).unwrap();
        for u in 0..n {
            for &v in g.neighbors(u) {
                prop_assert!(g.neighbors(v).contains(&u), "asymmetric adjacency {u}-{v}");
                prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
            }
        }
        prop_assert_eq!(g.m(), filtered.len());
    }

    #[test]
    fn neighborhood_matches_manual_union(n in 3usize..12, seed_bits in 0u32..(1 << 12)) {
        let g = builders::uniform_ring(n, int(1)).unwrap();
        let s = VertexSet::from_iter_cap(n, (0..n).filter(|i| seed_bits >> i & 1 == 1));
        let alive = VertexSet::full(n);
        let gamma = g.neighborhood_in(&s, &alive);
        let mut manual: HashSet<usize> = HashSet::new();
        for v in s.iter() {
            for &u in g.neighbors(v) {
                manual.insert(u);
            }
        }
        let mut manual: Vec<usize> = manual.into_iter().collect();
        manual.sort_unstable();
        prop_assert_eq!(gamma.to_vec(), manual);
    }

    #[test]
    fn alpha_ratio_definition(n in 3usize..10, seed_bits in 1u32..(1 << 9), w in 1i64..9) {
        let g = builders::uniform_ring(n, int(w)).unwrap();
        let s = VertexSet::from_iter_cap(n, (0..n).filter(|i| seed_bits >> i & 1 == 1));
        if s.is_empty() { return Ok(()); }
        let alive = VertexSet::full(n);
        let alpha = g.alpha_ratio_in(&s, &alive).unwrap();
        let gamma = g.neighborhood_in(&s, &alive);
        prop_assert_eq!(alpha, &g.set_weight_of(&gamma) / &g.set_weight_of(&s));
    }

    #[test]
    fn sybil_split_conserves_weight(n in 3usize..12, v in 0usize..12, num in 0i64..100) {
        let v = v % n;
        let weights: Vec<Rational> = (0..n).map(|i| int((i as i64 % 7) + 2)).collect();
        let g = builders::ring(weights).unwrap();
        let w_v = g.weight(v).clone();
        let w1 = &w_v * &Rational::from_ratio(num.min(100), 100);
        let w2 = &w_v - &w1;
        let (p, p1, p2) = builders::sybil_split_path(&g, v, w1.clone(), w2.clone()).unwrap();
        prop_assert!(p.is_path());
        prop_assert_eq!(p.n(), n + 1);
        prop_assert_eq!(p.total_weight(), g.total_weight());
        prop_assert_eq!(p.weight(p1).clone(), w1);
        prop_assert_eq!(p.weight(p2).clone(), w2);
        // The interior preserves the ring's multiset of weights minus v.
        let mut ring_rest: Vec<String> = (0..n).filter(|&u| u != v).map(|u| g.weight(u).to_string()).collect();
        let mut path_interior: Vec<String> = (1..n).map(|u| p.weight(u).to_string()).collect();
        ring_rest.sort();
        path_interior.sort();
        prop_assert_eq!(ring_rest, path_interior);
    }
}
