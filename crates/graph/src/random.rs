//! Randomized instance generators for tests, property tests and benchmarks.
//!
//! All generators take an explicit `Rng` so experiments are reproducible
//! from a seed; nothing here touches a global RNG.

// prs-lint: allow-file(panic, reason = "test/bench generator surface: misuse (n too small, inverted bounds) is a programming error in the experiment harness, and panicking with the precondition is the intended contract")

use crate::builders;
use crate::graph::Graph;
use prs_numeric::Rational;
use rand::Rng;

/// A random integer weight in `[lo, hi]` as an exact rational.
pub fn random_int_weight<R: Rng>(rng: &mut R, lo: i64, hi: i64) -> Rational {
    Rational::from_integer(rng.gen_range(lo..=hi))
}

/// A random rational weight `p/q` with `p ∈ [1, max_num]`, `q ∈ [1, max_den]`.
pub fn random_rational_weight<R: Rng>(rng: &mut R, max_num: i64, max_den: i64) -> Rational {
    Rational::from_ratio(rng.gen_range(1..=max_num), rng.gen_range(1..=max_den))
}

/// A vector of `n` random positive integer weights in `[lo, hi]`.
pub fn random_weights<R: Rng>(rng: &mut R, n: usize, lo: i64, hi: i64) -> Vec<Rational> {
    assert!(lo >= 1, "weights must be positive");
    (0..n).map(|_| random_int_weight(rng, lo, hi)).collect()
}

/// A random ring with integer weights in `[lo, hi]`.
pub fn random_ring<R: Rng>(rng: &mut R, n: usize, lo: i64, hi: i64) -> Graph {
    builders::ring(random_weights(rng, n, lo, hi)).expect("n >= 3")
}

/// A random path with integer weights in `[lo, hi]`.
pub fn random_path<R: Rng>(rng: &mut R, n: usize, lo: i64, hi: i64) -> Graph {
    builders::path(random_weights(rng, n, lo, hi)).expect("n >= 1")
}

/// A connected Erdős–Rényi-style graph: starts from a random spanning tree
/// (guaranteeing connectivity and no isolated vertices), then adds each
/// remaining pair with probability `p`.
pub fn random_connected<R: Rng>(rng: &mut R, n: usize, p: f64, lo: i64, hi: i64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Random spanning tree: attach each vertex to a random earlier one.
    for v in 1..n {
        let u = rng.gen_range(0..v);
        edges.push((u, v));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !edges.contains(&(u, v)) && rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::new(random_weights(rng, n, lo, hi), &edges).expect("valid random graph")
}

/// A random tree on `n ≥ 2` vertices.
pub fn random_tree<R: Rng>(rng: &mut R, n: usize, lo: i64, hi: i64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let edges: Vec<(usize, usize)> = (1..n).map(|v| (rng.gen_range(0..v), v)).collect();
    Graph::new(random_weights(rng, n, lo, hi), &edges).expect("valid tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_ring_is_ring() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [3, 5, 10, 33] {
            let g = random_ring(&mut rng, n, 1, 100);
            assert!(g.is_ring());
            assert!(g.weights().iter().all(|w| w.is_positive()));
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2, 5, 20] {
            for p in [0.0, 0.3, 1.0] {
                let g = random_connected(&mut rng, n, p, 1, 10);
                assert!(g.is_connected(), "n={n} p={p}");
                assert!(g.m() >= n - 1);
            }
        }
    }

    #[test]
    fn random_tree_has_n_minus_1_edges() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_tree(&mut rng, 17, 1, 5);
        assert_eq!(g.m(), 16);
        assert!(g.is_connected());
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let g1 = random_ring(&mut StdRng::seed_from_u64(42), 8, 1, 50);
        let g2 = random_ring(&mut StdRng::seed_from_u64(42), 8, 1, 50);
        assert_eq!(g1.weights(), g2.weights());
    }

    #[test]
    fn rational_weights_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let w = random_rational_weight(&mut rng, 10, 10);
            assert!(w.is_positive());
            assert!(w <= Rational::from_integer(10));
        }
    }
}
