//! Dense bitset over vertex ids.
//!
//! The bottleneck machinery manipulates many subsets of `V` (bottlenecks,
//! neighbor sets, alive masks during the decomposition recursion). A dense
//! `u64`-word bitset keeps those operations cache-friendly and branch-light,
//! and gives O(n/64) unions/intersections instead of hash-set overhead.

use crate::VertexId;
use std::fmt;

/// A subset of the vertices `0..capacity` of a graph.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct VertexSet {
    words: Vec<u64>,
    capacity: usize,
}

impl VertexSet {
    /// Empty set over `capacity` vertices.
    pub fn empty(capacity: usize) -> Self {
        VertexSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Full set `{0, …, capacity-1}`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::empty(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Set containing exactly the given vertices.
    pub fn from_iter_cap(capacity: usize, iter: impl IntoIterator<Item = VertexId>) -> Self {
        let mut s = Self::empty(capacity);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Number of vertex slots this set ranges over.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Add a vertex. Panics if out of range.
    #[inline]
    pub fn insert(&mut self, v: VertexId) {
        assert!(v < self.capacity, "vertex {v} out of range");
        self.words[v / 64] |= 1 << (v % 64);
    }

    /// Remove a vertex.
    #[inline]
    pub fn remove(&mut self, v: VertexId) {
        if v < self.capacity {
            self.words[v / 64] &= !(1 << (v % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        v < self.capacity && (self.words[v / 64] >> (v % 64)) & 1 == 1
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &VertexSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &VertexSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn subtract(&mut self, other: &VertexSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Fresh union.
    pub fn union(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Fresh intersection.
    pub fn intersection(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Fresh difference.
    pub fn difference(&self, other: &VertexSet) -> VertexSet {
        let mut s = self.clone();
        s.subtract(other);
        s
    }

    /// True iff the sets share no member.
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True iff every member of `self` is in `other`.
    pub fn is_subset(&self, other: &VertexSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Collect members into a `Vec`.
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<VertexId> for VertexSet {
    /// Builds a set whose capacity is `max + 1` of the items (or 0 if empty).
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        let items: Vec<VertexId> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        VertexSet::from_iter_cap(cap, items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::empty(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
        // Removing a non-member or out-of-range id is a no-op.
        s.remove(64);
        s.remove(1000);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        VertexSet::empty(4).insert(4);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_iter_cap(100, [1, 2, 3, 70]);
        let b = VertexSet::from_iter_cap(100, [2, 3, 4, 99]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 70, 99]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 70]);
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b.difference(&a)));
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn full_and_iter_order() {
        let s = VertexSet::full(67);
        assert_eq!(s.len(), 67);
        let v = s.to_vec();
        assert_eq!(v.first(), Some(&0));
        assert_eq!(v.last(), Some(&66));
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn from_iterator_infers_capacity() {
        let s: VertexSet = [3usize, 9, 1].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.to_vec(), vec![1, 3, 9]);
        let e: VertexSet = std::iter::empty().collect();
        assert_eq!(e.capacity(), 0);
        assert!(e.is_empty());
    }
}
