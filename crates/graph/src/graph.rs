//! The weighted undirected graph type and its set-expansion primitives.

use crate::error::GraphError;
use crate::vertex_set::VertexSet;
use crate::VertexId;
use prs_numeric::Rational;
use std::fmt;

/// An undirected simple graph with non-negative exact rational vertex
/// weights — the arena of the resource-sharing game.
///
/// Construction validates simplicity (no self-loops, no duplicate edges) and
/// non-negative weights; all higher-level algorithms may rely on those
/// invariants.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    weights: Vec<Rational>,
    adj: Vec<Vec<VertexId>>,
    edges: Vec<(VertexId, VertexId)>,
}

impl Graph {
    /// Build a graph from `n = weights.len()` vertices and an undirected edge
    /// list. Edges may be given in either orientation but not twice.
    pub fn new(
        weights: Vec<Rational>,
        edge_list: &[(VertexId, VertexId)],
    ) -> Result<Self, GraphError> {
        let n = weights.len();
        for (v, w) in weights.iter().enumerate() {
            if w.is_negative() {
                return Err(GraphError::NegativeWeight { vertex: v });
            }
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut edges = Vec::with_capacity(edge_list.len());
        for &(u, v) in edge_list {
            if u >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            if adj[a].contains(&b) {
                return Err(GraphError::DuplicateEdge { u: a, v: b });
            }
            adj[a].push(b);
            adj[b].push(a);
            edges.push((a, b));
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        edges.sort_unstable();
        Ok(Graph {
            weights,
            adj,
            edges,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Weight of vertex `v`.
    #[inline]
    pub fn weight(&self, v: VertexId) -> &Rational {
        &self.weights[v]
    }

    /// All vertex weights in id order.
    #[inline]
    pub fn weights(&self) -> &[Rational] {
        &self.weights
    }

    /// Vertex weights converted to `f64` (for the fast dynamics engines).
    pub fn weights_f64(&self) -> Vec<f64> {
        self.weights.iter().map(|w| w.to_f64()).collect()
    }

    /// Replace the weight of one vertex (used by misreport sweeps).
    /// Panics on a negative weight.
    pub fn set_weight(&mut self, v: VertexId, w: Rational) {
        assert!(!w.is_negative(), "weights must be non-negative");
        self.weights[v] = w;
    }

    /// A copy of the graph with vertex `v`'s weight replaced.
    pub fn with_weight(&self, v: VertexId, w: Rational) -> Graph {
        let mut g = self.clone();
        g.set_weight(v, w);
        g
    }

    /// Fallible weight replacement (the panic-free twin of [`Graph::set_weight`],
    /// used by the delta-mutation path).
    pub fn try_set_weight(&mut self, v: VertexId, w: Rational) -> Result<(), GraphError> {
        if v >= self.n() {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n(),
            });
        }
        if w.is_negative() {
            return Err(GraphError::NegativeWeight { vertex: v });
        }
        self.weights[v] = w;
        Ok(())
    }

    /// Insert the undirected edge `(u, v)`, keeping the sorted adjacency and
    /// edge-list invariants. Rejects out-of-range endpoints, self-loops, and
    /// edges already present.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let n = self.n();
        if u >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let slot_ab = match self.adj[a].binary_search(&b) {
            Ok(_) => return Err(GraphError::DuplicateEdge { u: a, v: b }),
            Err(i) => i,
        };
        self.adj[a].insert(slot_ab, b);
        // Adjacency is symmetric by construction, so the mirror and the edge
        // list cannot already hold the pair once the a→b slot was vacant.
        if let Err(i) = self.adj[b].binary_search(&a) {
            self.adj[b].insert(i, a);
        }
        if let Err(i) = self.edges.binary_search(&(a, b)) {
            self.edges.insert(i, (a, b));
        }
        Ok(())
    }

    /// Remove the undirected edge `(u, v)`, keeping the sorted adjacency and
    /// edge-list invariants. Rejects out-of-range endpoints and absent edges.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let n = self.n();
        if u >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let slot_ab = match self.adj[a].binary_search(&b) {
            Ok(i) => i,
            Err(_) => return Err(GraphError::MissingEdge { u: a, v: b }),
        };
        self.adj[a].remove(slot_ab);
        // Symmetric invariant: the mirror entry and edge-list row exist
        // whenever the a→b entry did.
        if let Ok(i) = self.adj[b].binary_search(&a) {
            self.adj[b].remove(i);
        }
        if let Ok(i) = self.edges.binary_search(&(a, b)) {
            self.edges.remove(i);
        }
        Ok(())
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v].len()
    }

    /// Undirected edges, each as `(min, max)`, sorted.
    #[inline]
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// True iff `(u, v)` is an edge.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj[u].binary_search(&v).is_ok()
    }

    /// Total weight `w(V)`.
    pub fn total_weight(&self) -> Rational {
        self.weights.iter().sum()
    }

    /// Weight of a vertex set, `w(S)`.
    pub fn set_weight_of(&self, s: &VertexSet) -> Rational {
        s.iter().map(|v| &self.weights[v]).sum()
    }

    /// Neighborhood `Γ(S) = ∪_{v∈S} Γ(v)` restricted to `alive`
    /// (the vertex set of the current induced subgraph).
    ///
    /// Note `Γ(S)` may intersect `S` when `S` is not independent — the paper's
    /// "inclusive expansion" convention.
    pub fn neighborhood_in(&self, s: &VertexSet, alive: &VertexSet) -> VertexSet {
        let mut out = VertexSet::empty(self.n());
        for v in s.iter() {
            for &u in &self.adj[v] {
                if alive.contains(u) {
                    out.insert(u);
                }
            }
        }
        out
    }

    /// Neighborhood `Γ(S)` in the whole graph.
    pub fn neighborhood(&self, s: &VertexSet) -> VertexSet {
        self.neighborhood_in(s, &VertexSet::full(self.n()))
    }

    /// The α-ratio `α(S) = w(Γ(S) ∩ alive) / w(S)` of a set within the
    /// induced subgraph on `alive`. Returns `None` when `w(S) = 0`
    /// (the ratio is undefined there; such sets are never bottlenecks).
    pub fn alpha_ratio_in(&self, s: &VertexSet, alive: &VertexSet) -> Option<Rational> {
        let ws = self.set_weight_of(s);
        if ws.is_zero() {
            return None;
        }
        let gamma = self.neighborhood_in(s, alive);
        Some(&self.set_weight_of(&gamma) / &ws)
    }

    /// `α(S)` in the whole graph.
    pub fn alpha_ratio(&self, s: &VertexSet) -> Option<Rational> {
        self.alpha_ratio_in(s, &VertexSet::full(self.n()))
    }

    /// True iff `S` is an independent set (restricted to `alive`).
    pub fn is_independent_in(&self, s: &VertexSet, alive: &VertexSet) -> bool {
        for v in s.iter() {
            if !alive.contains(v) {
                continue;
            }
            for &u in &self.adj[v] {
                if u > v && s.contains(u) && alive.contains(u) {
                    return false;
                }
            }
        }
        true
    }

    /// True iff the graph is connected (vacuously true for `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        if self.n() <= 1 {
            return true;
        }
        let mut seen = VertexSet::empty(self.n());
        let mut stack = vec![0];
        seen.insert(0);
        while let Some(v) = stack.pop() {
            for &u in &self.adj[v] {
                if !seen.contains(u) {
                    seen.insert(u);
                    stack.push(u);
                }
            }
        }
        seen.len() == self.n()
    }

    /// True iff every vertex has degree 2 and the graph is a single cycle.
    pub fn is_ring(&self) -> bool {
        self.n() >= 3 && (0..self.n()).all(|v| self.degree(v) == 2) && self.is_connected()
    }

    /// True iff the graph is a simple path (two endpoints of degree 1, rest
    /// degree 2, connected).
    pub fn is_path(&self) -> bool {
        if self.n() == 1 {
            return true;
        }
        if self.n() < 2 || !self.is_connected() {
            return false;
        }
        let d1 = (0..self.n()).filter(|&v| self.degree(v) == 1).count();
        let d2 = (0..self.n()).filter(|&v| self.degree(v) == 2).count();
        d1 == 2 && d1 + d2 == self.n()
    }

    /// Vertices of the current graph that are isolated within `alive`.
    pub fn isolated_in(&self, alive: &VertexSet) -> Vec<VertexId> {
        alive
            .iter()
            .filter(|&v| self.adj[v].iter().all(|&u| !alive.contains(u)))
            .collect()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Graph(n={}, m={})", self.n(), self.m())?;
        for v in 0..self.n() {
            writeln!(f, "  {v}: w={} adj={:?}", self.weights[v], self.adj[v])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_numeric::int;

    fn w(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn construction_validates() {
        assert!(Graph::new(w(&[1, 1]), &[(0, 1)]).is_ok());
        assert!(matches!(
            Graph::new(w(&[1, 1]), &[(0, 2)]),
            Err(GraphError::VertexOutOfRange { vertex: 2, n: 2 })
        ));
        assert!(matches!(
            Graph::new(w(&[1, 1]), &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            Graph::new(w(&[1, 1]), &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
        assert!(matches!(
            Graph::new(vec![int(-1)], &[]),
            Err(GraphError::NegativeWeight { vertex: 0 })
        ));
    }

    #[test]
    fn adjacency_and_edges() {
        let g = Graph::new(w(&[1, 2, 3]), &[(2, 0), (0, 1)]).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edges(), &[(0, 1), (0, 2)]);
        assert_eq!(g.total_weight(), int(6));
    }

    #[test]
    fn neighborhood_and_alpha() {
        // Path 0 - 1 - 2 with weights 1, 2, 4.
        let g = Graph::new(w(&[1, 2, 4]), &[(0, 1), (1, 2)]).unwrap();
        let s = VertexSet::from_iter_cap(3, [0]);
        assert_eq!(g.neighborhood(&s).to_vec(), vec![1]);
        assert_eq!(g.alpha_ratio(&s).unwrap(), int(2)); // w({1})/w({0}) = 2
        let s02 = VertexSet::from_iter_cap(3, [0, 2]);
        assert_eq!(g.neighborhood(&s02).to_vec(), vec![1]);
        assert_eq!(g.alpha_ratio(&s02).unwrap(), prs_numeric::ratio(2, 5));
        // Non-independent set: Γ(S) overlaps S.
        let s01 = VertexSet::from_iter_cap(3, [0, 1]);
        assert_eq!(g.neighborhood(&s01).to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn alpha_undefined_for_zero_weight() {
        let g = Graph::new(vec![int(0), int(3)], &[(0, 1)]).unwrap();
        let s = VertexSet::from_iter_cap(2, [0]);
        assert_eq!(g.alpha_ratio(&s), None);
    }

    #[test]
    fn restricted_neighborhood() {
        // Star center 0 with leaves 1, 2, 3.
        let g = Graph::new(w(&[1, 1, 1, 1]), &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let s = VertexSet::from_iter_cap(4, [1]);
        let alive = VertexSet::from_iter_cap(4, [1, 2, 3]); // center removed
        assert!(g.neighborhood_in(&s, &alive).is_empty());
        assert_eq!(g.isolated_in(&alive), vec![1, 2, 3]);
        assert!(g.isolated_in(&VertexSet::full(4)).is_empty());
    }

    #[test]
    fn independence() {
        let g = Graph::new(w(&[1; 4]), &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let full = VertexSet::full(4);
        assert!(g.is_independent_in(&VertexSet::from_iter_cap(4, [0, 2]), &full));
        assert!(!g.is_independent_in(&VertexSet::from_iter_cap(4, [0, 1]), &full));
        // 0 and 1 adjacent, but independent once 1 is outside `alive`.
        let alive = VertexSet::from_iter_cap(4, [0, 2, 3]);
        assert!(g.is_independent_in(&VertexSet::from_iter_cap(4, [0, 2]), &alive));
    }

    #[test]
    fn shape_predicates() {
        let ring = Graph::new(w(&[1; 4]), &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        assert!(ring.is_ring());
        assert!(!ring.is_path());
        let path = Graph::new(w(&[1; 4]), &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(path.is_path());
        assert!(!path.is_ring());
        let disconnected = Graph::new(w(&[1; 4]), &[(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_connected());
        assert!(ring.is_connected());
    }

    #[test]
    fn edge_mutation_keeps_invariants() {
        let mut g = Graph::new(w(&[1, 2, 3, 4]), &[(0, 1), (1, 2)]).unwrap();
        g.add_edge(3, 0).unwrap();
        assert_eq!(g.edges(), &[(0, 1), (0, 3), (1, 2)]);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(3), &[0]);
        assert!(matches!(
            g.add_edge(0, 1),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
        assert!(matches!(g.add_edge(2, 2), Err(GraphError::SelfLoop { .. })));
        assert!(matches!(
            g.add_edge(0, 9),
            Err(GraphError::VertexOutOfRange { vertex: 9, n: 4 })
        ));
        g.remove_edge(1, 0).unwrap();
        assert_eq!(g.edges(), &[(0, 3), (1, 2)]);
        assert_eq!(g.neighbors(0), &[3]);
        assert_eq!(g.neighbors(1), &[2]);
        assert!(matches!(
            g.remove_edge(0, 1),
            Err(GraphError::MissingEdge { u: 0, v: 1 })
        ));
        assert!(matches!(
            g.remove_edge(5, 0),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 4 })
        ));
        // Round-trip equals a fresh construction of the same graph.
        let fresh = Graph::new(w(&[1, 2, 3, 4]), &[(0, 3), (1, 2)]).unwrap();
        assert_eq!(g, fresh);
    }

    #[test]
    fn try_set_weight_validates() {
        let mut g = Graph::new(w(&[1, 2]), &[(0, 1)]).unwrap();
        g.try_set_weight(0, int(5)).unwrap();
        assert_eq!(g.weight(0), &int(5));
        assert!(matches!(
            g.try_set_weight(0, int(-1)),
            Err(GraphError::NegativeWeight { vertex: 0 })
        ));
        assert!(matches!(
            g.try_set_weight(7, int(1)),
            Err(GraphError::VertexOutOfRange { vertex: 7, n: 2 })
        ));
        assert_eq!(g.weight(0), &int(5));
    }

    #[test]
    fn weight_mutation() {
        let g = Graph::new(w(&[1, 2]), &[(0, 1)]).unwrap();
        let g2 = g.with_weight(0, int(5));
        assert_eq!(g.weight(0), &int(1));
        assert_eq!(g2.weight(0), &int(5));
        assert_eq!(g2.total_weight(), int(7));
    }
}
