#![warn(missing_docs)]
//! # prs-graph — weighted undirected graphs for resource-sharing games
//!
//! The resource-sharing model of Wu–Zhang (STOC'07) and the IPPS'20 ring
//! paper lives on a finite undirected graph `G = (V, E; w)`: vertices are
//! agents, `w_v ≥ 0` is the divisible resource agent `v` brings, and edges
//! are the peering links over which resource is exchanged.
//!
//! This crate provides the graph representation and the combinatorial
//! primitives every other crate builds on:
//!
//! * [`Graph`] — index-based adjacency representation with exact
//!   [`Rational`](prs_numeric::Rational) vertex weights.
//! * [`VertexSet`] — a dense bitset over vertex ids with the set algebra
//!   needed by the bottleneck machinery (`Γ(S)`, unions, complements, …).
//! * [`builders`] — rings, paths, stars, complete graphs, the Fig. 1
//!   example of the paper, and randomized families for property tests.
//!
//! Vertices are plain `usize` indices (`0..n`), following the
//! index-over-pointer idiom for HPC Rust: adjacency is two flat `Vec`s, no
//! `Rc`/`RefCell` graphs, no hashing on hot paths.

pub mod builders;
pub mod error;
pub mod graph;
pub mod random;
pub mod vertex_set;

pub use error::GraphError;
pub use graph::Graph;
pub use vertex_set::VertexSet;

/// Vertex identifier: an index into the graph's vertex arrays.
pub type VertexId = usize;
