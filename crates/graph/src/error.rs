//! Error type for graph construction.

use std::fmt;

/// Why a [`crate::Graph`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= n`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the sharing model is on simple graphs.
    SelfLoop {
        /// The looped vertex.
        vertex: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// Smaller endpoint.
        u: usize,
        /// Larger endpoint.
        v: usize,
    },
    /// A vertex weight is negative; the model requires `w_v ≥ 0`.
    NegativeWeight {
        /// The offending vertex.
        vertex: usize,
    },
    /// A construction that requires strictly positive weights (`w_v > 0`,
    /// e.g. ring agents in the paper model) got zero.
    NonPositiveWeight {
        /// The offending vertex.
        vertex: usize,
    },
    /// The number of weights does not match the number of vertices.
    WeightCountMismatch {
        /// Weights supplied.
        weights: usize,
        /// Vertices expected.
        n: usize,
    },
    /// A construction that requires at least `min` vertices got `n`.
    TooFewVertices {
        /// Vertices supplied.
        n: usize,
        /// Minimum required.
        min: usize,
    },
    /// An edge removal referenced an edge that is not present.
    MissingEdge {
        /// Smaller endpoint.
        u: usize,
        /// Larger endpoint.
        v: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::NegativeWeight { vertex } => {
                write!(f, "negative weight at vertex {vertex}")
            }
            GraphError::NonPositiveWeight { vertex } => {
                write!(
                    f,
                    "non-positive weight at vertex {vertex}: ring agents must own w > 0"
                )
            }
            GraphError::WeightCountMismatch { weights, n } => {
                write!(f, "{weights} weights supplied for {n} vertices")
            }
            GraphError::TooFewVertices { n, min } => {
                write!(f, "construction requires at least {min} vertices, got {n}")
            }
            GraphError::MissingEdge { u, v } => write!(f, "edge ({u}, {v}) is not present"),
        }
    }
}

impl std::error::Error for GraphError {}
