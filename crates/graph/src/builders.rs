//! Deterministic graph family constructors.

use crate::error::GraphError;
use crate::graph::Graph;
use prs_numeric::Rational;

/// A ring (cycle) `0 – 1 – … – (n-1) – 0` with the given weights. `n ≥ 3`.
///
/// ```
/// use prs_graph::builders::ring;
/// use prs_numeric::int;
///
/// let g = ring(vec![int(3), int(1), int(4)]).unwrap();
/// assert!(g.is_ring());
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// ```
pub fn ring(weights: Vec<Rational>) -> Result<Graph, GraphError> {
    let n = weights.len();
    if n < 3 {
        return Err(GraphError::TooFewVertices { n, min: 3 });
    }
    let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::new(weights, &edges)
}

/// A ring with all weights equal to `w`.
pub fn uniform_ring(n: usize, w: Rational) -> Result<Graph, GraphError> {
    ring(vec![w; n])
}

/// A path `0 – 1 – … – (n-1)` with the given weights. `n ≥ 1`.
pub fn path(weights: Vec<Rational>) -> Result<Graph, GraphError> {
    let n = weights.len();
    if n == 0 {
        return Err(GraphError::TooFewVertices { n, min: 1 });
    }
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
    Graph::new(weights, &edges)
}

/// The complete graph `K_n` with the given weights.
pub fn complete(weights: Vec<Rational>) -> Result<Graph, GraphError> {
    let n = weights.len();
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::new(weights, &edges)
}

/// A star with vertex `0` at the center and `weights.len() - 1` leaves.
pub fn star(weights: Vec<Rational>) -> Result<Graph, GraphError> {
    let n = weights.len();
    if n < 2 {
        return Err(GraphError::TooFewVertices { n, min: 2 });
    }
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    Graph::new(weights, &edges)
}

/// The complete bipartite graph `K_{a,b}`: vertices `0..a` on one side,
/// `a..a+b` on the other. `weights.len()` must be `a + b`.
pub fn complete_bipartite(a: usize, weights: Vec<Rational>) -> Result<Graph, GraphError> {
    let n = weights.len();
    if a == 0 || a >= n {
        return Err(GraphError::TooFewVertices { n, min: a + 1 });
    }
    let mut edges = Vec::new();
    for u in 0..a {
        for v in a..n {
            edges.push((u, v));
        }
    }
    Graph::new(weights, &edges)
}

/// The 6-vertex example of **Fig. 1** of the paper.
///
/// Vertices `v1..v6` become ids `0..6`, with weights `(2, 1, 1, 1, 1, 1)`.
/// Edges: `v1–v3`, `v2–v3`, `v3–v4`, `v4–v5`, `v5–v6`, `v6–v4`.
/// Its bottleneck decomposition is the one the paper reports:
/// `(B₁, C₁) = ({v1, v2}, {v3})` with `α₁ = w(v3)/(w(v1)+w(v2)) = 1/3` and
/// `(B₂, C₂) = ({v4, v5, v6}, {v4, v5, v6})` with `α₂ = 1`.
pub fn figure1_example() -> Graph {
    let one = Rational::one();
    Graph::new(
        vec![
            Rational::from_integer(2),
            one.clone(),
            one.clone(),
            one.clone(),
            one.clone(),
            one,
        ],
        &[(0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)],
    )
    // prs-lint: allow(panic, reason = "constant construction from literals, validated by the figure1_is_valid test")
    .expect("fig. 1 example is a valid graph")
}

/// The path `P_v(w1, w2)` that a Sybil split of a degree-2 agent on a ring
/// produces, given the ring and the split vertex: the ring is cut open at
/// `v`, with the two copies `v¹, v²` placed at the two ends.
///
/// Returns the path graph plus the ids of `v¹` (adjacent to `v`'s successor)
/// and `v²` (adjacent to `v`'s predecessor).
///
/// Vertex ids on the path: `0 = v¹`, `1..n-1` = the other agents walking the
/// ring from `v`'s successor to `v`'s predecessor, `n = v²` — so the path has
/// `n + 1` vertices when the ring has `n`.
pub fn sybil_split_path(
    ring: &Graph,
    v: usize,
    w1: Rational,
    w2: Rational,
) -> Result<(Graph, usize, usize), GraphError> {
    assert!(ring.is_ring(), "sybil_split_path requires a ring");
    let n = ring.n();
    // Walk the ring from v's successor around to v's predecessor.
    let mut order = Vec::with_capacity(n - 1);
    let succ = ring.neighbors(v)[0];
    let mut prev = v;
    let mut cur = succ;
    while cur != v {
        order.push(cur);
        let next = *ring
            .neighbors(cur)
            .iter()
            .find(|&&u| u != prev)
            // prs-lint: allow(panic, reason = "is_ring() is asserted on entry, so every vertex has exactly two distinct neighbors")
            .expect("ring vertex has two neighbors");
        prev = cur;
        cur = next;
    }
    debug_assert_eq!(order.len(), n - 1);
    let mut weights = Vec::with_capacity(n + 1);
    weights.push(w1);
    weights.extend(order.iter().map(|&u| ring.weight(u).clone()));
    weights.push(w2);
    let g = path(weights)?;
    Ok((g, 0, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_numeric::{int, ratio};

    #[test]
    fn ring_shape() {
        let g = uniform_ring(5, int(1)).unwrap();
        assert!(g.is_ring());
        assert_eq!(g.m(), 5);
        assert!(ring(vec![int(1), int(2)]).is_err());
    }

    #[test]
    fn path_shape() {
        let g = path(vec![int(1), int(2), int(3)]).unwrap();
        assert!(g.is_path());
        assert_eq!(g.m(), 2);
        assert!(path(vec![]).is_err());
    }

    #[test]
    fn complete_and_star() {
        let k4 = complete(vec![int(1); 4]).unwrap();
        assert_eq!(k4.m(), 6);
        assert!(k4.is_connected());
        let s = star(vec![int(1); 5]).unwrap();
        assert_eq!(s.degree(0), 4);
        assert!((1..5).all(|v| s.degree(v) == 1));
    }

    #[test]
    fn complete_bipartite_shape() {
        let g = complete_bipartite(2, vec![int(1); 5]).unwrap();
        assert_eq!(g.m(), 6);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(2, 3));
        assert!(g.has_edge(0, 2) && g.has_edge(1, 4));
    }

    #[test]
    fn figure1_is_valid() {
        let g = figure1_example();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(2), 3); // v3 touches v1, v2, v4
        assert_eq!(g.degree(3), 3); // v4 touches v3, v5, v6
    }

    #[test]
    fn sybil_split_preserves_interior() {
        let g = ring(vec![int(10), int(2), int(3), int(4)]).unwrap();
        let (p, v1, v2) = sybil_split_path(&g, 0, int(6), int(4)).unwrap();
        assert!(p.is_path());
        assert_eq!(p.n(), 5);
        assert_eq!((v1, v2), (0, 4));
        assert_eq!(p.weight(0), &int(6));
        assert_eq!(p.weight(4), &int(4));
        // Interior weights follow the ring walk 1, 2, 3.
        assert_eq!(p.weight(1), &int(2));
        assert_eq!(p.weight(2), &int(3));
        assert_eq!(p.weight(3), &int(4));
        // Total weight conserved.
        assert_eq!(p.total_weight(), g.total_weight());
    }

    #[test]
    fn sybil_split_zero_endpoint() {
        let g = uniform_ring(3, int(2)).unwrap();
        let (p, v1, v2) = sybil_split_path(&g, 1, int(0), int(2)).unwrap();
        assert_eq!(p.weight(v1), &int(0));
        assert_eq!(p.weight(v2), &int(2));
        assert_eq!(p.n(), 4);
    }

    #[test]
    fn sybil_split_rational_weights() {
        let g = ring(vec![ratio(1, 2), ratio(1, 3), ratio(1, 5)]).unwrap();
        let (p, ..) = sybil_split_path(&g, 2, ratio(1, 10), ratio(1, 10)).unwrap();
        assert_eq!(p.total_weight(), g.total_weight());
    }
}
