//! Euclidean projection onto the scaled simplex
//! `{ x ≥ 0 : Σ x_i = budget }`.
//!
//! Standard O(n log n) algorithm (Held–Wolfe–Crowder / Duchi et al.): sort,
//! find the largest prefix whose water-filling threshold keeps all chosen
//! coordinates positive, clamp the rest to zero.

/// Project `v` onto `{ x ≥ 0 : Σ x_i = budget }` in Euclidean norm.
///
/// Panics if `budget < 0` or `v` is empty with a positive budget.
pub fn project_to_simplex(v: &[f64], budget: f64) -> Vec<f64> {
    assert!(budget >= 0.0, "negative budget");
    if v.is_empty() {
        assert!(
            budget == 0.0,
            "cannot place positive budget on no coordinates"
        );
        return Vec::new();
    }
    if budget == 0.0 {
        return vec![0.0; v.len()];
    }
    let mut sorted: Vec<f64> = v.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut cumsum = 0.0;
    let mut theta = 0.0;
    let mut found = false;
    for (k, &val) in sorted.iter().enumerate() {
        cumsum += val;
        let candidate = (cumsum - budget) / (k + 1) as f64;
        if val - candidate > 0.0 {
            theta = candidate;
            found = true;
        } else {
            break;
        }
    }
    debug_assert!(found, "threshold always exists for budget > 0");
    let _ = found;
    v.iter().map(|&x| (x - theta).max(0.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn already_on_simplex_is_fixed() {
        let x = vec![0.2, 0.3, 0.5];
        assert!(close(&project_to_simplex(&x, 1.0), &x));
    }

    #[test]
    fn uniform_projection() {
        let p = project_to_simplex(&[0.0, 0.0, 0.0], 3.0);
        assert!(close(&p, &[1.0, 1.0, 1.0]));
    }

    #[test]
    fn clamps_negative_coordinates() {
        let p = project_to_simplex(&[1.0, -5.0], 1.0);
        assert!(close(&p, &[1.0, 0.0]));
    }

    #[test]
    fn scaled_budget() {
        let p = project_to_simplex(&[4.0, 2.0], 4.0);
        assert!(close(&p, &[3.0, 1.0]));
        let total: f64 = p.iter().sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_gives_zeros() {
        assert!(close(&project_to_simplex(&[3.0, 1.0], 0.0), &[0.0, 0.0]));
    }

    #[test]
    fn projection_properties_random() {
        // Feasibility + optimality check (projection must be no farther
        // than any random feasible point).
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 2000) as f64 / 100.0 - 10.0
        };
        for n in [1usize, 2, 5, 9] {
            for _ in 0..20 {
                let v: Vec<f64> = (0..n).map(|_| next()).collect();
                let budget = 2.5;
                let p = project_to_simplex(&v, budget);
                let total: f64 = p.iter().sum();
                assert!((total - budget).abs() < 1e-9, "not on simplex");
                assert!(p.iter().all(|&x| x >= 0.0), "negative coordinate");
                let dist = |a: &[f64]| {
                    a.iter()
                        .zip(&v)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                };
                // Compare against a few feasible points.
                let mut q: Vec<f64> = (0..n).map(|_| next().abs()).collect();
                let qs: f64 = q.iter().sum();
                if qs > 0.0 {
                    q.iter_mut().for_each(|x| *x *= budget / qs);
                    assert!(dist(&p) <= dist(&q) + 1e-9, "not the closest point");
                }
            }
        }
    }
}
