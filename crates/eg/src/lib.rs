#![warn(missing_docs)]
//! # prs-eg — the Eisenberg–Gale view of the sharing equilibrium
//!
//! Wu–Zhang's fixed point (the BD allocation) is not an isolated
//! combinatorial object: it is the *market equilibrium of the linear
//! exchange economy* in which each agent sells its resource and spends the
//! revenue on neighbors' resources. For this economy the equilibrium
//! utilities are the optimizer of the Eisenberg–Gale convex program
//!
//! ```text
//! maximize   Σ_v w_v · log U_v(X)
//! subject to Σ_{u ∈ Γ(v)} x_vu = w_v,   x ≥ 0,
//! ```
//!
//! i.e. the *proportionally fair* allocation weighted by contribution.
//!
//! This crate solves that program directly — projected gradient ascent on
//! the product of per-agent scaled simplices ([`solver`]) with exact
//! Euclidean simplex projection ([`projection`]) — giving a **third,
//! independent derivation** of the equilibrium utilities next to the
//! closed-form BD mechanism (`prs-bd`) and the distributed dynamics
//! (`prs-dynamics`). The test-suite and experiment E16 confirm all three
//! agree, which is exactly the Wu–Zhang/EG equivalence made executable.

pub mod projection;
pub mod solver;

pub use projection::project_to_simplex;
pub use solver::{solve, EgConfig, EgSolution};
