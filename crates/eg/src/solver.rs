//! Projected gradient ascent for the Eisenberg–Gale program.
//!
//! Variables: each agent `v` owns a scaled simplex
//! `{ x_{v·} ≥ 0 : Σ_u x_vu = w_v }` over its incident edges. Objective:
//! `F(X) = Σ_v w_v · log U_v(X)` with `U_v = Σ_u x_uv`, so
//! `∂F/∂x_vu = w_u / U_u` — push resource toward neighbors whose marginal
//! (contribution-weighted) utility is highest. Each iteration takes a
//! gradient step and projects every agent's row back onto its simplex.
//!
//! The program is concave with a compact feasible set; a diminishing step
//! size converges to the optimum, whose utilities are the market
//! equilibrium = the BD allocation utilities (tested against `prs-bd`).

use prs_graph::{Graph, VertexId};

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct EgConfig {
    /// Maximum gradient iterations.
    pub max_iters: usize,
    /// Initial step size (scaled by `1/√t` over iterations).
    pub step: f64,
    /// Stop when the objective improves by less than this per iteration
    /// (measured over a 32-iteration window).
    pub tol: f64,
    /// Numerical floor for utilities inside logs/gradients.
    pub eps: f64,
}

impl Default for EgConfig {
    fn default() -> Self {
        EgConfig {
            max_iters: 200_000,
            step: 0.5,
            tol: 1e-12,
            eps: 1e-12,
        }
    }
}

/// Result of an EG solve.
#[derive(Clone, Debug)]
pub struct EgSolution {
    /// Final allocation: `x[v][i]` = what `v` sends to `neighbors(v)[i]`.
    pub x: Vec<Vec<f64>>,
    /// Final utilities `U_v`.
    pub utilities: Vec<f64>,
    /// Final objective `Σ w_v log U_v`.
    pub objective: f64,
    /// Iterations executed.
    pub iters: usize,
    /// Whether the improvement window dropped below tolerance before the
    /// iteration cap.
    pub converged: bool,
}

fn utilities(g: &Graph, x: &[Vec<f64>]) -> Vec<f64> {
    let mut u = vec![0.0; g.n()];
    for (v, xv) in x.iter().enumerate() {
        for (i, &nb) in g.neighbors(v).iter().enumerate() {
            u[nb] += xv[i];
        }
    }
    u
}

fn objective(g: &Graph, w: &[f64], u: &[f64], eps: f64) -> f64 {
    (0..g.n())
        .filter(|&v| w[v] > 0.0)
        .map(|v| w[v] * u[v].max(eps).ln())
        .sum()
}

/// Solve the Eisenberg–Gale program for `g` by entropic mirror descent
/// (exponentiated gradient): each agent's row is updated multiplicatively,
///
/// ```text
/// x_vu ← x_vu · exp(η_t · ĝ_vu),   ĝ = gradient normalized per row,
/// ```
///
/// then renormalized to its budget. Multiplicative updates keep the iterate
/// strictly interior — vital here, because the log-utility gradient blows
/// up at the boundary and additive projected steps ricochet between
/// corners. The returned solution is the best-objective iterate.
///
/// Agents with zero weight keep the zero allocation (they own nothing to
/// spread and contribute nothing to the objective).
pub fn solve(g: &Graph, cfg: &EgConfig) -> EgSolution {
    let n = g.n();
    let w = g.weights_f64();
    // Even-split start (the Definition 1 initial condition) — strictly
    // interior for positive-weight agents.
    let mut x: Vec<Vec<f64>> = (0..n)
        .map(|v| {
            let d = g.degree(v).max(1) as f64;
            vec![w[v] / d; g.degree(v)]
        })
        .collect();

    let mut u = utilities(g, &x);
    let mut best_obj = objective(g, &w, &u, cfg.eps);
    let mut best_x = x.clone();
    let mut best_u = u.clone();
    let mut window_start_obj = best_obj;
    let mut converged = false;
    let mut iters = 0;

    for t in 1..=cfg.max_iters {
        iters = t;
        let eta = cfg.step / (t as f64).sqrt();
        for v in 0..n {
            if w[v] == 0.0 || g.degree(v) == 0 {
                continue;
            }
            let neighbors: &[VertexId] = g.neighbors(v);
            // Row gradient ∂F/∂x_vu = w_u / U_u, normalized so the largest
            // exponent is exactly η (keeps the update bounded even when a
            // utility is near zero — the *relative* gradient is what the
            // simplex geometry cares about).
            let grads: Vec<f64> = neighbors
                .iter()
                .map(|&nb| {
                    if w[nb] > 0.0 {
                        w[nb] / u[nb].max(cfg.eps)
                    } else {
                        0.0
                    }
                })
                .collect();
            let gmax = grads.iter().cloned().fold(0.0f64, f64::max);
            if gmax <= 0.0 {
                continue;
            }
            let mut total = 0.0;
            for (xi, gi) in x[v].iter_mut().zip(&grads) {
                // Floor keeps dead coordinates revivable.
                *xi = (*xi).max(cfg.eps * w[v]) * (eta * gi / gmax).exp();
                total += *xi;
            }
            let scale = w[v] / total;
            for xi in x[v].iter_mut() {
                *xi *= scale;
            }
        }
        u = utilities(g, &x);
        let obj = objective(g, &w, &u, cfg.eps);
        if obj > best_obj {
            best_obj = obj;
            best_x = x.clone();
            best_u = u.clone();
        }
        if t % 128 == 0 {
            if (best_obj - window_start_obj).abs() < cfg.tol * 128.0 {
                converged = true;
                break;
            }
            window_start_obj = best_obj;
        }
    }

    EgSolution {
        objective: best_obj,
        utilities: best_u,
        x: best_x,
        iters,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_bd::decompose;
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bd_utilities(g: &Graph) -> Vec<f64> {
        decompose(g)
            .unwrap()
            .utilities(g)
            .iter()
            .map(|u| u.to_f64())
            .collect()
    }

    fn assert_matches_bd(g: &Graph, tol: f64) {
        let sol = solve(g, &EgConfig::default());
        let want = bd_utilities(g);
        for (v, (got, want)) in sol.utilities.iter().zip(&want).enumerate() {
            assert!(
                (got - want).abs() / (1.0 + want.abs()) < tol,
                "EG utility {got} vs BD {want} at vertex {v} on {g:?}"
            );
        }
    }

    #[test]
    fn two_agent_exchange_matches_bd() {
        let g = builders::path(vec![int(1), int(4)]).unwrap();
        assert_matches_bd(&g, 1e-6);
    }

    #[test]
    fn star_matches_bd() {
        let g = builders::star(vec![int(10), int(1), int(1), int(1)]).unwrap();
        assert_matches_bd(&g, 1e-4);
    }

    #[test]
    fn rings_match_bd() {
        let mut rng = StdRng::seed_from_u64(16);
        for n in [4usize, 5, 6] {
            let g = random::random_ring(&mut rng, n, 1, 8);
            assert_matches_bd(&g, 1e-3);
        }
    }

    #[test]
    fn figure1_matches_bd() {
        assert_matches_bd(&builders::figure1_example(), 1e-3);
    }

    #[test]
    fn objective_is_monotone_to_the_bd_value() {
        // The BD utilities must achieve at least the solver's objective
        // (they are the true optimum).
        let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
        let w = g.weights_f64();
        let sol = solve(&g, &EgConfig::default());
        let bd_obj: f64 = bd_utilities(&g)
            .iter()
            .zip(&w)
            .filter(|(_, &wv)| wv > 0.0)
            .map(|(u, &wv)| wv * u.ln())
            .sum();
        assert!(
            sol.objective <= bd_obj + 1e-6,
            "solver overshot the optimum?! {} vs {}",
            sol.objective,
            bd_obj
        );
        assert!(
            sol.objective >= bd_obj - 1e-3,
            "solver fell short: {} vs {}",
            sol.objective,
            bd_obj
        );
    }

    #[test]
    fn allocation_is_feasible() {
        let g = builders::ring(vec![int(2), int(7), int(1), int(4)]).unwrap();
        let sol = solve(&g, &EgConfig::default());
        for v in 0..g.n() {
            let sent: f64 = sol.x[v].iter().sum();
            assert!((sent - g.weight(v).to_f64()).abs() < 1e-9, "budget at {v}");
            assert!(sol.x[v].iter().all(|&xi| xi >= 0.0));
        }
    }

    #[test]
    fn zero_weight_agent_handled() {
        let g = builders::ring(vec![int(0), int(2), int(3), int(4)]).unwrap();
        let sol = solve(&g, &EgConfig::default());
        assert!(sol.x[0].iter().all(|&xi| xi == 0.0));
        assert!(sol.utilities.iter().all(|u| u.is_finite()));
    }
}
