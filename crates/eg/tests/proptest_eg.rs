//! Property tests: the Eisenberg–Gale solver vs the exact BD mechanism.

use proptest::prelude::*;
use prs_bd::decompose;
use prs_eg::{solve, EgConfig};
use prs_graph::builders;
use prs_numeric::int;

proptest! {
    // The solver is iterative and comparatively slow; keep the case count
    // small — the root-level suites cover breadth, this covers the law.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn eg_matches_bd_on_random_rings(weights in proptest::collection::vec(1i64..10, 4..7)) {
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let bd = decompose(&g).unwrap();
        let sol = solve(&g, &EgConfig::default());
        for (v, want) in bd.utilities(&g).iter().enumerate() {
            let want = want.to_f64();
            let got = sol.utilities[v];
            prop_assert!(
                (got - want).abs() / (1.0 + want.abs()) < 5e-3,
                "EG {got} vs BD {want} at {v} on {weights:?}"
            );
        }
    }

    #[test]
    fn eg_objective_never_exceeds_bd_objective(weights in proptest::collection::vec(1i64..10, 4..6)) {
        // BD utilities are the true optimum of the concave program; any
        // feasible iterate's objective is ≤ theirs.
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let bd = decompose(&g).unwrap();
        let w = g.weights_f64();
        let bd_obj: f64 = bd
            .utilities(&g)
            .iter()
            .zip(&w)
            .filter(|(_, &wv)| wv > 0.0)
            .map(|(u, &wv)| wv * u.to_f64().ln())
            .sum();
        let sol = solve(&g, &EgConfig::default());
        prop_assert!(sol.objective <= bd_obj + 1e-6,
            "iterate beat the optimum: {} > {bd_obj}", sol.objective);
    }

    #[test]
    fn eg_solution_always_feasible(weights in proptest::collection::vec(1i64..10, 4..7)) {
        let g = builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap();
        let sol = solve(&g, &EgConfig { max_iters: 5_000, ..EgConfig::default() });
        for v in 0..g.n() {
            let sent: f64 = sol.x[v].iter().sum();
            prop_assert!((sent - g.weight(v).to_f64()).abs() < 1e-9);
            prop_assert!(sol.x[v].iter().all(|&x| x >= 0.0));
        }
    }
}
