//! Microbenchmarks for the exact-arithmetic substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use prs_core::numeric::{BigUint, Rational};
use std::hint::black_box;

fn biguint_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("biguint");
    for limbs in [4usize, 32, 128] {
        let a = BigUint::from_limbs(
            (0..limbs as u32)
                .map(|i| i.wrapping_mul(0x9E3779B9) | 1)
                .collect(),
        );
        let b = BigUint::from_limbs(
            (0..limbs as u32)
                .map(|i| i.wrapping_mul(0x85EBCA6B) | 1)
                .collect(),
        );
        g.bench_function(format!("mul/{limbs}limbs"), |bench| {
            bench.iter(|| black_box(&a) * black_box(&b))
        });
        g.bench_function(format!("div_rem/{limbs}limbs"), |bench| {
            let prod = &a * &b;
            bench.iter(|| black_box(&prod).div_rem(black_box(&b)))
        });
        g.bench_function(format!("gcd/{limbs}limbs"), |bench| {
            bench.iter(|| prs_core::numeric::gcd::gcd(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn rational_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("rational");
    let a = Rational::from_ratio(123_456_789, 987_654_321);
    let b = Rational::from_ratio(555_555_557, 333_333_331);
    g.bench_function("add", |bench| bench.iter(|| black_box(&a) + black_box(&b)));
    g.bench_function("mul", |bench| bench.iter(|| black_box(&a) * black_box(&b)));
    g.bench_function("cmp", |bench| {
        bench.iter(|| black_box(&a).cmp(black_box(&b)))
    });
    g.bench_function("sum_chain_100", |bench| {
        let terms: Vec<Rational> = (1..=100).map(|i| Rational::from_ratio(1, i)).collect();
        bench.iter_batched(
            || terms.clone(),
            |ts| ts.iter().sum::<Rational>(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, biguint_ops, rational_ops);
criterion_main!(benches);
