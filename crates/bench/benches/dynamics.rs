//! Throughput and convergence cost of the proportional response engines,
//! including the crossbeam parallel sweep speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use prs_bench::ring_family;
use prs_core::dynamics::parallel::convergence_sweep;
use prs_core::prelude::*;
use std::hint::black_box;

fn rounds_per_second(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamics_step");
    for n in [16usize, 128, 1024] {
        let ring = ring_family(9900 + n as u64, 1, n, 1, 20).pop().unwrap();
        g.bench_function(format!("f64/n={n}"), |b| {
            let mut eng = F64Engine::new(&ring);
            b.iter(|| {
                eng.step();
                black_box(eng.utilities()[0])
            })
        });
    }
    let small = ring_family(9950, 1, 8, 1, 20).pop().unwrap();
    g.bench_function("exact/n=8", |b| {
        b.iter(|| {
            // Fresh engine per iteration: exact denominators grow per round.
            let mut eng = ExactEngine::new(&small);
            eng.run(3);
            black_box(eng.utilities()[0].clone())
        })
    });
    g.finish();
}

fn convergence_to_equilibrium(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamics_converge");
    g.sample_size(10);
    for n in [8usize, 32] {
        let ring = ring_family(9970 + n as u64, 1, n, 1, 10).pop().unwrap();
        let bd = decompose(&ring).unwrap();
        let target: Vec<f64> = bd.utilities(&ring).iter().map(|u| u.to_f64()).collect();
        g.bench_function(format!("to_1e-6/n={n}"), |b| {
            b.iter(|| {
                let mut eng = F64Engine::new(&ring);
                eng.run_until_close(&target, 1e-6, 2_000_000)
            })
        });
    }
    g.finish();
}

fn parallel_sweep_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_sweep");
    g.sample_size(10);
    let instances: Vec<(Graph, Vec<f64>)> = ring_family(9999, 16, 10, 1, 10)
        .into_iter()
        .map(|ring| {
            let bd = decompose(&ring).unwrap();
            let target = bd.utilities(&ring).iter().map(|u| u.to_f64()).collect();
            (ring, target)
        })
        .collect();
    for threads in [1usize, 4] {
        g.bench_function(format!("16rings/threads={threads}"), |b| {
            b.iter(|| convergence_sweep(&instances, 1e-6, 1_000_000, threads))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    rounds_per_second,
    convergence_to_equilibrium,
    parallel_sweep_speedup
);
criterion_main!(benches);
