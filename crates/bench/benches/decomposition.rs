//! Scaling of the exact bottleneck decomposition and BD allocation.

use criterion::{criterion_group, criterion_main, Criterion};
use prs_bench::ring_family;
use prs_core::prelude::*;
use std::hint::black_box;

fn decomposition_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("decompose");
    g.sample_size(20);
    for n in [8usize, 16, 32, 64] {
        let ring = ring_family(9000 + n as u64, 1, n, 1, 50).pop().unwrap();
        g.bench_function(format!("ring/n={n}"), |b| {
            b.iter(|| decompose(black_box(&ring)).unwrap())
        });
    }
    for n in [8usize, 16, 32] {
        let graph = prs_bench::connected_family(9100 + n as u64, 1, n, 0.3)
            .pop()
            .unwrap();
        g.bench_function(format!("gnp/n={n}"), |b| {
            b.iter(|| decompose(black_box(&graph)).unwrap())
        });
    }
    g.finish();
}

fn allocation_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocate");
    g.sample_size(20);
    for n in [8usize, 32, 64] {
        let ring = ring_family(9200 + n as u64, 1, n, 1, 50).pop().unwrap();
        let bd = decompose(&ring).unwrap();
        g.bench_function(format!("ring/n={n}"), |b| {
            b.iter(|| allocate(black_box(&ring), black_box(&bd)))
        });
    }
    g.finish();
}

fn flow_kernel(c: &mut Criterion) {
    // The max-flow engine on a Definition 2 feasibility network shape.
    use prs_core::flow::{Cap, FlowNetwork};
    let mut g = c.benchmark_group("maxflow");
    g.sample_size(20);
    for n in [16usize, 64, 128] {
        g.bench_function(format!("bipartite/n={n}"), |b| {
            b.iter(|| {
                let mut net = FlowNetwork::new(2 + 2 * n);
                for i in 0..n {
                    net.add_edge(0, 2 + i, Cap::Finite(Rational::from_integer(1 + i as i64)));
                    net.add_edge(
                        2 + n + i,
                        1,
                        Cap::Finite(Rational::from_integer(1 + i as i64)),
                    );
                    net.add_edge(2 + i, 2 + n + i, Cap::Infinite);
                    net.add_edge(2 + i, 2 + n + (i + 1) % n, Cap::Infinite);
                }
                net.max_flow(0, 1)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    decomposition_scaling,
    allocation_scaling,
    flow_kernel
);
criterion_main!(benches);
