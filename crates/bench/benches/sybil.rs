//! Cost of the Sybil attack machinery: honest splits, single payoff
//! evaluations, full attack optimizations, and whole-ring Theorem 8 audits.

use criterion::{criterion_group, criterion_main, Criterion};
use prs_bench::ring_family;
use prs_core::prelude::*;
use prs_core::sybil::SybilSplitFamily;
use std::hint::black_box;

fn split_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("sybil_primitives");
    let ring = ring_family(8800, 1, 12, 1, 20).pop().unwrap();
    g.bench_function("honest_split/n=12", |b| {
        b.iter(|| honest_split(black_box(&ring), 0))
    });
    let fam = SybilSplitFamily::new(ring.clone(), 0);
    let w1 = ring.weight(0) * &ratio(1, 3);
    g.bench_function("payoff_eval/n=12", |b| {
        b.iter(|| fam.payoff(black_box(&w1)).unwrap())
    });
    g.finish();
}

fn attack_optimization(c: &mut Criterion) {
    let mut g = c.benchmark_group("sybil_attack");
    g.sample_size(10);
    let cfg = AttackConfig::new()
        .with_grid(24)
        .with_zoom_levels(4)
        .with_keep(2);
    for n in [6usize, 12, 24] {
        let ring = ring_family(8900 + n as u64, 1, n, 1, 20).pop().unwrap();
        g.bench_function(format!("best_split/n={n}"), |b| {
            b.iter(|| best_sybil_split(black_box(&ring), 0, &cfg))
        });
    }
    g.finish();
}

fn whole_ring_audit(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorem8_audit");
    g.sample_size(10);
    let cfg = AttackConfig::new()
        .with_grid(12)
        .with_zoom_levels(2)
        .with_keep(2);
    for n in [5usize, 8] {
        let ring = ring_family(8950 + n as u64, 1, n, 1, 12).pop().unwrap();
        g.bench_function(format!("ring/n={n}"), |b| {
            b.iter(|| check_ring_theorem8(black_box(&ring), &cfg))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    split_primitives,
    attack_optimization,
    whole_ring_audit
);
criterion_main!(benches);
