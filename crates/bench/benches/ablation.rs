//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * A1 — attack optimizer refinement: coarse grid only vs grid + zoom
//!   (accuracy is reported by experiment E11; this bench shows the cost).
//! * A2 — exact rational decomposition vs an f64 re-implementation of the
//!   same Dinkelbach loop (the f64 variant is cheaper but unsound for tie
//!   decisions — the experiment harness counts its combinatorial mistakes).

use criterion::{criterion_group, criterion_main, Criterion};
use prs_bench::ring_family;
use prs_core::prelude::*;
use std::hint::black_box;

fn a1_optimizer_refinement(c: &mut Criterion) {
    let mut g = c.benchmark_group("a1_refinement");
    g.sample_size(10);
    let ring = ring_family(7700, 1, 8, 1, 16).pop().unwrap();
    let coarse = AttackConfig::new()
        .with_grid(32)
        .with_zoom_levels(0)
        .with_keep(1);
    let zoomed = AttackConfig::new()
        .with_grid(32)
        .with_zoom_levels(5)
        .with_keep(3);
    g.bench_function("grid_only", |b| {
        b.iter(|| best_sybil_split(black_box(&ring), 0, &coarse))
    });
    g.bench_function("grid_plus_zoom", |b| {
        b.iter(|| best_sybil_split(black_box(&ring), 0, &zoomed))
    });
    g.finish();
}

/// Minimal f64 mirror of the Dinkelbach α-minimization (single round,
/// ring-specialized by exhaustive independent-set scan for small n) — just
/// enough to price the exact-arithmetic overhead.
fn f64_min_alpha(weights: &[f64]) -> f64 {
    let n = weights.len();
    assert!(n <= 20);
    let mut best = f64::INFINITY;
    for mask in 1u32..(1 << n) {
        // Independence on the ring: no two adjacent bits (cyclically).
        let indep = (0..n).all(|i| mask >> i & 1 == 0 || mask >> ((i + 1) % n) & 1 == 0);
        if !indep {
            continue;
        }
        let mut gamma = 0u32;
        for i in 0..n {
            if mask >> i & 1 == 1 {
                gamma |= 1 << ((i + 1) % n);
                gamma |= 1 << ((i + n - 1) % n);
            }
        }
        let wg: f64 = (0..n)
            .filter(|&i| gamma >> i & 1 == 1)
            .map(|i| weights[i])
            .sum();
        let ws: f64 = (0..n)
            .filter(|&i| mask >> i & 1 == 1)
            .map(|i| weights[i])
            .sum();
        if ws > 0.0 {
            best = best.min(wg / ws);
        }
    }
    best
}

fn a2_exact_vs_f64(c: &mut Criterion) {
    let mut g = c.benchmark_group("a2_exact_vs_f64");
    g.sample_size(10);
    for n in [8usize, 12] {
        let ring = ring_family(7800 + n as u64, 1, n, 1, 30).pop().unwrap();
        let wf: Vec<f64> = ring.weights_f64();
        g.bench_function(format!("exact_decompose/n={n}"), |b| {
            b.iter(|| decompose(black_box(&ring)).unwrap())
        });
        g.bench_function(format!("f64_min_alpha/n={n}"), |b| {
            b.iter(|| f64_min_alpha(black_box(&wf)))
        });
    }
    g.finish();
}

criterion_group!(benches, a1_optimizer_refinement, a2_exact_vs_f64);
criterion_main!(benches);
