//! Benchmarks for the alternative equilibrium engines: the Eisenberg–Gale
//! mirror-descent solver and the asynchronous protocol engine, against the
//! synchronous baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use prs_bench::ring_family;
use prs_core::dynamics::{AsyncEngine, Schedule};
use prs_core::eg::{solve, EgConfig};
use prs_core::prelude::*;

fn eg_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("eg_solver");
    g.sample_size(10);
    for n in [6usize, 12] {
        let ring = ring_family(6600 + n as u64, 1, n, 1, 9).pop().unwrap();
        g.bench_function(format!("mirror_descent/n={n}"), |b| {
            b.iter(|| {
                solve(
                    &ring,
                    &EgConfig {
                        max_iters: 20_000,
                        ..EgConfig::default()
                    },
                )
            })
        });
    }
    g.finish();
}

fn async_vs_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("async_vs_sync");
    g.sample_size(10);
    let ring = ring_family(6700, 1, 10, 1, 9).pop().unwrap();
    let bd = decompose(&ring).unwrap();
    let target: Vec<f64> = bd.utilities(&ring).iter().map(|u| u.to_f64()).collect();
    g.bench_function("sync_to_1e-6", |b| {
        b.iter(|| {
            let mut eng = F64Engine::new(&ring);
            eng.run_until_close(&target, 1e-6, 1_000_000)
        })
    });
    g.bench_function("async_round_robin_to_1e-6", |b| {
        b.iter(|| {
            let mut eng = AsyncEngine::new(&ring, Schedule::RoundRobin);
            eng.run_until_close(&target, 1e-6, 1_000_000)
        })
    });
    g.finish();
}

criterion_group!(benches, eg_solver, async_vs_sync);
criterion_main!(benches);
