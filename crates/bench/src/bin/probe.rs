use prs_core::prelude::*;
fn main() {
    let cfg = AttackConfig::new()
        .with_grid(64)
        .with_zoom_levels(8)
        .with_keep(3);
    // Family A: generalize n=6 winner [eps, eps, H, H, w, w] with v=4
    for k in [2i32, 4, 6, 8, 10, 12] {
        let eps = Rational::from_integer(2).pow(-k);
        let h = Rational::from_integer(2).pow(k);
        let g = builders::ring(vec![
            eps.clone(),
            eps.clone(),
            h.clone(),
            h.clone(),
            int(1),
            int(1),
        ])
        .unwrap();
        let out = best_sybil_split(&g, 4, &cfg);
        println!("A k={k}: ratio = {:.8}", out.ratio_f64());
    }
    // Family B: n=5 winner shape [tiny, w, mid, H, small] v=1
    for k in [2i32, 4, 6, 8, 10] {
        let eps = Rational::from_integer(2).pow(-k);
        let h = Rational::from_integer(2).pow(k);
        let g = builders::ring(vec![eps.clone(), int(1), int(1), h.clone(), eps.clone()]).unwrap();
        let out = best_sybil_split(&g, 1, &cfg);
        println!("B k={k}: ratio = {:.8}", out.ratio_f64());
    }
}
