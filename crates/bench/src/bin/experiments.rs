//! Experiment harness: regenerates every figure and theorem-level claim of
//! the paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for recorded results).
//!
//! ```text
//! cargo run --release -p prs-bench --bin experiments           # all
//! cargo run --release -p prs-bench --bin experiments e11       # one
//! cargo run --release -p prs-bench --bin experiments bench     # BENCH_seed.json
//! ```
//!
//! The `bench` target times the exact engine against the two-tier
//! (float-prefiltered) engine and writes the measurements plus the
//! flow-instrumentation counters to `BENCH_seed.json` (override the path
//! with the `BENCH_JSON` environment variable).

use prs_bench::{fmt_q, prop11_showcase, ring_family, Table};
use prs_core::prelude::*;
use prs_core::sybil::stages::audit_stages;
use prs_core::sybil::theorem8::{lower_bound_ring, LOWER_BOUND_AGENT};
use prs_core::RingInstance;

/// Counting allocator: the `swarm_scale` bench asserts the struct-of-arrays
/// engine's steady-state round path performs **zero** heap allocations, on
/// the real allocator rather than by code inspection. One relaxed add per
/// allocation; timing sections snapshot the counter outside their windows.
mod alloc_audit {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: defers every operation to `System`; the counter is a relaxed
    // atomic with no effect on the returned pointers.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, new_size)
        }
        unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(l)
        }
    }

    pub fn count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

#[global_allocator]
static GLOBAL: alloc_audit::CountingAlloc = alloc_audit::CountingAlloc;

/// The pre-refactor per-agent swarm engine, frozen as the `swarm_scale`
/// baseline (same shape as the executable spec in
/// `tests/swarm_soa_equivalence.rs`): one heap `Vec` per agent per lane,
/// and a per-round flat `sends` vector routed by binary search — the
/// allocation and pointer-chasing profile the struct-of-arrays refactor
/// removed. Honest-only, which is all the scale bench exercises.
mod legacy_swarm {
    use prs_core::prelude::Graph;

    struct Agent {
        capacity: f64,
        peers: Vec<usize>,
        received: Vec<f64>,
        outgoing: Vec<f64>,
    }

    impl Agent {
        fn utility(&self) -> f64 {
            self.received.iter().sum()
        }
    }

    pub struct LegacySwarm {
        agents: Vec<Agent>,
        prev_utilities: Vec<f64>,
    }

    impl LegacySwarm {
        pub fn new(g: &Graph) -> Self {
            let w = g.weights_f64();
            let agents: Vec<Agent> = (0..g.n())
                .map(|v| {
                    let peers = g.neighbors(v).to_vec();
                    let d = peers.len().max(1) as f64;
                    Agent {
                        capacity: w[v],
                        received: vec![0.0; peers.len()],
                        outgoing: vec![w[v] / d; peers.len()],
                        peers,
                    }
                })
                .collect();
            let n = agents.len();
            let mut s = LegacySwarm {
                agents,
                prev_utilities: vec![0.0; n],
            };
            s.deliver();
            s
        }

        fn deliver(&mut self) {
            for v in 0..self.agents.len() {
                self.prev_utilities[v] = self.agents[v].utility();
            }
            let sends: Vec<(usize, usize, f64)> = self
                .agents
                .iter()
                .enumerate()
                .flat_map(|(v, a)| {
                    a.peers
                        .iter()
                        .zip(&a.outgoing)
                        .map(move |(&u, &amt)| (v, u, amt))
                        .collect::<Vec<_>>()
                })
                .collect();
            for a in &mut self.agents {
                a.received.iter_mut().for_each(|r| *r = 0.0);
            }
            for (v, u, amt) in sends {
                let slot = self.agents[u]
                    .peers
                    .binary_search(&v)
                    .expect("peer not in list");
                self.agents[u].received[slot] += amt;
            }
        }

        fn step(&mut self) {
            for a in &mut self.agents {
                let total: f64 = a.received.iter().sum();
                if total > 0.0 {
                    let scale = a.capacity / total;
                    for (out, r) in a.outgoing.iter_mut().zip(&a.received) {
                        *out = r * scale;
                    }
                } else {
                    let d = a.peers.len().max(1) as f64;
                    for out in a.outgoing.iter_mut() {
                        *out = a.capacity / d;
                    }
                }
            }
            self.deliver();
        }

        fn averaged_utilities(&self) -> Vec<f64> {
            self.agents
                .iter()
                .zip(&self.prev_utilities)
                .map(|(a, p)| 0.5 * (a.utility() + p))
                .collect()
        }

        /// Exactly the pre-refactor `Swarm::run` round: the cycle-averaged
        /// before/after snapshots (one heap `Vec` each) feeding the
        /// convergence delta, then the respond/deliver step.
        pub fn run_rounds(&mut self, rounds: usize) -> f64 {
            let mut delta = 0.0f64;
            for _ in 0..rounds {
                let before_avg = self.averaged_utilities();
                self.step();
                let after_avg = self.averaged_utilities();
                delta = before_avg
                    .iter()
                    .zip(&after_avg)
                    .map(|(a, b)| (a - b).abs() / (1.0 + b.abs()))
                    .fold(0.0, f64::max);
            }
            delta
        }

        pub fn utility(&self, v: usize) -> f64 {
            self.agents[v].utility()
        }
    }
}

fn main() {
    let mut which: Vec<String> = std::env::args().skip(1).collect();
    // `--quick` (or `quick`): smaller instances and fewer reps — the CI
    // smoke configuration. Affects only the `bench` target.
    let quick = which.iter().any(|w| w == "--quick" || w == "quick");
    which.retain(|w| w != "--quick" && w != "quick");
    let run = |name: &str| which.is_empty() || which.iter().any(|w| w == name || w == "all");

    if run("e1") {
        e1_figure1();
    }
    if run("e2") {
        e2_prop3_invariants();
    }
    if run("e3") {
        e3_allocation_prop6();
    }
    if run("e4") {
        e4_dynamics_convergence();
    }
    if run("e5") {
        e5_alpha_curves();
    }
    if run("e6") {
        e6_theorem10();
    }
    if run("e7") {
        e7_breakpoint_events();
    }
    if run("e8") {
        e8_case_frequencies();
    }
    if run("e9") {
        e9_lemma9();
    }
    if run("e10") {
        e10_stage_audits();
    }
    if run("e11") {
        e11_theorem8();
    }
    if run("e12") {
        e12_bound_history();
    }
    if run("e13") {
        e13_protocol_level();
    }
    if run("e14") {
        e14_general_conjecture();
    }
    if run("e15") {
        e15_exhaustive_small_rings();
    }
    if run("e16") {
        e16_eisenberg_gale();
    }
    if run("e17") {
        e17_withholding();
    }
    if run("e18") {
        e18_collusion();
    }
    if run("bench") {
        bench_two_tier(quick);
    }
}

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Median wall-clock over `reps` runs of `f`, in milliseconds.
fn median_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timing"));
    times[times.len() / 2]
}

/// `swarm_scale`: the struct-of-arrays engine at protocol scale.
///
/// Measures rounds/sec and ns per agent-round on rings of 10³–10⁶ agents
/// (10³–10⁴ under `--quick`), with and without steady per-round membership
/// churn (one leave + one recycled rejoin per round). The no-churn pass
/// first audits the steady-state round path against the counting global
/// allocator — zero heap allocations, asserted — and the sizes the frozen
/// pre-refactor engine can reach in reasonable time record the per-agent
/// throughput win in `agents_per_round_speedup`.
fn bench_swarm_scale(quick: bool, reps: usize) -> Vec<String> {
    use prs_core::p2psim::SoaSwarm;

    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let legacy_max = if quick { 10_000 } else { 100_000 };

    let big_ring = |n: usize| -> Graph {
        let weights: Vec<Rational> = (0..n).map(|v| int((v % 50 + 1) as i64)).collect();
        prs_core::graph::builders::ring(weights).expect("scale ring builds")
    };
    // Enough rounds to dominate timer noise without letting the small sizes
    // run forever; every size uses the same formula so rows are comparable.
    let rounds_for = |n: usize| (4_000_000usize / n).clamp(4, 512);

    let mut t = Table::new(&[
        "agents",
        "churn",
        "rounds",
        "ns/agent·round",
        "rounds/sec",
        "vs legacy",
    ]);
    let mut rows: Vec<String> = Vec::new();
    for &n in sizes {
        let g = big_ring(n);
        let rounds = rounds_for(n);

        // --- SoA, no churn: the zero-allocation steady-state path -------
        // The bare round path is audited against the counting allocator;
        // the timed passes then go through `run` so the convergence
        // bookkeeping (which the legacy loop also pays, with heap
        // snapshots) is priced into both engines.
        let run_cfg = prs_core::p2psim::SwarmConfig {
            max_rounds: rounds,
            tol: 0.0,
            record_trace: false,
        };
        let mut soa = SoaSwarm::new(&g);
        soa.step();
        soa.step(); // warm-up: scratch lanes sized, caches touched
        let allocs_before = alloc_audit::count();
        for _ in 0..rounds {
            soa.step();
        }
        let steady_allocs = alloc_audit::count() - allocs_before;
        assert_eq!(
            steady_allocs, 0,
            "steady-state SoA round allocated on the heap at n={n}"
        );
        let soa_ms = median_ms(reps, || {
            let m = soa.run(&run_cfg);
            assert_eq!(m.rounds, rounds, "scale run converged early at n={n}");
        });
        let soa_ns_per_agent = soa_ms * 1e6 / (n as f64 * rounds as f64);
        let soa_rounds_per_sec = rounds as f64 / (soa_ms / 1e3);

        // --- legacy baseline (sizes it can reach) ------------------------
        let legacy = (n <= legacy_max).then(|| {
            let mut leg = legacy_swarm::LegacySwarm::new(&g);
            // Mirror the SoA warm-up *and* its allocation-audit pass so the
            // engines sit at identical round counts for the spot-check.
            leg.run_rounds(2 + rounds);
            let leg_ms = median_ms(reps, || std::hint::black_box(leg.run_rounds(rounds)));
            // Same protocol, same trajectory: spot-check agent 0 agrees to
            // float tolerance after identical round counts.
            assert!(
                (leg.utility(0) - soa.utilities()[0]).abs() < 1e-6,
                "legacy and SoA engines disagree at n={n}"
            );
            leg_ms * 1e6 / (n as f64 * rounds as f64)
        });
        let speedup = legacy.map(|leg_ns| leg_ns / soa_ns_per_agent);
        t.row(vec![
            n.to_string(),
            "no".to_string(),
            rounds.to_string(),
            format!("{soa_ns_per_agent:.2}"),
            format!("{soa_rounds_per_sec:.1}"),
            speedup.map_or("-".to_string(), |s| format!("{s:.1}×")),
        ]);
        let legacy_json = match (legacy, speedup) {
            (Some(leg_ns), Some(s)) => format!(
                ", \"legacy_ns_per_agent_round\": {leg_ns:.2}, \
                 \"agents_per_round_speedup\": {s:.2}"
            ),
            _ => String::new(),
        };
        rows.push(format!(
            concat!(
                "    {{\"agents\": {}, \"churn\": false, \"rounds\": {}, ",
                "\"ns_per_agent_round\": {:.3}, \"rounds_per_sec\": {:.2}, ",
                "\"steady_state_allocs\": {}{}}}"
            ),
            n, rounds, soa_ns_per_agent, soa_rounds_per_sec, steady_allocs, legacy_json,
        ));

        // --- SoA under churn: one leave + one recycled rejoin per round --
        let mut churned = SoaSwarm::new(&g);
        churned.step();
        churned.step();
        let mut victim = n / 2;
        let mut churn_round = |s: &mut SoaSwarm| {
            let peers = s.peers(victim).to_vec();
            let capacity = s.capacity(victim);
            s.leave(victim).expect("churn victim is live");
            let slot = s.join(capacity, &peers).expect("churn rejoin");
            debug_assert_eq!(slot, victim, "free list must recycle the slot");
            s.step();
            victim = (victim + 8191) % n; // 8191 is prime: sweeps every slot
        };
        let churn_ms = median_ms(reps, || {
            for _ in 0..rounds {
                churn_round(&mut churned);
            }
        });
        let churn_ns_per_agent = churn_ms * 1e6 / (n as f64 * rounds as f64);
        let churn_rounds_per_sec = rounds as f64 / (churn_ms / 1e3);
        t.row(vec![
            n.to_string(),
            "yes".to_string(),
            rounds.to_string(),
            format!("{churn_ns_per_agent:.2}"),
            format!("{churn_rounds_per_sec:.1}"),
            "-".to_string(),
        ]);
        rows.push(format!(
            concat!(
                "    {{\"agents\": {}, \"churn\": true, \"events_per_round\": 2, ",
                "\"rounds\": {}, \"ns_per_agent_round\": {:.3}, ",
                "\"rounds_per_sec\": {:.2}}}"
            ),
            n, rounds, churn_ns_per_agent, churn_rounds_per_sec,
        ));
    }
    println!("  swarm_scale (struct-of-arrays engine vs frozen per-agent baseline):");
    t.print();
    rows
}

/// E1 — Fig. 1: the paper's worked bottleneck decomposition example.
fn e1_figure1() {
    header(
        "E1",
        "Figure 1 — bottleneck decomposition of the example graph",
    );
    let g = builders::figure1_example();
    let bd = decompose(&g).unwrap();
    let mut t = Table::new(&["pair", "B_i", "C_i", "α_i", "paper"]);
    let paper = ["({v1,v2}, {v3}), α=1/3", "({v4,v5,v6}, same), α=1"];
    for (i, p) in bd.pairs().iter().enumerate() {
        t.row(vec![
            format!("{}", i + 1),
            format!("{:?}", p.b.to_vec()),
            format!("{:?}", p.c.to_vec()),
            p.alpha.to_string(),
            paper[i].to_string(),
        ]);
    }
    t.print();
    assert_eq!(bd.pairs()[0].alpha, ratio(1, 3));
    assert_eq!(bd.pairs()[1].alpha, ratio(1, 1));
    println!("  matches the published decomposition exactly ✓");
}

/// E2 — Proposition 3 invariants over randomized families.
fn e2_prop3_invariants() {
    header(
        "E2",
        "Proposition 3 — decomposition invariants (randomized)",
    );
    let mut checked = 0usize;
    for n in [4usize, 6, 8, 12, 20] {
        for g in ring_family(42 + n as u64, 20, n, 1, 30) {
            let bd = decompose(&g).unwrap();
            bd.check_proposition3(&g).unwrap();
            checked += 1;
        }
    }
    for g in prs_bench::connected_family(7, 40, 10, 0.3) {
        let bd = decompose(&g).unwrap();
        bd.check_proposition3(&g).unwrap();
        checked += 1;
    }
    println!("  {checked} instances checked, 0 invariant violations ✓");
}

/// E3 — Definition 5 / Proposition 6: allocation feasibility + utilities.
fn e3_allocation_prop6() {
    header(
        "E3",
        "Definition 5 + Proposition 6 — BD allocation exactness",
    );
    let mut exact = 0usize;
    let mut total = 0usize;
    for n in [3usize, 5, 8, 13] {
        for g in ring_family(100 + n as u64, 15, n, 1, 25) {
            let bd = decompose(&g).unwrap();
            let alloc = allocate(&g, &bd);
            alloc.check_budget_balance(&g).unwrap();
            for v in 0..g.n() {
                total += 1;
                if alloc.utility(v) == bd.utility(&g, v) {
                    exact += 1;
                }
            }
        }
    }
    println!("  {exact}/{total} agent utilities equal the closed form exactly ✓");
    assert_eq!(exact, total);
}

/// E4 — convergence of the proportional response dynamics to the BD
/// allocation (Wu–Zhang / Proposition 6).
fn e4_dynamics_convergence() {
    header(
        "E4",
        "Proportional response convergence (target 1e-8, cap 1M rounds)",
    );
    // Note: convergence is guaranteed (Wu–Zhang) but the *rate* degrades
    // when two bottleneck pairs have nearly-tied α-ratios; such instances
    // are reported by their residual error instead of failing the run.
    let mut t = Table::new(&[
        "n",
        "median rounds",
        "max rounds",
        "converged",
        "worst residual",
    ]);
    for n in [4usize, 8, 16, 32, 64] {
        let mut rounds: Vec<usize> = Vec::new();
        let mut converged = 0usize;
        let mut worst_err = 0f64;
        let mut count = 0usize;
        for g in ring_family(200 + n as u64, 11, n, 1, 10) {
            let bd = decompose(&g).unwrap();
            let target: Vec<f64> = bd.utilities(&g).iter().map(|u| u.to_f64()).collect();
            let mut eng = F64Engine::new(&g);
            let rep = eng.run_until_close(&target, 1e-8, 1_000_000);
            count += 1;
            if rep.converged {
                converged += 1;
                rounds.push(rep.rounds);
            }
            worst_err = worst_err.max(rep.final_error);
            // Even the slow instances must be well on their way.
            assert!(rep.final_error < 1e-4, "n={n}: diverged? {rep:?}");
        }
        rounds.sort_unstable();
        t.row(vec![
            n.to_string(),
            rounds
                .get(rounds.len() / 2)
                .map_or("—".into(), |r| r.to_string()),
            rounds.last().map_or("—".into(), |r| r.to_string()),
            format!("{converged}/{count}"),
            format!("{worst_err:.2e}"),
        ]);
    }
    t.print();
}

/// E5 — Fig. 2: the three shapes of α_v(x).
fn e5_alpha_curves() {
    header("E5", "Figure 2 / Proposition 11 — α_v(x) curve shapes");
    for (name, g, v) in prop11_showcase() {
        let fam = MisreportFamily::new(g.clone(), v);
        let case = classify_prop11(&fam, 25);
        println!(
            "\n  {name} — weights {:?}, agent {v}: {case:?}",
            g.weights()
        );
        let res = sweep(&fam, &SweepConfig::new().with_grid(12).with_refine_bits(10));
        println!("    x → α_v(x) [class]:");
        for s in res.samples.iter().step_by(2) {
            println!(
                "      {:>8.4} → {:>8.4} [{:?}]",
                s.x.to_f64(),
                s.alpha.to_f64(),
                s.class
            );
        }
    }
}

/// E6 — Theorem 10: U_v(x) monotone and continuous.
fn e6_theorem10() {
    header("E6", "Theorem 10 — misreport utility monotone + continuous");
    let mut monotone_ok = 0usize;
    let mut total = 0usize;
    let mut max_jump = Rational::zero();
    for n in [4usize, 6, 8] {
        for g in ring_family(300 + n as u64, 6, n, 1, 12) {
            for v in 0..2 {
                let fam = MisreportFamily::new(g.clone(), v);
                let res = sweep(&fam, &SweepConfig::new().with_grid(24).with_refine_bits(20));
                let rep = prs_core::deviation::check_theorem10_monotonicity(&fam, &res);
                total += 1;
                if rep.monotone {
                    monotone_ok += 1;
                }
                if rep.max_breakpoint_jump > max_jump {
                    max_jump = rep.max_breakpoint_jump.clone();
                }
            }
        }
    }
    println!("  monotone on {monotone_ok}/{total} sweeps ✓");
    println!(
        "  largest utility gap across a localized breakpoint: {:.3e} (continuity certificate)",
        max_jump.to_f64()
    );
    assert_eq!(monotone_ok, total);
}

/// E7 — Fig. 3 / Proposition 12: merge/split structure at breakpoints.
fn e7_breakpoint_events() {
    header("E7", "Figure 3 / Proposition 12 — breakpoint events");
    let g = builders::ring(vec![int(6), int(2), int(4), int(3), int(5)]).unwrap();
    let v = 0usize;
    println!(
        "  ring {:?}, agent {v} sweeps x ∈ [0, {}]",
        g.weights(),
        g.weight(v)
    );
    let fam = MisreportFamily::new(g, v);
    let res = sweep(&fam, &SweepConfig::new().with_grid(48).with_refine_bits(25));
    let mut t = Table::new(&["interval", "x range", "pairs (B | C)", "k", "v class"]);
    for (i, iv) in res.intervals.iter().enumerate() {
        let shape = iv
            .shape
            .iter()
            .map(|(b, c)| format!("{b:?}|{c:?}"))
            .collect::<Vec<_>>()
            .join("  ");
        t.row(vec![
            i.to_string(),
            format!("[{:.5}, {:.5}]", iv.lo.to_f64(), iv.hi.to_f64()),
            shape,
            iv.shape.len().to_string(),
            format!("{:?}", iv.focus_class),
        ]);
    }
    t.print();
    // Prop 12-(1): v's class never flips at a breakpoint (C→B only through
    // the α = 1 "Both" state).
    for w in res.intervals.windows(2) {
        let (a, b) = (w[0].focus_class, w[1].focus_class);
        let ok = a == b
            || matches!(a, prs_core::bd::AgentClass::Both)
            || matches!(b, prs_core::bd::AgentClass::Both);
        assert!(ok, "class flipped at a breakpoint: {a:?} → {b:?}");
    }
    println!("  Prop 12-(1): v's class preserved across all breakpoints ✓");
    // Exact breakpoints from the Möbius interval algebra — plus the exact
    // Proposition 12 junction identity: the involved pairs' α-ratios agree
    // at the solved breakpoint.
    for iv in &res.intervals {
        prs_core::deviation::moebius::verify_interval(&fam, iv).unwrap();
    }
    println!("  Möbius α-models verified exactly on every interval ✓");
    // Classify each breakpoint event (merge/split) and verify the exact
    // Prop 12 junction α-identity at the solved breakpoint.
    for e in prs_core::deviation::classify_events(&fam, &res) {
        println!(
            "  event at x = {}: {:?}, class preserved: {}, junction α-identity: {}",
            e.x.as_ref().map_or("≈".into(), |q| q.to_string()),
            e.kind,
            e.focus_class_preserved,
            if e.junction_identity_checked {
                "verified exactly"
            } else {
                "n/a"
            },
        );
        assert!(e.focus_class_preserved);
    }
}

/// E8 — Fig. 4 / Lemmas 14 & 20: initial-path case frequencies.
fn e8_case_frequencies() {
    header("E8", "Figure 4 / Lemmas 14+20 — initial split-path cases");
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut total = 0usize;
    for n in [3usize, 4, 5, 6, 8] {
        for g in ring_family(400 + n as u64, 12, n, 1, 12) {
            for v in 0..g.n() {
                let rep = classify_initial_path(&g, v);
                *counts.entry(format!("{:?}", rep.case)).or_default() += 1;
                total += 1;
            }
        }
    }
    let mut t = Table::new(&["case", "count", "share"]);
    for (case, count) in &counts {
        t.row(vec![
            case.clone(),
            count.to_string(),
            format!("{:.1}%", 100.0 * *count as f64 / total as f64),
        ]);
    }
    t.print();
    println!("  every instance classified into a published case (total {total}) ✓");
}

/// E9 — Lemma 9: the honest split is exactly payoff-neutral.
fn e9_lemma9() {
    header("E9", "Lemma 9 — honest split neutrality (exact)");
    let mut ok = 0usize;
    let mut total = 0usize;
    for n in [3usize, 4, 6, 9] {
        for g in ring_family(500 + n as u64, 12, n, 1, 20) {
            for v in 0..g.n() {
                let (honest, split) = prs_core::sybil::split::lemma9_check(&g, v);
                total += 1;
                if honest == split {
                    ok += 1;
                }
            }
        }
    }
    println!("  U_v = U_v¹ + U_v² exactly on {ok}/{total} (ring, agent) pairs ✓");
    assert_eq!(ok, total);
}

/// E10 — stage lemmas 16/18/22/24 audited along optimal trajectories.
fn e10_stage_audits() {
    header(
        "E10",
        "Stage lemmas — per-stage utility deltas along optimal attacks",
    );
    let cfg = AttackConfig::new()
        .with_grid(20)
        .with_zoom_levels(3)
        .with_keep(2);
    let mut audited = 0usize;
    let mut neutral = 0usize;
    let mut checks_passed = 0usize;
    let mut checks_total = 0usize;
    for n in [4usize, 5, 6] {
        for g in ring_family(600 + n as u64, 8, n, 1, 10) {
            for v in 0..g.n() {
                let out = best_sybil_split(&g, v, &cfg);
                let w2_star = g.weight(v) - &out.best.w1;
                match audit_stages(&g, v, &out.best.w1, &w2_star) {
                    Some(rep) => {
                        audited += 1;
                        for (_, ok) in &rep.checks {
                            checks_total += 1;
                            if *ok {
                                checks_passed += 1;
                            }
                        }
                        assert!(
                            rep.all_hold(),
                            "stage lemma violated on {:?} v={v}",
                            g.weights()
                        );
                    }
                    None => neutral += 1,
                }
            }
        }
    }
    println!("  {audited} trajectories audited, {neutral} payoff-neutral (Adjusting Technique)");
    println!("  {checks_passed}/{checks_total} lemma inequalities held ✓");
}

/// E11 — Theorem 8: ζ = 2 on rings (upper bound audits + lower bound search).
fn e11_theorem8() {
    header("E11", "Theorem 8 — the tight incentive ratio of two");
    let cfg = AttackConfig::new()
        .with_grid(32)
        .with_zoom_levels(5)
        .with_keep(3);

    // (a) Upper bound: no agent on any instance exceeds 2.
    let mut max_seen = Rational::zero();
    let mut attacks = 0usize;
    for n in [3usize, 4, 5, 6] {
        for g in ring_family(700 + n as u64, 10, n, 1, 16) {
            let rep = check_ring_theorem8(&g, &cfg);
            assert!(rep.upper_bound_holds, "violated on {:?}", g.weights());
            attacks += g.n();
            if rep.max_ratio > max_seen {
                max_seen = rep.max_ratio.clone();
            }
        }
    }
    println!(
        "  (a) upper bound: {attacks} optimized attacks, all ζ_v ≤ 2 ✓ (max seen: {})",
        fmt_q(&max_seen)
    );

    // (b) Lower bound: search + the scale-separated family drive ζ toward 2.
    let mut t = Table::new(&["family", "best ζ found", "weights"]);
    for n in [4usize, 5, 6] {
        let rep = worst_case_search(n, 24, 3, 4242, &cfg, 8);
        assert!(rep.upper_bound_holds);
        t.row(vec![
            format!("search n={n}"),
            format!("{:.6}", rep.best_ratio.to_f64()),
            format!(
                "{:?} (v={})",
                rep.best_weights
                    .iter()
                    .map(|w| w.to_f64())
                    .collect::<Vec<_>>(),
                rep.best_vertex
            ),
        ]);
    }
    for k in [2u32, 4, 6, 8, 10] {
        let g = lower_bound_ring(k);
        // Use the certified (symbolic per-interval) optimizer here: it finds
        // the true per-structure optimum, not just a grid point.
        let out = prs_core::sybil::certified_best_split(&g, LOWER_BOUND_AGENT, 32, 35);
        assert!(out.ratio <= Rational::from_integer(2));
        t.row(vec![
            format!("lower-bound k={k}"),
            format!("{:.6} (certified)", out.ratio.to_f64()),
            format!(
                "{:?} (v={})",
                g.weights().iter().map(|w| w.to_f64()).collect::<Vec<_>>(),
                LOWER_BOUND_AGENT
            ),
        ]);
    }
    t.print();
    println!("  (b) lower bound: best ratios approach 2 as the scale separation grows");
}

/// E12 — the published bound history vs what we measure.
fn e12_bound_history() {
    header(
        "E12",
        "Bound history — empirical max ζ vs published upper bounds",
    );
    let cfg = AttackConfig::new()
        .with_grid(24)
        .with_zoom_levels(4)
        .with_keep(3);
    let mut t = Table::new(&[
        "n",
        "empirical max ζ (search)",
        "[5] 2017",
        "[9] 2019",
        "this paper",
    ]);
    for n in [4usize, 5, 6, 8] {
        let rep = worst_case_search(n, 16, 2, 31337 + n as u64, &cfg, 8);
        t.row(vec![
            n.to_string(),
            format!("{:.6}", rep.best_ratio.to_f64()),
            "4".into(),
            "3".into(),
            "2 (tight)".into(),
        ]);
        assert!(rep.best_ratio <= Rational::from_integer(2));
    }
    t.print();
    println!("  every empirical ratio sits within the tight bound of 2; older bounds are loose ✓");
}

/// E13 — protocol-level Sybil attack in the swarm simulator.
fn e13_protocol_level() {
    header("E13", "Protocol-level view — Sybil attack in a live swarm");
    let cfg = SwarmConfig {
        max_rounds: 2_000_000,
        tol: 1e-12,
        record_trace: false,
    };
    let mut t = Table::new(&[
        "ring",
        "agent",
        "honest U",
        "attacked U",
        "protocol gain",
        "mechanism ζ",
    ]);
    for weights in [
        vec![6i64, 1, 4, 2, 5],
        vec![1, 8, 1, 8],
        vec![5, 1, 3, 1, 7, 2],
    ] {
        let ring = RingInstance::from_integers(&weights).unwrap();
        let g = ring.graph();
        let v = 0usize;
        let out = ring.sybil_attack(v, &AttackConfig::default());
        let w1 = out.best.w1.to_f64();
        let w2 = g.weight(v).to_f64() - w1;

        let mut honest_swarm = Swarm::new(g);
        let honest = honest_swarm.run(&cfg);
        let mut sybil_swarm = Swarm::with_strategies(g, |a| {
            if a == v {
                Strategy::Sybil { w1, w2 }
            } else {
                Strategy::Honest
            }
        });
        let attacked = sybil_swarm.run(&cfg);
        let gain = attacked.utilities[v] / honest.utilities[v];
        assert!(gain <= 2.0 + 1e-6, "protocol-level Theorem 8 violated");
        t.row(vec![
            format!("{weights:?}"),
            v.to_string(),
            format!("{:.4}", honest.utilities[v]),
            format!("{:.4}", attacked.utilities[v]),
            format!("{:.4}×", gain),
            format!("{:.4}", out.ratio_f64()),
        ]);
    }
    t.print();
    println!("  swarm-level gains match the mechanism-level ζ and respect the cap of 2 ✓");
}

/// E14 — the conclusion's conjecture: ζ ≤ 2 on general networks.
///
/// Certified lower bounds from the general attack search (neighbor
/// partitions × weight simplex); any value above 2 would refute the
/// conjecture. None has been found.
fn e14_general_conjecture() {
    use prs_core::bd::par::{par_map_indexed, worker_threads};
    use prs_core::sybil::{best_general_sybil, GeneralAttackConfig};
    header(
        "E14",
        "Conjecture — incentive ratio ≤ 2 on general networks",
    );
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cfg = GeneralAttackConfig::new().with_grid(10).with_max_copies(3);
    let mut t = Table::new(&["family", "instances", "attacks", "max ζ lower bound"]);
    let mut push_family = |name: &str, graphs: Vec<Graph>| {
        // Enumerate the attack sites first, then fan the independent
        // optimizations out over scoped workers; results come back in site
        // order, so the aggregation below is identical to a sequential run.
        let sites: Vec<(usize, usize)> = graphs
            .iter()
            .enumerate()
            .flat_map(|(gi, g)| {
                (0..g.n().min(3))
                    .filter(|&v| g.degree(v) >= 2) // Definition 7 needs m ≥ 2 ≤ d_v
                    .map(move |v| (gi, v))
            })
            .collect();
        let ratios = par_map_indexed(sites.len(), worker_threads(sites.len()), |i| {
            let (gi, v) = sites[i];
            best_general_sybil(&graphs[gi], v, &cfg).ratio
        });
        let mut max_ratio = Rational::zero();
        for (&(gi, v), ratio) in sites.iter().zip(ratios) {
            assert!(
                ratio <= Rational::from_integer(2),
                "CONJECTURE REFUTED on {name}: ζ = {ratio} at v={v}, {:?}",
                graphs[gi].weights()
            );
            if ratio > max_ratio {
                max_ratio = ratio;
            }
        }
        t.row(vec![
            name.into(),
            graphs.len().to_string(),
            sites.len().to_string(),
            format!("{:.6}", max_ratio.to_f64()),
        ]);
    };

    let mut rng = StdRng::seed_from_u64(1414);
    push_family(
        "stars (center attacks)",
        (0..4)
            .map(|i| {
                builders::star((0..5).map(|j| int(1 + ((i + j) % 4) as i64)).collect()).unwrap()
            })
            .collect(),
    );
    push_family(
        "complete K4/K5",
        vec![
            builders::complete(vec![int(3), int(1), int(2), int(5)]).unwrap(),
            builders::complete(vec![int(1), int(1), int(8), int(2), int(4)]).unwrap(),
        ],
    );
    push_family(
        "random trees n=7",
        (0..4)
            .map(|_| prs_core::graph::random::random_tree(&mut rng, 7, 1, 9))
            .collect(),
    );
    push_family(
        "random connected n=7",
        (0..4)
            .map(|_| prs_core::graph::random::random_connected(&mut rng, 7, 0.4, 1, 9))
            .collect(),
    );
    push_family("rings n=5 (sanity)", ring_family(1400, 4, 5, 1, 12));
    t.print();
    println!("  no certified lower bound exceeded 2 — consistent with the conjecture ✓");
}

/// E15 — exhaustive audit of every small integer-weight ring.
///
/// All rings with n ∈ {3, 4} and weights in 1..=W (up to rotation the space
/// is slightly smaller; we simply take all tuples). Every agent attacks;
/// Theorem 8 must hold on each of the thousands of instances — this is the
/// closest a finite machine gets to the theorem's ∀-quantifier.
fn e15_exhaustive_small_rings() {
    header(
        "E15",
        "Exhaustive small rings — Theorem 8 with no sampling gaps",
    );
    let cfg = AttackConfig::new()
        .with_grid(12)
        .with_zoom_levels(2)
        .with_keep(2);
    let mut t = Table::new(&[
        "n",
        "W",
        "instances",
        "attacks",
        "max ζ",
        "argmax weights",
        "agent",
    ]);
    for (n, w_max) in [(3usize, 6i64), (4, 4)] {
        let rep = prs_core::sybil::exhaustive_ring_audit(n, w_max, &cfg, 8);
        assert!(
            rep.upper_bound_holds,
            "Theorem 8 violated in the exhaustive grid"
        );
        t.row(vec![
            n.to_string(),
            w_max.to_string(),
            rep.instances.to_string(),
            rep.attacks.to_string(),
            format!("{:.6}", rep.max_ratio.to_f64()),
            format!("{:?}", rep.argmax_weights),
            rep.argmax_vertex.to_string(),
        ]);
    }
    t.print();
    println!("  every instance of the full grid satisfies ζ_v ≤ 2 ✓");
}

/// E16 — the Eisenberg–Gale cross-validation: a convex-programming solver,
/// knowing nothing of bottlenecks, reproduces the Proposition 6 utilities.
fn e16_eisenberg_gale() {
    header(
        "E16",
        "Eisenberg–Gale program — third derivation of the equilibrium",
    );
    use prs_core::eg::{solve, EgConfig};
    let mut t = Table::new(&[
        "family",
        "instances",
        "max rel. utility gap",
        "median iters",
    ]);
    for (name, graphs) in [
        ("rings n=5", ring_family(1600, 6, 5, 1, 9)),
        ("rings n=8", ring_family(1601, 4, 8, 1, 9)),
        (
            "random graphs n=7",
            prs_bench::connected_family(1602, 4, 7, 0.35),
        ),
    ] {
        let mut max_gap = 0f64;
        let mut iters: Vec<usize> = Vec::new();
        let count = graphs.len();
        for g in &graphs {
            let bd = decompose(g).unwrap();
            let want: Vec<f64> = bd.utilities(g).iter().map(|u| u.to_f64()).collect();
            let sol = solve(g, &EgConfig::default());
            iters.push(sol.iters);
            for (got, want) in sol.utilities.iter().zip(&want) {
                max_gap = max_gap.max((got - want).abs() / (1.0 + want.abs()));
            }
        }
        iters.sort_unstable();
        assert!(max_gap < 1e-2, "EG and BD disagree: {max_gap}");
        t.row(vec![
            name.into(),
            count.to_string(),
            format!("{max_gap:.2e}"),
            iters[iters.len() / 2].to_string(),
        ]);
    }
    t.print();
    println!("  mirror descent on Σ w·log U reproduces the BD utilities ✓");
    println!("  (the Wu–Zhang equilibrium ⇔ proportional fairness equivalence, executable)");
}

/// E17 — extension: does withholding weight ever help a Sybil attacker?
///
/// Definition 7 forces `w₁ + w₂ = w_v`; relaxing to `≤` never improved the
/// payoff on any audited instance — the constraint is WLOG for the
/// attacker, as the Theorem 10 monotonicity intuition predicts.
fn e17_withholding() {
    use prs_core::sybil::best_split_with_withholding;
    header(
        "E17",
        "Extension — Sybil + withholding (relaxed budget w₁+w₂ ≤ w_v)",
    );
    let mut audited = 0usize;
    let mut helped = 0usize;
    for n in [4usize, 5, 6] {
        for g in ring_family(1700 + n as u64, 6, n, 1, 10) {
            for v in 0..g.n().min(3) {
                let out = best_split_with_withholding(&g, v, 12);
                audited += 1;
                if out.withholding_helped {
                    helped += 1;
                }
            }
        }
    }
    // The ζ → 2 family too.
    for k in [4u32, 8] {
        let g = prs_core::sybil::theorem8::lower_bound_ring(k);
        let out = best_split_with_withholding(&g, prs_core::sybil::theorem8::LOWER_BOUND_AGENT, 16);
        audited += 1;
        if out.withholding_helped {
            helped += 1;
        }
    }
    println!("  {audited} instances audited; withholding strictly helped on {helped} ✓ (expect 0)");
    assert_eq!(helped, 0);
}

/// E18 — extension: coalition of two Sybil attackers on one ring.
fn e18_collusion() {
    use prs_core::sybil::best_collusion;
    header(
        "E18",
        "Extension — two-agent Sybil collusion (coalition ratio)",
    );
    let mut t = Table::new(&[
        "ring",
        "agents",
        "joint honest",
        "best joint",
        "coalition ratio",
    ]);
    let mut max_ratio = Rational::zero();
    for g in ring_family(1800, 5, 5, 1, 10) {
        let (u, v) = (0usize, 2usize);
        let out = best_collusion(&g, u, v, 10);
        assert!(
            out.coalition_ratio <= Rational::from_integer(2),
            "coalition beat 2!"
        );
        if out.coalition_ratio > max_ratio {
            max_ratio = out.coalition_ratio.clone();
        }
        t.row(vec![
            format!(
                "{:?}",
                g.weights().iter().map(|w| w.to_f64()).collect::<Vec<_>>()
            ),
            format!("({u},{v})"),
            format!("{:.4}", out.honest_joint.to_f64()),
            format!("{:.4}", out.best_joint.to_f64()),
            format!("{:.4}", out.coalition_ratio.to_f64()),
        ]);
    }
    // The lower-bound family with a second colluder.
    let g = prs_core::sybil::theorem8::lower_bound_ring(6);
    let out = best_collusion(&g, 1, 3, 12);
    assert!(out.coalition_ratio <= Rational::from_integer(2));
    t.row(vec![
        "lower-bound k=6".into(),
        "(1,3)".into(),
        format!("{:.4}", out.honest_joint.to_f64()),
        format!("{:.4}", out.best_joint.to_f64()),
        format!("{:.4}", out.coalition_ratio.to_f64()),
    ]);
    if out.coalition_ratio > max_ratio {
        max_ratio = out.coalition_ratio;
    }
    t.print();
    println!(
        "  max coalition ratio observed: {:.4} — two colluding attackers stayed within the
  single-attacker bound of 2 on every audited instance",
        max_ratio.to_f64()
    );
}

/// `bench` — the exact engine vs the two-tier (float-prefiltered) engine on
/// the decomposition hot path, plus the flow-instrumentation counters,
/// written to `BENCH_seed.json`.
///
/// Both engines return bit-identical decompositions (the float tier only
/// proposes; an exact pass certifies — see DESIGN.md §3.1), so the timings
/// compare two routes to the same answer. The "sybil" rows time the
/// decomposition of split rings — the inner loop of every attack optimizer.
///
/// A second set of "session workloads" times whole sweeps and attack
/// optimizations with warm-started [`DecompositionSession`]s (the default)
/// against session-less cold runs (`warm_start(false)`,
/// `cache_capacity(0)`), asserting identical results and recording the
/// `session_hits`/`session_misses`/`session_warm_starts` counter deltas.
fn bench_two_tier(quick: bool) {
    use prs_core::bd::{decompose as decompose_two_tier, decompose_exact};
    use prs_core::flow::stats;
    use prs_core::sybil::SybilSplitFamily;
    use std::time::Instant;

    header(
        "bench",
        "two-tier vs exact decomposition engine → BENCH_seed.json",
    );

    let reps = std::env::var("BENCH_REPS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(if quick { 3 } else { 7 });

    // The measured workloads: rings (the paper's domain, the Criterion
    // `decompose` bench shape) and the split rings the Sybil optimizer
    // decomposes at every payoff evaluation.
    let ring_ns: &[usize] = if quick { &[12, 16] } else { &[16, 32, 48, 64] };
    let split_ns: &[usize] = if quick { &[16] } else { &[32, 64] };
    let mut workloads: Vec<(String, Graph)> = Vec::new();
    for &n in ring_ns {
        let ring = ring_family(9000 + n as u64, 1, n, 1, 50).pop().unwrap();
        workloads.push((format!("ring/n={n}"), ring));
    }
    for &n in split_ns {
        let ring = ring_family(9000 + n as u64, 1, n, 1, 50).pop().unwrap();
        let fam = SybilSplitFamily::new(ring.clone(), 0);
        let w1 = ring.weight(0) * &ratio(1, 3);
        let w2 = ring.weight(0) - &w1;
        let (split, _, _) = fam.path_at(&w1, &w2);
        workloads.push((format!("sybil-split/n={n}"), split));
    }

    let mut t = Table::new(&[
        "instance",
        "exact ms",
        "two-tier ms",
        "speedup",
        "fast-path hits",
        "fallbacks",
    ]);
    let mut rows: Vec<String> = Vec::new();
    for (name, g) in &workloads {
        let want = decompose_exact(g).unwrap();
        let got = decompose_two_tier(g).unwrap();
        assert_eq!(want.shape(), got.shape(), "{name}: engines disagree");
        let exact_ms = median_ms(reps, || decompose_exact(g).unwrap());
        let before = stats::snapshot();
        let two_tier_ms = median_ms(reps, || decompose_two_tier(g).unwrap());
        let delta = stats::snapshot().since(&before);
        let speedup = exact_ms / two_tier_ms;
        t.row(vec![
            name.clone(),
            format!("{exact_ms:.3}"),
            format!("{two_tier_ms:.3}"),
            format!("{speedup:.2}×"),
            delta.fast_path_hits.to_string(),
            delta.fast_path_fallbacks.to_string(),
        ]);
        rows.push(format!(
            concat!(
                "    {{\"instance\": \"{}\", \"n\": {}, \"exact_ms\": {:.4}, ",
                "\"two_tier_ms\": {:.4}, \"speedup\": {:.3}, \"stats\": {}}}"
            ),
            name,
            g.n(),
            exact_ms,
            two_tier_ms,
            speedup,
            delta.to_json(),
        ));
    }
    t.print();

    // --- certification engines: checked-i128 fast tier vs BigInt --------
    //
    // The session's warm certification solves Hall-style bipartite
    // networks (source → left layer → right layer → sink) whose integer
    // caps are the p·D-scaled weights. The same networks run here on both
    // exact engines — results asserted bit-identical — so the speedup
    // column is the pure representation win of i128 words over BigInt
    // limbs on the certification hot path. Shipped-scale caps (~2⁴⁰) must
    // never promote.
    let cert_engine_rows: Vec<String> = {
        use prs_core::flow::{CapI128, CapInt, NetworkI128, NetworkInt};
        use prs_core::numeric::BigInt;
        let cert_ns: &[usize] = if quick { &[16, 32] } else { &[32, 64, 128] };
        let mut tc = Table::new(&[
            "network",
            "bigint ms",
            "i128 ms",
            "speedup",
            "i128 max-flows",
            "promotions",
        ]);
        let mut cert_rows: Vec<String> = Vec::new();
        for &n in cert_ns {
            // Deterministic ~2^40 caps: shipped scale after p·D clearing.
            let cap = |v: usize| -> i128 { (1 << 40) + (v as i128 * 7_777_777) % (1 << 39) + 1 };
            let (s, t_sink) = (0usize, 1usize);
            let left = |v: usize| 2 + v;
            let right = |v: usize| 2 + n + v;
            let build_i128 = || {
                let mut net = NetworkI128::new(2 + 2 * n);
                for v in 0..n {
                    net.add_edge(s, left(v), CapI128::Finite(cap(v)));
                    net.add_edge(left(v), right(v), CapI128::Infinite);
                    net.add_edge(left(v), right((v + 1) % n), CapI128::Infinite);
                    net.add_edge(right(v), t_sink, CapI128::Finite(cap(n + v)));
                }
                net
            };
            let build_int = || {
                let mut net = NetworkInt::new(2 + 2 * n);
                for v in 0..n {
                    net.add_edge(s, left(v), CapInt::Finite(BigInt::from(cap(v))));
                    net.add_edge(left(v), right(v), CapInt::Infinite);
                    net.add_edge(left(v), right((v + 1) % n), CapInt::Infinite);
                    net.add_edge(right(v), t_sink, CapInt::Finite(BigInt::from(cap(n + v))));
                }
                net
            };
            let fast_flow = {
                let mut net = build_i128();
                net.max_flow(s, t_sink)
            };
            let slow_flow = {
                let mut net = build_int();
                net.max_flow(s, t_sink)
            };
            assert_eq!(
                BigInt::from(fast_flow),
                slow_flow,
                "cert engines disagree at n={n}"
            );
            let int_ms = median_ms(reps, || {
                let mut net = build_int();
                net.max_flow(s, t_sink)
            });
            let before = stats::snapshot();
            let i128_ms = median_ms(reps, || {
                let mut net = build_i128();
                net.max_flow(s, t_sink)
            });
            let delta = stats::snapshot().since(&before);
            assert_eq!(
                delta.i128_promotions, 0,
                "shipped-scale caps promoted at n={n}"
            );
            let speedup = int_ms / i128_ms;
            tc.row(vec![
                format!("hall-bipartite/n={n}"),
                format!("{int_ms:.3}"),
                format!("{i128_ms:.3}"),
                format!("{speedup:.2}×"),
                delta.i128_max_flows.to_string(),
                delta.i128_promotions.to_string(),
            ]);
            cert_rows.push(format!(
                concat!(
                    "    {{\"network\": \"hall-bipartite/n={}\", \"bigint_ms\": {:.4}, ",
                    "\"i128_ms\": {:.4}, \"speedup\": {:.3}, \"i128_max_flows\": {}, ",
                    "\"i128_promotions\": {}}}"
                ),
                n, int_ms, i128_ms, speedup, delta.i128_max_flows, delta.i128_promotions,
            ));
        }
        tc.print();
        cert_rows
    };

    // One end-to-end number: a full attack optimization (whose inner loop is
    // thousands of split-ring decompositions) under the two-tier engine.
    let attack_n = if quick { 12 } else { 32 };
    let ring = ring_family(9000 + attack_n as u64, 1, attack_n, 1, 50)
        .pop()
        .unwrap();
    let cfg = AttackConfig::new()
        .with_grid(12)
        .with_zoom_levels(2)
        .with_keep(2);
    let before = stats::snapshot();
    let attack_ms = median_ms(3, || best_sybil_split(&ring, 0, &cfg));
    let attack_stats = stats::snapshot().since(&before);
    println!("  end-to-end Sybil attack (n={attack_n}, two-tier): {attack_ms:.1} ms/optimization");

    // --- session workloads: warm-started sessions vs cold per-call runs ---
    //
    // "cold" runs the same two-tier per-round engine with warm starts and
    // the shape cache disabled, so the delta isolates exactly what the
    // session machinery buys. Results are asserted identical first.
    let mut session_rows: Vec<String> = Vec::new();
    let mut ts = Table::new(&[
        "workload",
        "cold ms",
        "session ms",
        "speedup",
        "hits",
        "misses",
        "warm-starts",
    ]);
    let mut push_session_row =
        |name: &str, cold_ms: f64, session_ms: f64, delta: &prs_core::flow::stats::FlowStats| {
            let speedup = cold_ms / session_ms;
            ts.row(vec![
                name.to_string(),
                format!("{cold_ms:.3}"),
                format!("{session_ms:.3}"),
                format!("{speedup:.2}×"),
                delta.session_hits.to_string(),
                delta.session_misses.to_string(),
                delta.session_warm_starts.to_string(),
            ]);
            session_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"cold_ms\": {:.4}, \"session_ms\": {:.4}, ",
                    "\"speedup\": {:.3}, \"session_hits\": {}, \"session_misses\": {}, ",
                    "\"session_warm_starts\": {}}}"
                ),
                name,
                cold_ms,
                session_ms,
                speedup,
                delta.session_hits,
                delta.session_misses,
                delta.session_warm_starts,
            ));
        };

    // Misreport sweeps: the grid + bisection passes share one session pool.
    let sweep_ns: &[usize] = if quick { &[12] } else { &[16, 32] };
    let sweep_grid = if quick { 24 } else { 48 };
    for &n in sweep_ns {
        let ring = ring_family(9100 + n as u64, 1, n, 1, 50).pop().unwrap();
        let fam = MisreportFamily::new(ring, 0);
        let cold_cfg = SweepConfig::new()
            .with_grid(sweep_grid)
            .with_refine_bits(20)
            .with_warm_start(false)
            .with_cache_capacity(0);
        let session_cfg = SweepConfig::new()
            .with_grid(sweep_grid)
            .with_refine_bits(20);
        let cold = sweep(&fam, &cold_cfg);
        let warm = sweep(&fam, &session_cfg);
        assert_eq!(
            cold.samples.len(),
            warm.samples.len(),
            "sweep n={n}: sample counts differ"
        );
        for (c, w) in cold.samples.iter().zip(&warm.samples) {
            assert_eq!((&c.x, &c.alpha, &c.utility), (&w.x, &w.alpha, &w.utility));
            assert_eq!(c.class, w.class, "sweep n={n}: class differs at x={}", c.x);
        }
        let cold_ms = median_ms(reps, || sweep(&fam, &cold_cfg));
        let before = stats::snapshot();
        let session_ms = median_ms(reps, || sweep(&fam, &session_cfg));
        let delta = stats::snapshot().since(&before);
        push_session_row(
            &format!("misreport-sweep/n={n}"),
            cold_ms,
            session_ms,
            &delta,
        );
    }

    // Sybil grids: one pool across every zoom level of the optimizer.
    let sybil_ns: &[usize] = if quick { &[8] } else { &[12, 16] };
    for &n in sybil_ns {
        let ring = ring_family(9200 + n as u64, 1, n, 1, 50).pop().unwrap();
        let cold_cfg = AttackConfig::new()
            .with_grid(24)
            .with_zoom_levels(3)
            .with_keep(2)
            .with_warm_start(false)
            .with_cache_capacity(0);
        let session_cfg = AttackConfig::new()
            .with_grid(24)
            .with_zoom_levels(3)
            .with_keep(2);
        let cold = best_sybil_split(&ring, 0, &cold_cfg);
        let warm = best_sybil_split(&ring, 0, &session_cfg);
        assert_eq!(cold.ratio, warm.ratio, "sybil n={n}: ratios differ");
        assert_eq!(cold.best.w1, warm.best.w1, "sybil n={n}: splits differ");
        let cold_ms = median_ms(reps, || best_sybil_split(&ring, 0, &cold_cfg));
        let before = stats::snapshot();
        let session_ms = median_ms(reps, || best_sybil_split(&ring, 0, &session_cfg));
        let delta = stats::snapshot().since(&before);
        push_session_row(&format!("sybil-grid/n={n}"), cold_ms, session_ms, &delta);
    }
    ts.print();

    // --- churn workloads: incremental delta serving vs per-event cold ----
    //
    // The stream-of-mutations access pattern (ISSUE 7): a long-lived
    // session owning its instance absorbs Zipf-distributed single-weight
    // re-reports and join/leave edge churn through `apply`, while the cold
    // baseline re-decomposes every mutated graph from scratch with the
    // same two-tier engine. A verification pass first replays each script
    // asserting per-event bit-identity with cold and tallying the serving
    // tiers; the no-op probe additionally asserts the `Unchanged` tier
    // answers with **zero** flow invocations. The shard row drains the
    // same weight scripts through a `ShardPool`'s per-shard delta queues.
    let mut churn_rows: Vec<String> = Vec::new();
    let churn_stats_json: String;
    {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let churn_window = stats::snapshot();

        /// Mirror `delta` onto `g` with the session's idempotent edge
        /// semantics (re-adding a present edge is a no-op, not an error).
        fn apply_delta_to_mirror(g: &mut Graph, delta: &Delta) {
            match delta {
                Delta::SetWeight { v, w } => g.try_set_weight(*v, w.clone()).unwrap(),
                Delta::AddEdge { u, v } => {
                    if !g.has_edge(*u, *v) {
                        g.add_edge(*u, *v).unwrap();
                    }
                }
                Delta::RemoveEdge { u, v } => {
                    if g.has_edge(*u, *v) {
                        g.remove_edge(*u, *v).unwrap();
                    }
                }
                Delta::Batch(items) => {
                    for d in items {
                        apply_delta_to_mirror(g, d);
                    }
                }
            }
        }

        let mut tch = Table::new(&[
            "workload",
            "events",
            "cold ms/ev",
            "incr ms/ev",
            "speedup",
            "unchanged",
            "recert",
            "recomp",
        ]);

        // Zipf(1.1) vertex popularity: a few hot agents re-report often.
        let zipf_vertex = |rng: &mut StdRng, n: usize| -> usize {
            let weights: Vec<f64> = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(1.1)).collect();
            let total: f64 = weights.iter().sum();
            let mut u = rng.gen_range(0.0..1.0) * total;
            for (i, z) in weights.iter().enumerate() {
                if u < *z {
                    return i;
                }
                u -= *z;
            }
            n - 1
        };

        let weight_script = |seed: u64, n: usize, events: usize| -> Vec<Delta> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..events)
                .map(|_| Delta::SetWeight {
                    v: zipf_vertex(&mut rng, n),
                    w: int(rng.gen_range(1..=50)),
                })
                .collect()
        };
        let join_leave_script = |seed: u64, n: usize, events: usize| -> Vec<Delta> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut chord_in = false;
            (0..events)
                .map(|i| match i % 3 {
                    0 => {
                        chord_in = !chord_in;
                        if chord_in {
                            Delta::AddEdge { u: 0, v: n / 2 }
                        } else {
                            Delta::RemoveEdge { u: 0, v: n / 2 }
                        }
                    }
                    // Peers re-announcing existing links: pure `Unchanged`.
                    1 => Delta::AddEdge { u: 0, v: 1 },
                    _ => Delta::SetWeight {
                        v: zipf_vertex(&mut rng, n),
                        w: int(rng.gen_range(1..=50)),
                    },
                })
                .collect()
        };
        let noop_script = |n: usize, events: usize| -> Vec<Delta> {
            (0..events)
                .map(|i| match i % 2 {
                    0 => Delta::AddEdge { u: 0, v: 1 }, // already a ring edge
                    _ => Delta::Batch(vec![
                        Delta::AddEdge { u: 1, v: n / 2 + 1 },
                        Delta::RemoveEdge { u: 1, v: n / 2 + 1 },
                    ]),
                })
                .collect()
        };

        // Replay once for verification: per-event bit-identity vs cold,
        // serving-tier tallies, and (via the returned graphs) the cold
        // baseline's workload.
        let verify_and_tally = |g0: &Graph, script: &[Delta]| -> (Vec<Graph>, u64, u64, u64) {
            let mut session = DecompositionSession::new(g0.clone());
            let mut mirror = g0.clone();
            let (mut unchanged, mut recert, mut recomp) = (0u64, 0u64, 0u64);
            let mut graphs = Vec::with_capacity(script.len());
            for d in script {
                match session.apply(d.clone()).expect("valid churn event") {
                    UpdateOutcome::Unchanged => unchanged += 1,
                    UpdateOutcome::Recertified { .. } => recert += 1,
                    UpdateOutcome::Recomputed => recomp += 1,
                }
                apply_delta_to_mirror(&mut mirror, d);
                let cold = decompose_two_tier(&mirror).expect("churned graph decomposes");
                assert_eq!(
                    session.current().expect("session state"),
                    &cold,
                    "incremental ≠ cold during churn verification"
                );
                graphs.push(mirror.clone());
            }
            (graphs, unchanged, recert, recomp)
        };

        let churn_ns: &[usize] = if quick { &[12] } else { &[16, 32] };
        let events = if quick { 30 } else { 60 };
        let mut named_scripts: Vec<(String, Graph, Vec<Delta>)> = Vec::new();
        for &n in churn_ns {
            let ring = ring_family(9300 + n as u64, 1, n, 1, 50).pop().unwrap();
            named_scripts.push((
                format!("zipf-weights/n={n}"),
                ring.clone(),
                weight_script(9300 + n as u64, n, events),
            ));
            named_scripts.push((
                format!("join-leave/n={n}"),
                ring,
                join_leave_script(9400 + n as u64, n, events),
            ));
        }

        for (name, g0, script) in &named_scripts {
            let (graphs, unchanged, recert, recomp) = verify_and_tally(g0, script);
            let cold_ms = median_ms(reps, || {
                for g in &graphs {
                    std::hint::black_box(decompose_two_tier(g).unwrap());
                }
            }) / events as f64;
            let incr_ms = median_ms(reps, || {
                let mut s = DecompositionSession::new(g0.clone());
                s.current().unwrap();
                for d in script {
                    std::hint::black_box(s.apply(d.clone()).unwrap());
                }
            }) / events as f64;
            let speedup = cold_ms / incr_ms;
            tch.row(vec![
                name.clone(),
                events.to_string(),
                format!("{cold_ms:.4}"),
                format!("{incr_ms:.4}"),
                format!("{speedup:.2}×"),
                unchanged.to_string(),
                recert.to_string(),
                recomp.to_string(),
            ]);
            churn_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"events\": {}, ",
                    "\"cold_ms_per_event\": {:.5}, \"incremental_ms_per_event\": {:.5}, ",
                    "\"speedup\": {:.3}, \"unchanged\": {}, \"recertified\": {}, ",
                    "\"recomputed\": {}}}"
                ),
                name, events, cold_ms, incr_ms, speedup, unchanged, recert, recomp,
            ));
        }

        // The no-op probe: every event must be answered `Unchanged` with
        // zero flow-engine invocations — the O(1) tier of the acceptance
        // criteria, asserted on the real counters.
        {
            let n = churn_ns[0];
            let ring = ring_family(9300 + n as u64, 1, n, 1, 50).pop().unwrap();
            let script = noop_script(n, events);
            let mut session = DecompositionSession::new(ring.clone());
            session.current().unwrap();
            let before = stats::snapshot();
            let t0 = std::time::Instant::now();
            for d in &script {
                assert_eq!(
                    session.apply(d.clone()).unwrap(),
                    UpdateOutcome::Unchanged,
                    "no-op probe must stay on the Unchanged tier"
                );
            }
            let noop_ms = t0.elapsed().as_secs_f64() * 1e3 / events as f64;
            let delta = stats::snapshot().since(&before);
            let flows = delta.exact_max_flows + delta.i128_max_flows;
            assert_eq!(flows, 0, "Unchanged tier invoked the flow engine");
            assert_eq!(delta.delta_unchanged, events as u64);
            tch.row(vec![
                format!("noop-probe/n={n}"),
                events.to_string(),
                "-".to_string(),
                format!("{noop_ms:.4}"),
                "-".to_string(),
                events.to_string(),
                "0".to_string(),
                "0".to_string(),
            ]);
            churn_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"noop-probe/n={}\", \"events\": {}, ",
                    "\"incremental_ms_per_event\": {:.5}, \"flow_invocations\": {}, ",
                    "\"unchanged\": {}, \"recertified\": 0, \"recomputed\": 0}}"
                ),
                n, events, noop_ms, flows, events,
            ));
        }

        // Join/leave over session pools: the same weight scripts fan out
        // over a ShardPool's per-shard delta queues and drain in parallel.
        {
            let n = churn_ns[0];
            let shards = 4usize;
            let instances: Vec<Graph> = (0..shards)
                .map(|s| ring_family(9500 + s as u64, 1, n, 1, 50).pop().unwrap())
                .collect();
            let scripts: Vec<Vec<Delta>> = (0..shards)
                .map(|s| weight_script(9500 + s as u64, n, events))
                .collect();
            let total_events = shards * events;
            // Cold baseline: every shard's every post-event graph, from
            // scratch (sequential — the per-event unit cost).
            let mut all_graphs: Vec<Graph> = Vec::with_capacity(total_events);
            for (g0, script) in instances.iter().zip(&scripts) {
                let mut mirror = g0.clone();
                for d in script {
                    apply_delta_to_mirror(&mut mirror, d);
                    all_graphs.push(mirror.clone());
                }
            }
            let cold_ms = median_ms(reps, || {
                for g in &all_graphs {
                    std::hint::black_box(decompose_two_tier(g).unwrap());
                }
            }) / total_events as f64;
            let incr_ms = median_ms(reps, || {
                let pool = ShardPool::new(instances.clone(), SessionConfig::new());
                for (s, script) in scripts.iter().enumerate() {
                    for d in script {
                        assert!(pool.enqueue(s, d.clone()));
                    }
                }
                for outcomes in pool.drain(shards) {
                    for o in outcomes {
                        std::hint::black_box(o.unwrap());
                    }
                }
            }) / total_events as f64;
            let speedup = cold_ms / incr_ms;
            tch.row(vec![
                format!("shard-pool/n={n}×{shards}"),
                total_events.to_string(),
                format!("{cold_ms:.4}"),
                format!("{incr_ms:.4}"),
                format!("{speedup:.2}×"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
            churn_rows.push(format!(
                concat!(
                    "    {{\"workload\": \"shard-pool/n={}x{}\", \"events\": {}, ",
                    "\"cold_ms_per_event\": {:.5}, \"incremental_ms_per_event\": {:.5}, ",
                    "\"speedup\": {:.3}}}"
                ),
                n, shards, total_events, cold_ms, incr_ms, speedup,
            ));
        }
        tch.print();
        churn_stats_json = stats::snapshot().since(&churn_window).to_json();
    }

    // --- swarm_scale: the struct-of-arrays protocol engine ---------------
    let swarm_rows = bench_swarm_scale(quick, reps);

    // --- per-span-kind timings: one traced misreport sweep, aggregated ---
    //
    // Everything above ran with tracing disabled (the default), so those
    // numbers stay comparable to untraced baselines. This section flips the
    // recorder on for a single representative workload and reports where
    // the time goes, per (layer, name) span kind.
    let trace_n = sweep_ns[0];
    let trace_ring = ring_family(9100 + trace_n as u64, 1, trace_n, 1, 50)
        .pop()
        .unwrap();
    let trace_fam = MisreportFamily::new(trace_ring, 0);
    let trace_cfg = SweepConfig::new()
        .with_grid(sweep_grid)
        .with_refine_bits(20);
    prs_core::trace::install(&prs_core::trace::TraceConfig::new().with_enabled(true));
    // Arm the streaming histograms over the same window, so the snapshot
    // rows below describe exactly the spans `trace_spans` aggregates
    // post-hoc — the live-vs-post-hoc agreement the metrics layer promises.
    prs_core::trace::metrics::reset();
    prs_core::trace::metrics::install(&prs_core::trace::metrics::MetricsConfig::new());
    let _ = sweep(&trace_fam, &trace_cfg);
    // Replay a short churn burst under the same recorder so the delta
    // tiers show up in the profile: `bd.delta_apply` for direct serves and
    // `bd.shard_drain` for the pooled queue path.
    {
        let g = ring_family(9700 + trace_n as u64, 1, trace_n, 1, 50)
            .pop()
            .unwrap();
        let mut s = DecompositionSession::new(g.clone());
        s.current().unwrap();
        for i in 0..8usize {
            let w = int((i as i64 * 7) % 49 + 1);
            s.apply(Delta::SetWeight { v: i % trace_n, w }).unwrap();
        }
        let pool = ShardPool::new(vec![g], SessionConfig::new());
        assert!(pool.enqueue(0, Delta::AddEdge { u: 0, v: 1 }));
        for outcomes in pool.drain(1) {
            for o in outcomes {
                o.unwrap();
            }
        }
    }
    let metrics_rows = prs_core::trace::metrics::snapshot();
    prs_core::trace::metrics::disable();
    prs_core::trace::disable();
    let traced = prs_core::trace::take();
    let mut tt = Table::new(&["span", "count", "total ms", "p50 µs", "p90 µs", "p99 µs"]);
    let mut span_rows: Vec<String> = Vec::new();
    for s in traced.span_stats() {
        tt.row(vec![
            format!("{}.{}", s.layer, s.name),
            s.count.to_string(),
            format!("{:.3}", s.total_ns as f64 / 1e6),
            format!("{:.1}", s.p50_ns as f64 / 1e3),
            format!("{:.1}", s.p90_ns as f64 / 1e3),
            format!("{:.1}", s.p99_ns as f64 / 1e3),
        ]);
        span_rows.push(format!(
            concat!(
                "    {{\"layer\": \"{}\", \"name\": \"{}\", \"count\": {}, ",
                "\"total_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}"
            ),
            s.layer, s.name, s.count, s.total_ns, s.p50_ns, s.p90_ns, s.p99_ns,
        ));
    }
    println!("  traced workload: misreport-sweep+churn/n={trace_n} (grid {sweep_grid})");
    tt.print();

    // --- live metrics: snapshot rows + agreement with the post-hoc rows ---
    //
    // The streaming histograms watched the same window `trace_spans`
    // aggregates post-hoc; their quantiles must under-report each exact
    // nearest-rank value by less than the documented 1/2^SUB_BITS bound.
    let mut metrics_snapshot_rows: Vec<String> = Vec::new();
    for r in &metrics_rows {
        metrics_snapshot_rows.push(format!(
            concat!(
                "    {{\"layer\": \"{}\", \"name\": \"{}\", \"count\": {}, ",
                "\"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}"
            ),
            r.layer, r.name, r.count, r.sum_ns, r.p50_ns, r.p90_ns, r.p99_ns,
        ));
    }
    for s in traced.span_stats() {
        let Some(r) = metrics_rows
            .iter()
            .find(|r| (r.layer, r.name) == (s.layer, s.name))
        else {
            continue;
        };
        if r.count != s.count {
            continue; // dropped events would shift ranks; nothing to compare
        }
        for (q, est, exact) in [
            (50, r.p50_ns, s.p50_ns),
            (90, r.p90_ns, s.p90_ns),
            (99, r.p99_ns, s.p99_ns),
        ] {
            assert!(
                est <= exact && (exact - est).saturating_mul(64) <= exact,
                "{}.{} p{q}: streaming {est} vs post-hoc {exact} breaks the 1/64 bound",
                s.layer,
                s.name
            );
        }
    }

    // --- metrics_overhead: span open+close cost per configuration ---
    //
    // The "disabled" row is the acceptance criterion: with every subsystem
    // off, `span()` is a single relaxed atomic load and must stay in the
    // nanosecond noise; the enabled rows price the histogram update.
    prs_core::trace::metrics::disable();
    prs_core::trace::disable();
    let overhead_reps: u64 = if quick { 2_000_000 } else { 8_000_000 };
    let ns_per_span = |n: u64| {
        let t0 = Instant::now();
        for _ in 0..n {
            let _s = std::hint::black_box(prs_core::trace::span("bench", "overhead_probe"));
        }
        t0.elapsed().as_nanos() as f64 / n as f64
    };
    let disabled_ns = ns_per_span(overhead_reps);
    prs_core::trace::metrics::install(&prs_core::trace::metrics::MetricsConfig::new());
    let metrics_ns = ns_per_span(overhead_reps / 8);
    prs_core::trace::metrics::disable();
    prs_core::trace::install(&prs_core::trace::TraceConfig::new().with_enabled(true));
    let record_ns = ns_per_span(overhead_reps / 8);
    prs_core::trace::disable();
    prs_core::trace::clear();
    prs_core::trace::metrics::reset();
    let mut to = Table::new(&["config", "ns/span"]);
    let overhead_rows: Vec<String> = [
        ("disabled", disabled_ns),
        ("metrics", metrics_ns),
        ("record", record_ns),
    ]
    .iter()
    .map(|(cfg_name, ns)| {
        to.row(vec![cfg_name.to_string(), format!("{ns:.2}")]);
        format!("    {{\"config\": \"{cfg_name}\", \"ns_per_span\": {ns:.3}}}")
    })
    .collect();
    println!("  metrics overhead (span open+close):");
    to.print();

    // --- histogram accuracy: streaming quantiles vs exact sorted ranks ---
    let mut accuracy_rows: Vec<String> = Vec::new();
    let mut ta = Table::new(&["samples", "p50 err ‰", "p90 err ‰", "p99 err ‰", "bound ‰"]);
    for &samples in &[1_000u64, 100_000] {
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut vals: Vec<u64> = Vec::with_capacity(samples as usize);
        let mut h = prs_core::trace::metrics::Histogram::new();
        for i in 0..samples {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            // Durations spread over eight decades, like real span traffic.
            let v = (x >> 32) % (1u64 << (6 + (i % 8) * 4));
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        let err_permille = |q: u64| {
            let rank = (samples * q).div_ceil(100).clamp(1, samples) as usize;
            let exact = vals[rank - 1];
            let est = h.quantile(q);
            assert!(est <= exact, "streaming quantile must lower-bound exact");
            if exact == 0 {
                0.0
            } else {
                (exact - est) as f64 * 1000.0 / exact as f64
            }
        };
        let (e50, e90, e99) = (err_permille(50), err_permille(90), err_permille(99));
        let bound = 1000.0 / 64.0;
        for e in [e50, e90, e99] {
            assert!(e <= bound, "accuracy {e}‰ exceeds the {bound}‰ bound");
        }
        ta.row(vec![
            samples.to_string(),
            format!("{e50:.2}"),
            format!("{e90:.2}"),
            format!("{e99:.2}"),
            format!("{bound:.2}"),
        ]);
        accuracy_rows.push(format!(
            concat!(
                "    {{\"samples\": {}, \"p50_err_permille\": {:.3}, ",
                "\"p90_err_permille\": {:.3}, \"p99_err_permille\": {:.3}, ",
                "\"bound_permille\": {:.3}}}"
            ),
            samples, e50, e90, e99, bound
        ));
    }
    println!(
        "  histogram accuracy (log-linear, SUB_BITS={}):",
        prs_core::trace::metrics::SUB_BITS
    );
    ta.print();
    let metrics_counters = format!(
        "{{\"slo_breaches\": {}, \"anomalies\": {}, \"flight_dumps\": {}}}",
        prs_core::trace::metrics::slo_breach_count(),
        prs_core::trace::metrics::anomaly_count(),
        prs_core::trace::metrics::flight_dump_count(),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"generated_by\": \"cargo run --release -p prs-bench --bin experiments bench\",\n",
            "  \"quick\": {},\n",
            "  \"reps_per_measurement\": {},\n",
            "  \"engines\": [\n{}\n  ],\n",
            "  \"cert_engines\": [\n{}\n  ],\n",
            "  \"session_workloads\": [\n{}\n  ],\n",
            "  \"churn_workloads\": [\n{}\n  ],\n",
            "  \"churn_stats\": {},\n",
            "  \"swarm_scale\": [\n{}\n  ],\n",
            "  \"trace_spans\": {{\"workload\": \"misreport-sweep+churn/n={}\", \"spans\": [\n{}\n  ]}},\n",
            "  \"metrics_snapshot\": {{\"workload\": \"misreport-sweep+churn/n={}\", \"spans\": [\n{}\n  ]}},\n",
            "  \"metrics_counters\": {},\n",
            "  \"metrics_overhead\": [\n{}\n  ],\n",
            "  \"histogram_accuracy\": [\n{}\n  ],\n",
            "  \"sybil_attack_n{}\": {{\"two_tier_ms\": {:.4}, \"stats\": {}}}\n",
            "}}\n"
        ),
        quick,
        reps,
        rows.join(",\n"),
        cert_engine_rows.join(",\n"),
        session_rows.join(",\n"),
        churn_rows.join(",\n"),
        churn_stats_json,
        swarm_rows.join(",\n"),
        trace_n,
        span_rows.join(",\n"),
        trace_n,
        metrics_snapshot_rows.join(",\n"),
        metrics_counters,
        overhead_rows.join(",\n"),
        accuracy_rows.join(",\n"),
        attack_n,
        attack_ms,
        attack_stats.to_json(),
    );
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_seed.json".into());
    std::fs::write(&path, json).expect("write BENCH_seed.json");
    println!("  wrote {path}");
}
