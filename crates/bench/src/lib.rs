//! Shared helpers for the experiment harness and the Criterion benches.

use prs_core::graph::{builders, random, Graph};
use prs_core::numeric::Rational;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic random rings for a given experiment seed.
pub fn ring_family(seed: u64, count: usize, n: usize, lo: i64, hi: i64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| random::random_ring(&mut rng, n, lo, hi))
        .collect()
}

/// Deterministic random connected graphs.
pub fn connected_family(seed: u64, count: usize, n: usize, p: f64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| random::random_connected(&mut rng, n, p, 1, 12))
        .collect()
}

/// The three misreport showcase instances used by experiment E5 — one per
/// Proposition 11 case (Fig. 2a/2b/2c).
pub fn prop11_showcase() -> Vec<(&'static str, Graph, usize)> {
    vec![
        (
            "Case B-1 (always C-class)",
            builders::path(vec![Rational::from_integer(1), Rational::from_integer(10)]).unwrap(),
            0,
        ),
        (
            "Case B-2 (always B-class)",
            builders::ring(vec![
                Rational::from_integer(10),
                Rational::from_integer(1),
                Rational::from_integer(10),
                Rational::from_integer(1),
            ])
            .unwrap(),
            0,
        ),
        (
            "Case B-3 (crossover at x*)",
            builders::ring(vec![
                Rational::from_integer(6),
                Rational::from_integer(2),
                Rational::from_integer(4),
                Rational::from_integer(3),
                Rational::from_integer(5),
            ])
            .unwrap(),
            0,
        ),
    ]
}

/// Pad/format a rational for table output.
pub fn fmt_q(q: &Rational) -> String {
    format!("{} (≈{:.6})", q, q.to_f64())
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("  {}", cols.join(" | "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_deterministic() {
        let a = ring_family(5, 3, 6, 1, 10);
        let b = ring_family(5, 3, 6, 1, 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.weights(), y.weights());
        }
    }

    #[test]
    fn showcase_instances_are_valid() {
        for (name, g, v) in prop11_showcase() {
            assert!(g.n() > v, "{name}");
            assert!(g.weights().iter().all(|w| w.is_positive()));
        }
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "22".into()]);
        t.print();
    }
}
