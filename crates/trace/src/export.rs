//! Trace exporters: human summary, JSONL event log, Chrome trace-event
//! JSON (loadable in `chrome://tracing` and Perfetto).
//!
//! All formatting is integer arithmetic (this crate is float-free by
//! lint): microsecond fields are rendered as `ns / 1000` with a
//! three-digit fractional part, and percentiles are nearest-rank over
//! integer nanoseconds.

use crate::{EventKind, Trace, TraceEvent};
use std::collections::BTreeMap;

/// Aggregated timing of one span kind (`layer.name`), as reported by
/// [`Trace::span_stats`]. Percentiles are nearest-rank over integer
/// nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStats {
    /// Layer the spans belong to.
    pub layer: &'static str,
    /// Stable span name within the layer.
    pub name: &'static str,
    /// Number of recorded spans of this kind.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: u64,
    /// Median duration, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile duration, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile duration, nanoseconds.
    pub p99_ns: u64,
}

impl Trace {
    /// Per-span-kind timing rows, sorted by `(layer, name)`. The same
    /// aggregation the human [`summary`](Trace::summary) prints, exposed
    /// structurally for the bench harness (`BENCH_seed.json` rows) and
    /// programmatic consumers.
    pub fn span_stats(&self) -> Vec<SpanStats> {
        let mut groups: BTreeMap<(&'static str, &'static str), Vec<u64>> = BTreeMap::new();
        for ev in &self.events {
            if ev.kind == EventKind::Span {
                groups
                    .entry((ev.layer, ev.name))
                    .or_default()
                    .push(ev.dur_ns);
            }
        }
        groups
            .into_iter()
            .map(|((layer, name), mut durs)| {
                durs.sort_unstable();
                SpanStats {
                    layer,
                    name,
                    count: u64::try_from(durs.len()).unwrap_or(u64::MAX),
                    total_ns: durs.iter().sum(),
                    p50_ns: percentile(&durs, 50),
                    p90_ns: percentile(&durs, 90),
                    p99_ns: percentile(&durs, 99),
                }
            })
            .collect()
    }

    /// Human summary: per span kind (`layer.name`) the event count, total
    /// time, and p50/p90/p99 durations, followed by the registered
    /// counters and the dropped-event count (if any).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let mut instants: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
        for ev in &self.events {
            if ev.kind == EventKind::Instant {
                *instants.entry((ev.layer, ev.name)).or_default() += 1;
            }
        }
        out.push_str(
            "span kind                          count      total     p50      p90      p99\n",
        );
        for row in self.span_stats() {
            out.push_str(&format!(
                "  {:<32} {:>6} {:>10} {:>8} {:>8} {:>8}\n",
                format!("{}.{}", row.layer, row.name),
                row.count,
                fmt_ns(row.total_ns),
                fmt_ns(row.p50_ns),
                fmt_ns(row.p90_ns),
                fmt_ns(row.p99_ns),
            ));
        }
        if !instants.is_empty() {
            out.push_str("instant events\n");
            for ((layer, name), count) in &instants {
                out.push_str(&format!(
                    "  {:<32} {:>6}\n",
                    format!("{layer}.{name}"),
                    count
                ));
            }
        }
        let counters = crate::counter_values();
        if !counters.is_empty() {
            out.push_str("counters\n");
            for (name, value) in counters {
                out.push_str(&format!("  {name:<32} {value}\n"));
            }
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "dropped {} events (per-thread buffer cap hit — raise max_events_per_thread)\n",
                self.dropped
            ));
        }
        out
    }

    /// JSONL: one JSON object per event, in `(worker, seq)` order. Keys
    /// are emitted in a fixed order, so two identical single-threaded runs
    /// produce byte-identical output after stripping `ts_ns`/`dur_ns`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            push_jsonl_line(&mut out, ev);
        }
        out
    }

    /// Chrome trace-event JSON (the `chrome://tracing` / Perfetto format):
    /// spans become `"ph": "X"` complete events, instants become
    /// `"ph": "i"` thread-scoped markers; attributes ride in `"args"`.
    pub fn to_chrome_json(&self) -> String {
        chrome_json_of(&self.events)
    }
}

/// Chrome trace-event JSON over a bare event slice — shared between
/// [`Trace::to_chrome_json`] and the flight recorder's anomaly dumps
/// (`crate::metrics`), which excerpt a ring rather than a drained trace.
pub(crate) fn chrome_json_of(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    for ev in events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        push_chrome_event(&mut out, ev);
    }
    out.push_str("\n]}\n");
    out
}

fn push_jsonl_line(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"layer\": \"");
    escape_into(out, ev.layer);
    out.push_str("\", \"name\": \"");
    escape_into(out, ev.name);
    out.push_str("\", \"kind\": \"");
    out.push_str(match ev.kind {
        EventKind::Span => "span",
        EventKind::Instant => "instant",
    });
    out.push_str(&format!(
        "\", \"ts_ns\": {}, \"dur_ns\": {}, \"worker\": {}, \"seq\": {}",
        ev.start_ns, ev.dur_ns, ev.worker, ev.seq
    ));
    push_attrs(out, &ev.attrs, "attrs");
    out.push_str("}\n");
}

fn push_chrome_event(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\": \"");
    escape_into(out, ev.name);
    out.push_str("\", \"cat\": \"");
    escape_into(out, ev.layer);
    match ev.kind {
        EventKind::Span => {
            out.push_str(&format!(
                "\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}",
                ev.worker,
                fmt_us(ev.start_ns),
                fmt_us(ev.dur_ns)
            ));
        }
        EventKind::Instant => {
            out.push_str(&format!(
                "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": {}, \"ts\": {}",
                ev.worker,
                fmt_us(ev.start_ns)
            ));
        }
    }
    push_attrs(out, &ev.attrs, "args");
    out.push('}');
}

fn push_attrs(out: &mut String, attrs: &[(&'static str, String)], key: &str) {
    if attrs.is_empty() {
        return;
    }
    out.push_str(&format!(", \"{key}\": {{"));
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\": \"");
        escape_into(out, v);
        out.push('"');
    }
    out.push('}');
}

/// Microseconds with a 3-digit fractional part, by integer division
/// (Chrome's `ts`/`dur` fields are microsecond floats; `123.456` is the
/// exact rendering of 123456 ns).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Adaptive duration for the human summary: ns below 10µs, µs below
/// 10ms, ms above.
fn fmt_ns(ns: u64) -> String {
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{}us", ns / 1_000)
    } else {
        format!("{}ms", ns / 1_000_000)
    }
}

/// Nearest-rank percentile over an ascending-sorted slice, defined for
/// every input size:
///
/// * **empty** → `0` (there is no observation to report);
/// * **one element** → that element, for every `p`;
/// * in general the value at 1-based rank `ceil(len·p/100)`, clamped to
///   `[1, len]` — so p50 of a 2-element set is the lower element and p99
///   the upper one (the floor-indexed variant this replaced collapsed
///   both onto the lower element).
///
/// The streaming histograms (`crate::metrics`) use the same rank
/// convention, so live and post-hoc quantiles are comparable
/// rank-for-rank.
fn percentile(sorted: &[u64], p: u64) -> u64 {
    let Some(&last) = sorted.last() else {
        return 0;
    };
    let n = u64::try_from(sorted.len()).unwrap_or(u64::MAX);
    let rank = n.saturating_mul(p.min(100)).div_ceil(100).clamp(1, n);
    let idx = usize::try_from(rank - 1).unwrap_or(usize::MAX);
    sorted.get(idx).copied().unwrap_or(last)
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(name: &'static str, kind: EventKind, start: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            layer: "bd",
            name,
            kind,
            start_ns: start,
            dur_ns: dur,
            worker: 0,
            seq: start,
            attrs: vec![("x", "1/2".to_string())],
        }
    }

    fn sample() -> Trace {
        Trace {
            events: vec![
                ev("round", EventKind::Span, 1_000, 123_456),
                ev("round", EventKind::Span, 200_000, 7_000),
                ev("breakpoint", EventKind::Instant, 300_000, 0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn summary_groups_and_ranks() {
        let s = sample().summary();
        assert!(s.contains("bd.round"), "{s}");
        assert!(s.contains("bd.breakpoint"), "{s}");
        // total = 130456ns -> "130us"; p50 of [7000, 123456] is 7000ns.
        assert!(s.contains("130us"), "{s}");
        assert!(s.contains("7000ns"), "{s}");
    }

    #[test]
    fn jsonl_has_fixed_key_order_and_escapes() {
        let mut t = sample();
        t.events[0].attrs = vec![("note", "a\"b\\c\n".to_string())];
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(
            "{\"layer\": \"bd\", \"name\": \"round\", \"kind\": \"span\", \"ts_ns\": 1000"
        ));
        assert!(lines[0].contains("\\\"b\\\\c\\n"), "{}", lines[0]);
        assert!(lines[2].contains("\"kind\": \"instant\""));
    }

    #[test]
    fn chrome_json_is_balanced_and_typed() {
        let c = sample().to_chrome_json();
        assert!(c.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(c.trim_end().ends_with("]}"));
        assert!(c.contains("\"ph\": \"X\""));
        assert!(c.contains("\"ph\": \"i\""));
        // 123456 ns -> 123.456 us.
        assert!(c.contains("\"dur\": 123.456"), "{c}");
        let opens = c.matches('{').count();
        let closes = c.matches('}').count();
        assert_eq!(opens, closes, "balanced braces:\n{c}");
    }

    #[test]
    fn span_stats_aggregate_per_kind() {
        let rows = sample().span_stats();
        assert_eq!(rows.len(), 1, "{rows:?}"); // instants excluded
        assert_eq!((rows[0].layer, rows[0].name), ("bd", "round"));
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_ns, 130_456);
        // Nearest rank: of a 2-element set, p50 (rank 1) is the lower
        // value and p99 (rank 2) the upper (matches
        // `percentile_is_nearest_rank`).
        assert_eq!(rows[0].p50_ns, 7_000);
        assert_eq!(rows[0].p99_ns, 123_456);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        // Empty: defined as 0 for every p.
        assert_eq!(percentile(&[], 0), 0);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[], 100), 0);
        // Single element: it is every percentile.
        assert_eq!(percentile(&[5], 0), 5);
        assert_eq!(percentile(&[5], 50), 5);
        assert_eq!(percentile(&[5], 99), 5);
        assert_eq!(percentile(&[5], 100), 5);
        // Two elements: p≤50 is the lower, p>50 the upper.
        assert_eq!(percentile(&[7_000, 123_456], 0), 7_000);
        assert_eq!(percentile(&[7_000, 123_456], 50), 7_000);
        assert_eq!(percentile(&[7_000, 123_456], 51), 123_456);
        assert_eq!(percentile(&[7_000, 123_456], 99), 123_456);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 90), 90);
        // Out-of-range p clamps rather than indexing past the end.
        assert_eq!(percentile(&v, 300), 100);
    }

    #[test]
    fn fmt_us_is_exact_integer_math() {
        assert_eq!(fmt_us(0), "0.000");
        assert_eq!(fmt_us(999), "0.999");
        assert_eq!(fmt_us(123_456), "123.456");
    }
}
