//! `prs-metrics` — the streaming half of the observability stack.
//!
//! [`crate::Trace::span_stats`] is post-hoc: it needs the whole event
//! buffer in memory and a [`take`](crate::take) to drain it, which a
//! long-lived service can never afford. This module keeps **bounded**
//! aggregate state updated online at span close instead, and adds the
//! operational machinery a `prs serve` deployment needs around it:
//!
//! 1. **Streaming histograms** ([`Histogram`]): log-linear (HDR-style)
//!    buckets over integer nanoseconds, one histogram per `(layer, span)`
//!    pair, updated at every span close while [`MetricsConfig::enabled`].
//!    Constant memory (≤ [`MAX_BUCKETS`] `u64` slots per span kind, in
//!    practice far fewer), fixed relative error (see
//!    [`Histogram::quantile`]), and a merge that is plain bucket-count
//!    addition — commutative and associative, so parallel workers merge
//!    deterministically in any order. [`snapshot`] / [`snapshot_jsonl`]
//!    read the live state *without draining it*, mid-run.
//! 2. **SLO watchdog** ([`SloConfig`]): per-span latency and count
//!    thresholds checked at span close. A violation bumps the
//!    `metrics.slo_breaches` counter, emits a registered `slo.breach`
//!    instant event, and trips the flight recorder.
//! 3. **Flight recorder** ([`FlightConfig`]): a bounded per-thread ring
//!    of the most recent spans/instants (attributes included) that keeps
//!    working under `take()`-free operation. [`anomaly`] dumps the
//!    calling thread's ring as Chrome trace-event JSON — triggers are
//!    wired at the i128 overflow poison, the BigInt promotion sites, the
//!    `Recomputed` delta tier, and SLO breaches.
//!
//! Everything is gated by the same single state word as event recording
//! (see `STATE` in the crate root): with every subsystem off, a span is
//! one relaxed atomic load — asserted by the `metrics_overhead` bench row.

use crate::{instant, span, Counter, TraceEvent, BIT_FLIGHT, BIT_METRICS, BIT_SLO};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Log-linear histogram.
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: each power-of-two decade is split into
/// `2^SUB_BITS` linear buckets, which bounds the relative quantile error
/// at `1 / 2^SUB_BITS` (see [`Histogram::quantile`]).
pub const SUB_BITS: u32 = 6;

const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// Upper bound on bucket-array length: values below `2^SUB_BITS` get one
/// exact bucket each, and each of the 58 remaining decades of `u64`
/// contributes `2^SUB_BITS` log-linear buckets.
pub const MAX_BUCKETS: usize = 3776;

/// Bucket index for a duration: exact below `SUB_BUCKETS`, log-linear
/// above (top `SUB_BITS` bits after the leading one select the
/// sub-bucket).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        usize::try_from(v).unwrap_or(0)
    } else {
        let msb = u64::from(63 - v.leading_zeros());
        let shift = msb - u64::from(SUB_BITS);
        let idx = SUB_BUCKETS + shift * SUB_BUCKETS + ((v >> shift) & (SUB_BUCKETS - 1));
        usize::try_from(idx).unwrap_or(MAX_BUCKETS - 1)
    }
}

/// Smallest duration mapping to bucket `idx` — the inverse of
/// [`bucket_index`] on bucket lower bounds.
fn bucket_lower(idx: usize) -> u64 {
    let i = u64::try_from(idx).unwrap_or(0);
    if i < SUB_BUCKETS {
        i
    } else {
        let shift = i / SUB_BUCKETS - 1;
        let sub = i % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << shift
    }
}

/// Nearest-rank position for quantile `q` (percent) over `count`
/// observations: 1-based `ceil(count·q/100)`, clamped to `[1, count]` —
/// the same convention as `span_stats()`'s percentile, so streaming and
/// post-hoc answers are comparable rank-for-rank.
fn nearest_rank(count: u64, q: u64) -> u64 {
    count
        .saturating_mul(q.min(100))
        .div_ceil(100)
        .clamp(1, count)
}

/// A streaming log-linear histogram over integer-nanosecond durations.
///
/// Buckets are exact below `2^SUB_BITS` ns and geometric with
/// `2^SUB_BITS` linear sub-buckets per power-of-two decade above, so the
/// bucket holding a value `v ≥ 2^SUB_BITS` has width `≤ v / 2^SUB_BITS`.
/// Memory is bounded by [`MAX_BUCKETS`] `u64` slots and in practice by
/// the largest duration seen. Merging two histograms is bucket-count
/// addition: commutative, associative, and therefore deterministic under
/// any merge order or thread schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u64,
}

impl Histogram {
    /// An empty histogram (no allocation until the first record).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration. Constant-time; saturating on the (absurd)
    /// `u64` totals overflow.
    pub fn record(&mut self, dur_ns: u64) {
        let idx = bucket_index(dur_ns);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot = slot.saturating_add(1);
        }
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(dur_ns);
    }

    /// Fold another histogram into this one (bucket-count addition).
    pub fn merge(&mut self, other: &Histogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst = dst.saturating_add(*src);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations, nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Nearest-rank quantile (`q` in percent, clamped to 100): the lower
    /// bound of the bucket holding the rank-`ceil(count·q/100)` smallest
    /// observation. Returns 0 on an empty histogram.
    ///
    /// **Error bound.** The answer never exceeds the exact nearest-rank
    /// value `x`, and undershoots it by less than the bucket width:
    /// exact for `x < 2^SUB_BITS` ns, and within `x / 2^SUB_BITS`
    /// (< 1.6% for `SUB_BITS = 6`) above — i.e.
    /// `(x - quantile) · 2^SUB_BITS ≤ x`.
    pub fn quantile(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = nearest_rank(self.count, q);
        let mut cum: u64 = 0;
        for (i, c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(*c);
            if cum >= rank {
                return bucket_lower(i);
            }
        }
        bucket_lower(self.counts.len().saturating_sub(1))
    }
}

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
struct SloEntry {
    span: String,
    max_dur_ns: Option<u64>,
    max_count: Option<u64>,
}

/// SLO watchdog rules: span names (`"layer.name"`, matching the
/// registered taxonomy in `docs/trace-registry.txt`) mapped to latency
/// and/or count thresholds. Built with the stack's usual `with_*`
/// convention; an empty config disarms the watchdog.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SloConfig {
    rules: Vec<SloEntry>,
}

impl SloConfig {
    /// No rules.
    pub fn new() -> Self {
        SloConfig::default()
    }

    fn upsert(&mut self, span: &str) -> Option<&mut SloEntry> {
        if !self.rules.iter().any(|e| e.span == span) {
            self.rules.push(SloEntry {
                span: span.to_string(),
                max_dur_ns: None,
                max_count: None,
            });
        }
        self.rules.iter_mut().find(|e| e.span == span)
    }

    /// Breach whenever a `span` (e.g. `"bd.session_round"`) closes with a
    /// duration strictly above `max_dur_ns`.
    pub fn with_latency(mut self, span: &str, max_dur_ns: u64) -> Self {
        if let Some(e) = self.upsert(span) {
            e.max_dur_ns = Some(max_dur_ns);
        }
        self
    }

    /// Breach (once) when more than `max_count` closes of `span` have
    /// been seen since [`install`] / [`reset`].
    pub fn with_count(mut self, span: &str, max_count: u64) -> Self {
        if let Some(e) = self.upsert(span) {
            e.max_count = Some(max_count);
        }
        self
    }

    /// Number of configured rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are configured (watchdog disarmed).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Flight-recorder configuration: a bounded per-thread ring of the most
/// recent spans/instants, dumped to `dump_dir` as Chrome trace-event
/// JSON when [`anomaly`] fires.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct FlightConfig {
    /// Ring capacity (events) per thread; `0` disables the recorder.
    pub capacity: usize,
    /// Directory for anomaly dumps; `None` keeps the ring in memory only
    /// (inspectable via [`flight_snapshot`], nothing written to disk).
    pub dump_dir: Option<PathBuf>,
    /// Cap on dump files written per process; anomalies past the cap
    /// still count (`metrics.anomalies`) but write nothing.
    pub max_dumps: u64,
}

impl FlightConfig {
    /// Recorder armed with a 256-event ring, in-memory only, and at most
    /// 8 dump files once a `dump_dir` is set.
    pub fn new() -> Self {
        FlightConfig {
            capacity: 256,
            dump_dir: None,
            max_dumps: 8,
        }
    }

    /// Recorder off (zero capacity).
    pub fn off() -> Self {
        FlightConfig {
            capacity: 0,
            dump_dir: None,
            max_dumps: 0,
        }
    }

    /// Override the per-thread ring capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Write anomaly dumps under `dir`.
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dump_dir = Some(dir.into());
        self
    }

    /// Override the process-wide dump-file cap.
    pub fn with_max_dumps(mut self, max_dumps: u64) -> Self {
        self.max_dumps = max_dumps;
        self
    }
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig::new()
    }
}

/// Top-level metrics configuration, installed with [`install`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct MetricsConfig {
    /// Whether streaming histograms update at span close.
    pub enabled: bool,
    /// SLO watchdog rules (armed only while `enabled` and non-empty).
    pub slo: SloConfig,
    /// Flight-recorder configuration.
    pub flight: FlightConfig,
}

impl MetricsConfig {
    /// Histograms on, watchdog disarmed, flight recorder off.
    pub fn new() -> Self {
        MetricsConfig {
            enabled: true,
            slo: SloConfig::new(),
            flight: FlightConfig::off(),
        }
    }

    /// Toggle histogram recording.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Install SLO watchdog rules.
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = slo;
        self
    }

    /// Install a flight-recorder configuration.
    pub fn with_flight(mut self, flight: FlightConfig) -> Self {
        self.flight = flight;
        self
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig::new()
    }
}

// ---------------------------------------------------------------------------
// Global state.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct SloRule {
    layer: String,
    name: String,
    max_dur_ns: Option<u64>,
    max_count: Option<u64>,
    seen: u64,
    count_fired: bool,
}

struct MetricsState {
    hists: BTreeMap<(&'static str, &'static str), Histogram>,
    slo: Vec<SloRule>,
}

static METRICS: Mutex<MetricsState> = Mutex::new(MetricsState {
    hists: BTreeMap::new(),
    slo: Vec::new(),
});

static FLIGHT_CAP: AtomicUsize = AtomicUsize::new(0);
static MAX_DUMPS: AtomicU64 = AtomicU64::new(0);
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

static SLO_BREACHES: Counter = Counter::new("metrics.slo_breaches");
static ANOMALIES: Counter = Counter::new("metrics.anomalies");
static FLIGHT_DUMPS: Counter = Counter::new("metrics.flight_dumps");

/// Registered name of the flight-recorder dump span (layer `metrics`).
const MSPAN_FLIGHT_DUMP: &str = "flight_dump";

fn lock_metrics() -> std::sync::MutexGuard<'static, MetricsState> {
    // Same poison policy as the event sink: a panicked recording thread
    // must not take everyone else's metrics down with it.
    match METRICS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock_dump_dir() -> std::sync::MutexGuard<'static, Option<PathBuf>> {
    match DUMP_DIR.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Install a metrics configuration: replaces the SLO rule set and flight
/// settings, clears nothing (histograms persist across installs — use
/// [`reset`] to zero them), and flips the state bits so the span fast
/// path routes accordingly.
pub fn install(cfg: &MetricsConfig) {
    {
        let mut st = lock_metrics();
        st.slo = cfg
            .slo
            .rules
            .iter()
            .map(|e| {
                let (layer, name) = match e.span.split_once('.') {
                    Some((l, n)) => (l.to_string(), n.to_string()),
                    None => (String::new(), e.span.clone()),
                };
                SloRule {
                    layer,
                    name,
                    max_dur_ns: e.max_dur_ns,
                    max_count: e.max_count,
                    seen: 0,
                    count_fired: false,
                }
            })
            .collect();
    }
    FLIGHT_CAP.store(cfg.flight.capacity, Ordering::Relaxed);
    MAX_DUMPS.store(cfg.flight.max_dumps, Ordering::Relaxed);
    *lock_dump_dir() = cfg.flight.dump_dir.clone();
    let mut bits = 0;
    if cfg.enabled {
        bits |= BIT_METRICS;
        if !cfg.slo.is_empty() {
            bits |= BIT_SLO;
        }
    }
    if cfg.flight.capacity > 0 {
        bits |= BIT_FLIGHT;
    }
    crate::clear_state_bits(BIT_METRICS | BIT_SLO | BIT_FLIGHT);
    crate::set_state_bits(bits);
}

/// Turn streaming histograms on with the default configuration.
pub fn enable() {
    install(&MetricsConfig::new());
}

/// Turn every metrics subsystem off (histograms keep their contents for
/// later [`snapshot`]s; use [`reset`] to zero them).
pub fn disable() {
    crate::clear_state_bits(BIT_METRICS | BIT_SLO | BIT_FLIGHT);
}

/// Whether streaming histograms are currently updating.
#[inline]
pub fn is_enabled() -> bool {
    crate::state_bits() & BIT_METRICS != 0
}

/// Zero every histogram, re-arm fired SLO count rules, and clear the
/// calling thread's flight ring. Counters (`metrics.*`) are process
/// cumulative and not touched.
pub fn reset() {
    let mut st = lock_metrics();
    st.hists.clear();
    for r in st.slo.iter_mut() {
        r.seen = 0;
        r.count_fired = false;
    }
    drop(st);
    let _ = RING.try_with(|cell| {
        if let Ok(mut r) = cell.try_borrow_mut() {
            r.buf.clear();
            r.next = 0;
        }
    });
}

// ---------------------------------------------------------------------------
// Span-close hook (called from SpanGuard::drop in the crate root).
// ---------------------------------------------------------------------------

struct Breach {
    span: String,
    kind: &'static str,
    observed: u64,
    limit: u64,
}

pub(crate) fn on_span_close(layer: &'static str, name: &'static str, dur_ns: u64, bits: u32) {
    let mut breaches: Vec<Breach> = Vec::new();
    {
        let mut st = lock_metrics();
        if bits & BIT_METRICS != 0 {
            st.hists.entry((layer, name)).or_default().record(dur_ns);
        }
        if bits & BIT_SLO != 0 {
            for rule in st.slo.iter_mut() {
                if rule.layer != layer || rule.name != name {
                    continue;
                }
                rule.seen = rule.seen.saturating_add(1);
                if let Some(max) = rule.max_dur_ns {
                    if dur_ns > max {
                        breaches.push(Breach {
                            span: format!("{layer}.{name}"),
                            kind: "latency",
                            observed: dur_ns,
                            limit: max,
                        });
                    }
                }
                if let Some(max) = rule.max_count {
                    if rule.seen > max && !rule.count_fired {
                        rule.count_fired = true;
                        breaches.push(Breach {
                            span: format!("{layer}.{name}"),
                            kind: "count",
                            observed: rule.seen,
                            limit: max,
                        });
                    }
                }
            }
        }
    }
    // Emit outside the state lock: the breach instant, counter, and
    // flight dump all re-enter the recorder.
    for b in breaches {
        SLO_BREACHES.add(1);
        instant("slo", "breach", || {
            vec![
                ("span", b.span.clone()),
                ("kind", b.kind.to_string()),
                ("observed", b.observed.to_string()),
                ("limit", b.limit.to_string()),
            ]
        });
        anomaly("slo_breach");
    }
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// One histogram's aggregate row, as returned by [`snapshot`].
/// Percentiles carry the [`Histogram::quantile`] error bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramRow {
    /// Layer the spans belong to.
    pub layer: &'static str,
    /// Stable span name within the layer.
    pub name: &'static str,
    /// Number of span closes recorded.
    pub count: u64,
    /// Summed duration, nanoseconds (saturating).
    pub sum_ns: u64,
    /// Streaming median, nanoseconds.
    pub p50_ns: u64,
    /// Streaming 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// Streaming 99th percentile, nanoseconds.
    pub p99_ns: u64,
}

/// Read every live histogram as aggregate rows, sorted by
/// `(layer, name)`, **without draining** anything — safe to call mid-run
/// from any thread, any number of times.
pub fn snapshot() -> Vec<HistogramRow> {
    let st = lock_metrics();
    st.hists
        .iter()
        .map(|(&(layer, name), h)| HistogramRow {
            layer,
            name,
            count: h.count(),
            sum_ns: h.sum_ns(),
            p50_ns: h.quantile(50),
            p90_ns: h.quantile(90),
            p99_ns: h.quantile(99),
        })
        .collect()
}

/// [`snapshot`] rendered as JSONL: one object per `(layer, span)` with a
/// fixed key order (`layer`, `name`, `count`, `sum_ns`, `p50_ns`,
/// `p90_ns`, `p99_ns`), rows sorted by `(layer, name)`. Also emits a
/// `metrics.snapshot` instant event so exported traces show when live
/// snapshots were taken.
pub fn snapshot_jsonl() -> String {
    let rows = snapshot();
    instant("metrics", "snapshot", || {
        vec![("rows", rows.len().to_string())]
    });
    let mut out = String::new();
    for r in &rows {
        out.push_str("{\"layer\": \"");
        crate::export::escape_into(&mut out, r.layer);
        out.push_str("\", \"name\": \"");
        crate::export::escape_into(&mut out, r.name);
        out.push_str(&format!(
            "\", \"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}\n",
            r.count, r.sum_ns, r.p50_ns, r.p90_ns, r.p99_ns
        ));
    }
    out
}

/// The live quantile for one `(layer, name)` span kind, or `None` if no
/// close has been recorded for it.
pub fn quantile(layer: &str, name: &str, q: u64) -> Option<u64> {
    let st = lock_metrics();
    st.hists
        .iter()
        .find(|((l, n), _)| *l == layer && *n == name)
        .map(|(_, h)| h.quantile(q))
}

/// A clone of one span kind's live histogram, or `None` if no close has
/// been recorded for it.
pub fn histogram(layer: &str, name: &str) -> Option<Histogram> {
    let st = lock_metrics();
    st.hists
        .iter()
        .find(|((l, n), _)| *l == layer && *n == name)
        .map(|(_, h)| h.clone())
}

/// Process-cumulative `metrics.slo_breaches` counter value.
pub fn slo_breach_count() -> u64 {
    SLO_BREACHES.get()
}

/// Process-cumulative `metrics.anomalies` counter value.
pub fn anomaly_count() -> u64 {
    ANOMALIES.get()
}

/// Process-cumulative `metrics.flight_dumps` counter value.
pub fn flight_dump_count() -> u64 {
    FLIGHT_DUMPS.get()
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

struct FlightRing {
    buf: Vec<TraceEvent>,
    next: usize,
}

impl FlightRing {
    fn push(&mut self, ev: TraceEvent, cap: usize) {
        if self.buf.len() > cap {
            // Capacity shrank since the last install: restart rather than
            // reason about a partially valid ring.
            self.buf.clear();
            self.next = 0;
        }
        if self.buf.len() < cap {
            self.buf.push(ev);
        } else if let Some(slot) = self.buf.get_mut(self.next) {
            *slot = ev;
            self.next = (self.next + 1) % cap.max(1);
        }
    }

    fn ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(self.buf.get(self.next..).unwrap_or(&[]));
        out.extend_from_slice(self.buf.get(..self.next).unwrap_or(&[]));
        out
    }
}

thread_local! {
    static RING: RefCell<FlightRing> = const {
        RefCell::new(FlightRing { buf: Vec::new(), next: 0 })
    };
    /// Re-entrancy guard: the dump itself opens a span whose close could
    /// (via an SLO rule on `metrics.flight_dump`) trigger another
    /// anomaly; one dump at a time per thread.
    static IN_DUMP: Cell<bool> = const { Cell::new(false) };
}

/// Append an event to the calling thread's flight ring (called from the
/// span/instant paths in the crate root while `BIT_FLIGHT` is set).
pub(crate) fn flight_record(ev: &TraceEvent) {
    let cap = FLIGHT_CAP.load(Ordering::Relaxed);
    if cap == 0 {
        return;
    }
    let _ = RING.try_with(|cell| {
        if let Ok(mut r) = cell.try_borrow_mut() {
            r.push(ev.clone(), cap);
        }
    });
}

/// The calling thread's flight ring, oldest event first. Empty when the
/// recorder is off or nothing has been recorded on this thread.
pub fn flight_snapshot() -> Vec<TraceEvent> {
    RING.try_with(|cell| cell.try_borrow().map(|r| r.ordered()).unwrap_or_default())
        .unwrap_or_default()
}

/// Report an anomaly: bumps `metrics.anomalies`, emits a
/// `metrics.anomaly` instant (which also lands in the flight ring, so
/// the dump records its own trigger), and — when the flight recorder is
/// armed with a dump directory — writes the calling thread's ring as
/// Chrome trace-event JSON under the configured directory.
///
/// Wired triggers: i128 overflow poison (`prs-flow`), BigInt promotion
/// sites and `Recomputed` delta tier (`prs-bd`), and SLO breaches
/// (this module). `kind` names the trigger in the dump filename and the
/// instant's attributes.
pub fn anomaly(kind: &'static str) {
    ANOMALIES.add(1);
    instant("metrics", "anomaly", || vec![("kind", kind.to_string())]);
    if crate::state_bits() & BIT_FLIGHT == 0 {
        return;
    }
    let already = IN_DUMP.try_with(|c| c.replace(true)).unwrap_or(true);
    if already {
        return;
    }
    dump(kind);
    let _ = IN_DUMP.try_with(|c| c.set(false));
}

fn dump(kind: &'static str) {
    let dir = lock_dump_dir().clone();
    let Some(dir) = dir else {
        return;
    };
    if DUMP_SEQ.load(Ordering::Relaxed) >= MAX_DUMPS.load(Ordering::Relaxed) {
        return;
    }
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    if seq >= MAX_DUMPS.load(Ordering::Relaxed) {
        return;
    }
    let mut sp = span("metrics", MSPAN_FLIGHT_DUMP);
    sp.attr("kind", || kind.to_string());
    let events = flight_snapshot();
    sp.attr("events", || events.len().to_string());
    let json = crate::export::chrome_json_of(&events);
    let path = dir.join(format!("flight-{seq:03}-{kind}.json"));
    if std::fs::write(&path, json).is_ok() {
        FLIGHT_DUMPS.add(1);
        sp.attr("path", || path.display().to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::locked;
    use crate::EventKind;

    fn quiesce() {
        disable();
        crate::disable();
        reset();
        crate::clear();
        SLO_BREACHES.set(0);
        ANOMALIES.set(0);
        FLIGHT_DUMPS.set(0);
    }

    #[test]
    fn bucket_index_round_trips_lower_bounds() {
        // Exact region.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_lower(bucket_index(v)), v);
        }
        // Log-linear region: lower ≤ v, width ≤ v / 64.
        for &v in &[64u64, 65, 100, 1_000, 123_456, 1 << 33, u64::MAX] {
            let i = bucket_index(v);
            let lo = bucket_lower(i);
            assert!(lo <= v, "lo={lo} v={v}");
            assert!((v - lo).saturating_mul(SUB_BUCKETS) <= v, "lo={lo} v={v}");
            if i + 1 < MAX_BUCKETS {
                assert!(bucket_lower(i + 1) > v, "v={v} must fall below next bucket");
            }
        }
        assert!(bucket_index(u64::MAX) < MAX_BUCKETS);
    }

    #[test]
    fn quantile_matches_exact_within_documented_bound() {
        // Deterministic LCG over several decades.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut vals: Vec<u64> = Vec::new();
        let mut h = Histogram::new();
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let v = (x >> 32) % (1 << (8 + (i % 7) * 4));
            vals.push(v);
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0u64, 1, 10, 50, 90, 99, 100] {
            let rank = nearest_rank(h.count(), q);
            let idx = usize::try_from(rank - 1).unwrap();
            let exact = vals[idx];
            let est = h.quantile(q);
            assert!(est <= exact, "q={q} est={est} exact={exact}");
            assert!(
                (exact - est).saturating_mul(SUB_BUCKETS) <= exact,
                "q={q} est={est} exact={exact}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum_ns(), vals.iter().sum::<u64>());
    }

    #[test]
    fn quantile_edge_counts() {
        let h = Histogram::new();
        assert_eq!(h.quantile(50), 0);
        assert!(h.is_empty());
        let mut h1 = Histogram::new();
        h1.record(42);
        for q in [0, 50, 99, 100] {
            assert_eq!(h1.quantile(q), 42, "single element is every quantile");
        }
        let mut h2 = Histogram::new();
        h2.record(7);
        h2.record(63);
        assert_eq!(h2.quantile(50), 7, "rank 1 of 2");
        assert_eq!(h2.quantile(99), 63, "rank 2 of 2");
    }

    #[test]
    fn merge_is_order_independent() {
        // Per-"worker" histograms built in threads, merged in two
        // different permutations — mirrors tests/trace_determinism.rs.
        let shards: Vec<Vec<u64>> = (0..4)
            .map(|w| (0..500u64).map(|i| (i * 7 + w * 13) % 100_000).collect())
            .collect();
        let hists: Vec<Histogram> = std::thread::scope(|s| {
            let handles: Vec<_> = shards
                .iter()
                .map(|vals| {
                    s.spawn(move || {
                        let mut h = Histogram::new();
                        for &v in vals {
                            h.record(v);
                        }
                        h
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut fwd = Histogram::new();
        for h in &hists {
            fwd.merge(h);
        }
        let mut rev = Histogram::new();
        for h in hists.iter().rev() {
            rev.merge(h);
        }
        assert_eq!(fwd, rev);
        for q in [50, 90, 99] {
            assert_eq!(fwd.quantile(q), rev.quantile(q));
        }
        assert_eq!(fwd.count(), 2_000);
    }

    #[test]
    fn span_close_feeds_histograms_without_recording() {
        let _g = locked();
        quiesce();
        install(&MetricsConfig::new());
        {
            let mut s = span("bd", "round");
            assert!(!s.is_recording(), "metrics-only: no event destination");
            let mut ran = false;
            s.attr("x", || {
                ran = true;
                String::new()
            });
            assert!(!ran, "attr closures must not run metrics-only");
        }
        disable();
        let rows = snapshot();
        let row = rows
            .iter()
            .find(|r| (r.layer, r.name) == ("bd", "round"))
            .expect("histogram row");
        assert_eq!(row.count, 1);
        assert!(crate::take().events.is_empty(), "no events buffered");
        quiesce();
    }

    #[test]
    fn snapshot_jsonl_fixed_keys_and_monotone_quantiles() {
        let _g = locked();
        quiesce();
        install(&MetricsConfig::new());
        for _ in 0..32 {
            let _s = span("flow", "i128_max_flow");
        }
        let jsonl = snapshot_jsonl();
        disable();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1, "{jsonl}");
        assert!(
            lines[0].starts_with(
                "{\"layer\": \"flow\", \"name\": \"i128_max_flow\", \"count\": 32, \"sum_ns\": "
            ),
            "{jsonl}"
        );
        let row = snapshot().pop().expect("one row");
        assert!(row.p50_ns <= row.p90_ns && row.p90_ns <= row.p99_ns);
        quiesce();
    }

    #[test]
    fn slo_latency_breach_emits_event_and_counter() {
        let _g = locked();
        quiesce();
        crate::enable();
        install(&MetricsConfig::new().with_slo(SloConfig::new().with_latency("bd.round", 0)));
        let before = slo_breach_count();
        {
            let _s = span("bd", "round");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disable();
        crate::disable();
        assert!(slo_breach_count() > before, "latency breach must fire");
        let t = crate::take();
        assert!(
            t.events
                .iter()
                .any(|e| e.layer == "slo" && e.name == "breach" && e.kind == EventKind::Instant),
            "breach instant recorded: {:?}",
            t.events
        );
        quiesce();
    }

    #[test]
    fn slo_count_breach_fires_once() {
        let _g = locked();
        quiesce();
        install(&MetricsConfig::new().with_slo(SloConfig::new().with_count("bd.round", 2)));
        let before = slo_breach_count();
        for _ in 0..5 {
            let _s = span("bd", "round");
        }
        disable();
        assert_eq!(slo_breach_count() - before, 1, "count breach fires once");
        quiesce();
    }

    #[test]
    fn flight_ring_wraps_and_keeps_most_recent() {
        let _g = locked();
        quiesce();
        install(
            &MetricsConfig::new()
                .with_enabled(false)
                .with_flight(FlightConfig::new().with_capacity(4)),
        );
        for i in 0..10u64 {
            instant("bd", "tick", || vec![("i", i.to_string())]);
        }
        let ring = flight_snapshot();
        disable();
        assert_eq!(ring.len(), 4, "ring holds exactly its capacity");
        let seen: Vec<String> = ring
            .iter()
            .map(|e| e.attrs.first().map(|(_, v)| v.clone()).unwrap_or_default())
            .collect();
        assert_eq!(seen, vec!["6", "7", "8", "9"], "oldest→newest, last 4");
        quiesce();
    }

    #[test]
    fn anomaly_dumps_ring_to_dir() {
        let _g = locked();
        quiesce();
        let dir = std::env::temp_dir().join(format!("prs-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let seq0 = DUMP_SEQ.load(Ordering::Relaxed);
        install(
            &MetricsConfig::new().with_flight(
                FlightConfig::new()
                    .with_capacity(16)
                    .with_dump_dir(&dir)
                    .with_max_dumps(seq0 + 4),
            ),
        );
        {
            let _s = span("bd", "session_round");
        }
        instant("bd", "tick", Vec::new);
        let dumps0 = flight_dump_count();
        anomaly("test_probe");
        disable();
        assert_eq!(flight_dump_count() - dumps0, 1, "one dump written");
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(Result::ok)
            .collect();
        assert_eq!(entries.len(), 1, "{entries:?}");
        let content = std::fs::read_to_string(entries[0].path()).expect("read dump");
        assert!(content.contains("\"session_round\""), "{content}");
        assert!(content.contains("test_probe"), "dump records its trigger");
        assert_eq!(
            content.matches('{').count(),
            content.matches('}').count(),
            "balanced chrome JSON"
        );
        let _ = std::fs::remove_dir_all(&dir);
        quiesce();
    }

    #[test]
    fn config_builders_round_trip() {
        let slo = SloConfig::new()
            .with_latency("bd.session_round", 1_000_000)
            .with_count("bd.session_round", 10)
            .with_latency("flow.i128_max_flow", 500);
        assert_eq!(slo.len(), 2, "same span upserts one rule");
        assert!(!slo.is_empty());
        let cfg = MetricsConfig::new()
            .with_enabled(false)
            .with_slo(slo.clone())
            .with_flight(FlightConfig::new().with_capacity(7).with_max_dumps(3));
        assert!(!cfg.enabled);
        assert_eq!(cfg.slo, slo);
        assert_eq!(cfg.flight.capacity, 7);
        assert_eq!(cfg.flight.max_dumps, 3);
        assert_eq!(MetricsConfig::default(), MetricsConfig::new());
        assert_eq!(FlightConfig::off().capacity, 0);
    }
}
