//! `prs-trace` — structured tracing for the whole solver stack.
//!
//! A process-global span/event recorder with lock-free per-thread buffers,
//! monotonic `u64`-nanosecond timing, and three exporters (human summary,
//! JSONL event log, Chrome trace-event JSON — see [`export`]). Every layer
//! of the stack records against stable span names (`flow.exact_max_flow`,
//! `bd.session_round`, `deviation.sample`, …); the taxonomy lives in
//! `docs/OBSERVABILITY.md`.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-cost when disabled.** [`span`] and [`instant`] are a single
//!    relaxed atomic load when the recorder is off — no clock read, no
//!    allocation, no attribute formatting (attributes are closures that
//!    only run while recording).
//! 2. **Panic-free, float-free, cast-free.** This crate sits inside the
//!    exact kernels' call graph, so `prs-lint` holds it to the same rules
//!    as `crates/numeric`: all timing and export arithmetic is integer.
//! 3. **Deterministic at joins.** Each thread buffers its own events
//!    (flushed to the global sink when the thread exits or at [`take`]);
//!    [`take`] merges them in `(worker, seq)` order and renumbers workers
//!    densely, so a single-threaded run exports byte-identical streams
//!    modulo timestamps, and parallel runs are permutation-equal.
//!
//! The recorder also hosts the process-wide [`Counter`] registry that
//! `prs_flow::stats` is built on: counters are always live (independent of
//! span recording) and surface in the human summary.
//!
//! The [`metrics`] module adds the *streaming* half of the story:
//! log-linear histograms updated at span close (bounded state, callable
//! mid-run), an SLO watchdog, and a per-thread flight recorder — all
//! gated by the same single state word as event recording, so the
//! disabled path stays one relaxed atomic load no matter how many
//! subsystems hang off span close.

pub mod export;
pub mod metrics;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Recorder configuration, threaded through the stack's usual
/// `#[non_exhaustive]` + `with_*` builder convention.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct TraceConfig {
    /// Whether span/event recording is on (counters are always live).
    pub enabled: bool,
    /// Per-thread buffered-event cap; events beyond it are counted as
    /// dropped rather than recorded (reported by [`take`], never silent).
    pub max_events_per_thread: usize,
}

impl TraceConfig {
    /// Recording on, with a roomy default buffer (2^20 events per thread).
    pub fn new() -> Self {
        TraceConfig {
            enabled: true,
            max_events_per_thread: 1 << 20,
        }
    }

    /// Toggle recording.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Override the per-thread buffered-event cap.
    pub fn with_max_events_per_thread(mut self, cap: usize) -> Self {
        self.max_events_per_thread = cap;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::new()
    }
}

/// What an event represents; drives the exporters' phase fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: entered at `start_ns`, lasted `dur_ns`.
    Span,
    /// A point-in-time marker (`dur_ns` is zero).
    Instant,
}

/// One recorded event. Timestamps are nanoseconds since the process
/// trace epoch (first clock use), monotonic within the process.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Layer the event belongs to (`"flow"`, `"bd"`, `"deviation"`, …).
    pub layer: &'static str,
    /// Stable span/event name within the layer.
    pub name: &'static str,
    /// Span or instant marker.
    pub kind: EventKind,
    /// Start time, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (zero for instants).
    pub dur_ns: u64,
    /// Dense worker (thread) id, assigned at [`take`] in merge order.
    pub worker: u64,
    /// Per-worker sequence number (program order on a thread), renumbered
    /// from zero at [`take`].
    pub seq: u64,
    /// Key/value attributes (values preformatted by the recording site).
    pub attrs: Vec<(&'static str, String)>,
}

/// A drained trace: every event recorded since the previous [`take`],
/// merged deterministically, plus the count of events the per-thread cap
/// forced us to drop (so truncation is never silent).
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Events in `(worker, seq)` order.
    pub events: Vec<TraceEvent>,
    /// Events dropped because a thread buffer hit its cap.
    pub dropped: u64,
}

// ---------------------------------------------------------------------------
// Global recorder state.
// ---------------------------------------------------------------------------

/// Recorder state bits, packed into one word so the disabled fast path in
/// [`span`] / [`instant`] is a *single* relaxed atomic load regardless of
/// which subsystems are armed. `BIT_RECORD` is classic event buffering;
/// the other bits belong to the [`metrics`] module and are set/cleared by
/// [`metrics::install`].
pub(crate) const BIT_RECORD: u32 = 1 << 0;
pub(crate) const BIT_METRICS: u32 = 1 << 1;
pub(crate) const BIT_FLIGHT: u32 = 1 << 2;
pub(crate) const BIT_SLO: u32 = 1 << 3;

static STATE: AtomicU32 = AtomicU32::new(0);
static MAX_PER_THREAD: AtomicUsize = AtomicUsize::new(1 << 20);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_WORKER: AtomicU64 = AtomicU64::new(0);
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn lock_sink() -> std::sync::MutexGuard<'static, Vec<TraceEvent>> {
    // A panicked recording thread must not silence everyone else's trace.
    match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[inline]
pub(crate) fn state_bits() -> u32 {
    STATE.load(Ordering::Relaxed)
}

pub(crate) fn set_state_bits(bits: u32) {
    STATE.fetch_or(bits, Ordering::Relaxed);
}

pub(crate) fn clear_state_bits(bits: u32) {
    STATE.fetch_and(!bits, Ordering::Relaxed);
}

/// Install a configuration: sets the buffer cap and flips recording.
/// Metrics/flight/SLO state is independent — see [`metrics::install`].
pub fn install(cfg: &TraceConfig) {
    MAX_PER_THREAD.store(cfg.max_events_per_thread, Ordering::Relaxed);
    if cfg.enabled {
        set_state_bits(BIT_RECORD);
    } else {
        clear_state_bits(BIT_RECORD);
    }
}

/// Turn recording on with the default configuration.
pub fn enable() {
    install(&TraceConfig::new());
}

/// Turn recording off (buffered events stay until [`take`] or [`clear`]).
pub fn disable() {
    clear_state_bits(BIT_RECORD);
}

/// Whether event recording is currently on (metrics-only operation — see
/// [`metrics`] — does not count: no events are buffered there).
#[inline]
pub fn is_enabled() -> bool {
    state_bits() & BIT_RECORD != 0
}

// ---------------------------------------------------------------------------
// Per-thread buffers.
// ---------------------------------------------------------------------------

struct ThreadBuf {
    worker: u64,
    seq: u64,
    events: Vec<TraceEvent>,
}

impl ThreadBuf {
    fn fresh() -> Self {
        ThreadBuf {
            worker: NEXT_WORKER.fetch_add(1, Ordering::Relaxed),
            seq: 0,
            events: Vec::new(),
        }
    }

    fn push(&mut self, mut ev: TraceEvent) {
        if self.events.len() >= MAX_PER_THREAD.load(Ordering::Relaxed) {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ev.worker = self.worker;
        ev.seq = self.seq;
        self.seq += 1;
        self.events.push(ev);
    }

    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        lock_sink().append(&mut self.events);
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // Worker threads (crossbeam scopes, std::thread) flush on exit, so
        // a `take()` after the join sees every worker's events.
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::fresh());
}

fn record(ev: TraceEvent) {
    // `try_with`/`try_borrow_mut` keep this path panic-free even during
    // thread-local destruction or pathological re-entrancy; an event that
    // cannot be buffered is counted as dropped.
    let stored = BUF.try_with(|cell| {
        if let Ok(mut buf) = cell.try_borrow_mut() {
            buf.push(ev);
            true
        } else {
            false
        }
    });
    if stored != Ok(true) {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Spans and instants.
// ---------------------------------------------------------------------------

/// A live span: records one [`EventKind::Span`] event when dropped.
/// Obtained from [`span`]; inert (no clock, no allocation) when the
/// recorder was off at creation.
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    layer: &'static str,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, String)>,
    /// State bits captured at open; a mid-span `install` does not change
    /// where this span's close is routed.
    bits: u32,
}

/// Open a span. The returned guard records the span (with its duration)
/// when it goes out of scope — into the event buffer, the streaming
/// [`metrics`] histograms, and/or the flight-recorder ring, per the state
/// bits at open. When everything is off this is one relaxed atomic load
/// and returns an inert guard.
#[inline]
pub fn span(layer: &'static str, name: &'static str) -> SpanGuard {
    let bits = state_bits();
    if bits == 0 {
        return SpanGuard { open: None };
    }
    SpanGuard {
        open: Some(OpenSpan {
            layer,
            name,
            start_ns: now_ns(),
            attrs: Vec::new(),
            bits,
        }),
    }
}

impl SpanGuard {
    /// Whether this guard will record the span *event* (buffer or flight
    /// ring) — i.e. whether attribute prep is worth doing. Metrics-only
    /// operation answers `false`: histograms only consume the duration.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.open
            .as_ref()
            .is_some_and(|o| o.bits & (BIT_RECORD | BIT_FLIGHT) != 0)
    }

    /// Attach an attribute. The value closure only runs while the span
    /// event is going somewhere (recording or flight ring), so formatting
    /// costs nothing when tracing is off or metrics-only.
    #[inline]
    pub fn attr(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if let Some(open) = self.open.as_mut() {
            if open.bits & (BIT_RECORD | BIT_FLIGHT) != 0 {
                open.attrs.push((key, value()));
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let end_ns = now_ns();
            let dur_ns = end_ns.saturating_sub(open.start_ns);
            if open.bits & (BIT_METRICS | BIT_SLO) != 0 {
                metrics::on_span_close(open.layer, open.name, dur_ns, open.bits);
            }
            if open.bits & (BIT_RECORD | BIT_FLIGHT) != 0 {
                let ev = TraceEvent {
                    layer: open.layer,
                    name: open.name,
                    kind: EventKind::Span,
                    start_ns: open.start_ns,
                    dur_ns,
                    worker: 0,
                    seq: 0,
                    attrs: open.attrs,
                };
                if open.bits & BIT_FLIGHT != 0 {
                    metrics::flight_record(&ev);
                }
                if open.bits & BIT_RECORD != 0 {
                    record(ev);
                }
            }
        }
    }
}

/// Record a point-in-time event. The attribute closure only runs while
/// the event is going somewhere (recording or the flight-recorder ring);
/// when tracing is off this is one relaxed atomic load.
#[inline]
pub fn instant(
    layer: &'static str,
    name: &'static str,
    attrs: impl FnOnce() -> Vec<(&'static str, String)>,
) {
    let bits = state_bits();
    if bits & (BIT_RECORD | BIT_FLIGHT) == 0 {
        return;
    }
    let ev = TraceEvent {
        layer,
        name,
        kind: EventKind::Instant,
        start_ns: now_ns(),
        dur_ns: 0,
        worker: 0,
        seq: 0,
        attrs: attrs(),
    };
    if bits & BIT_FLIGHT != 0 {
        metrics::flight_record(&ev);
    }
    if bits & BIT_RECORD != 0 {
        record(ev);
    }
}

// ---------------------------------------------------------------------------
// Draining.
// ---------------------------------------------------------------------------

/// Flush the calling thread's buffered events to the global sink.
///
/// Scoped worker closures must call this as their **last act** (after
/// their span guards drop): `std::thread::scope` — and the crossbeam shim
/// over it — can return to the parent before a child thread's
/// thread-local destructors run, so relying on the TLS drop-flush alone
/// races the parent's [`take`]. The drop-flush stays as a backstop for
/// plain `std::thread::spawn` + `join` threads.
pub fn flush_thread() {
    let _ = BUF.try_with(|cell| {
        if let Ok(mut buf) = cell.try_borrow_mut() {
            buf.flush();
        }
    });
}

/// Drain every buffered event into a [`Trace`].
///
/// Flushes the calling thread's buffer, takes the global sink, sorts by
/// `(worker, seq)`, and renumbers both workers (densely, in merge order)
/// and each worker's `seq` (from zero) — so two identical runs in one
/// process export identical ids even though the underlying thread-local
/// counters keep growing. Call this at a quiescent point — after parallel
/// scopes have joined — or still-running threads' buffered events are
/// missed until their next flush.
pub fn take() -> Trace {
    flush_thread();
    let mut events = std::mem::take(&mut *lock_sink());
    events.sort_by_key(|a| (a.worker, a.seq));
    let mut dense: u64 = 0;
    let mut seq: u64 = 0;
    let mut prev: Option<u64> = None;
    for ev in events.iter_mut() {
        match prev {
            Some(p) if p == ev.worker => {}
            Some(_) => {
                dense += 1;
                seq = 0;
            }
            None => {}
        }
        prev = Some(ev.worker);
        ev.worker = dense;
        ev.seq = seq;
        seq += 1;
    }
    Trace {
        events,
        dropped: DROPPED.swap(0, Ordering::Relaxed),
    }
}

/// Discard every buffered event and the dropped-event count.
pub fn clear() {
    let _ = take();
}

// ---------------------------------------------------------------------------
// Counters.
// ---------------------------------------------------------------------------

/// A named process-global counter, always live (independent of span
/// recording). `prs_flow::stats` builds its engine counters on this type;
/// every counter self-registers on first use so the exporters can list
/// the full set without a static manifest.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

static REGISTRY: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

fn lock_registry() -> std::sync::MutexGuard<'static, Vec<&'static Counter>> {
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Counter {
    /// A new counter at zero. `name` should be globally unique and
    /// dot-namespaced by layer (e.g. `"flow.exact_bfs_phases"`).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Bump by `n` (relaxed; counters are monotone between resets).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock_registry().push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrite the value (used by `stats::reset`).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Snapshot every registered counter as `(name, value)`, sorted by name.
pub fn counter_values() -> Vec<(&'static str, u64)> {
    let mut out: Vec<(&'static str, u64)> = lock_registry()
        .iter()
        .map(|c| (c.name(), c.get()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(b.0));
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard};

    // The recorder is process-global, so tests that enable/drain it must
    // not interleave; this lock serializes them (shared with the metrics
    // module's tests, which toggle the same state word).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn locked() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::locked;
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let _g = locked();
        clear();
        disable();
        {
            let mut s = span("flow", "exact_max_flow");
            assert!(!s.is_recording());
            let mut ran = false;
            s.attr("x", || {
                ran = true;
                "never".to_string()
            });
            assert!(!ran, "attr closure must not run while disabled");
        }
        instant("bd", "noop", || vec![("k", "v".to_string())]);
        let t = take();
        assert!(t.events.is_empty());
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn spans_and_instants_record_in_program_order() {
        let _g = locked();
        clear();
        enable();
        {
            let mut s = span("bd", "round");
            s.attr("round", || "0".to_string());
        }
        instant("deviation", "breakpoint", || vec![("x", "1/2".to_string())]);
        {
            let _s = span("flow", "exact_max_flow");
        }
        disable();
        let t = take();
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.events[0].name, "round");
        assert_eq!(t.events[0].kind, EventKind::Span);
        assert_eq!(t.events[0].attrs, vec![("round", "0".to_string())]);
        assert_eq!(t.events[1].name, "breakpoint");
        assert_eq!(t.events[1].kind, EventKind::Instant);
        assert_eq!(t.events[1].dur_ns, 0);
        assert_eq!(t.events[2].name, "exact_max_flow");
        // Same thread: one dense worker id, increasing seq.
        assert!(t.events.iter().all(|e| e.worker == 0));
        assert!(t.events.windows(2).all(|w| w[0].seq < w[1].seq));
        // Monotonic timestamps on one thread.
        assert!(t.events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn worker_ids_renumber_densely_across_threads() {
        let _g = locked();
        clear();
        enable();
        {
            let _s = span("bd", "main_side");
        }
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut s = span("bd", "par_worker");
                    s.attr("job", || i.to_string());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable();
        let t = take();
        assert_eq!(t.events.len(), 4);
        let mut workers: Vec<u64> = t.events.iter().map(|e| e.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers, vec![0, 1, 2, 3], "dense renumbering");
    }

    #[test]
    fn per_thread_cap_counts_dropped_events() {
        let _g = locked();
        clear();
        install(&TraceConfig::new().with_max_events_per_thread(2));
        for _ in 0..5 {
            instant("bd", "tick", Vec::new);
        }
        disable();
        let t = take();
        // Restore the default cap for other tests.
        install(&TraceConfig::new().with_enabled(false));
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn counters_register_and_accumulate() {
        static PROBE: Counter = Counter::new("test.probe_counter");
        PROBE.add(3);
        PROBE.add(4);
        assert_eq!(PROBE.get(), 7);
        let vals = counter_values();
        let got = vals.iter().find(|(n, _)| *n == "test.probe_counter");
        assert!(got.is_some_and(|(_, v)| *v >= 7), "{vals:?}");
        PROBE.set(0);
        assert_eq!(PROBE.get(), 0);
    }

    #[test]
    fn config_builders_round_trip() {
        let cfg = TraceConfig::new()
            .with_enabled(false)
            .with_max_events_per_thread(64);
        assert!(!cfg.enabled);
        assert_eq!(cfg.max_events_per_thread, 64);
        assert_eq!(TraceConfig::default(), TraceConfig::new());
    }
}
