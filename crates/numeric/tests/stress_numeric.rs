//! Heavier randomized stress tests for the bignum stack: large operands,
//! long operation chains, and algebraic identities that would expose
//! carry/borrow/normalization bugs f64-scale tests cannot reach.

use prs_numeric::{gcd::gcd, BigInt, BigUint, Rational};

/// Tiny deterministic xorshift so the stress inputs are reproducible
/// without pulling `rand` into this crate's dev-deps.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn biguint(&mut self, limbs: usize) -> BigUint {
        BigUint::from_limbs((0..limbs).map(|_| self.next() as u32).collect())
    }
}

#[test]
fn mul_div_roundtrip_large() {
    let mut rng = XorShift(0x1234_5678_9abc_def1);
    for limbs in [1usize, 3, 10, 40, 100] {
        for _ in 0..10 {
            let a = rng.biguint(limbs);
            let mut b = rng.biguint(limbs / 2 + 1);
            if b.is_zero() {
                b = BigUint::one();
            }
            let prod = &a * &b;
            let (q, r) = prod.div_rem(&b);
            assert_eq!(q, a, "quotient mismatch at {limbs} limbs");
            assert!(r.is_zero(), "nonzero remainder on exact division");
        }
    }
}

#[test]
fn div_rem_invariant_random() {
    let mut rng = XorShift(0xfeed_cafe_dead_beef);
    for _ in 0..60 {
        let a_len = (rng.next() % 30 + 1) as usize;
        let a = rng.biguint(a_len);
        let d_len = (rng.next() % 10 + 1) as usize;
        let mut d = rng.biguint(d_len);
        if d.is_zero() {
            d = BigUint::from(7u32);
        }
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, a);
    }
}

#[test]
fn gcd_divides_both_and_is_maximal() {
    let mut rng = XorShift(0x0bad_f00d_0bad_f00d);
    for _ in 0..30 {
        let g0 = rng.biguint(3);
        if g0.is_zero() {
            continue;
        }
        let a = &rng.biguint(5) * &g0;
        let b = &rng.biguint(5) * &g0;
        if a.is_zero() || b.is_zero() {
            continue;
        }
        let g = gcd(&a, &b);
        // Divides both…
        assert!(a.div_rem(&g).1.is_zero());
        assert!(b.div_rem(&g).1.is_zero());
        // …and contains the planted common factor (g0 | a and g0 | b ⇒
        // g0 | gcd(a, b)).
        assert!(g.div_rem(&g0).1.is_zero());
        // Cofactors are coprime.
        let (qa, _) = a.div_rem(&g);
        let (qb, _) = b.div_rem(&g);
        assert!(gcd(&qa, &qb).is_one());
    }
}

#[test]
fn decimal_roundtrip_large() {
    let mut rng = XorShift(0x5555_aaaa_5555_aaaa);
    for limbs in [1usize, 8, 33] {
        let a = rng.biguint(limbs);
        let s = a.to_string();
        let back: BigUint = s.parse().unwrap();
        assert_eq!(back, a);
        // Decimal length sanity: log10(2^32) ≈ 9.63 digits per limb.
        assert!(s.len() <= limbs * 10 + 1);
    }
}

#[test]
fn rational_telescoping_sum_is_exact() {
    // Σ 1/(k(k+1)) telescopes to 1 − 1/(n+1); denominators stress reduction.
    let n = 400i64;
    let mut total = Rational::zero();
    for k in 1..=n {
        total += Rational::from_ratio(1, k * (k + 1));
    }
    assert_eq!(total, Rational::from_ratio(n, n + 1));
}

#[test]
fn rational_continued_product_cancels() {
    // Π (k+1)/k = n+1 after massive cross-cancellation.
    let n = 300i64;
    let mut prod = Rational::one();
    for k in 1..=n {
        prod = &prod * &Rational::from_ratio(k + 1, k);
    }
    assert_eq!(prod, Rational::from_integer(n + 1));
}

#[test]
fn bigint_pow_and_parse_agree() {
    let three = BigInt::from(3i64);
    let p = three.pow(100);
    // 3^100 computed independently via string arithmetic on BigUint pow.
    let q = BigUint::from(3u32).pow(100);
    assert_eq!(p.magnitude(), &q);
    assert_eq!(p.to_string().parse::<BigInt>().unwrap(), p);
}

#[test]
fn rational_binary_splitting_harmonic() {
    // H_200 via naive summation vs pairwise (binary-splitting) summation —
    // exact arithmetic must make them identical.
    let n = 200i64;
    let naive: Rational = (1..=n).map(|k| Rational::from_ratio(1, k)).sum();
    fn pairwise(lo: i64, hi: i64) -> Rational {
        if lo == hi {
            Rational::from_ratio(1, lo)
        } else {
            let mid = (lo + hi) / 2;
            &pairwise(lo, mid) + &pairwise(mid + 1, hi)
        }
    }
    assert_eq!(naive, pairwise(1, n));
}

#[test]
fn shift_mul_equivalence() {
    let mut rng = XorShift(0x1357_9bdf_2468_aced);
    for _ in 0..20 {
        let a = rng.biguint(6);
        let k = (rng.next() % 120) as u32;
        let shifted = &a << k;
        let mut pow2 = BigUint::one();
        for _ in 0..k {
            pow2.mul_limb(2);
        }
        assert_eq!(shifted, &a * &pow2, "shl {k} != mul 2^{k}");
    }
}
