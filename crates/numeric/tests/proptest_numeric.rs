//! Property-based tests for prs-numeric against machine-integer oracles.

use proptest::prelude::*;
use prs_numeric::{BigInt, BigUint, Rational};

fn bigu(v: u128) -> BigUint {
    BigUint::from(v)
}

fn bigi(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    // ---- BigUint vs u128 oracle ------------------------------------------

    #[test]
    fn biguint_add_matches_u128(a in 0u128..(1 << 126), b in 0u128..(1 << 126)) {
        prop_assert_eq!(&bigu(a) + &bigu(b), bigu(a + b));
    }

    #[test]
    fn biguint_sub_matches_u128(a: u128, b: u128) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(&bigu(hi) - &bigu(lo), bigu(hi - lo));
    }

    #[test]
    fn biguint_mul_matches_u128(a in 0u128..(1 << 63), b in 0u128..(1 << 63)) {
        prop_assert_eq!(&bigu(a) * &bigu(b), bigu(a * b));
    }

    #[test]
    fn biguint_div_rem_matches_u128(a: u128, b in 1u128..u128::MAX) {
        let (q, r) = bigu(a).div_rem(&bigu(b));
        prop_assert_eq!(q, bigu(a / b));
        prop_assert_eq!(r, bigu(a % b));
    }

    #[test]
    fn biguint_div_rem_roundtrip_multi_limb(
        a_limbs in proptest::collection::vec(any::<u32>(), 1..20),
        d_limbs in proptest::collection::vec(any::<u32>(), 1..8),
    ) {
        let a = BigUint::from_limbs(a_limbs);
        let d = BigUint::from_limbs(d_limbs);
        prop_assume!(!d.is_zero());
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn biguint_shift_roundtrip(a: u128, s in 0u32..200) {
        prop_assert_eq!(&(&bigu(a) << s) >> s, bigu(a));
    }

    #[test]
    fn biguint_ord_matches_u128(a: u128, b: u128) {
        prop_assert_eq!(bigu(a).cmp(&bigu(b)), a.cmp(&b));
    }

    #[test]
    fn biguint_display_parse_roundtrip(a: u128) {
        let s = bigu(a).to_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap(), bigu(a));
        prop_assert_eq!(s, a.to_string());
    }

    // ---- BigInt vs i128 oracle ----------------------------------------------

    #[test]
    fn bigint_ring_axioms(a in -(1i128 << 100)..(1i128 << 100),
                          b in -(1i128 << 100)..(1i128 << 100),
                          c in -(1i128 << 20)..(1i128 << 20)) {
        let (ba, bb, bc) = (bigi(a), bigi(b), bigi(c));
        // Commutativity / associativity of +.
        prop_assert_eq!(&ba + &bb, &bb + &ba);
        prop_assert_eq!(&(&ba + &bb) + &bc, &ba + &(&bb + &bc));
        // Distributivity (kept small enough not to overflow the oracle).
        prop_assert_eq!(&bc * &(&ba + &bb), &(&bc * &ba) + &(&bc * &bb));
        // Additive inverse.
        prop_assert_eq!(&ba + &(-&ba), BigInt::zero());
    }

    #[test]
    fn bigint_add_sub_matches_i128(a in -(1i128 << 126)..(1i128 << 126),
                                   b in -(1i128 << 126)..(1i128 << 126)) {
        prop_assert_eq!(&bigi(a) + &bigi(b), bigi(a + b));
        prop_assert_eq!(&bigi(a) - &bigi(b), bigi(a - b));
    }

    #[test]
    fn bigint_div_rem_matches_i128(a: i64, b: i64) {
        prop_assume!(b != 0);
        let (q, r) = bigi(a as i128).div_rem(&bigi(b as i128));
        prop_assert_eq!(q, bigi((a as i128) / (b as i128)));
        prop_assert_eq!(r, bigi((a as i128) % (b as i128)));
    }

    // ---- Rational field axioms ------------------------------------------------

    #[test]
    fn rational_field_axioms(an in -1000i64..1000, ad in 1i64..1000,
                             bn in -1000i64..1000, bd in 1i64..1000,
                             cn in -1000i64..1000, cd in 1i64..1000) {
        let a = Rational::from_ratio(an, ad);
        let b = Rational::from_ratio(bn, bd);
        let c = Rational::from_ratio(cn, cd);
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_ordering_total(an in -1000i64..1000, ad in 1i64..1000,
                               bn in -1000i64..1000, bd in 1i64..1000) {
        let a = Rational::from_ratio(an, ad);
        let b = Rational::from_ratio(bn, bd);
        // Compare against exact cross-multiplied i128 oracle.
        let lhs = an as i128 * bd as i128;
        let rhs = bn as i128 * ad as i128;
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }

    #[test]
    fn rational_always_reduced(an in -10000i64..10000, ad in 1i64..10000) {
        let a = Rational::from_ratio(an, ad);
        let g = prs_numeric::gcd::gcd(a.numer().magnitude(), a.denom());
        prop_assert!(a.is_zero() || g.is_one());
    }

    #[test]
    fn rational_f64_roundtrip(v in -1e15f64..1e15) {
        let q = Rational::from_f64(v);
        prop_assert_eq!(q.to_f64(), v);
    }

    #[test]
    fn rational_parse_display_roundtrip(an in -100000i64..100000, ad in 1i64..100000) {
        let a = Rational::from_ratio(an, ad);
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rational>().unwrap(), a);
    }
}
