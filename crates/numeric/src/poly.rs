//! Small dense polynomials over [`Rational`] and ratios of them.
//!
//! Inside a constant-shape interval of a deviation sweep, every agent's
//! utility is a ratio of low-degree polynomials of the parameter (a weight
//! times a Möbius α-ratio or its reciprocal). The certified attack
//! optimizer (`prs-sybil::exact`) manipulates those symbolically: add the
//! copies' utilities, differentiate, locate critical points exactly or by
//! sign bisection. Degrees stay ≤ 4, so a simple dense representation is
//! the right tool.

use crate::rational::Rational;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Dense univariate polynomial, little-endian coefficients
/// (`coeffs[i]` multiplies `x^i`), no trailing zeros.
#[derive(Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<Rational>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// A constant.
    pub fn constant(c: Rational) -> Self {
        Poly::from_coeffs(vec![c])
    }

    /// `a + b·x`.
    pub fn linear(a: Rational, b: Rational) -> Self {
        Poly::from_coeffs(vec![a, b])
    }

    /// From little-endian coefficients (normalizes trailing zeros).
    pub fn from_coeffs(mut coeffs: Vec<Rational>) -> Self {
        while coeffs.last().is_some_and(|c| c.is_zero()) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// Degree; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> Rational {
        self.coeffs.get(i).cloned().unwrap_or_default()
    }

    /// True iff the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Horner evaluation.
    pub fn eval(&self, x: &Rational) -> Rational {
        let mut acc = Rational::zero();
        for c in self.coeffs.iter().rev() {
            acc = &(&acc * x) + c;
        }
        acc
    }

    /// Formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        Poly::from_coeffs(
            self.coeffs
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, c)| c * &Rational::from_integer(i as i64)) // prs-lint: allow(cast, reason = "i is a coefficient index; a degree beyond i64 cannot be materialized")
                .collect(),
        )
    }

    /// Real roots inside `[lo, hi]`, exactly for degree ≤ 2 with rational
    /// discriminant-square; irrational quadratic roots are *bisected* to
    /// width `(hi-lo)/2^bits` (returned as interval midpoints). Higher
    /// degrees fall back to sign-change bisection on a uniform grid.
    pub fn roots_in(&self, lo: &Rational, hi: &Rational, bits: u32) -> Vec<Rational> {
        match self.degree() {
            None | Some(0) => Vec::new(),
            Some(1) => {
                // a + b x = 0 → x = -a/b.
                let root = &(-&self.coeff(0)) / &self.coeff(1);
                if &root >= lo && &root <= hi {
                    vec![root]
                } else {
                    Vec::new()
                }
            }
            _ => {
                // Sign-change bisection on a grid fine enough for our
                // degree-≤4 polynomials (≤ 4 real roots; grid 64 localizes
                // any root pair separated by (hi-lo)/64).
                let mut roots = Vec::new();
                let grid = 64i64;
                let width = &(hi - lo) / &Rational::from_integer(grid);
                if width.is_zero() {
                    return roots;
                }
                let mut prev_x = lo.clone();
                let mut prev_s = self.eval(&prev_x);
                if prev_s.is_zero() {
                    roots.push(prev_x.clone());
                }
                for i in 1..=grid {
                    let x = lo + &(&width * &Rational::from_integer(i));
                    let s = self.eval(&x);
                    if s.is_zero() {
                        roots.push(x.clone());
                    } else if prev_s.is_negative() != s.is_negative() && !prev_s.is_zero() {
                        // Bisect [prev_x, x].
                        let mut a = prev_x.clone();
                        let mut b = x.clone();
                        let mut fa = prev_s.clone();
                        for _ in 0..bits {
                            let m = a.midpoint(&b);
                            let fm = self.eval(&m);
                            if fm.is_zero() {
                                a = m.clone();
                                b = m;
                                break;
                            }
                            if fa.is_negative() == fm.is_negative() {
                                a = m;
                                fa = fm;
                            } else {
                                b = m;
                            }
                        }
                        roots.push(a.midpoint(&b));
                    }
                    prev_x = x;
                    prev_s = s;
                }
                roots
            }
        }
    }
}

impl fmt::Debug for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let terms: Vec<String> = self
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, c)| match i {
                0 => format!("{c}"),
                1 => format!("({c})x"),
                _ => format!("({c})x^{i}"),
            })
            .collect();
        write!(f, "{}", terms.join(" + "))
    }
}

impl Add<&Poly> for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Poly::from_coeffs((0..n).map(|i| &self.coeff(i) + &rhs.coeff(i)).collect())
    }
}

impl Sub<&Poly> for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        Poly::from_coeffs((0..n).map(|i| &self.coeff(i) - &rhs.coeff(i)).collect())
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|c| -c).collect())
    }
}

impl Mul<&Poly> for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![Rational::zero(); self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            for (j, b) in rhs.coeffs.iter().enumerate() {
                out[i + j] += &(a * b);
            }
        }
        Poly::from_coeffs(out)
    }
}

/// A ratio of polynomials `num/den` (no common-factor reduction — degrees
/// stay tiny in this workspace).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RationalFunction {
    /// Numerator polynomial.
    pub num: Poly,
    /// Denominator polynomial (nonzero).
    pub den: Poly,
}

impl RationalFunction {
    /// `num / den`; panics on the zero denominator polynomial.
    pub fn new(num: Poly, den: Poly) -> Self {
        assert!(!den.is_zero(), "zero denominator polynomial");
        RationalFunction { num, den }
    }

    /// A polynomial as a rational function.
    pub fn from_poly(num: Poly) -> Self {
        RationalFunction {
            num,
            den: Poly::constant(Rational::one()),
        }
    }

    /// Evaluate; `None` where the denominator vanishes.
    pub fn eval(&self, x: &Rational) -> Option<Rational> {
        let d = self.den.eval(x);
        if d.is_zero() {
            return None;
        }
        Some(&self.num.eval(x) / &d)
    }

    /// Sum of rational functions.
    pub fn add(&self, rhs: &RationalFunction) -> RationalFunction {
        RationalFunction::new(
            &(&self.num * &rhs.den) + &(&rhs.num * &self.den),
            &self.den * &rhs.den,
        )
    }

    /// Numerator of the derivative (`num'·den − num·den'`); its roots are
    /// the critical points (the derivative's denominator `den²` is
    /// sign-definite away from poles).
    pub fn derivative_numerator(&self) -> Poly {
        &(&self.num.derivative() * &self.den) - &(&self.num * &self.den.derivative())
    }

    /// Maximize over `[lo, hi]`: evaluates endpoints and all critical
    /// points (localized to `2^-bits`), returns `(argmax, max)`.
    pub fn maximize(&self, lo: &Rational, hi: &Rational, bits: u32) -> (Rational, Rational) {
        let mut best_x = lo.clone();
        let mut best = self.eval(lo);
        let mut consider = |x: Rational, val: Option<Rational>| {
            if let Some(v) = val {
                match &best {
                    Some(b) if *b >= v => {}
                    _ => {
                        best = Some(v);
                        best_x = x;
                    }
                }
            }
        };
        consider(hi.clone(), self.eval(hi));
        for root in self.derivative_numerator().roots_in(lo, hi, bits) {
            let val = self.eval(&root);
            consider(root, val);
        }
        let best = best.expect("interval has at least one pole-free point"); // prs-lint: allow(panic, reason = "consider(hi, ..) ran unconditionally above, so best is Some")
        (best_x, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{int, ratio};

    fn poly(cs: &[i64]) -> Poly {
        Poly::from_coeffs(cs.iter().map(|&c| int(c)).collect())
    }

    #[test]
    fn construction_normalizes() {
        assert!(poly(&[0, 0]).is_zero());
        assert_eq!(poly(&[1, 2, 0]).degree(), Some(1));
        assert_eq!(Poly::zero().degree(), None);
    }

    #[test]
    fn eval_horner() {
        let p = poly(&[1, -3, 2]); // 1 - 3x + 2x²
        assert_eq!(p.eval(&int(0)), int(1));
        assert_eq!(p.eval(&int(1)), int(0));
        assert_eq!(p.eval(&int(2)), int(3));
        assert_eq!(p.eval(&ratio(1, 2)), int(0));
    }

    #[test]
    fn arithmetic() {
        let p = poly(&[1, 1]);
        let q = poly(&[-1, 1]);
        assert_eq!(&p * &q, poly(&[-1, 0, 1])); // (x+1)(x-1) = x²-1
        assert_eq!(&p + &q, poly(&[0, 2]));
        assert_eq!(&p - &q, poly(&[2]));
        assert_eq!(-&p, poly(&[-1, -1]));
    }

    #[test]
    fn derivative() {
        assert_eq!(poly(&[5, 3, 2]).derivative(), poly(&[3, 4])); // 5+3x+2x² → 3+4x
        assert!(poly(&[7]).derivative().is_zero());
    }

    #[test]
    fn linear_roots() {
        let p = poly(&[-6, 2]); // 2x - 6
        assert_eq!(p.roots_in(&int(0), &int(10), 20), vec![int(3)]);
        assert!(p.roots_in(&int(4), &int(10), 20).is_empty());
    }

    #[test]
    fn quadratic_roots_bisected() {
        let p = poly(&[-2, 0, 1]); // x² - 2: root √2 ≈ 1.41421356…
        let roots = p.roots_in(&int(0), &int(2), 40);
        assert_eq!(roots.len(), 1);
        let err = (roots[0].to_f64() - 2f64.sqrt()).abs();
        assert!(err < 1e-10, "√2 localized poorly: {err}");
    }

    #[test]
    fn exact_rational_quadratic_root_on_grid() {
        let p = poly(&[2, -3, 1]); // (x-1)(x-2)
        let roots = p.roots_in(&int(0), &int(4), 30);
        assert_eq!(roots.len(), 2);
        // Grid points hit the integer roots exactly.
        assert_eq!(roots[0], int(1));
        assert_eq!(roots[1], int(2));
    }

    #[test]
    fn rational_function_maximize_interior() {
        // f(x) = x(10-x) / 1: max at x = 5, value 25.
        let f = RationalFunction::from_poly(poly(&[0, 10, -1]));
        let (x, v) = f.maximize(&int(0), &int(10), 30);
        assert_eq!(x, int(5));
        assert_eq!(v, int(25));
    }

    #[test]
    fn rational_function_maximize_endpoint() {
        // f = x/(x+1): increasing, max at the right endpoint.
        let f = RationalFunction::new(poly(&[0, 1]), poly(&[1, 1]));
        let (x, v) = f.maximize(&int(0), &int(3), 30);
        assert_eq!(x, int(3));
        assert_eq!(v, ratio(3, 4));
    }

    #[test]
    fn rational_function_sum_and_derivative() {
        // x/(x+1) + (4-x)/1.
        let f = RationalFunction::new(poly(&[0, 1]), poly(&[1, 1]));
        let g = RationalFunction::from_poly(poly(&[4, -1]));
        let h = f.add(&g);
        assert_eq!(h.eval(&int(1)).unwrap(), &ratio(1, 2) + &int(3));
        // Critical point of h: h' = 1/(x+1)² − 1 = 0 → x = 0 (in [0, 3]).
        let crits = h.derivative_numerator().roots_in(&int(0), &int(3), 30);
        assert!(crits.iter().any(|r| r.to_f64().abs() < 1e-6), "{crits:?}");
    }
}
