//! Exact rational numbers, always kept in lowest terms.
//!
//! [`Rational`] is the numeric type used across the workspace for weights,
//! α-ratios, allocations and utilities. Invariants:
//!
//! * denominator is strictly positive,
//! * `gcd(|numerator|, denominator) == 1`,
//! * zero is represented as `0/1`.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use crate::gcd::gcd;
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` in lowest terms, `den > 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigUint,
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl Rational {
    /// The value zero (`0/1`).
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigUint::one(),
        }
    }

    /// The value one (`1/1`).
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigUint::one(),
        }
    }

    /// Build `n/d` from machine integers. Panics if `d == 0`.
    pub fn from_ratio(n: i64, d: i64) -> Self {
        assert!(d != 0, "zero denominator");
        let neg = (n < 0) != (d < 0);
        let num_mag = BigUint::from(n.unsigned_abs());
        let den = BigUint::from(d.unsigned_abs());
        let sign = if n == 0 {
            Sign::NoSign
        } else if neg {
            Sign::Minus
        } else {
            Sign::Plus
        };
        Rational::new(BigInt::from_parts(sign, num_mag), den)
    }

    /// Build from an integer.
    pub fn from_integer(n: i64) -> Self {
        Rational {
            num: BigInt::from(n),
            den: BigUint::one(),
        }
    }

    /// Build `num/den` from big values, reducing to lowest terms.
    /// Panics if `den == 0`.
    pub fn new(num: BigInt, den: BigUint) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = gcd(num.magnitude(), &den);
        if g.is_one() {
            Rational { num, den }
        } else {
            let sign = num.sign();
            let nm = num.into_magnitude();
            Rational {
                num: BigInt::from_parts(sign, &nm / &g),
                den: &den / &g,
            }
        }
    }

    /// Build from a signed big numerator and signed big denominator.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "zero denominator");
        let flip = den.is_negative();
        let r = Rational::new(num, den.into_magnitude());
        if flip {
            -r
        } else {
            r
        }
    }

    /// Numerator (signed, lowest terms).
    #[inline]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (positive, lowest terms).
    #[inline]
    pub fn denom(&self) -> &BigUint {
        &self.den
    }

    /// True iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        let sign = self.num.sign();
        Rational {
            num: BigInt::from_parts(sign, self.den.clone()),
            den: self.num.magnitude().clone(),
        }
    }

    /// `self^exp` for integer exponents (negative exponent inverts; panics on
    /// zero base with negative exponent).
    pub fn pow(&self, exp: i32) -> Rational {
        if exp == 0 {
            return Rational::one();
        }
        let base = if exp < 0 { self.recip() } else { self.clone() };
        let e = exp.unsigned_abs();
        let num = base.num.pow(e);
        let den = base.den.pow(e);
        // Already coprime, so no reduction needed.
        Rational { num, den }
    }

    /// Midpoint of `self` and `other`.
    pub fn midpoint(&self, other: &Rational) -> Rational {
        &(self + other) / &Rational::from_integer(2)
    }

    /// Smaller of the two (by value).
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of the two (by value).
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    // prs-lint: allow(float, cast, reason = "sanctioned exact→float bridge; bit-length casts stay far below i64/u32 range for any representable value")
    /// Best-effort `f64` conversion (exact when representable).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let n_bits = self.num.magnitude().bit_len() as i64;
        let d_bits = self.den.bit_len() as i64;
        // Scale so the integer quotient carries ~80 significant bits.
        let shift = (80 - (n_bits - d_bits)).max(0) as u32;
        let scaled = self.num.magnitude() << shift;
        let (q, _) = scaled.div_rem(&self.den);
        let val = q.to_f64() / 2f64.powi(shift as i32);
        if self.num.is_negative() {
            -val
        } else {
            val
        }
    }

    // prs-lint: allow(float, cast, reason = "the float→exact direction is lossless by IEEE-754 construction; exponent casts are bounded by the 11-bit field")
    /// Exact conversion from an `f64` (every finite float is a dyadic
    /// rational). Panics on NaN/∞.
    pub fn from_f64(v: f64) -> Rational {
        assert!(v.is_finite(), "cannot convert non-finite f64");
        if v == 0.0 {
            return Rational::zero();
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exp = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, e2) = if exp == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp - 1075)
        };
        let m = BigInt::from_parts(
            if sign < 0 { Sign::Minus } else { Sign::Plus },
            BigUint::from(mantissa),
        );
        if e2 >= 0 {
            Rational {
                num: BigInt::from_parts(m.sign(), m.magnitude() << e2 as u32),
                den: BigUint::one(),
            }
        } else {
            Rational::new(m, &BigUint::one() << (-e2) as u32)
        }
    }
}

// ---- conversions -------------------------------------------------------------

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_integer(v)
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational::from_integer(i64::from(v))
    }
}

impl From<BigInt> for Rational {
    fn from(num: BigInt) -> Self {
        Rational {
            num,
            den: BigUint::one(),
        }
    }
}

impl From<BigUint> for Rational {
    fn from(mag: BigUint) -> Self {
        Rational {
            num: BigInt::from(mag),
            den: BigUint::one(),
        }
    }
}

// ---- comparison ----------------------------------------------------------------

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare signs first to skip the cross-multiplication when possible.
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Minus => -1,
                Sign::NoSign => 0,
                Sign::Plus => 1,
            }
        }
        match rank(self.num.sign()).cmp(&rank(other.num.sign())) {
            Ordering::Equal => {
                if self.num.is_zero() {
                    return Ordering::Equal;
                }
                // a/b vs c/d  (b,d > 0)  ⇔  a·d vs c·b
                let lhs = self.num.magnitude() * &other.den;
                let rhs = other.num.magnitude() * &self.den;
                let mag_ord = lhs.cmp(&rhs);
                if self.num.is_negative() {
                    mag_ord.reverse()
                } else {
                    mag_ord
                }
            }
            ord => ord,
        }
    }
}

// ---- arithmetic -------------------------------------------------------------------

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Add<&Rational> for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        // a/b + c/d = (a·d + c·b) / (b·d), then reduce.
        let num = &(&self.num * &BigInt::from(rhs.den.clone()))
            + &(&rhs.num * &BigInt::from(self.den.clone()));
        let den = &self.den * &rhs.den;
        Rational::new(num, den)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        &self + &rhs
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = &*self + &rhs;
    }
}

impl Sub<&Rational> for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        self + &(-rhs)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        &self - &rhs
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = &*self - &rhs;
    }
}

impl Mul<&Rational> for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num.magnitude(), &rhs.den);
        let g2 = gcd(rhs.num.magnitude(), &self.den);
        let n1 = BigInt::from_parts_or_zero(self.num.sign(), self.num.magnitude() / &g1);
        let n2 = BigInt::from_parts_or_zero(rhs.num.sign(), rhs.num.magnitude() / &g2);
        let d1 = &self.den / &g2;
        let d2 = &rhs.den / &g1;
        let num = &n1 * &n2;
        let den = &d1 * &d2;
        if num.is_zero() {
            Rational::zero()
        } else {
            Rational { num, den }
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        &self * &rhs
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl Div<&Rational> for &Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via exact reciprocal
    fn div(self, rhs: &Rational) -> Rational {
        self * &rhs.recip()
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        &self / &rhs
    }
}

impl DivAssign<&Rational> for Rational {
    fn div_assign(&mut self, rhs: &Rational) {
        *self = &*self / rhs;
    }
}

impl Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Rational> for Rational {
    fn sum<I: Iterator<Item = &'a Rational>>(iter: I) -> Rational {
        iter.fold(Rational::zero(), |mut acc, x| {
            acc += x;
            acc
        })
    }
}

// Helper used by Mul: from_parts but tolerating a zero magnitude.
impl BigInt {
    fn from_parts_or_zero(sign: Sign, mag: BigUint) -> BigInt {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt::from_parts(sign, mag)
        }
    }
}

// ---- formatting / parsing ------------------------------------------------------------

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error parsing a rational from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError;

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal")
    }
}

impl std::error::Error for ParseRationalError {}

impl std::str::FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"p"`, `"p/q"`, or decimal `"a.b"` forms (all exact).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse().map_err(|_| ParseRationalError)?;
            let den: BigInt = d.trim().parse().map_err(|_| ParseRationalError)?;
            if den.is_zero() {
                return Err(ParseRationalError);
            }
            return Ok(Rational::from_bigints(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let neg = int_part.trim_start().starts_with('-');
            let int_val: BigInt = int_part.trim().parse().map_err(|_| ParseRationalError)?;
            let frac_mag: BigUint = frac_part.trim().parse().map_err(|_| ParseRationalError)?;
            let scale_digits =
                u32::try_from(frac_part.trim().len()).map_err(|_| ParseRationalError)?;
            let scale = BigUint::from(10u32).pow(scale_digits);
            let mut num =
                &(&int_val.abs() * &BigInt::from(scale.clone())) + &BigInt::from(frac_mag);
            if neg {
                num = -num;
            }
            return Ok(Rational::new(num, scale));
        }
        let num: BigInt = s.trim().parse().map_err(|_| ParseRationalError)?;
        Ok(Rational::from(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn construction_reduces() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 5), Rational::zero());
        assert_eq!(r(6, 3).to_string(), "2");
        assert_eq!(r(-6, 4).to_string(), "-3/2");
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn field_ops_match_f64() {
        let cases = [(1i64, 3i64), (-2, 7), (5, 1), (0, 1), (22, 7)];
        for (an, ad) in cases {
            for (bn, bd) in cases {
                let a = r(an, ad);
                let b = r(bn, bd);
                let fa = an as f64 / ad as f64;
                let fb = bn as f64 / bd as f64;
                assert!(((&a + &b).to_f64() - (fa + fb)).abs() < 1e-12);
                assert!(((&a - &b).to_f64() - (fa - fb)).abs() < 1e-12);
                assert!(((&a * &b).to_f64() - (fa * fb)).abs() < 1e-12);
                if !b.is_zero() {
                    assert!(((&a / &b).to_f64() - (fa / fb)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn exact_identities() {
        let third = r(1, 3);
        let x = &(&third + &third) + &third;
        assert_eq!(x, Rational::one()); // would fail in f64
        assert_eq!(&r(1, 6) + &r(1, 3), r(1, 2));
        assert_eq!(&r(2, 3) * &r(3, 2), Rational::one());
    }

    #[test]
    fn ordering_cross_multiplication() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 3) < r(1, 1000000));
        assert!(r(7, 7) == Rational::one());
        // Values that differ far below f64 resolution remain distinct.
        let a = Rational::new(BigInt::from(1i64), BigUint::from(10u64).pow(40));
        let b = Rational::new(BigInt::from(2i64), BigUint::from(10u64).pow(40));
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
        assert_eq!(r(2, 3).pow(3), r(8, 27));
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(5, 7).pow(0), Rational::one());
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::zero().recip();
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("3/-4".parse::<Rational>().unwrap(), r(-3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), r(5, 1));
        assert_eq!("0.25".parse::<Rational>().unwrap(), r(1, 4));
        assert_eq!("-1.5".parse::<Rational>().unwrap(), r(-3, 2));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("abc".parse::<Rational>().is_err());
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, 1.0, -2.5, 0.1, 1e-20, 12345.6789, -1e10] {
            let q = Rational::from_f64(v);
            assert_eq!(q.to_f64(), v, "roundtrip {v}");
        }
        assert_eq!(Rational::from_f64(0.5), r(1, 2));
        assert_eq!(Rational::from_f64(-0.75), r(-3, 4));
    }

    #[test]
    fn sum_iterator() {
        let parts: Vec<Rational> = (1..=10).map(|i| r(1, i)).collect();
        let total: Rational = parts.iter().sum();
        // Harmonic number H_10 = 7381/2520.
        assert_eq!(total, r(7381, 2520));
    }

    #[test]
    fn midpoint_and_minmax() {
        assert_eq!(r(1, 3).midpoint(&r(1, 2)), r(5, 12));
        assert_eq!(r(1, 3).min(r(1, 2)), r(1, 3));
        assert_eq!(r(1, 3).max(r(1, 2)), r(1, 2));
    }

    #[test]
    fn to_f64_precision() {
        // 1/3 to full f64 precision.
        assert_eq!(r(1, 3).to_f64(), 1.0 / 3.0);
        assert_eq!(r(-22, 7).to_f64(), -22.0 / 7.0);
        // Huge ratio still finite and accurate.
        let big = Rational::new(
            BigInt::from(BigUint::from(10u64).pow(50)),
            BigUint::from(10u64).pow(48),
        );
        assert_eq!(big.to_f64(), 100.0);
    }
}
