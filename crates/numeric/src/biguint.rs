//! Arbitrary-precision unsigned integers.
//!
//! Representation: little-endian `u32` limbs with the invariant that the
//! most significant limb is nonzero (so zero is the empty limb vector).
//! `u32` limbs keep all intermediate products inside `u64`, which makes the
//! schoolbook kernels branch-light and easy to audit.

// prs-lint: allow-file(cast, reason = "u32-limb kernels: every cast is a deliberate limb split/join with intermediates held in u64/i64, per the representation invariant above")

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Shl, Shr, Sub, SubAssign};

/// Number of bits per limb.
pub const LIMB_BITS: u32 = 32;

/// Karatsuba multiplication kicks in above this many limbs per operand.
///
/// Below the threshold the schoolbook kernel wins on constant factors; the
/// value was picked with the `numeric` Criterion bench (see prs-bench).
const KARATSUBA_THRESHOLD: usize = 32;

/// An arbitrary-precision unsigned integer.
///
/// All arithmetic is exact; operations that would underflow (`sub` with a
/// larger right-hand side) panic, mirroring the standard library's debug
/// behaviour for unsigned primitives.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing (most-significant) zeros.
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// True iff `self == 0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff `self == 1`.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero counts as even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|&l| l & 1 == 0)
    }

    /// Construct from raw little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrow the little-endian limbs.
    #[inline]
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Number of significant bits (0 for the value zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64 + (32 - hi.leading_zeros()) as u64
            }
        }
    }

    /// Number of trailing zero bits; `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * LIMB_BITS as u64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// The value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        match self.limbs.get(limb) {
            None => false,
            Some(&l) => (l >> (i % LIMB_BITS as u64)) & 1 == 1,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    // ---- addition / subtraction kernels -------------------------------

    fn add_assign_ref(&mut self, rhs: &BigUint) {
        if self.limbs.len() < rhs.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        let mut carry = 0u64;
        for (i, a) in self.limbs.iter_mut().enumerate() {
            let b = *rhs.limbs.get(i).unwrap_or(&0) as u64;
            let sum = *a as u64 + b + carry;
            *a = sum as u32;
            carry = sum >> LIMB_BITS;
            if carry == 0 && i >= rhs.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// `self -= rhs`; panics if `rhs > self`.
    fn sub_assign_ref(&mut self, rhs: &BigUint) {
        assert!(
            self.limbs.len() >= rhs.limbs.len(),
            "BigUint subtraction underflow"
        );
        let mut borrow = 0i64;
        for (i, a) in self.limbs.iter_mut().enumerate() {
            let b = *rhs.limbs.get(i).unwrap_or(&0) as i64;
            let diff = *a as i64 - b - borrow;
            if diff < 0 {
                *a = (diff + (1i64 << LIMB_BITS)) as u32;
                borrow = 1;
            } else {
                *a = diff as u32;
                borrow = 0;
            }
            if borrow == 0 && i >= rhs.limbs.len() {
                break;
            }
        }
        assert_eq!(borrow, 0, "BigUint subtraction underflow");
        self.normalize();
    }

    // ---- multiplication ------------------------------------------------

    /// Multiply by a single limb in place.
    pub fn mul_limb(&mut self, m: u32) {
        if m == 0 {
            self.limbs.clear();
            return;
        }
        if m == 1 || self.is_zero() {
            return;
        }
        let mut carry = 0u64;
        for a in self.limbs.iter_mut() {
            let prod = *a as u64 * m as u64 + carry;
            *a = prod as u32;
            carry = prod >> LIMB_BITS;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }

    /// Schoolbook product of limb slices into a fresh vector.
    fn mul_schoolbook(a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let t = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> LIMB_BITS;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> LIMB_BITS;
                k += 1;
            }
        }
        out
    }

    /// Karatsuba product of limb slices.
    fn mul_karatsuba(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
            return Self::mul_schoolbook(a, b);
        }
        let half = a.len().max(b.len()) / 2;
        let (a0, a1) = a.split_at(half.min(a.len()));
        let (b0, b1) = b.split_at(half.min(b.len()));
        let a0 = BigUint::from_limbs(a0.to_vec());
        let a1 = BigUint::from_limbs(a1.to_vec());
        let b0 = BigUint::from_limbs(b0.to_vec());
        let b1 = BigUint::from_limbs(b1.to_vec());

        let z0 = &a0 * &b0;
        let z2 = &a1 * &b1;
        let z1 = &(&a0 + &a1) * &(&b0 + &b1) - &z0 - &z2;

        let mut out = z0;
        out.add_shifted(&z1, half);
        out.add_shifted(&z2, 2 * half);
        out.limbs
    }

    /// `self += other << (limb_shift * 32)`.
    fn add_shifted(&mut self, other: &BigUint, limb_shift: usize) {
        if other.is_zero() {
            return;
        }
        let needed = other.limbs.len() + limb_shift;
        if self.limbs.len() < needed {
            self.limbs.resize(needed, 0);
        }
        let mut carry = 0u64;
        for (i, &o) in other.limbs.iter().enumerate() {
            let idx = i + limb_shift;
            let t = self.limbs[idx] as u64 + o as u64 + carry;
            self.limbs[idx] = t as u32;
            carry = t >> LIMB_BITS;
        }
        let mut k = needed;
        while carry != 0 {
            if k == self.limbs.len() {
                self.limbs.push(0);
            }
            let t = self.limbs[k] as u64 + carry;
            self.limbs[k] = t as u32;
            carry = t >> LIMB_BITS;
            k += 1;
        }
    }

    // ---- division ------------------------------------------------------

    /// Divide by a single limb, returning the remainder.
    pub fn div_rem_limb(&mut self, d: u32) -> u32 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u64;
        for a in self.limbs.iter_mut().rev() {
            let cur = (rem << LIMB_BITS) | *a as u64;
            *a = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        self.normalize();
        rem as u32
    }

    /// Quotient and remainder; panics if `divisor` is zero.
    ///
    /// Knuth TAOCP vol. 2, Algorithm D, with the usual normalization shift so
    /// the trial quotient digit is off by at most two.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let mut q = self.clone();
            let r = q.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from(r as u64));
        }

        // Normalize: shift so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros(); // prs-lint: allow(panic, reason = "divisor is nonzero (checked above), so it has a top limb")
        let u = self << shift; // dividend
        let v = divisor << shift; // divisor
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // u has m+n+1 digits now
        let vn = &v.limbs;
        let v_hi = vn[n - 1] as u64;
        let v_lo = vn[n - 2] as u64;

        let mut q_limbs = vec![0u32; m + 1];
        for j in (0..=m).rev() {
            // Trial quotient from the top two dividend digits.
            let top = ((un[j + n] as u64) << LIMB_BITS) | un[j + n - 1] as u64;
            let mut qhat = top / v_hi;
            let mut rhat = top % v_hi;
            // Correct qhat down while it is provably too large.
            while qhat >= 1u64 << LIMB_BITS
                || qhat * v_lo > ((rhat << LIMB_BITS) | un[j + n - 2] as u64)
            {
                qhat -= 1;
                rhat += v_hi;
                if rhat >= 1u64 << LIMB_BITS {
                    break;
                }
            }
            // Multiply-and-subtract qhat * v from u[j .. j+n].
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> LIMB_BITS;
                let t = un[i + j] as i64 - (p as u32) as i64 - borrow;
                if t < 0 {
                    un[i + j] = (t + (1i64 << LIMB_BITS)) as u32;
                    borrow = 1;
                } else {
                    un[i + j] = t as u32;
                    borrow = 0;
                }
            }
            let t = un[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // qhat was one too large: add v back and decrement.
                un[j + n] = (t + (1i64 << LIMB_BITS)) as u32;
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let s = un[i + j] as u64 + vn[i] as u64 + c;
                    un[i + j] = s as u32;
                    c = s >> LIMB_BITS;
                }
                un[j + n] = un[j + n].wrapping_add(c as u32);
            } else {
                un[j + n] = t as u32;
            }
            q_limbs[j] = qhat as u32;
        }

        let q = BigUint::from_limbs(q_limbs);
        un.truncate(n);
        let r = BigUint::from_limbs(un) >> shift;
        (q, r)
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Convert to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some((self.limbs[1] as u64) << LIMB_BITS | self.limbs[0] as u64),
            _ => None,
        }
    }

    /// Convert to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v = 0u128;
        for &l in self.limbs.iter().rev() {
            v = (v << LIMB_BITS) | l as u128;
        }
        Some(v)
    }

    // prs-lint: allow(float, panic, reason = "the one sanctioned exact→float bridge: feeds display and the f64 proposer only; to_u64 cannot fail after the bit_len checks")
    /// Best-effort conversion to `f64` (rounds; may overflow to infinity).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits <= 64 {
            return self.to_u64().unwrap() as f64;
        }
        // Take the top 64 bits and scale.
        let excess = bits - 64;
        let top = (self >> excess as u32).to_u64().unwrap();
        top as f64 * 2f64.powi(excess as i32)
    }
}

// ---- From impls ---------------------------------------------------------

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_limbs(vec![v])
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs(vec![v as u32, (v >> LIMB_BITS) as u32])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

// ---- comparison ----------------------------------------------------------

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

// ---- operator impls (by reference; owned variants delegate) ---------------

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: BigUint) -> BigUint {
        self.add_assign_ref(&rhs);
        self
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.add_assign_ref(rhs);
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        let mut out = self.clone();
        out.sub_assign_ref(rhs);
        out
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(mut self, rhs: BigUint) -> BigUint {
        self.sub_assign_ref(&rhs);
        self
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(mut self, rhs: &BigUint) -> BigUint {
        self.sub_assign_ref(rhs);
        self
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        self.sub_assign_ref(rhs);
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        BigUint::from_limbs(BigUint::mul_karatsuba(&self.limbs, &rhs.limbs))
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl Div<&BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<u32> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u32) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / LIMB_BITS) as usize;
        let bit_shift = bits % LIMB_BITS;
        let mut limbs = vec![0u32; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shl<u32> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: u32) -> BigUint {
        &self << bits
    }
}

impl Shr<u32> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u32) -> BigUint {
        let limb_shift = (bits / LIMB_BITS) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % LIMB_BITS;
        let mut limbs: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            let mut carry = 0u32;
            for l in limbs.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (LIMB_BITS - bit_shift);
                *l = new;
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shr<u32> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: u32) -> BigUint {
        &self >> bits
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        self >> (bits.min(u32::MAX as u64) as u32)
    }
}

// ---- formatting / parsing --------------------------------------------------

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeatedly divide by 1e9 to peel decimal chunks.
        let mut v = self.clone();
        let mut chunks = Vec::new();
        while !v.is_zero() {
            chunks.push(v.div_rem_limb(1_000_000_000));
        }
        let mut s = chunks.pop().unwrap().to_string(); // prs-lint: allow(panic, reason = "v was nonzero, so the peel loop pushed at least one chunk")
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:09}"));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error parsing a big integer from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    pub(crate) kind: &'static str,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer: {}", self.kind)
    }
}

impl std::error::Error for ParseBigIntError {}

impl std::str::FromStr for BigUint {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigIntError { kind: "empty" });
        }
        let mut v = BigUint::zero();
        for ch in s.chars() {
            let d = ch.to_digit(10).ok_or(ParseBigIntError { kind: "digit" })?;
            v.mul_limb(10);
            v.add_assign_ref(&BigUint::from(d));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn add_small() {
        assert_eq!(&big(2) + &big(3), big(5));
        assert_eq!(&big(u64::MAX as u128) + &big(1), big(u64::MAX as u128 + 1));
    }

    #[test]
    fn add_carry_chain() {
        let a = big(u128::MAX);
        let s = &a + &BigUint::one();
        assert_eq!(s.bit_len(), 129);
        assert_eq!(&s - &BigUint::one(), a);
    }

    #[test]
    fn sub_basic() {
        assert_eq!(&big(5) - &big(3), big(2));
        assert_eq!(&big(5) - &big(5), BigUint::zero());
        let a = big(1u128 << 100);
        assert_eq!(&(&a + &big(7)) - &a, big(7));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &big(3) - &big(5);
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u128, 17u128),
            (1, 1),
            (123456789, 987654321),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 90, 1 << 30),
        ];
        for (a, b) in cases {
            if let Some(p) = a.checked_mul(b) {
                assert_eq!(&big(a) * &big(b), big(p), "{a} * {b}");
            }
        }
    }

    #[test]
    fn mul_large_karatsuba_agrees_with_schoolbook() {
        // Operands above the Karatsuba threshold.
        let a_limbs: Vec<u32> = (0..100u32)
            .map(|i| i.wrapping_mul(0x9E3779B9) | 1)
            .collect();
        let b_limbs: Vec<u32> = (0..80u32).map(|i| i.wrapping_mul(0x85EBCA6B) | 1).collect();
        let a = BigUint::from_limbs(a_limbs.clone());
        let b = BigUint::from_limbs(b_limbs.clone());
        let kara = &a * &b;
        let school = BigUint::from_limbs(BigUint::mul_schoolbook(&a_limbs, &b_limbs));
        assert_eq!(kara, school);
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = big(17).div_rem(&big(5));
        assert_eq!((q, r), (big(3), big(2)));
        let (q, r) = big(100).div_rem(&big(10));
        assert_eq!((q, r), (big(10), big(0)));
        let (q, r) = big(3).div_rem(&big(5));
        assert_eq!((q, r), (big(0), big(3)));
    }

    #[test]
    fn div_rem_roundtrip_large() {
        let a = BigUint::from_limbs(
            (0..50u32)
                .map(|i| i.wrapping_mul(2654435761) ^ 0xabc)
                .collect(),
        );
        let d = BigUint::from_limbs((0..13u32).map(|i| i.wrapping_mul(40503) | 5).collect());
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn div_rem_algorithm_d_addback_path() {
        // A case engineered to exercise the rare add-back correction:
        // dividend just below a multiple of the divisor with top digits equal.
        let d = BigUint::from_limbs(vec![0, 0, 1, u32::MAX]);
        let a = BigUint::from_limbs(vec![
            u32::MAX,
            u32::MAX,
            u32::MAX,
            u32::MAX,
            u32::MAX,
            u32::MAX,
        ]);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, a);
    }

    #[test]
    fn shifts() {
        let a = big(0b1011);
        assert_eq!(&a << 3, big(0b1011000));
        assert_eq!(&(&a << 100) >> 100u32, a);
        assert_eq!(&a >> 10u32, BigUint::zero());
        assert_eq!(&a >> 1u32, big(0b101));
    }

    #[test]
    fn bit_ops() {
        let a = big(0b10110);
        assert!(!a.bit(0));
        assert!(a.bit(1));
        assert!(a.bit(2));
        assert!(!a.bit(3));
        assert!(a.bit(4));
        assert!(!a.bit(1000));
        assert_eq!(a.trailing_zeros(), Some(1));
        assert_eq!(BigUint::zero().trailing_zeros(), None);
    }

    #[test]
    fn pow() {
        assert_eq!(big(2).pow(10), big(1024));
        assert_eq!(big(3).pow(0), BigUint::one());
        assert_eq!(
            big(10).pow(30),
            "1000000000000000000000000000000".parse().unwrap()
        );
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
        ] {
            let v: BigUint = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<BigUint>().is_err());
        assert!("12a".parse::<BigUint>().is_err());
    }

    #[test]
    fn ordering() {
        assert!(big(3) < big(5));
        assert!(big(1 << 100) > big(u64::MAX as u128));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
    }

    #[test]
    fn to_f64_large() {
        let a = big(1u128 << 100);
        let f = a.to_f64();
        assert!((f - 2f64.powi(100)).abs() / 2f64.powi(100) < 1e-15);
    }

    #[test]
    fn to_u64_u128_bounds() {
        assert_eq!(big(u64::MAX as u128).to_u64(), Some(u64::MAX));
        assert_eq!(big(u64::MAX as u128 + 1).to_u64(), None);
        assert_eq!(big(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!((&big(u128::MAX) + &BigUint::one()).to_u128(), None);
    }

    #[test]
    fn mul_limb_and_div_rem_limb() {
        let mut a = big(123456789);
        a.mul_limb(1000);
        assert_eq!(a, big(123456789000));
        let r = a.div_rem_limb(7);
        assert_eq!(r, (123456789000u64 % 7) as u32);
    }
}
