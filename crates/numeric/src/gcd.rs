//! Greatest common divisor on [`BigUint`], via the binary (Stein) algorithm.
//!
//! Binary GCD avoids the quadratic division of the Euclidean algorithm on
//! multi-limb operands; reduction of [`crate::Rational`] values calls this on
//! every arithmetic operation, so it is the hottest kernel in the crate.

use crate::biguint::BigUint;

// prs-lint: allow(panic, cast, reason = "a, b proven nonzero before every trailing_zeros call; a trailing-zero count of any materializable value fits u32")
/// `gcd(a, b)`; `gcd(0, 0) == 0` by convention.
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() {
        return b.clone();
    }
    if b.is_zero() {
        return a.clone();
    }
    let za = a.trailing_zeros().unwrap();
    let zb = b.trailing_zeros().unwrap();
    let shift = za.min(zb) as u32;

    let mut u = a >> za;
    let mut v = b >> zb;
    // Invariant: u, v odd.
    loop {
        if u == v {
            return &u << shift;
        }
        if u < v {
            std::mem::swap(&mut u, &mut v);
        }
        u -= &v;
        // u is now even and nonzero.
        let z = u
            .trailing_zeros()
            .expect("u > 0 after swap ensures nonzero");
        u = &u >> z;
    }
}

/// `lcm(a, b)`; zero if either argument is zero.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }

    #[test]
    fn gcd_matches_euclid_oracle() {
        let cases = [
            (0u128, 0u128),
            (0, 7),
            (7, 0),
            (12, 18),
            (17, 13),
            (1 << 40, 1 << 20),
            (2 * 3 * 5 * 7 * 11, 3 * 7 * 13),
            (u64::MAX as u128, (u64::MAX - 1) as u128),
        ];
        for (a, b) in cases {
            assert_eq!(gcd(&big(a), &big(b)), big(gcd_u128(a, b)), "gcd({a},{b})");
        }
    }

    #[test]
    fn gcd_large_common_factor() {
        let p: BigUint = "1000000000000000003".parse().unwrap();
        let a = &p * &big(123456);
        let b = &p * &big(789012);
        let g = gcd(&a, &b);
        assert_eq!(g, &p * &big(gcd_u128(123456, 789012)));
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(&big(4), &big(6)), big(12));
        assert_eq!(lcm(&big(0), &big(6)), BigUint::zero());
        assert_eq!(lcm(&big(7), &big(13)), big(91));
    }
}
