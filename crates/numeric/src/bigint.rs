//! Signed arbitrary-precision integers: sign + [`BigUint`] magnitude.

use crate::biguint::{BigUint, ParseBigIntError};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// Sign of a [`BigInt`]. Zero always carries [`Sign::NoSign`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Zero.
    NoSign,
    /// Strictly positive.
    Plus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::NoSign => Sign::NoSign,
            Sign::Plus => Sign::Minus,
        }
    }
}

/// Signed arbitrary-precision integer.
///
/// Invariant: `sign == NoSign` iff `mag.is_zero()`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::NoSign,
            mag: BigUint::zero(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// Build from sign and magnitude, normalizing zero.
    pub fn from_parts(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::NoSign, "nonzero magnitude needs a sign");
            BigInt { sign, mag }
        }
    }

    /// The sign.
    #[inline]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    #[inline]
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consume into the magnitude, discarding the sign.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// True iff zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::NoSign
    }

    /// True iff strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// True iff strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_parts(
            if self.is_zero() {
                Sign::NoSign
            } else {
                Sign::Plus
            },
            self.mag.clone(),
        )
    }

    /// Truncated division with remainder: `self = q * d + r`, `|r| < |d|`,
    /// `r` has the sign of `self` (C-style).
    pub fn div_rem(&self, d: &BigInt) -> (BigInt, BigInt) {
        let (qm, rm) = self.mag.div_rem(&d.mag);
        let q_sign = if qm.is_zero() {
            Sign::NoSign
        } else if self.sign == d.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        let r_sign = if rm.is_zero() {
            Sign::NoSign
        } else {
            self.sign
        };
        (
            BigInt {
                sign: q_sign,
                mag: qm,
            },
            BigInt {
                sign: r_sign,
                mag: rm,
            },
        )
    }

    /// `self^exp`.
    pub fn pow(&self, exp: u32) -> BigInt {
        let mag = self.mag.pow(exp);
        let sign = if mag.is_zero() {
            Sign::NoSign
        } else if self.sign == Sign::Minus && exp % 2 == 1 {
            Sign::Minus
        } else {
            Sign::Plus
        };
        BigInt { sign, mag }
    }

    // prs-lint: allow(float, reason = "sanctioned exact→float bridge for display and the f64 proposer; never read back into exact state")
    /// Best-effort `f64` conversion.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        if self.sign == Sign::Minus {
            -m
        } else {
            m
        }
    }

    // prs-lint: allow(cast, reason = "two's-complement edge: |i64::MIN| needs the i128 round-trip; m ≤ i64::MAX + 1 is checked first")
    /// Exact `i64` conversion if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::NoSign => Some(0),
            Sign::Plus => i64::try_from(m).ok(),
            Sign::Minus => {
                if m <= i64::MAX as u128 + 1 {
                    Some((m as i128).wrapping_neg() as i64)
                } else {
                    None
                }
            }
        }
    }

    // prs-lint: allow(cast, reason = "two's-complement edge: |i128::MIN| = i128::MAX + 1 has no i128 form; the u128 wrapping_neg round-trip is checked against that bound first")
    /// Exact `i128` conversion if it fits.
    ///
    /// This is the promotion boundary of the scaled-integer certifier's
    /// `i128` fast tier: a p·D-scaled capacity promotes the round to the
    /// BigInt engine exactly when this returns `None`.
    pub fn to_i128(&self) -> Option<i128> {
        let m = self.mag.to_u128()?;
        match self.sign {
            Sign::NoSign => Some(0),
            Sign::Plus => i128::try_from(m).ok(),
            Sign::Minus => {
                if m <= i128::MAX as u128 + 1 {
                    Some(m.wrapping_neg() as i128)
                } else {
                    None
                }
            }
        }
    }
}

// ---- conversions -----------------------------------------------------------

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        let sign = match v.cmp(&0) {
            Ordering::Less => Sign::Minus,
            Ordering::Equal => Sign::NoSign,
            Ordering::Greater => Sign::Plus,
        };
        BigInt {
            sign,
            mag: BigUint::from(v.unsigned_abs()),
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(i64::from(v))
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_parts(
            if v == 0 { Sign::NoSign } else { Sign::Plus },
            BigUint::from(v),
        )
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        let sign = if mag.is_zero() {
            Sign::NoSign
        } else {
            Sign::Plus
        };
        BigInt { sign, mag }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let sign = match v.cmp(&0) {
            Ordering::Less => Sign::Minus,
            Ordering::Equal => Sign::NoSign,
            Ordering::Greater => Sign::Plus,
        };
        BigInt {
            sign,
            mag: BigUint::from(v.unsigned_abs()),
        }
    }
}

// ---- ordering ----------------------------------------------------------------

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Minus => -1,
                Sign::NoSign => 0,
                Sign::Plus => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Plus => self.mag.cmp(&other.mag),
                Sign::Minus => other.mag.cmp(&self.mag),
                Sign::NoSign => Ordering::Equal,
            },
            ord => ord,
        }
    }
}

// ---- arithmetic ---------------------------------------------------------------

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.flip();
        self
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::NoSign, _) => rhs.clone(),
            (_, Sign::NoSign) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                mag: &self.mag + &rhs.mag,
            },
            _ => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt {
                    sign: self.sign,
                    mag: &self.mag - &rhs.mag,
                },
                Ordering::Less => BigInt {
                    sign: rhs.sign,
                    mag: &rhs.mag - &self.mag,
                },
            },
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let mag = &self.mag * &rhs.mag;
        let sign = if mag.is_zero() {
            Sign::NoSign
        } else if self.sign == rhs.sign {
            Sign::Plus
        } else {
            Sign::Minus
        };
        BigInt { sign, mag }
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

// ---- formatting / parsing -------------------------------------------------------

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-{}", self.mag)
        } else {
            write!(f, "{}", self.mag)
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::str::FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag: BigUint = digits.parse()?;
        Ok(BigInt::from_parts(
            if mag.is_zero() { Sign::NoSign } else { sign },
            mag,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_normalization() {
        assert_eq!(b(0).sign(), Sign::NoSign);
        assert_eq!(b(5).sign(), Sign::Plus);
        assert_eq!(b(-5).sign(), Sign::Minus);
        assert_eq!((-b(0)).sign(), Sign::NoSign);
    }

    #[test]
    fn add_sub_all_sign_combos() {
        for a in [-7i128, -1, 0, 1, 7, 1 << 70] {
            for c in [-9i128, -1, 0, 1, 9, -(1 << 65)] {
                assert_eq!(&b(a) + &b(c), b(a + c), "{a}+{c}");
                assert_eq!(&b(a) - &b(c), b(a - c), "{a}-{c}");
            }
        }
    }

    #[test]
    fn mul_sign_rules() {
        for a in [-6i128, 0, 6] {
            for c in [-7i128, 0, 7] {
                assert_eq!(&b(a) * &b(c), b(a * c));
            }
        }
    }

    #[test]
    fn div_rem_truncates_toward_zero() {
        for (a, d) in [(7i128, 2i128), (-7, 2), (7, -2), (-7, -2)] {
            let (q, r) = b(a).div_rem(&b(d));
            assert_eq!(q, b(a / d), "{a}/{d}");
            assert_eq!(r, b(a % d), "{a}%{d}");
        }
    }

    #[test]
    fn ordering_across_signs() {
        assert!(b(-10) < b(-2));
        assert!(b(-2) < b(0));
        assert!(b(0) < b(3));
        assert!(b(3) < b(10));
        assert!(b(i128::MIN + 1) < b(i128::MAX));
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["0", "-1", "42", "-123456789012345678901234567890"] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!("-0".parse::<BigInt>().unwrap(), b(0));
        assert_eq!("+7".parse::<BigInt>().unwrap(), b(7));
    }

    #[test]
    fn pow_signs() {
        assert_eq!(b(-2).pow(3), b(-8));
        assert_eq!(b(-2).pow(4), b(16));
        assert_eq!(b(0).pow(0), b(1)); // 0^0 = 1 by convention (empty product)
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(b(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(b(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(b(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(b(i64::MIN as i128 - 1).to_i64(), None);
    }

    #[test]
    fn to_i128_bounds() {
        assert_eq!(b(0).to_i128(), Some(0));
        assert_eq!(b(-42).to_i128(), Some(-42));
        assert_eq!(b(i128::MAX).to_i128(), Some(i128::MAX));
        assert_eq!(b(i128::MIN).to_i128(), Some(i128::MIN));
        // One past either end: the exact promotion boundary.
        assert_eq!((b(i128::MAX) + b(1)).to_i128(), None);
        assert_eq!((b(i128::MIN) - b(1)).to_i128(), None);
        assert_eq!((b(i128::MAX) + b(1)).to_i128(), None);
        assert_eq!(b(2).pow(127).to_i128(), None);
        assert_eq!((b(2).pow(127) - b(1)).to_i128(), Some(i128::MAX));
        assert_eq!((-b(2).pow(127)).to_i128(), Some(i128::MIN));
    }
}
