#![warn(missing_docs)]
//! # prs-numeric — exact arbitrary-precision arithmetic
//!
//! Foundation crate for the resource-sharing toolkit. The bottleneck
//! decomposition (and everything layered on it: the BD allocation, the
//! misreport sweep, the Sybil-attack optimizer) hinges on *exact* comparison
//! of α-ratios, which are quotients of sums of agent weights. Floating point
//! is unsound there: two distinct bottleneck candidates whose ratios differ
//! by less than an ulp would be conflated, and the decomposition — a purely
//! combinatorial object — would come out wrong. This crate provides:
//!
//! * [`BigUint`] — an arbitrary-precision unsigned integer (little-endian
//!   `u32` limbs), with schoolbook and Karatsuba multiplication, Knuth
//!   algorithm-D division, binary GCD, and bit operations.
//! * [`BigInt`] — a sign-magnitude signed integer on top of [`BigUint`].
//! * [`Rational`] — an always-reduced exact rational with total ordering,
//!   the numeric type used throughout the workspace.
//!
//! No external bignum crate is used; the offline dependency set does not
//! include one, and the arithmetic here is simple enough to own (see
//! DESIGN.md §1, substitution table).
//!
//! ## Example
//!
//! ```
//! use prs_numeric::Rational;
//!
//! let third = Rational::from_ratio(1, 3);
//! let sixth = Rational::from_ratio(1, 6);
//! assert_eq!(&third + &sixth, Rational::from_ratio(1, 2));
//! assert!(third > sixth);
//! assert_eq!((&third * &sixth).to_string(), "1/18");
//! ```

pub mod bigint;
pub mod biguint;
pub mod gcd;
pub mod poly;
pub mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use poly::{Poly, RationalFunction};
pub use rational::Rational;

/// Convenience: exact rational `n/d` from machine integers.
///
/// Panics if `d == 0`.
pub fn ratio(n: i64, d: i64) -> Rational {
    Rational::from_ratio(n, d)
}

/// Convenience: exact rational from an integer.
pub fn int(n: i64) -> Rational {
    Rational::from_integer(n)
}
