//! Overflow-safety properties of the scaled-integer engine.
//!
//! The session's warm certification path multiplies every Hall-network
//! capacity by `p · D` (parameter numerator times the weight-denominator
//! clearing factor). With adversarial weights — denominators like `2⁻ᵏ`
//! against magnitudes like `2ᵏ` — those products leave `u64`/`u128` range
//! almost immediately, so the engine's correctness rests on `BigInt`
//! capacities never truncating. These tests drive `NetworkInt` with
//! capacities hundreds of bits wide and check the two invariants the
//! decomposition relies on:
//!
//! 1. **Scaling invariance**: `maxflow(p·D·caps) = p·D · maxflow(caps)`,
//!    exactly, for arbitrarily large `p·D` — and the min-cut partition is
//!    unchanged, so tight-set extraction is scale-blind.
//! 2. **Agreement with the rational engine**: the scaled-integer flow
//!    equals the exact rational flow times the scale, i.e. the two
//!    representations of the same network never drift.

use proptest::prelude::*;
use prs_flow::network_i128::{overflow_detected, reset_overflow};
use prs_flow::testkit::network_from;
use prs_flow::{Cap, CapI128, CapInt, FlowNetwork, NetworkI128, NetworkInt};
use prs_numeric::{BigInt, Rational};

/// `2^k`, exact.
fn pow2(k: u32) -> BigInt {
    BigInt::from(2).pow(k)
}

fn int_net(n: usize, edges: &[(usize, usize, BigInt)]) -> NetworkInt {
    let caps: Vec<(usize, usize, CapInt)> = edges
        .iter()
        .map(|(u, v, c)| (*u, *v, CapInt::Finite(c.clone())))
        .collect();
    network_from(n, &caps)
}

/// Random sparse network with capacities `base · 2^exp` — the exponents
/// make magnitudes span hundreds of bits within one instance.
fn arb_adversarial() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64, u32)>)> {
    (4usize..8).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1i64..16, 0u32..256);
        proptest::collection::vec(edge, 1..16).prop_map(move |edges| {
            (
                n,
                edges
                    .into_iter()
                    .filter(|&(u, v, _, _)| u != v)
                    .collect::<Vec<_>>(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scaling_by_huge_pd_is_exact((n, raw) in arb_adversarial(), p_exp in 64u32..512) {
        prop_assume!(!raw.is_empty());
        let (s, t) = (0, n - 1);
        let edges: Vec<(usize, usize, BigInt)> = raw
            .iter()
            .map(|&(u, v, b, e)| (u, v, &BigInt::from(b) * &pow2(e)))
            .collect();
        // p·D as a single huge odd-ish multiplier: 2^p_exp + 1 has no
        // common structure with the power-of-two capacities, so any
        // truncation in the scaled engine would break exact divisibility.
        let pd = &pow2(p_exp) + &BigInt::one();

        let base_flow = int_net(n, &edges).max_flow(s, t);
        let scaled_edges: Vec<(usize, usize, BigInt)> = edges
            .iter()
            .map(|(u, v, c)| (*u, *v, c * &pd))
            .collect();
        let mut scaled_net = int_net(n, &scaled_edges);
        let scaled_flow = scaled_net.max_flow(s, t);

        prop_assert_eq!(&scaled_flow, &(&base_flow * &pd),
            "maxflow(p·D·caps) must equal p·D·maxflow(caps) exactly");
        prop_assert!(scaled_net.check_conservation(s, t));
        prop_assert!(scaled_net.check_capacities());

        // The min-cut partition — what tight-set extraction reads — is
        // invariant under uniform scaling.
        let mut base_net = int_net(n, &edges);
        base_net.max_flow(s, t);
        prop_assert_eq!(base_net.min_cut_source_side(s), scaled_net.min_cut_source_side(s));
    }

    #[test]
    fn scaled_integer_agrees_with_rational_engine((n, raw) in arb_adversarial()) {
        prop_assume!(!raw.is_empty());
        let (s, t) = (0, n - 1);
        // Rational capacities b·2^e / 2^128: denominators force the
        // rational engine through gcd-normalized big arithmetic while the
        // integer twin runs the D-cleared numerators.
        let d_exp = 128u32;
        let denom = Rational::from_integer(2).pow(d_exp as i32);
        let mut rat_net = FlowNetwork::new(n);
        let mut edges = Vec::new();
        for &(u, v, b, e) in &raw {
            let num = &BigInt::from(b) * &pow2(e);
            let cap = &Rational::from(num.clone()) / &denom;
            rat_net.add_edge(u, v, Cap::Finite(cap));
            edges.push((u, v, num));
        }
        let rational_flow = rat_net.max_flow(s, t);
        let scaled_flow = int_net(n, &edges).max_flow(s, t);
        // flow(D·caps) = D·flow(caps), with D = 2^128 clearing every
        // denominator: the scaled-integer value must be exactly the
        // rational value times D.
        let expected = &rational_flow * &Rational::from(pow2(d_exp));
        prop_assert_eq!(Rational::from(scaled_flow), expected);
    }
}

// ---- i128 fast-tier promotion boundary -------------------------------------
//
// The checked-i128 certification tier accepts a round iff every p·D-scaled
// capacity (and endpoint total) converts via `BigInt::to_i128`. The tests
// below pin that boundary exactly — one bit below `i128::MAX` runs on the
// fast tier bit-identically to BigInt, straddling it must promote — and the
// runtime poison flag that backstops the build-time check.

/// The exact build-time promotion boundary: `i128::MAX` itself converts,
/// one past it does not. (This conversion is the session's admission test.)
#[test]
fn promotion_boundary_is_exactly_i128_max() {
    let max = BigInt::from(i128::MAX);
    assert_eq!(max.to_i128(), Some(i128::MAX));
    assert_eq!((&max + &BigInt::one()).to_i128(), None, "must promote");
    assert_eq!((&max - &BigInt::one()).to_i128(), Some(i128::MAX - 1));
    assert_eq!(pow2(127).to_i128(), None, "2^127 straddles the boundary");
    assert_eq!((&pow2(127) - &BigInt::one()).to_i128(), Some(i128::MAX));
}

/// One bit below the boundary the fast tier must NOT promote: a capacity of
/// `i128::MAX` flows exactly, with no overflow poison, and the result is
/// bit-identical to the BigInt engine on the same network.
#[test]
fn cap_at_i128_max_runs_on_fast_tier_without_promotion() {
    reset_overflow();
    let mut net = NetworkI128::new(3);
    net.add_edge(0, 1, CapI128::Finite(i128::MAX));
    net.add_edge(1, 2, CapI128::Finite(i128::MAX - 7));
    let flow = net.max_flow(0, 2);
    assert!(!overflow_detected(), "in-range caps must not poison");
    assert_eq!(flow, i128::MAX - 7);
    assert!(net.check_conservation(0, 2));
    assert!(net.check_capacities());

    let mut twin = NetworkInt::new(3);
    twin.add_edge(0, 1, CapInt::Finite(BigInt::from(i128::MAX)));
    twin.add_edge(1, 2, CapInt::Finite(BigInt::from(i128::MAX - 7)));
    assert_eq!(twin.max_flow(0, 2), BigInt::from(flow), "bit-identical");
    assert_eq!(net.min_cut_source_side(0), twin.min_cut_source_side(0));
}

/// Runtime backstop: capacities that individually fit but whose total
/// crosses `i128::MAX` poison the run; the promoted BigInt rerun of the
/// same network produces the true (beyond-i128) answer.
#[test]
fn runtime_overflow_poisons_and_bigint_rerun_is_exact() {
    let big = i128::MAX / 2 + 1;
    let edges_fit = |net: &mut NetworkI128| {
        net.add_edge(0, 1, CapI128::Finite(big));
        net.add_edge(0, 2, CapI128::Finite(big));
        net.add_edge(1, 3, CapI128::Finite(big));
        net.add_edge(2, 3, CapI128::Finite(big));
    };
    reset_overflow();
    let mut net = NetworkI128::new(4);
    edges_fit(&mut net);
    let _poisoned = net.max_flow(0, 3);
    assert!(
        overflow_detected(),
        "total 2·(MAX/2 + 1) > MAX must trip the checked accumulation"
    );
    reset_overflow();

    // The promotion target: same network, BigInt capacities — exact.
    let big_int = BigInt::from(big);
    let mut twin = NetworkInt::new(4);
    twin.add_edge(0, 1, CapInt::Finite(big_int.clone()));
    twin.add_edge(0, 2, CapInt::Finite(big_int.clone()));
    twin.add_edge(1, 3, CapInt::Finite(big_int.clone()));
    twin.add_edge(2, 3, CapInt::Finite(big_int.clone()));
    assert_eq!(twin.max_flow(0, 3), &big_int + &big_int);
    assert!(twin.check_conservation(0, 3));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Below the boundary the two exact integer engines are bit-identical:
    /// same flow value, same min-cut partition, same residual structure —
    /// the fast tier changes representation width, never decisions.
    #[test]
    fn i128_tier_is_bit_identical_to_bigint_below_boundary((n, raw) in arb_adversarial()) {
        prop_assume!(!raw.is_empty());
        let (s, t) = (0, n - 1);
        reset_overflow();
        let mut fast = NetworkI128::new(n);
        let mut slow = NetworkInt::new(n);
        for &(u, v, b, e) in &raw {
            // b·2^e with e < 100 stays far inside i128 (≤ 16·2^99 < 2^103),
            // and any flow total is bounded by the ≤16-edge cap sum < 2^107.
            let e = e % 100;
            let cap = i128::from(b) << e;
            fast.add_edge(u, v, CapI128::Finite(cap));
            slow.add_edge(u, v, CapInt::Finite(&BigInt::from(b) * &pow2(e)));
        }
        let fast_flow = fast.max_flow(s, t);
        let slow_flow = slow.max_flow(s, t);
        prop_assert!(!overflow_detected(), "in-range instance must not poison");
        prop_assert_eq!(BigInt::from(fast_flow), slow_flow);
        prop_assert_eq!(fast.min_cut_source_side(s), slow.min_cut_source_side(s));
        prop_assert_eq!(fast.residual_reaches_sink(t), slow.residual_reaches_sink(t));
        prop_assert!(fast.check_conservation(s, t));
        prop_assert!(fast.check_capacities());
    }
}

#[test]
fn kilobit_capacities_round_trip() {
    // Deterministic spot check far beyond primitive range: a two-path
    // network whose min cut is `2^1024 + 2^900`.
    let big_a = pow2(1024);
    let big_b = pow2(900);
    let huge = &pow2(2000) + &BigInt::one();
    let mut net = NetworkInt::new(4);
    net.add_edge(0, 1, CapInt::Finite(big_a.clone()));
    net.add_edge(1, 3, CapInt::Finite(huge.clone()));
    net.add_edge(0, 2, CapInt::Finite(huge));
    net.add_edge(2, 3, CapInt::Finite(big_b.clone()));
    let flow = net.max_flow(0, 3);
    assert_eq!(flow, &big_a + &big_b);
    assert!(net.check_conservation(0, 3));
    assert!(net.check_capacities());
    let side = net.min_cut_source_side(0);
    assert!(side[0] && !side[3]);
}
