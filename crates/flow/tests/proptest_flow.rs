//! Property tests for the exact max-flow engine against independent oracles.

use proptest::prelude::*;
use prs_flow::{Cap, FlowNetwork};
use prs_numeric::{int, Rational};

/// Simple f64 Ford–Fulkerson (BFS augmenting paths) as an independent
/// oracle. Unit-fraction capacities keep f64 exact enough to compare.
fn ford_fulkerson_f64(n: usize, edges: &[(usize, usize, f64)], s: usize, t: usize) -> f64 {
    let mut cap = vec![vec![0f64; n]; n];
    for &(u, v, c) in edges {
        cap[u][v] += c;
    }
    let mut flow = 0.0;
    loop {
        // BFS for an augmenting path.
        let mut parent = vec![usize::MAX; n];
        parent[s] = s;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v] == usize::MAX && cap[u][v] > 1e-12 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[t] == usize::MAX {
            return flow;
        }
        // Bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut v = t;
        while v != s {
            let u = parent[v];
            bottleneck = bottleneck.min(cap[u][v]);
            v = u;
        }
        let mut v = t;
        while v != s {
            let u = parent[v];
            cap[u][v] -= bottleneck;
            cap[v][u] += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
}

/// Strategy: a random DAG-ish network on `n` nodes with integer capacities.
fn arb_network() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (4usize..9).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1i64..20);
        proptest::collection::vec(edge, 1..20).prop_map(move |edges| {
            (
                n,
                edges
                    .into_iter()
                    .filter(|&(u, v, _)| u != v)
                    .collect::<Vec<_>>(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dinic_matches_ford_fulkerson((n, edges) in arb_network()) {
        prop_assume!(!edges.is_empty());
        let s = 0;
        let t = n - 1;
        let mut net = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, Cap::Finite(int(c)));
        }
        let exact = net.max_flow(s, t);
        let oracle = ford_fulkerson_f64(
            n,
            &edges.iter().map(|&(u, v, c)| (u, v, c as f64)).collect::<Vec<_>>(),
            s,
            t,
        );
        prop_assert!((exact.to_f64() - oracle).abs() < 1e-6,
            "dinic {} vs oracle {}", exact.to_f64(), oracle);
        prop_assert!(net.check_conservation(s, t));
        prop_assert!(net.check_capacities());
    }

    #[test]
    fn flow_value_equals_outflow((n, edges) in arb_network()) {
        prop_assume!(!edges.is_empty());
        let mut net = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, Cap::Finite(int(c)));
        }
        let value = net.max_flow(0, n - 1);
        prop_assert_eq!(value, net.outflow(0));
    }

    #[test]
    fn min_cut_separates_and_matches_value((n, edges) in arb_network()) {
        prop_assume!(!edges.is_empty());
        let s = 0;
        let t = n - 1;
        let mut net = FlowNetwork::new(n);
        let mut ids = Vec::new();
        for &(u, v, c) in &edges {
            ids.push((net.add_edge(u, v, Cap::Finite(int(c))), u, v, c));
        }
        let value = net.max_flow(s, t);
        let side = net.min_cut_source_side(s);
        prop_assert!(side[s]);
        prop_assert!(!side[t]);
        // Cut capacity across (side → !side) equals the flow value
        // (max-flow min-cut theorem, exact arithmetic).
        let cut: Rational = ids
            .iter()
            .filter(|&&(_, u, v, _)| side[u] && !side[v])
            .map(|&(_, _, _, c)| int(c))
            .sum();
        prop_assert_eq!(cut, value);
    }

    #[test]
    fn rational_capacities_scale_exactly((n, edges) in arb_network(), denom in 1i64..50) {
        prop_assume!(!edges.is_empty());
        // Scaling all capacities by 1/denom scales the max flow by 1/denom.
        let mut net1 = FlowNetwork::new(n);
        let mut net2 = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net1.add_edge(u, v, Cap::Finite(int(c)));
            net2.add_edge(u, v, Cap::Finite(Rational::from_ratio(c, denom)));
        }
        let f1 = net1.max_flow(0, n - 1);
        let f2 = net2.max_flow(0, n - 1);
        prop_assert_eq!(&f1 / &int(denom), f2);
    }
}
