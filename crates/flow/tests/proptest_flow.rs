//! Property tests for the Dinic kernel against an independent oracle —
//! run on **every** capacity backend.
//!
//! Random integral networks have integral max flows, so one oracle value
//! checks all three engines: the exact and scaled-integer backends must
//! match it exactly (the scaled one in `RATIO_SCALE` units), the float
//! backend within proposal tolerance. The per-backend plumbing lives in
//! `prs_flow::testkit`; this file owns only the oracle and the random
//! network strategy.

use proptest::prelude::*;
use prs_flow::testkit;
use prs_flow::{Cap, FlowNetwork};
use prs_numeric::{int, BigInt, Rational};

/// Simple f64 Ford–Fulkerson (BFS augmenting paths) as an independent
/// oracle. Integer capacities keep f64 exact enough to compare.
fn ford_fulkerson_f64(n: usize, edges: &[(usize, usize, f64)], s: usize, t: usize) -> f64 {
    let mut cap = vec![vec![0f64; n]; n];
    for &(u, v, c) in edges {
        cap[u][v] += c;
    }
    let mut flow = 0.0;
    loop {
        // BFS for an augmenting path.
        let mut parent = vec![usize::MAX; n];
        parent[s] = s;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if parent[v] == usize::MAX && cap[u][v] > 1e-12 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[t] == usize::MAX {
            return flow;
        }
        // Bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut v = t;
        while v != s {
            let u = parent[v];
            bottleneck = bottleneck.min(cap[u][v]);
            v = u;
        }
        let mut v = t;
        while v != s {
            let u = parent[v];
            cap[u][v] -= bottleneck;
            cap[v][u] += bottleneck;
            v = u;
        }
        flow += bottleneck;
    }
}

/// Oracle max-flow as an exact integer (integral capacities guarantee an
/// integral optimum, so the f64 oracle value rounds cleanly).
fn oracle_integral(n: usize, edges: &[(usize, usize, i64)], s: usize, t: usize) -> i64 {
    let f64_edges: Vec<(usize, usize, f64)> =
        edges.iter().map(|&(u, v, c)| (u, v, c as f64)).collect();
    let oracle = ford_fulkerson_f64(n, &f64_edges, s, t);
    let rounded = oracle.round();
    assert!(
        (oracle - rounded).abs() < 1e-6,
        "integral network produced non-integral oracle flow {oracle}"
    );
    rounded as i64
}

/// Strategy: a random DAG-ish network on `n` nodes with integer capacities.
fn arb_network() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (4usize..9).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1i64..20);
        proptest::collection::vec(edge, 1..20).prop_map(move |edges| {
            (
                n,
                edges
                    .into_iter()
                    .filter(|&(u, v, _)| u != v)
                    .collect::<Vec<_>>(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_engine_matches_ford_fulkerson((n, edges) in arb_network()) {
        prop_assume!(!edges.is_empty());
        let (s, t) = (0, n - 1);
        let expected = oracle_integral(n, &edges, s, t);
        testkit::assert_max_flow_integral::<Rational>(n, &edges, s, t, expected);
        testkit::assert_max_flow_integral::<BigInt>(n, &edges, s, t, expected);
        testkit::assert_max_flow_integral::<f64>(n, &edges, s, t, expected);
    }

    #[test]
    fn flow_value_equals_outflow((n, edges) in arb_network()) {
        prop_assume!(!edges.is_empty());
        let (s, t) = (0, n - 1);
        testkit::assert_outflow_equals_value::<Rational>(n, &edges, s, t);
        testkit::assert_outflow_equals_value::<BigInt>(n, &edges, s, t);
        testkit::assert_outflow_equals_value::<f64>(n, &edges, s, t);
    }

    #[test]
    fn min_cut_separates_and_matches_value((n, edges) in arb_network()) {
        prop_assume!(!edges.is_empty());
        let (s, t) = (0, n - 1);
        // Max-flow min-cut duality holds per engine (exactly on the exact
        // backends, within tolerance on f64).
        testkit::assert_min_cut_matches::<Rational>(n, &edges, s, t);
        testkit::assert_min_cut_matches::<BigInt>(n, &edges, s, t);
        testkit::assert_min_cut_matches::<f64>(n, &edges, s, t);
    }

    #[test]
    fn rational_capacities_scale_exactly((n, edges) in arb_network(), denom in 1i64..50) {
        prop_assume!(!edges.is_empty());
        // Scaling all capacities by 1/denom scales the max flow by 1/denom
        // (exact-engine specific: the point is gcd-normalized arithmetic).
        let mut net1 = FlowNetwork::new(n);
        let mut net2 = FlowNetwork::new(n);
        for &(u, v, c) in &edges {
            net1.add_edge(u, v, Cap::Finite(int(c)));
            net2.add_edge(u, v, Cap::Finite(Rational::from_ratio(c, denom)));
        }
        let f1 = net1.max_flow(0, n - 1);
        let f2 = net2.max_flow(0, n - 1);
        prop_assert_eq!(&f1 / &int(denom), f2);
    }
}
