//! The checked-`i128` engine: [`Network`] over machine-word capacities.
//!
//! The scaled-integer certifier (see `network_int`) turns every residual
//! decision into big-integer adds and compares — exact, but each one walks
//! heap-allocated limbs. On almost every shipped instance the p·D-scaled
//! capacities fit comfortably in an `i128`, where the same adds and
//! compares are single machine operations. This module is that fast tier:
//! the identical Dinic kernel over `i128`, with **checked** arithmetic so
//! that the one case the type cannot represent is *detected* rather than
//! silently wrapped.
//!
//! # Overflow reporting: the poison flag
//!
//! The [`Capacity`] arithmetic hooks return values, not `Result`s — the
//! kernel is shared with backends that cannot fail. Overflow therefore
//! reports through a thread-local *poison flag* plus the existing
//! headroom/exhausted hook surface:
//!
//! * every `checked_*` failure sets the flag and substitutes the
//!   saturating result (so values stay ordered and the kernel's invariants
//!   keep holding locally);
//! * once poisoned, [`Capacity::has_headroom`] answers `false` for every
//!   arc and [`Capacity::exhausted`] answers `true`, so BFS finds no
//!   augmenting path and the max-flow loop winds down within one phase;
//! * the caller brackets each run with [`reset_overflow`] /
//!   [`overflow_detected`] and **discards** the poisoned result, promoting
//!   the round to the BigInt engine ([`NetworkInt`](crate::NetworkInt)) —
//!   which computes the identical answer without the width limit.
//!
//! The session's certification tier additionally rejects at *build* time:
//! any scaled capacity (or endpoint total) that fails
//! `BigInt::to_i128` promotes before this engine ever runs, which is why
//! the runtime flag fires ~never in practice. It exists so "fits at build
//! time" never has to imply "every intermediate fits" for soundness.
//!
//! Results on the non-promoted path are bit-identical to the BigInt
//! engine's by construction: same kernel, same arc order, same integers —
//! only the representation width differs.

use crate::capacity::{Cap, Capacity};
use crate::kernel::Network;
use crate::stats;
use std::cell::Cell;

/// An arc capacity: a finite `i128` or `+∞` (middle arcs).
pub type CapI128 = Cap<i128>;

/// A directed flow network with checked-`i128` capacities — structurally
/// the twin of [`NetworkInt`](crate::NetworkInt), sharing its
/// [`EdgeId`](crate::EdgeId) forward/reverse arc-pair layout so the
/// session can keep one set of edge bookkeeping across the exact tiers.
pub type NetworkI128 = Network<i128>;

thread_local! {
    /// Set by any `checked_*` failure in the `i128` arithmetic hooks;
    /// cleared only by [`reset_overflow`]. Thread-local because networks
    /// are not `Send`-shared mid-run and the session pool gives each
    /// worker its own engines.
    static OVERFLOW: Cell<bool> = const { Cell::new(false) };
}

/// Clear the thread's `i128` overflow poison flag. Call before a run whose
/// result you intend to trust.
pub fn reset_overflow() {
    OVERFLOW.with(|f| f.set(false));
}

/// True iff any `i128` arithmetic hook overflowed on this thread since the
/// last [`reset_overflow`]. A `true` answer means the run's result must be
/// discarded and the computation promoted to the BigInt engine.
pub fn overflow_detected() -> bool {
    OVERFLOW.with(|f| f.get())
}

fn poison() {
    // Flight-recorder hook on the transition only: once poisoned, every
    // subsequent checked_* failure in the same run also lands here, and a
    // single anomaly dump per run is the useful granularity.
    let fresh = OVERFLOW.with(|f| !f.replace(true));
    if fresh {
        prs_trace::metrics::anomaly("i128_overflow_poison");
    }
}

impl Capacity for i128 {
    type Tol = ();

    const ENGINE: &'static str = "i128";
    const SPAN_BFS: &'static str = "i128_bfs_phase";
    const SPAN_MAX_FLOW: &'static str = "i128_max_flow";

    fn zero() -> Self {
        0
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
    fn is_negative(&self) -> bool {
        *self < 0
    }
    fn le(&self, rhs: &Self) -> bool {
        self <= rhs
    }
    fn add_assign_ref(&mut self, rhs: &Self) {
        *self = match self.checked_add(*rhs) {
            Some(v) => v,
            None => {
                poison();
                self.saturating_add(*rhs)
            }
        };
    }
    fn sub_assign_ref(&mut self, rhs: &Self) {
        *self = match self.checked_sub(*rhs) {
            Some(v) => v,
            None => {
                poison();
                self.saturating_sub(*rhs)
            }
        };
    }
    fn neg_ref(&self) -> Self {
        match self.checked_neg() {
            Some(v) => v,
            None => {
                poison();
                i128::MAX
            }
        }
    }
    fn sub_ref(lhs: &Self, rhs: &Self) -> Self {
        match lhs.checked_sub(*rhs) {
            Some(v) => v,
            None => {
                poison();
                lhs.saturating_sub(*rhs)
            }
        }
    }
    fn has_headroom(flow: &Self, cap: &Self, _tol: &()) -> bool {
        // A poisoned thread has no trustworthy residual structure: close
        // every arc so the kernel's BFS dead-ends and the run terminates.
        !overflow_detected() && flow < cap
    }
    fn exhausted(pushed: &Self) -> bool {
        overflow_detected() || *pushed == 0
    }
    fn conserved(net: &Self, _tol: &()) -> bool {
        *net == 0
    }
    fn observe(_tol: &mut (), _cap: &Self) {}

    fn record_bfs_phase() {
        stats::record_i128_bfs_phases(1);
    }
    fn record_augmenting_path() {
        stats::record_i128_augmenting_paths(1);
    }
    fn record_max_flow() {
        stats::record_i128_max_flows(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_i128_alias_constructs_and_matches() {
        let mut net = NetworkI128::new(3);
        let e = net.add_edge(0, 1, CapI128::Finite(7));
        net.add_edge(1, 2, CapI128::Infinite);
        match net.capacity_of(e) {
            CapI128::Finite(c) => assert_eq!(*c, 7),
            CapI128::Infinite => panic!("finite capacity stored as infinite"),
        }
    }

    #[test]
    fn checked_hooks_poison_on_overflow_and_saturate() {
        reset_overflow();
        let mut v = i128::MAX;
        v.add_assign_ref(&1);
        assert_eq!(v, i128::MAX, "overflowed add must saturate, not wrap");
        assert!(overflow_detected());

        reset_overflow();
        assert_eq!(i128::sub_ref(&i128::MIN, &1), i128::MIN);
        assert!(overflow_detected());

        reset_overflow();
        assert_eq!(i128::MIN.neg_ref(), i128::MAX);
        assert!(overflow_detected());

        reset_overflow();
        let mut v = i128::MIN;
        v.sub_assign_ref(&1);
        assert_eq!(v, i128::MIN);
        assert!(overflow_detected());
    }

    #[test]
    fn in_range_hooks_do_not_poison() {
        reset_overflow();
        let mut v = i128::MAX - 1;
        v.add_assign_ref(&1);
        assert_eq!(v, i128::MAX);
        assert_eq!(i128::sub_ref(&i128::MAX, &i128::MAX), 0);
        assert_eq!((-5i128).neg_ref(), 5);
        assert!(!overflow_detected());
    }

    #[test]
    fn poison_closes_headroom_and_forces_exhaustion() {
        reset_overflow();
        assert!(i128::has_headroom(&0, &10, &()));
        assert!(!i128::exhausted(&3));
        poison();
        assert!(!i128::has_headroom(&0, &10, &()));
        assert!(i128::exhausted(&3));
        reset_overflow();
        assert!(i128::has_headroom(&0, &10, &()));
    }

    #[test]
    fn poisoned_flow_terminates_and_reports() {
        // Two parallel source arcs whose caps individually fit but whose
        // *total* overflows i128: the accumulating flow sum trips the
        // checked add, the run winds down, and the flag reports it.
        reset_overflow();
        let big = i128::MAX / 2 + 2;
        let mut net = NetworkI128::new(4);
        net.add_edge(0, 1, CapI128::Finite(big));
        net.add_edge(0, 2, CapI128::Finite(big));
        net.add_edge(1, 3, CapI128::Finite(big));
        net.add_edge(2, 3, CapI128::Finite(big));
        let _poisoned_total = net.max_flow(0, 3);
        assert!(
            overflow_detected(),
            "2·(MAX/2 + 2) must trip the checked total accumulation"
        );
        reset_overflow();
    }
}
