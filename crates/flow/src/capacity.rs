//! The numeric-backend abstraction behind the single Dinic kernel.
//!
//! Every flow engine in this crate is the same algorithm — BFS level
//! graph, explicit-stack DFS augmentation, residual min-cut extraction —
//! over a different number type. [`Capacity`] captures exactly what the
//! kernel needs from that number type: a zero, reference arithmetic,
//! the bottleneck ordering, and a *tolerance hook* ([`Capacity::Tol`])
//! deciding when an arc still has residual headroom. For the exact
//! backends ([`Rational`], [`BigInt`]) the tolerance is the unit type and
//! every comparison is exact; the `f64` backend threads a capacity-scaled
//! epsilon through the same hook (see `network_f64`), so "saturated" means
//! "within `eps` of capacity" there — and nowhere else.
//!
//! The trait also owns the per-engine observability surface: stable span
//! names, the `engine` span attribute, and the routing of kernel events
//! into [`crate::stats`] (the scaled-integer backend deliberately shares
//! the `exact_*` counters with the rational one — both are exact engines,
//! and the session's certification path predates the split).

use prs_numeric::Rational;

/// An arc capacity: a finite backend value or `+∞`.
///
/// Infinite capacities appear on the `B_i × C_i` middle edges of the
/// Definition 5 networks; modelling them exactly (rather than with a large
/// finite surrogate) keeps min-cut reasoning clean — an infinite arc can
/// never be a cut edge. The parameter defaults to [`Rational`] so existing
/// call sites can keep writing plain `Cap` for the exact engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cap<C = Rational> {
    /// A finite capacity in the backend's units.
    Finite(C),
    /// Unbounded capacity (never a min-cut edge).
    Infinite,
}

impl<C: Capacity> Cap<C> {
    /// True iff the capacity is a finite zero (the arc can never carry flow).
    pub fn is_zero(&self) -> bool {
        matches!(self, Cap::Finite(c) if c.is_zero())
    }
}

/// A numeric backend the Dinic kernel can run on.
///
/// Implementations provide reference arithmetic (capacities can be
/// arbitrary-precision, so the kernel never clones where a borrow will
/// do), the bottleneck ordering, and the saturation predicate. The
/// `*_EPSILON`-style escape hatch lives entirely in [`Capacity::Tol`]:
/// exact backends use `()` and compare exactly, tolerant backends carry
/// whatever scale state they need.
pub trait Capacity: Clone + PartialEq + std::fmt::Debug {
    /// Comparison state threaded through every residual test. `Default`
    /// is the state of an empty network; [`Capacity::observe`] folds each
    /// finite capacity into it as the network is built.
    type Tol: Clone + Default + std::fmt::Debug;

    /// Engine label surfaced as the `engine` span attribute
    /// (`"exact"`, `"int"`, `"f64"`).
    const ENGINE: &'static str;
    /// Stable span name for one BFS phase.
    const SPAN_BFS: &'static str;
    /// Stable span name for one full max-flow computation.
    const SPAN_MAX_FLOW: &'static str;

    /// The additive identity (no flow).
    fn zero() -> Self;
    /// True iff the value is exactly zero.
    fn is_zero(&self) -> bool;
    /// True iff the value is strictly negative (reverse-arc flows are).
    fn is_negative(&self) -> bool;
    /// True iff the value is strictly positive.
    fn is_positive(&self) -> bool {
        !self.is_zero() && !self.is_negative()
    }
    /// Total order used by the bottleneck fold; ties keep the earlier arc.
    fn le(&self, rhs: &Self) -> bool;
    /// `self += rhs` by reference.
    fn add_assign_ref(&mut self, rhs: &Self);
    /// `self -= rhs` by reference.
    fn sub_assign_ref(&mut self, rhs: &Self);
    /// `-self` by reference (preset flows mirror onto reverse arcs).
    fn neg_ref(&self) -> Self;
    /// `lhs - rhs` by reference (residual capacity, remaining supply).
    fn sub_ref(lhs: &Self, rhs: &Self) -> Self;

    /// Saturation predicate: can an arc with capacity `cap` and current
    /// `flow` still carry more? Exact backends test `flow < cap`; the
    /// tolerant backend tests `flow + eps(tol) < cap` so float dust never
    /// opens a phantom residual arc.
    fn has_headroom(flow: &Self, cap: &Self, tol: &Self::Tol) -> bool;
    /// Loop-termination test on an augmentation result. Exact backends
    /// stop on exactly zero; the tolerant backend also treats negative
    /// dust as spent.
    fn exhausted(pushed: &Self) -> bool;
    /// Conservation test on a node's net flow (testing hook).
    fn conserved(net: &Self, tol: &Self::Tol) -> bool;
    /// Fold one finite capacity into the tolerance state (called from
    /// `add_edge`/`set_capacity`; exact backends ignore it).
    fn observe(tol: &mut Self::Tol, cap: &Self);

    /// Count one BFS phase in [`crate::stats`].
    fn record_bfs_phase();
    /// Count one augmenting path in [`crate::stats`].
    fn record_augmenting_path();
    /// Count one completed max-flow in [`crate::stats`].
    fn record_max_flow();
}

/// Implement the boilerplate half of [`Capacity`] — reference arithmetic,
/// ordering, exact-zero tolerance — for an exact backend type from
/// `prs-numeric`. The per-engine observability consts/hooks stay written
/// out at each impl site, where their stability matters.
macro_rules! exact_capacity_arith {
    () => {
        type Tol = ();

        fn zero() -> Self {
            Self::zero()
        }
        fn is_zero(&self) -> bool {
            self.is_zero()
        }
        fn is_negative(&self) -> bool {
            self.is_negative()
        }
        fn le(&self, rhs: &Self) -> bool {
            self <= rhs
        }
        fn add_assign_ref(&mut self, rhs: &Self) {
            *self += rhs;
        }
        fn sub_assign_ref(&mut self, rhs: &Self) {
            *self -= rhs;
        }
        fn neg_ref(&self) -> Self {
            -self
        }
        fn sub_ref(lhs: &Self, rhs: &Self) -> Self {
            lhs - rhs
        }
        fn has_headroom(flow: &Self, cap: &Self, _tol: &()) -> bool {
            flow < cap
        }
        fn exhausted(pushed: &Self) -> bool {
            pushed.is_zero()
        }
        fn conserved(net: &Self, _tol: &()) -> bool {
            net.is_zero()
        }
        fn observe(_tol: &mut (), _cap: &Self) {}
    };
}

pub(crate) use exact_capacity_arith;
