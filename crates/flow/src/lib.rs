#![warn(missing_docs)]
//! # prs-flow — one Dinic kernel, four capacity backends
//!
//! The bottleneck decomposition (Definition 2 of the paper) and the BD
//! Allocation Mechanism (Definition 5) are both defined through max-flow /
//! min-cut arguments on small auxiliary networks whose capacities are agent
//! weights and weights divided by α-ratios — i.e. exact rationals. This crate
//! implements Dinic's algorithm **once**, as [`Network<C>`] generic over the
//! [`Capacity`] backend trait, with first-class infinite capacities for the
//! `B×C` middle edges and the residual-reachability queries the
//! decomposition needs:
//!
//! * [`Network::max_flow`] — blocking-flow Dinic. Termination does not
//!   depend on capacity magnitudes (≤ `V` phases, ≤ `E` augmentations per
//!   phase), so exact arithmetic is safe.
//! * [`Network::min_cut_source_side`] — the s-side of a minimum cut,
//!   used by the Dinkelbach step to extract a violating set.
//! * [`Network::residual_reaches_sink`] — the set of nodes with a
//!   residual path *to* `t`, used to extract the maximal tight set
//!   (= maximal bottleneck).
//!
//! Four backends instantiate the kernel:
//!
//! * [`FlowNetwork`] = `Network<Rational>` — the exact certifying engine.
//! * [`NetworkInt`] = `Network<BigInt>` — uniformly scaled integers for the
//!   session's warm certification path (same decisions, cheaper arithmetic).
//! * [`NetworkI128`] = `Network<i128>` — the checked machine-word fast tier
//!   of the scaled-integer certifier; overflow poisons the run (see
//!   [`network_i128`]) and promotes the round back to [`NetworkInt`].
//! * [`NetworkF64`] = `Network<f64>` — the proposal half of the two-tier
//!   Dinkelbach driver in `prs-bd`; tolerant comparisons, never decisive.
//!
//! The backend modules contribute only a `Capacity` impl and a type alias;
//! the traversal order — hence the decomposition output — is bit-identical
//! across engines by construction. [`stats`] keeps process-wide counters
//! over all engines (`prs audit --stats`), and [`testkit`] holds the shared
//! engine-parameterized test suite.

pub mod capacity;
pub mod kernel;
pub mod network;
pub mod network_f64;
pub mod network_i128;
pub mod network_int;
pub mod stats;
pub mod testkit;

pub use capacity::{Cap, Capacity};
pub use kernel::{EdgeId, Network, NodeId, SeedArc};
pub use network::FlowNetwork;
pub use network_f64::NetworkF64;
pub use network_i128::{CapI128, NetworkI128};
pub use network_int::{CapInt, NetworkInt};
pub use stats::FlowStats;
