#![warn(missing_docs)]
//! # prs-flow — exact maximum flow over rational capacities
//!
//! The bottleneck decomposition (Definition 2 of the paper) and the BD
//! Allocation Mechanism (Definition 5) are both defined through max-flow /
//! min-cut arguments on small auxiliary networks whose capacities are agent
//! weights and weights divided by α-ratios — i.e. exact rationals. This crate
//! implements Dinic's algorithm over [`Rational`](prs_numeric::Rational)
//! capacities (with first-class infinite capacities for the `B×C` middle
//! edges), plus the residual-reachability queries the decomposition needs:
//!
//! * [`FlowNetwork::max_flow`] — exact blocking-flow Dinic. Termination does
//!   not depend on capacity magnitudes (≤ `V` phases, ≤ `E` augmentations per
//!   phase), so exact arithmetic is safe.
//! * [`FlowNetwork::min_cut_source_side`] — the s-side of a minimum cut,
//!   used by the Dinkelbach step to extract a violating set.
//! * [`FlowNetwork::residual_reaches_sink`] — the set of nodes with a
//!   residual path *to* `t`, used to extract the maximal tight set
//!   (= maximal bottleneck).

//!
//! The exact engine is complemented by [`NetworkF64`], a floating-point
//! mirror used by the two-tier Dinkelbach driver in `prs-bd` to *propose*
//! candidate parameters that a single exact flow then certifies, and by
//! [`stats`], process-wide counters over both engines (`prs audit --stats`).

pub mod network;
pub mod network_f64;
pub mod network_int;
pub mod stats;

pub use network::{Cap, EdgeId, FlowNetwork, NodeId};
pub use network_f64::NetworkF64;
pub use network_int::{CapInt, NetworkInt};
pub use stats::FlowStats;
