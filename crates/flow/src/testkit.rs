//! Shared, engine-parameterized test suite for the Dinic kernel.
//!
//! One property set, three backends: every deterministic kernel test in
//! this module is generic over [`TestCapacity`], so the exact, scaled-
//! integer, and float engines all run the *identical* cases (including
//! the long-path no-stack-overflow regression that historically covered
//! only two of the three). Engine test modules instantiate the whole
//! suite with [`crate::engine_suite!`]; the proptest harnesses reuse the
//! building-block helpers ([`integral_network`], [`assert_min_cut_matches`],
//! …) to cross-check random networks against an oracle per backend.
//!
//! The module is float-free by construction: ratios are described as
//! `num/den` pairs and each backend maps them into its own units — the
//! scaled-integer backend multiplies through by [`RATIO_SCALE`] (an
//! lcm(1..=16), so every small test denominator clears exactly), and the
//! `f64` mapping lives in the float-permitted `network_f64` module.

use crate::capacity::{Cap, Capacity};
use crate::kernel::{Network, NodeId, SeedArc};
use prs_numeric::{ratio, BigInt, Rational};

/// A [`Capacity`] backend that can represent the suite's small test
/// ratios and compare flow values against them.
pub trait TestCapacity: Capacity {
    /// Map `num/den` into this backend's capacity units. Test
    /// denominators always divide [`RATIO_SCALE`].
    fn from_ratio(num: i64, den: i64) -> Self;
    /// Assert two flow values agree (exactly for exact backends, within
    /// proposal tolerance for the float backend).
    fn assert_feq(actual: &Self, expected: &Self);
}

/// Uniform scale (`lcm(1..=16) = 720720`) the big-integer backend
/// multiplies test ratios by. Uniform positive scaling preserves max
/// flows, min cuts, and residual reachability, so the scaled suite pins
/// the same structure as the rational one.
pub const RATIO_SCALE: i64 = 720_720;

impl TestCapacity for Rational {
    fn from_ratio(num: i64, den: i64) -> Self {
        ratio(num, den)
    }
    fn assert_feq(actual: &Self, expected: &Self) {
        assert_eq!(actual, expected);
    }
}

impl TestCapacity for BigInt {
    fn from_ratio(num: i64, den: i64) -> Self {
        assert_eq!(
            RATIO_SCALE % den,
            0,
            "test denominator {den} must divide RATIO_SCALE"
        );
        BigInt::from(num * (RATIO_SCALE / den))
    }
    fn assert_feq(actual: &Self, expected: &Self) {
        assert_eq!(actual, expected);
    }
}

impl TestCapacity for i128 {
    fn from_ratio(num: i64, den: i64) -> Self {
        assert_eq!(
            RATIO_SCALE % den,
            0,
            "test denominator {den} must divide RATIO_SCALE"
        );
        i128::from(num) * i128::from(RATIO_SCALE / den)
    }
    fn assert_feq(actual: &Self, expected: &Self) {
        assert_eq!(actual, expected);
    }
}

/// `Cap::Finite(num/den)` in backend units.
pub fn fin<C: TestCapacity>(num: i64, den: i64) -> Cap<C> {
    Cap::Finite(C::from_ratio(num, den))
}

/// Assert a flow value equals `num/den` in backend units.
pub fn expect<C: TestCapacity>(actual: &C, num: i64, den: i64) {
    C::assert_feq(actual, &C::from_ratio(num, den));
}

/// Build a network from `(from, to, integral capacity)` triples.
pub fn integral_network<C: TestCapacity>(n: usize, edges: &[(NodeId, NodeId, i64)]) -> Network<C> {
    let mut net = Network::new(n);
    for &(u, v, c) in edges {
        net.add_edge(u, v, fin::<C>(c, 1));
    }
    net
}

/// Build a network from explicit per-arc capacities (any backend — only
/// needs [`Capacity`], not [`TestCapacity`]).
pub fn network_from<C: Capacity>(n: usize, edges: &[(NodeId, NodeId, Cap<C>)]) -> Network<C> {
    let mut net = Network::new(n);
    for (u, v, c) in edges {
        net.add_edge(*u, *v, c.clone());
    }
    net
}

/// Max-flow over integral capacities must equal `expected` (oracle value).
pub fn assert_max_flow_integral<C: TestCapacity>(
    n: usize,
    edges: &[(NodeId, NodeId, i64)],
    s: NodeId,
    t: NodeId,
    expected: i64,
) {
    let mut net = integral_network::<C>(n, edges);
    let flow = net.max_flow(s, t);
    expect::<C>(&flow, expected, 1);
    assert!(net.check_conservation(s, t));
    assert!(net.check_capacities());
}

/// Max-flow/min-cut duality on an integral network: the cut found by
/// residual reachability separates `s` from `t` and its forward capacity
/// equals the flow value.
pub fn assert_min_cut_matches<C: TestCapacity>(
    n: usize,
    edges: &[(NodeId, NodeId, i64)],
    s: NodeId,
    t: NodeId,
) {
    let mut net = integral_network::<C>(n, edges);
    let flow = net.max_flow(s, t);
    let side = net.min_cut_source_side(s);
    assert!(side[s], "source must sit on its own cut side");
    assert!(
        !side[t],
        "sink reachable in the residual graph after max-flow"
    );
    let mut cut = C::zero();
    for &(u, v, c) in edges {
        if side[u] && !side[v] {
            cut.add_assign_ref(&C::from_ratio(c, 1));
        }
    }
    C::assert_feq(&cut, &flow);
}

/// The flow value equals the net outflow of the source (and the negated
/// net outflow of the sink).
pub fn assert_outflow_equals_value<C: TestCapacity>(
    n: usize,
    edges: &[(NodeId, NodeId, i64)],
    s: NodeId,
    t: NodeId,
) {
    let mut net = integral_network::<C>(n, edges);
    let flow = net.max_flow(s, t);
    C::assert_feq(&net.outflow(s), &flow);
    C::assert_feq(&net.outflow(t), &flow.neg_ref());
}

// ---------------------------------------------------------------------------
// Deterministic suite — one case per public fn; `engine_suite!` wraps each
// in a `#[test]` so every backend runs the identical set.
// ---------------------------------------------------------------------------

/// One fractional edge carries exactly its capacity.
pub fn single_edge<C: TestCapacity>() {
    let mut net = Network::<C>::new(2);
    net.add_edge(0, 1, fin::<C>(3, 2));
    expect::<C>(&net.max_flow(0, 1), 3, 2);
}

/// Arcs in series bottleneck at the minimum capacity.
pub fn series_takes_minimum<C: TestCapacity>() {
    let mut net = Network::<C>::new(3);
    net.add_edge(0, 1, fin::<C>(5, 1));
    net.add_edge(1, 2, fin::<C>(2, 3));
    expect::<C>(&net.max_flow(0, 2), 2, 3);
    assert!(net.check_conservation(0, 2));
    assert!(net.check_capacities());
}

/// Parallel routes add up.
pub fn parallel_paths_sum<C: TestCapacity>() {
    let mut net = Network::<C>::new(4);
    net.add_edge(0, 1, fin::<C>(1, 3));
    net.add_edge(1, 3, fin::<C>(1, 1));
    net.add_edge(0, 2, fin::<C>(1, 6));
    net.add_edge(2, 3, fin::<C>(1, 1));
    expect::<C>(&net.max_flow(0, 3), 1, 2);
}

/// The textbook 4-node diamond where a naive greedy needs the residual
/// back edge to reach optimality.
pub fn classic_augmenting_through_back_edge<C: TestCapacity>() {
    let mut net = Network::<C>::new(4);
    net.add_edge(0, 1, fin::<C>(1, 1));
    net.add_edge(0, 2, fin::<C>(1, 1));
    net.add_edge(1, 2, fin::<C>(1, 1));
    net.add_edge(1, 3, fin::<C>(1, 1));
    net.add_edge(2, 3, fin::<C>(1, 1));
    expect::<C>(&net.max_flow(0, 3), 2, 1);
    assert!(net.check_conservation(0, 3));
}

/// `s → a (2), a → b (∞), b → t (1/2)`: bottleneck is the sink arc.
pub fn infinite_middle_edges<C: TestCapacity>() {
    let mut net = Network::<C>::new(4);
    net.add_edge(0, 1, fin::<C>(2, 1));
    net.add_edge(1, 2, Cap::Infinite);
    net.add_edge(2, 3, fin::<C>(1, 2));
    expect::<C>(&net.max_flow(0, 3), 1, 2);
}

/// Residual reachability stops exactly at the saturated bottleneck.
pub fn min_cut_identifies_bottleneck_side<C: TestCapacity>() {
    let mut net = Network::<C>::new(4);
    let _sa = net.add_edge(0, 1, fin::<C>(10, 1));
    let ab = net.add_edge(1, 2, fin::<C>(1, 1));
    let _bt = net.add_edge(2, 3, fin::<C>(10, 1));
    net.max_flow(0, 3);
    assert_eq!(net.min_cut_source_side(0), vec![true, true, false, false]);
    assert!(net.is_saturated(ab));
}

/// After saturating, only nodes on the t-side (or with spare capacity
/// towards t) can reach t.
pub fn residual_reaches_sink_basic<C: TestCapacity>() {
    let mut net = Network::<C>::new(4);
    net.add_edge(0, 1, fin::<C>(1, 1));
    net.add_edge(1, 2, fin::<C>(1, 1));
    net.add_edge(2, 3, fin::<C>(2, 1)); // spare capacity at the sink arc
    net.max_flow(0, 3);
    let reaches = net.residual_reaches_sink(3);
    assert!(reaches[3] && reaches[2]);
    assert!(!reaches[1] && !reaches[0]);
}

/// Left `{1,2}` weights 1 each; right `{3}` capacity 2: feasible, flow 2
/// saturates both source arcs.
pub fn bipartite_hall_feasibility<C: TestCapacity>() {
    let mut net = Network::<C>::new(5);
    net.add_edge(0, 1, fin::<C>(1, 1));
    net.add_edge(0, 2, fin::<C>(1, 1));
    net.add_edge(1, 3, Cap::Infinite);
    net.add_edge(2, 3, Cap::Infinite);
    net.add_edge(3, 4, fin::<C>(2, 1));
    expect::<C>(&net.max_flow(0, 4), 2, 1);
}

/// A zero-capacity arc can never carry flow.
pub fn zero_capacity_edges_carry_nothing<C: TestCapacity>() {
    let mut net = Network::<C>::new(3);
    net.add_edge(0, 1, fin::<C>(0, 1));
    net.add_edge(1, 2, fin::<C>(5, 1));
    expect::<C>(&net.max_flow(0, 2), 0, 1);
}

/// `reset_flow` restores a just-built state on the same topology.
pub fn reset_flow_allows_reuse<C: TestCapacity>() {
    let mut net = Network::<C>::new(2);
    let e = net.add_edge(0, 1, fin::<C>(1, 1));
    expect::<C>(&net.max_flow(0, 1), 1, 1);
    net.reset_flow();
    expect::<C>(net.flow_on(e), 0, 1);
    expect::<C>(&net.max_flow(0, 1), 1, 1);
}

/// `set_capacity` + `reset_flow` reparameterize without a rebuild.
pub fn set_capacity_reparameterizes_in_place<C: TestCapacity>() {
    let mut net = Network::<C>::new(3);
    let sa = net.add_edge(0, 1, fin::<C>(1, 1));
    net.add_edge(1, 2, fin::<C>(10, 1));
    expect::<C>(&net.max_flow(0, 2), 1, 1);
    net.set_capacity(sa, fin::<C>(7, 2));
    net.reset_flow();
    expect::<C>(&net.max_flow(0, 2), 7, 2);
}

/// `clear` rebuilds the topology while keeping the arena.
pub fn clear_rebuilds_in_place<C: TestCapacity>() {
    let mut net = Network::<C>::new(2);
    net.add_edge(0, 1, fin::<C>(1, 1));
    expect::<C>(&net.max_flow(0, 1), 1, 1);
    net.clear(3);
    assert_eq!(net.n(), 3);
    net.add_edge(0, 1, fin::<C>(2, 1));
    net.add_edge(1, 2, fin::<C>(3, 1));
    expect::<C>(&net.max_flow(0, 2), 2, 1);
    assert!(net.check_conservation(0, 2));
}

/// A manually preset valid flow resumes to the same optimum and the same
/// residual structure as a cold run (the warm-start contract).
pub fn preset_flow_resumes_to_the_same_optimum<C: TestCapacity>() {
    // Hall-type: two left nodes (caps 2, 3) share one right node (cap 4).
    let build = |net: &mut Network<C>| {
        let a = net.add_edge(0, 1, fin::<C>(2, 1));
        let b = net.add_edge(0, 2, fin::<C>(3, 1));
        let m1 = net.add_edge(1, 3, Cap::Infinite);
        let m2 = net.add_edge(2, 3, Cap::Infinite);
        let s = net.add_edge(3, 4, fin::<C>(4, 1));
        (a, b, m1, m2, s)
    };
    let mut cold = Network::<C>::new(5);
    build(&mut cold);
    let cold_val = cold.max_flow(0, 4);

    let mut warm = Network::<C>::new(5);
    let (a, b, m1, m2, s) = build(&mut warm);
    // Seed a valid partial flow: 2 via node 1, 1 via node 2.
    warm.preset_flow(a, C::from_ratio(2, 1));
    warm.preset_flow(m1, C::from_ratio(2, 1));
    warm.preset_flow(b, C::from_ratio(1, 1));
    warm.preset_flow(m2, C::from_ratio(1, 1));
    warm.preset_flow(s, C::from_ratio(3, 1));
    assert!(warm.check_capacities() && warm.check_conservation(0, 4));
    let extra = warm.max_flow(0, 4);
    let mut resumed = C::from_ratio(3, 1);
    resumed.add_assign_ref(&extra);
    C::assert_feq(&resumed, &cold_val);
    // Same residual tight-set structure as the cold run.
    assert_eq!(warm.residual_reaches_sink(4), cold.residual_reaches_sink(4));
}

/// `seed_flow` clamps over-eager seeds to remaining capacity and installs
/// a valid flow the solver only has to complete.
pub fn seed_flow_installs_largest_valid_seed<C: TestCapacity>() {
    let mut net = Network::<C>::new(5);
    let a = net.add_edge(0, 1, fin::<C>(2, 1));
    let b = net.add_edge(0, 2, fin::<C>(3, 1));
    let m1 = net.add_edge(1, 3, Cap::Infinite);
    let m2 = net.add_edge(2, 3, Cap::Infinite);
    let s = net.add_edge(3, 4, fin::<C>(4, 1));
    // Both requests exceed every bound; the kernel clamps the first to its
    // source supply (2) and the second to the remaining sink room (2).
    let seeds = [
        SeedArc {
            source_edge: a,
            mid_edge: m1,
            sink_edge: s,
            desired: C::from_ratio(5, 1),
        },
        SeedArc {
            source_edge: b,
            mid_edge: m2,
            sink_edge: s,
            desired: C::from_ratio(5, 1),
        },
    ];
    let seeded = net.seed_flow(&seeds);
    expect::<C>(&seeded, 4, 1);
    assert!(net.check_capacities());
    assert!(net.check_conservation(0, 4));
    // The seed already is the optimum here: max_flow finds nothing more.
    expect::<C>(&net.max_flow(0, 4), 0, 1);
}

/// 50 001 nodes in series: one augmenting path of length 50 000. A
/// recursive DFS would blow the thread stack here; the explicit stack
/// must not — on *any* backend.
pub fn long_path_augments_without_stack_overflow<C: TestCapacity>() {
    let n = 50_001;
    let mut net = Network::<C>::new(n);
    for v in 0..n - 1 {
        net.add_edge(v, v + 1, fin::<C>(1, 2));
    }
    expect::<C>(&net.max_flow(0, n - 1), 1, 2);
    assert!(net.check_conservation(0, n - 1));
    assert!(net.check_capacities());
}

/// `a → s → b`: one unit passes *through* s, so the net outflow of s is
/// zero even though s has a saturated outgoing arc.
pub fn outflow_is_net_with_edge_into_source<C: TestCapacity>() {
    let mut net = Network::<C>::new(3);
    let (a, s, b) = (0, 1, 2);
    net.add_edge(a, s, fin::<C>(1, 1));
    net.add_edge(s, b, fin::<C>(1, 1));
    expect::<C>(&net.max_flow(a, b), 1, 1);
    expect::<C>(&net.outflow(a), 1, 1);
    expect::<C>(&net.outflow(s), 0, 1);
    expect::<C>(&net.outflow(b), -1, 1);
}

/// Edges into the run source exist but carry nothing; `outflow(s)` must
/// still equal the flow value.
pub fn outflow_counts_incoming_at_the_run_source<C: TestCapacity>() {
    let mut net = Network::<C>::new(3);
    net.add_edge(2, 0, fin::<C>(5, 1)); // into the source
    net.add_edge(0, 1, fin::<C>(2, 1));
    net.add_edge(1, 2, fin::<C>(3, 1));
    expect::<C>(&net.max_flow(0, 2), 2, 1);
    expect::<C>(&net.outflow(0), 2, 1);
}

/// 3×3 grid from corner to corner, unit capacities: max flow = 2.
pub fn larger_grid_network<C: TestCapacity>() {
    let idx = |r: usize, c: usize| r * 3 + c;
    let mut net = Network::<C>::new(9);
    for r in 0..3 {
        for c in 0..3 {
            if c + 1 < 3 {
                net.add_edge(idx(r, c), idx(r, c + 1), fin::<C>(1, 1));
            }
            if r + 1 < 3 {
                net.add_edge(idx(r, c), idx(r + 1, c), fin::<C>(1, 1));
            }
        }
    }
    expect::<C>(&net.max_flow(idx(0, 0), idx(2, 2)), 2, 1);
    assert!(net.check_conservation(idx(0, 0), idx(2, 2)));
    assert!(net.check_capacities());
}

/// Instantiate the full deterministic kernel suite for one backend: one
/// `#[test]` per [`crate::testkit`] case. Invoke inside a dedicated
/// `mod`, once per engine.
#[macro_export]
macro_rules! engine_suite {
    ($C:ty) => {
        #[test]
        fn single_edge() {
            $crate::testkit::single_edge::<$C>();
        }
        #[test]
        fn series_takes_minimum() {
            $crate::testkit::series_takes_minimum::<$C>();
        }
        #[test]
        fn parallel_paths_sum() {
            $crate::testkit::parallel_paths_sum::<$C>();
        }
        #[test]
        fn classic_augmenting_through_back_edge() {
            $crate::testkit::classic_augmenting_through_back_edge::<$C>();
        }
        #[test]
        fn infinite_middle_edges() {
            $crate::testkit::infinite_middle_edges::<$C>();
        }
        #[test]
        fn min_cut_identifies_bottleneck_side() {
            $crate::testkit::min_cut_identifies_bottleneck_side::<$C>();
        }
        #[test]
        fn residual_reaches_sink_basic() {
            $crate::testkit::residual_reaches_sink_basic::<$C>();
        }
        #[test]
        fn bipartite_hall_feasibility() {
            $crate::testkit::bipartite_hall_feasibility::<$C>();
        }
        #[test]
        fn zero_capacity_edges_carry_nothing() {
            $crate::testkit::zero_capacity_edges_carry_nothing::<$C>();
        }
        #[test]
        fn reset_flow_allows_reuse() {
            $crate::testkit::reset_flow_allows_reuse::<$C>();
        }
        #[test]
        fn set_capacity_reparameterizes_in_place() {
            $crate::testkit::set_capacity_reparameterizes_in_place::<$C>();
        }
        #[test]
        fn clear_rebuilds_in_place() {
            $crate::testkit::clear_rebuilds_in_place::<$C>();
        }
        #[test]
        fn preset_flow_resumes_to_the_same_optimum() {
            $crate::testkit::preset_flow_resumes_to_the_same_optimum::<$C>();
        }
        #[test]
        fn seed_flow_installs_largest_valid_seed() {
            $crate::testkit::seed_flow_installs_largest_valid_seed::<$C>();
        }
        #[test]
        fn long_path_augments_without_stack_overflow() {
            $crate::testkit::long_path_augments_without_stack_overflow::<$C>();
        }
        #[test]
        fn outflow_is_net_with_edge_into_source() {
            $crate::testkit::outflow_is_net_with_edge_into_source::<$C>();
        }
        #[test]
        fn outflow_counts_incoming_at_the_run_source() {
            $crate::testkit::outflow_counts_incoming_at_the_run_source::<$C>();
        }
        #[test]
        fn larger_grid_network() {
            $crate::testkit::larger_grid_network::<$C>();
        }
    };
}

#[cfg(test)]
mod tests {
    mod exact_engine {
        crate::engine_suite!(prs_numeric::Rational);
    }
    mod int_engine {
        crate::engine_suite!(prs_numeric::BigInt);
    }
    mod i128_engine {
        crate::engine_suite!(i128);
    }
    mod f64_engine {
        crate::engine_suite!(f64);
    }
}
