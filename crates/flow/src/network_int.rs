//! Dinic's maximum-flow algorithm with big-integer capacities.
//!
//! The exact rational network ([`FlowNetwork`](crate::FlowNetwork)) pays a
//! gcd-normalized cross-multiplication for every residual comparison and
//! every flow update. A Hall-feasibility network can instead be *scaled
//! integer*: multiply every capacity by `p · D`, where `α = p/q` is the
//! parameter and `D` clears the weight denominators — the feasibility
//! decision and the residual structure (min cuts, tight sets) are invariant
//! under uniform scaling, while every arithmetic step becomes a plain
//! big-integer add or compare. The session's warm certification path builds
//! this network; the result it extracts is bit-identical to the rational
//! engine's because only the *representation* of the capacities changes.

use crate::stats;
use crate::{EdgeId, NodeId};
use prs_numeric::BigInt;
use std::collections::VecDeque;

/// An arc capacity: a finite big integer or `+∞` (middle arcs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CapInt {
    /// A finite exact capacity.
    Finite(BigInt),
    /// Unbounded capacity (never a min-cut edge).
    Infinite,
}

#[derive(Clone)]
struct Arc {
    to: NodeId,
    cap: CapInt,
    /// Flow currently on this arc (negative on reverse arcs).
    flow: BigInt,
}

impl Arc {
    /// Residual capacity; `None` encodes +∞.
    fn residual(&self) -> Option<BigInt> {
        match &self.cap {
            CapInt::Infinite => None,
            CapInt::Finite(c) => Some(c - &self.flow),
        }
    }

    fn has_residual(&self) -> bool {
        match &self.cap {
            CapInt::Infinite => true,
            CapInt::Finite(c) => &self.flow < c,
        }
    }
}

/// A directed flow network with big-integer capacities — structurally the
/// twin of [`FlowNetwork`](crate::FlowNetwork), sharing its [`EdgeId`]
/// forward/reverse arc-pair layout so callers can keep one set of edge
/// bookkeeping for both.
pub struct NetworkInt {
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
    // Scratch buffers reused across phases (workhorse-buffer idiom).
    level: Vec<u32>,
    iter: Vec<usize>,
}

const UNREACHED: u32 = u32::MAX;

impl NetworkInt {
    /// A network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        stats::record_networks_built(1);
        NetworkInt {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![UNREACHED; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Drop all arcs and resize to `n` nodes, keeping every allocation.
    pub fn clear(&mut self, n: usize) {
        stats::record_networks_reused(1);
        self.arcs.clear();
        self.adj.iter_mut().for_each(|a| a.clear());
        self.adj.resize_with(n, Vec::new);
        self.level.clear();
        self.level.resize(n, UNREACHED);
        self.iter.clear();
        self.iter.resize(n, 0);
    }

    /// Replace the capacity of forward edge `id` without touching topology.
    /// Call [`reset_flow`](Self::reset_flow) before the next
    /// [`max_flow`](Self::max_flow).
    pub fn set_capacity(&mut self, id: EdgeId, cap: CapInt) {
        debug_assert_eq!(id % 2, 0, "capacities live on forward arcs");
        self.arcs[id].cap = cap;
    }

    /// Add a directed edge `from → to` with the given capacity; returns its
    /// id. Ids are assigned in call order, exactly as in
    /// [`FlowNetwork::add_edge`](crate::FlowNetwork::add_edge).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: CapInt) -> EdgeId {
        assert!(from < self.n() && to < self.n(), "node out of range");
        assert_ne!(from, to, "self-loop arcs are not supported");
        let id = self.arcs.len();
        self.adj[from].push(id);
        self.arcs.push(Arc {
            to,
            cap,
            flow: BigInt::zero(),
        });
        self.adj[to].push(id + 1);
        self.arcs.push(Arc {
            to: from,
            cap: CapInt::Finite(BigInt::zero()),
            flow: BigInt::zero(),
        });
        id
    }

    /// Flow currently assigned to forward edge `id`.
    pub fn flow_on(&self, id: EdgeId) -> &BigInt {
        &self.arcs[id].flow
    }

    /// The capacity of forward edge `id`.
    pub fn capacity_of(&self, id: EdgeId) -> &CapInt {
        debug_assert_eq!(id % 2, 0, "capacities live on forward arcs");
        &self.arcs[id].cap
    }

    /// Seed forward edge `id` with flow `f` before a
    /// [`max_flow`](Self::max_flow) run (warm start). The caller must keep
    /// the overall assignment capacity-valid and conserving; `max_flow`
    /// then augments from this state and returns only the *additional*
    /// flow pushed.
    pub fn preset_flow(&mut self, id: EdgeId, f: BigInt) {
        debug_assert_eq!(id % 2, 0, "presets go on forward arcs");
        debug_assert!(!f.is_negative());
        debug_assert!(match &self.arcs[id].cap {
            CapInt::Infinite => true,
            CapInt::Finite(c) => &f <= c,
        });
        self.arcs[id ^ 1].flow = -&f;
        self.arcs[id].flow = f;
    }

    /// Reset all flows to zero.
    pub fn reset_flow(&mut self) {
        for a in &mut self.arcs {
            a.flow = BigInt::zero();
        }
    }

    fn bfs_levels(&mut self, s: NodeId) {
        stats::record_exact_bfs_phases(1);
        let _sp = prs_trace::span("flow", "int_bfs_phase");
        self.level.iter_mut().for_each(|l| *l = UNREACHED);
        self.level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &aid in &self.adj[v] {
                let a = &self.arcs[aid];
                if a.has_residual() && self.level[a.to] == UNREACHED {
                    self.level[a.to] = self.level[v] + 1;
                    q.push_back(a.to);
                }
            }
        }
    }

    /// Find one augmenting path in the level graph and push flow along it;
    /// returns the amount pushed (zero when no path remains this phase).
    /// Iterative — see [`FlowNetwork`](crate::FlowNetwork) for why.
    fn dfs_augment(&mut self, s: NodeId, t: NodeId) -> BigInt {
        let mut path: Vec<usize> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                let mut limit: Option<BigInt> = None;
                for &aid in &path {
                    if let Some(r) = self.arcs[aid].residual() {
                        limit = Some(match limit {
                            Some(l) if l <= r => l,
                            _ => r,
                        });
                    }
                }
                // prs-lint: allow(panic, reason = "s has only finite-capacity out-arcs, so every s→t path bounds the minimum; a violation is a solver bug, not an input error")
                let pushed = limit.expect("an s→t path must pass a finite-capacity arc");
                for &aid in &path {
                    self.arcs[aid].flow += &pushed;
                    self.arcs[aid ^ 1].flow -= &pushed;
                }
                stats::record_exact_augmenting_paths(1);
                return pushed;
            }
            let mut advanced = false;
            while self.iter[v] < self.adj[v].len() {
                let aid = self.adj[v][self.iter[v]];
                let a = &self.arcs[aid];
                if a.has_residual() && self.level[a.to] == self.level[v] + 1 {
                    path.push(aid);
                    v = a.to;
                    advanced = true;
                    break;
                }
                self.iter[v] += 1;
            }
            if !advanced {
                match path.pop() {
                    Some(aid) => {
                        let parent = self.arcs[aid ^ 1].to;
                        self.iter[parent] += 1;
                        v = parent;
                    }
                    None => return BigInt::zero(),
                }
            }
        }
    }

    /// Compute the maximum `s → t` flow. The network must not contain an
    /// infinite-capacity `s → t` path.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> BigInt {
        assert_ne!(s, t, "source equals sink");
        stats::record_exact_max_flows(1);
        let mut sp = prs_trace::span("flow", "int_max_flow");
        let mut phases: u64 = 0;
        let mut total = BigInt::zero();
        loop {
            self.bfs_levels(s);
            phases += 1;
            if self.level[t] == UNREACHED {
                sp.attr("phases", || phases.to_string());
                return total;
            }
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(s, t);
                if pushed.is_zero() {
                    break;
                }
                total += &pushed;
            }
        }
    }

    /// Nodes reachable from `s` in the residual graph (the s-side of a
    /// minimum cut after [`max_flow`](Self::max_flow) has run).
    pub fn min_cut_source_side(&self, s: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.n()];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &aid in &self.adj[v] {
                let a = &self.arcs[aid];
                if a.has_residual() && !seen[a.to] {
                    seen[a.to] = true;
                    stack.push(a.to);
                }
            }
        }
        seen
    }

    /// Nodes that can reach `t` through the residual graph — the maximal
    /// tight-set query (see [`FlowNetwork::residual_reaches_sink`]).
    ///
    /// [`FlowNetwork::residual_reaches_sink`]:
    ///     crate::FlowNetwork::residual_reaches_sink
    pub fn residual_reaches_sink(&self, t: NodeId) -> Vec<bool> {
        let mut reaches = vec![false; self.n()];
        reaches[t] = true;
        let mut stack = vec![t];
        let mut incoming: Vec<Vec<NodeId>> = vec![Vec::new(); self.n()];
        for (from, arcs) in self.adj.iter().enumerate() {
            for &aid in arcs {
                let a = &self.arcs[aid];
                if a.has_residual() {
                    incoming[a.to].push(from);
                }
            }
        }
        while let Some(v) = stack.pop() {
            for &u in &incoming[v] {
                if !reaches[u] {
                    reaches[u] = true;
                    stack.push(u);
                }
            }
        }
        reaches
    }

    /// Verify conservation at every node except `s` and `t` (testing hook).
    pub fn check_conservation(&self, s: NodeId, t: NodeId) -> bool {
        for v in 0..self.n() {
            if v == s || v == t {
                continue;
            }
            let mut net = BigInt::zero();
            for &aid in &self.adj[v] {
                net += &self.arcs[aid].flow;
            }
            if !net.is_zero() {
                return false;
            }
        }
        true
    }

    /// Verify `0 ≤ flow ≤ cap` on all forward arcs (testing hook).
    pub fn check_capacities(&self) -> bool {
        self.arcs.iter().step_by(2).all(|a| {
            !a.flow.is_negative()
                && match &a.cap {
                    CapInt::Infinite => true,
                    CapInt::Finite(c) => &a.flow <= c,
                }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fin(n: i64) -> CapInt {
        CapInt::Finite(BigInt::from(n))
    }

    fn big(n: i64) -> BigInt {
        BigInt::from(n)
    }

    #[test]
    fn single_edge() {
        let mut net = NetworkInt::new(2);
        net.add_edge(0, 1, fin(3));
        assert_eq!(net.max_flow(0, 1), big(3));
    }

    #[test]
    fn series_takes_minimum_and_parallel_sums() {
        let mut net = NetworkInt::new(4);
        net.add_edge(0, 1, fin(5));
        net.add_edge(1, 3, fin(2));
        net.add_edge(0, 2, fin(1));
        net.add_edge(2, 3, fin(4));
        assert_eq!(net.max_flow(0, 3), big(3));
        assert!(net.check_conservation(0, 3));
        assert!(net.check_capacities());
    }

    #[test]
    fn classic_augmenting_through_back_edge() {
        let mut net = NetworkInt::new(4);
        net.add_edge(0, 1, fin(1));
        net.add_edge(0, 2, fin(1));
        net.add_edge(1, 2, fin(1));
        net.add_edge(1, 3, fin(1));
        net.add_edge(2, 3, fin(1));
        assert_eq!(net.max_flow(0, 3), big(2));
    }

    #[test]
    fn infinite_middle_edges_and_min_cut() {
        let mut net = NetworkInt::new(4);
        net.add_edge(0, 1, fin(2));
        net.add_edge(1, 2, CapInt::Infinite);
        net.add_edge(2, 3, fin(1));
        assert_eq!(net.max_flow(0, 3), big(1));
        let side = net.min_cut_source_side(0);
        assert_eq!(side, vec![true, true, true, false]);
    }

    #[test]
    fn preset_flow_resumes_to_the_same_optimum() {
        // Hall-type: two left nodes (caps 2, 3) share one right node (cap 4).
        let build = |net: &mut NetworkInt| {
            let a = net.add_edge(0, 1, fin(2));
            let b = net.add_edge(0, 2, fin(3));
            let m1 = net.add_edge(1, 3, CapInt::Infinite);
            let m2 = net.add_edge(2, 3, CapInt::Infinite);
            let s = net.add_edge(3, 4, fin(4));
            (a, b, m1, m2, s)
        };
        let mut cold = NetworkInt::new(5);
        build(&mut cold);
        let cold_val = cold.max_flow(0, 4);

        let mut warm = NetworkInt::new(5);
        let (a, b, m1, m2, s) = build(&mut warm);
        // Seed a valid partial flow: 2 via node 1, 1 via node 2.
        warm.preset_flow(a, big(2));
        warm.preset_flow(m1, big(2));
        warm.preset_flow(b, big(1));
        warm.preset_flow(m2, big(1));
        warm.preset_flow(s, big(3));
        assert!(warm.check_capacities() && warm.check_conservation(0, 4));
        let extra = warm.max_flow(0, 4);
        assert_eq!(&big(3) + &extra, cold_val);
        // Same residual tight-set structure as the cold run.
        assert_eq!(warm.residual_reaches_sink(4), cold.residual_reaches_sink(4));
    }

    #[test]
    fn reset_and_reparameterize_in_place() {
        let mut net = NetworkInt::new(3);
        let sa = net.add_edge(0, 1, fin(1));
        net.add_edge(1, 2, fin(10));
        assert_eq!(net.max_flow(0, 2), big(1));
        net.set_capacity(sa, fin(7));
        net.reset_flow();
        assert_eq!(net.max_flow(0, 2), big(7));
    }

    #[test]
    fn clear_rebuilds_in_place() {
        let mut net = NetworkInt::new(2);
        net.add_edge(0, 1, fin(1));
        assert_eq!(net.max_flow(0, 1), big(1));
        net.clear(3);
        assert_eq!(net.n(), 3);
        net.add_edge(0, 1, fin(2));
        net.add_edge(1, 2, fin(3));
        assert_eq!(net.max_flow(0, 2), big(2));
    }
}
