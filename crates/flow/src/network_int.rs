//! The scaled-integer engine: [`Network`] over [`BigInt`] capacities.
//!
//! The exact rational engine pays a gcd-normalized cross-multiplication
//! for every residual comparison and every flow update. A Hall-feasibility
//! network can instead be *scaled integer*: multiply every capacity by
//! `p · D`, where `α = p/q` is the parameter and `D` clears the weight
//! denominators — the feasibility decision and the residual structure
//! (min cuts, tight sets) are invariant under uniform scaling, while every
//! arithmetic step becomes a plain big-integer add or compare. The
//! session's warm certification path builds this network; the result it
//! extracts is bit-identical to the rational engine's because only the
//! *representation* of the capacities changes.
//!
//! Counter routing note: this engine shares the `exact_*` counters in
//! [`crate::stats`] with the rational one — both are exact engines, and
//! the certification accounting predates the int/rational split.

use crate::capacity::{exact_capacity_arith, Cap, Capacity};
use crate::kernel::Network;
use crate::stats;
use prs_numeric::BigInt;

/// An arc capacity: a finite big integer or `+∞` (middle arcs).
pub type CapInt = Cap<BigInt>;

/// A directed flow network with big-integer capacities — structurally the
/// twin of [`FlowNetwork`](crate::FlowNetwork), sharing its
/// [`EdgeId`](crate::EdgeId) forward/reverse arc-pair layout so callers
/// can keep one set of edge bookkeeping for both.
pub type NetworkInt = Network<BigInt>;

impl Capacity for BigInt {
    exact_capacity_arith!();

    const ENGINE: &'static str = "int";
    const SPAN_BFS: &'static str = "int_bfs_phase";
    const SPAN_MAX_FLOW: &'static str = "int_max_flow";

    fn record_bfs_phase() {
        stats::record_exact_bfs_phases(1);
    }
    fn record_augmenting_path() {
        stats::record_exact_augmenting_paths(1);
    }
    fn record_max_flow() {
        stats::record_exact_max_flows(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_int_alias_constructs_and_matches() {
        // Callers pattern-match `CapInt::Finite` through the alias; pin
        // that both construction and matching keep working.
        let mut net = NetworkInt::new(3);
        let e = net.add_edge(0, 1, CapInt::Finite(BigInt::from(7)));
        net.add_edge(1, 2, CapInt::Infinite);
        match net.capacity_of(e) {
            CapInt::Finite(c) => assert_eq!(c, &BigInt::from(7)),
            CapInt::Infinite => panic!("finite capacity stored as infinite"),
        }
    }
}
