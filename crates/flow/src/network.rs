//! The exact-rational engine: [`Network`] over [`Rational`] capacities.
//!
//! This is the certifying engine — every residual comparison is a
//! gcd-normalized cross-multiplication, so saturation, min cuts, and
//! tight sets are decided exactly. Termination does not depend on
//! capacity magnitudes (Dinic's phase bound is purely combinatorial),
//! and the result carries no rounding: summing ten `1/10` capacities
//! yields exactly `1`.

use crate::capacity::{exact_capacity_arith, Capacity};
use crate::kernel::Network;
use crate::stats;
use prs_numeric::Rational;

/// A directed flow network with exact rational capacities.
pub type FlowNetwork = Network<Rational>;

impl Capacity for Rational {
    exact_capacity_arith!();

    const ENGINE: &'static str = "exact";
    const SPAN_BFS: &'static str = "exact_bfs_phase";
    const SPAN_MAX_FLOW: &'static str = "exact_max_flow";

    fn record_bfs_phase() {
        stats::record_exact_bfs_phases(1);
    }
    fn record_augmenting_path() {
        stats::record_exact_augmenting_paths(1);
    }
    fn record_max_flow() {
        stats::record_exact_max_flows(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::Cap;
    use prs_numeric::{int, ratio};

    #[test]
    fn exactness_no_drift() {
        // Many tiny rational capacities whose sum is exactly 1.
        let mut net = FlowNetwork::new(12);
        for i in 0..10 {
            net.add_edge(0, 1 + i, Cap::Finite(ratio(1, 10)));
            net.add_edge(1 + i, 11, Cap::Infinite);
        }
        assert_eq!(net.max_flow(0, 11), int(1)); // would be 0.9999… in f64
    }

    #[test]
    fn default_cap_parameter_is_rational() {
        // `Cap` with no parameter must keep meaning the exact engine's
        // capacity type (API compatibility across the kernel unification).
        let c: Cap = Cap::Finite(ratio(3, 2));
        assert!(!c.is_zero());
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, c);
        assert_eq!(net.max_flow(0, 1), ratio(3, 2));
    }
}
