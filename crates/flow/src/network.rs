//! Dinic's maximum-flow algorithm with exact rational capacities.

use crate::stats;
use prs_numeric::Rational;
use std::collections::VecDeque;

/// Node index in a [`FlowNetwork`].
pub type NodeId = usize;

/// Identifier of a directed edge, as returned by [`FlowNetwork::add_edge`].
///
/// Internally each undirected residual pair occupies two consecutive arc
/// slots; `EdgeId` always refers to the forward arc.
pub type EdgeId = usize;

/// An arc capacity: a finite exact rational or `+∞`.
///
/// Infinite capacities appear on the `B_i × C_i` middle edges of the
/// Definition 5 networks; modelling them exactly (rather than with a large
/// finite surrogate) keeps min-cut reasoning clean — an infinite arc can
/// never be a cut edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Cap {
    /// A finite exact capacity.
    Finite(Rational),
    /// Unbounded capacity (never a min-cut edge).
    Infinite,
}

impl Cap {
    /// True iff the capacity is a finite zero (the arc can never carry flow).
    pub fn is_zero(&self) -> bool {
        matches!(self, Cap::Finite(c) if c.is_zero())
    }
}

#[derive(Clone)]
struct Arc {
    to: NodeId,
    cap: Cap,
    /// Flow currently on this arc (negative on reverse arcs).
    flow: Rational,
}

impl Arc {
    /// Residual capacity; `None` encodes +∞.
    fn residual(&self) -> Option<Rational> {
        match &self.cap {
            Cap::Infinite => None,
            Cap::Finite(c) => Some(c - &self.flow),
        }
    }

    fn has_residual(&self) -> bool {
        match &self.cap {
            Cap::Infinite => true,
            Cap::Finite(c) => &self.flow < c,
        }
    }
}

/// A directed flow network with exact rational capacities.
pub struct FlowNetwork {
    arcs: Vec<Arc>,
    adj: Vec<Vec<usize>>,
    // Scratch buffers reused across phases (workhorse-buffer idiom).
    level: Vec<u32>,
    iter: Vec<usize>,
}

const UNREACHED: u32 = u32::MAX;

impl FlowNetwork {
    /// A network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        stats::record_networks_built(1);
        FlowNetwork {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![UNREACHED; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Drop all arcs and resize to `n` nodes, keeping every allocation so
    /// the next build reuses arc storage (arena reuse across decomposition
    /// rounds and sweep evaluations).
    pub fn clear(&mut self, n: usize) {
        stats::record_networks_reused(1);
        self.arcs.clear();
        self.adj.iter_mut().for_each(|a| a.clear());
        self.adj.resize_with(n, Vec::new);
        self.level.clear();
        self.level.resize(n, UNREACHED);
        self.iter.clear();
        self.iter.resize(n, 0);
    }

    /// Replace the capacity of forward edge `id` without touching topology —
    /// the Dinkelbach loop updates only the sink arcs `w_u/α` between
    /// parameter values. Call [`reset_flow`](Self::reset_flow) before the
    /// next [`max_flow`](Self::max_flow).
    pub fn set_capacity(&mut self, id: EdgeId, cap: Cap) {
        debug_assert_eq!(id % 2, 0, "capacities live on forward arcs");
        self.arcs[id].cap = cap;
    }

    /// Add a directed edge `from → to` with the given capacity; returns its id.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: Cap) -> EdgeId {
        assert!(from < self.n() && to < self.n(), "node out of range");
        assert_ne!(from, to, "self-loop arcs are not supported");
        let id = self.arcs.len();
        self.adj[from].push(id);
        self.arcs.push(Arc {
            to,
            cap,
            flow: Rational::zero(),
        });
        self.adj[to].push(id + 1);
        self.arcs.push(Arc {
            to: from,
            cap: Cap::Finite(Rational::zero()),
            flow: Rational::zero(),
        });
        id
    }

    /// Flow currently assigned to edge `id` (a forward arc id from
    /// [`add_edge`](Self::add_edge)).
    pub fn flow_on(&self, id: EdgeId) -> &Rational {
        &self.arcs[id].flow
    }

    /// The capacity of forward edge `id`.
    pub fn capacity_of(&self, id: EdgeId) -> &Cap {
        debug_assert_eq!(id % 2, 0, "capacities live on forward arcs");
        &self.arcs[id].cap
    }

    /// Seed forward edge `id` with flow `f` before a [`max_flow`] run (warm
    /// start). The caller must keep the overall assignment capacity-valid
    /// and conserving; `max_flow` then augments from this state and returns
    /// only the *additional* flow pushed — the total value is the preset
    /// amount plus the return value.
    ///
    /// [`max_flow`]: Self::max_flow
    pub fn preset_flow(&mut self, id: EdgeId, f: Rational) {
        debug_assert_eq!(id % 2, 0, "presets go on forward arcs");
        debug_assert!(!f.is_negative());
        debug_assert!(match &self.arcs[id].cap {
            Cap::Infinite => true,
            Cap::Finite(c) => &f <= c,
        });
        self.arcs[id ^ 1].flow = -&f;
        self.arcs[id].flow = f;
    }

    /// True iff edge `id` is saturated (meaningless for infinite arcs: always
    /// false there).
    pub fn is_saturated(&self, id: EdgeId) -> bool {
        !self.arcs[id].has_residual()
    }

    /// Reset all flows to zero.
    pub fn reset_flow(&mut self) {
        for a in &mut self.arcs {
            a.flow = Rational::zero();
        }
    }

    fn bfs_levels(&mut self, s: NodeId) {
        stats::record_exact_bfs_phases(1);
        let _sp = prs_trace::span("flow", "exact_bfs_phase");
        self.level.iter_mut().for_each(|l| *l = UNREACHED);
        self.level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &aid in &self.adj[v] {
                let a = &self.arcs[aid];
                if a.has_residual() && self.level[a.to] == UNREACHED {
                    self.level[a.to] = self.level[v] + 1;
                    q.push_back(a.to);
                }
            }
        }
    }

    /// Find one augmenting path in the level graph and push flow along it;
    /// returns the amount pushed (zero when no path remains this phase).
    ///
    /// Iterative with an explicit arc stack: path lengths are bounded only by
    /// the node count, so recursion would overflow the thread stack on long
    /// chains (n ≳ 10⁴).
    fn dfs_augment(&mut self, s: NodeId, t: NodeId) -> Rational {
        let mut path: Vec<usize> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                // Bottleneck = min finite residual along the path. Every
                // s→t path crosses a finite arc, so the min exists.
                let mut limit: Option<Rational> = None;
                for &aid in &path {
                    if let Some(r) = self.arcs[aid].residual() {
                        limit = Some(match limit {
                            Some(l) if l <= r => l,
                            _ => r,
                        });
                    }
                }
                // prs-lint: allow(panic, reason = "s has only finite-capacity out-arcs, so every s→t path bounds the minimum; a violation is a solver bug, not an input error")
                let pushed = limit.expect("an s→t path must pass a finite-capacity arc");
                for &aid in &path {
                    self.arcs[aid].flow += &pushed;
                    self.arcs[aid ^ 1].flow -= &pushed;
                }
                stats::record_exact_augmenting_paths(1);
                return pushed;
            }
            // Advance v's per-phase arc cursor to the next usable level arc.
            let mut advanced = false;
            while self.iter[v] < self.adj[v].len() {
                let aid = self.adj[v][self.iter[v]];
                let a = &self.arcs[aid];
                if a.has_residual() && self.level[a.to] == self.level[v] + 1 {
                    path.push(aid);
                    v = a.to;
                    advanced = true;
                    break;
                }
                self.iter[v] += 1;
            }
            if !advanced {
                // Dead end: retreat one step and skip the arc that led here.
                match path.pop() {
                    Some(aid) => {
                        let parent = self.arcs[aid ^ 1].to;
                        self.iter[parent] += 1;
                        v = parent;
                    }
                    None => return Rational::zero(),
                }
            }
        }
    }

    /// Compute the maximum `s → t` flow (exact). The network must not contain
    /// an infinite-capacity `s → t` path; the Definition 2/5 networks never do
    /// (every path crosses a finite source or sink arc).
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> Rational {
        assert_ne!(s, t, "source equals sink");
        stats::record_exact_max_flows(1);
        let mut sp = prs_trace::span("flow", "exact_max_flow");
        let mut phases: u64 = 0;
        let mut total = Rational::zero();
        loop {
            self.bfs_levels(s);
            phases += 1;
            if self.level[t] == UNREACHED {
                sp.attr("phases", || phases.to_string());
                return total;
            }
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(s, t);
                if pushed.is_zero() {
                    break;
                }
                total += pushed;
            }
        }
    }

    /// Nodes reachable from `s` in the residual graph (the s-side of a
    /// minimum cut after [`max_flow`](Self::max_flow) has run).
    pub fn min_cut_source_side(&self, s: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.n()];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &aid in &self.adj[v] {
                let a = &self.arcs[aid];
                if a.has_residual() && !seen[a.to] {
                    seen[a.to] = true;
                    stack.push(a.to);
                }
            }
        }
        seen
    }

    /// Nodes that can reach `t` through the residual graph. Computed by a
    /// reverse traversal: `u` reaches `t` iff some residual arc `u → x` leads
    /// to a node that reaches `t`.
    ///
    /// This is the query behind the *maximal bottleneck* extraction: at the
    /// optimal α, a left-copy vertex belongs to the maximal tight set iff it
    /// can **not** reach `t` (see prs-bd).
    pub fn residual_reaches_sink(&self, t: NodeId) -> Vec<bool> {
        // Build reverse residual adjacency on the fly: arc u→x residual
        // contributes reverse edge x→u.
        let mut reaches = vec![false; self.n()];
        reaches[t] = true;
        let mut stack = vec![t];
        // Precompute incoming residual arcs per node once.
        let mut incoming: Vec<Vec<NodeId>> = vec![Vec::new(); self.n()];
        for (from, arcs) in self.adj.iter().enumerate() {
            for &aid in arcs {
                let a = &self.arcs[aid];
                if a.has_residual() {
                    incoming[a.to].push(from);
                }
            }
        }
        while let Some(v) = stack.pop() {
            for &u in &incoming[v] {
                if !reaches[u] {
                    reaches[u] = true;
                    stack.push(u);
                }
            }
        }
        reaches
    }

    /// Net flow leaving `s` over forward arcs: flow on edges `s → ·` minus
    /// flow on edges `· → s`. After [`max_flow`](Self::max_flow) this equals
    /// the flow value when `s` was the source (even if the network has edges
    /// into the source); at a conserving interior node it is zero.
    pub fn outflow(&self, s: NodeId) -> Rational {
        // An edge u → s appears in adj[s] as its reverse arc, whose flow is
        // exactly −(flow on u → s), so the plain sum over adj[s] is the net.
        self.adj[s].iter().map(|&aid| &self.arcs[aid].flow).sum()
    }

    /// Verify conservation at every node except `s` and `t` (testing hook).
    pub fn check_conservation(&self, s: NodeId, t: NodeId) -> bool {
        for v in 0..self.n() {
            if v == s || v == t {
                continue;
            }
            let net: Rational = self.adj[v].iter().map(|&aid| &self.arcs[aid].flow).sum();
            if !net.is_zero() {
                return false;
            }
        }
        true
    }

    /// Verify `0 ≤ flow ≤ cap` on all forward arcs (testing hook).
    pub fn check_capacities(&self) -> bool {
        self.arcs.iter().step_by(2).all(|a| {
            !a.flow.is_negative()
                && match &a.cap {
                    Cap::Infinite => true,
                    Cap::Finite(c) => &a.flow <= c,
                }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_numeric::{int, ratio};

    fn fin(n: i64, d: i64) -> Cap {
        Cap::Finite(ratio(n, d))
    }

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, fin(3, 2));
        assert_eq!(net.max_flow(0, 1), ratio(3, 2));
    }

    #[test]
    fn series_takes_minimum() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, fin(5, 1));
        net.add_edge(1, 2, fin(2, 3));
        assert_eq!(net.max_flow(0, 2), ratio(2, 3));
        assert!(net.check_conservation(0, 2));
        assert!(net.check_capacities());
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, fin(1, 3));
        net.add_edge(1, 3, fin(1, 1));
        net.add_edge(0, 2, fin(1, 6));
        net.add_edge(2, 3, fin(1, 1));
        assert_eq!(net.max_flow(0, 3), ratio(1, 2));
    }

    #[test]
    fn classic_augmenting_through_back_edge() {
        // The textbook 4-node diamond where a naive greedy needs the
        // residual back edge to reach optimality.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, fin(1, 1));
        net.add_edge(0, 2, fin(1, 1));
        net.add_edge(1, 2, fin(1, 1));
        net.add_edge(1, 3, fin(1, 1));
        net.add_edge(2, 3, fin(1, 1));
        assert_eq!(net.max_flow(0, 3), int(2));
        assert!(net.check_conservation(0, 3));
    }

    #[test]
    fn infinite_middle_edges() {
        // s → a (cap 2), a → b (∞), b → t (cap 1/2): bottleneck is the sink arc.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, fin(2, 1));
        net.add_edge(1, 2, Cap::Infinite);
        net.add_edge(2, 3, fin(1, 2));
        assert_eq!(net.max_flow(0, 3), ratio(1, 2));
    }

    #[test]
    fn min_cut_identifies_bottleneck_side() {
        let mut net = FlowNetwork::new(4);
        let _sa = net.add_edge(0, 1, fin(10, 1));
        let ab = net.add_edge(1, 2, fin(1, 1));
        let _bt = net.add_edge(2, 3, fin(10, 1));
        net.max_flow(0, 3);
        let side = net.min_cut_source_side(0);
        assert_eq!(side, vec![true, true, false, false]);
        assert!(net.is_saturated(ab));
    }

    #[test]
    fn residual_reaches_sink_basic() {
        // After saturating, only nodes on the t-side (or with spare capacity
        // towards t) can reach t.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, fin(1, 1));
        net.add_edge(1, 2, fin(1, 1));
        net.add_edge(2, 3, fin(2, 1)); // spare capacity at the sink arc
        net.max_flow(0, 3);
        let reaches = net.residual_reaches_sink(3);
        // 2 → 3 has residual, and 1 can reach 2 only if 1→2 has residual
        // (it is saturated), but reverse flow arcs let nobody *forward*… node
        // 1 cannot reach t, node 2 can.
        assert!(reaches[3] && reaches[2]);
        assert!(!reaches[1] && !reaches[0]);
    }

    #[test]
    fn bipartite_hall_feasibility() {
        // Left {1,2} weights 1 each; right {3} capacity 2: feasible,
        // flow = 2 saturates both source arcs.
        let mut net = FlowNetwork::new(5);
        net.add_edge(0, 1, fin(1, 1));
        net.add_edge(0, 2, fin(1, 1));
        net.add_edge(1, 3, Cap::Infinite);
        net.add_edge(2, 3, Cap::Infinite);
        net.add_edge(3, 4, fin(2, 1));
        assert_eq!(net.max_flow(0, 4), int(2));
    }

    #[test]
    fn zero_capacity_edges_carry_nothing() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, fin(0, 1));
        net.add_edge(1, 2, fin(5, 1));
        assert_eq!(net.max_flow(0, 2), int(0));
    }

    #[test]
    fn reset_flow_allows_reuse() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, fin(1, 1));
        assert_eq!(net.max_flow(0, 1), int(1));
        net.reset_flow();
        assert_eq!(net.flow_on(e), &int(0));
        assert_eq!(net.max_flow(0, 1), int(1));
    }

    #[test]
    fn set_capacity_reparameterizes_in_place() {
        let mut net = FlowNetwork::new(3);
        let sa = net.add_edge(0, 1, fin(1, 1));
        net.add_edge(1, 2, fin(10, 1));
        assert_eq!(net.max_flow(0, 2), int(1));
        net.set_capacity(sa, fin(7, 2));
        net.reset_flow();
        assert_eq!(net.max_flow(0, 2), ratio(7, 2));
    }

    #[test]
    fn clear_rebuilds_in_place() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, fin(1, 1));
        assert_eq!(net.max_flow(0, 1), int(1));
        net.clear(3);
        assert_eq!(net.n(), 3);
        net.add_edge(0, 1, fin(2, 1));
        net.add_edge(1, 2, fin(3, 1));
        assert_eq!(net.max_flow(0, 2), int(2));
        assert!(net.check_conservation(0, 2));
    }

    #[test]
    fn exactness_no_drift() {
        // Many tiny rational capacities whose sum is exactly 1.
        let mut net = FlowNetwork::new(12);
        for i in 0..10 {
            net.add_edge(0, 1 + i, Cap::Finite(ratio(1, 10)));
            net.add_edge(1 + i, 11, Cap::Infinite);
        }
        assert_eq!(net.max_flow(0, 11), int(1)); // would be 0.9999… in f64
    }

    #[test]
    fn outflow_is_net_with_edge_into_source() {
        // a → s → b, max flow from a: one unit passes *through* s, so the
        // net outflow of s is zero even though s has a saturated outgoing
        // arc (the gross sum would wrongly report 1).
        let mut net = FlowNetwork::new(3);
        let (a, s, b) = (0, 1, 2);
        net.add_edge(a, s, fin(1, 1));
        net.add_edge(s, b, fin(1, 1));
        assert_eq!(net.max_flow(a, b), int(1));
        assert_eq!(net.outflow(a), int(1));
        assert_eq!(net.outflow(s), int(0));
        assert_eq!(net.outflow(b), int(-1));
    }

    #[test]
    fn outflow_counts_incoming_at_the_run_source() {
        // Edges into the source exist but carry nothing when s is the run
        // source; outflow(s) must still equal the flow value.
        let mut net = FlowNetwork::new(3);
        net.add_edge(2, 0, fin(5, 1)); // into the source
        net.add_edge(0, 1, fin(2, 1));
        net.add_edge(1, 2, fin(3, 1));
        assert_eq!(net.max_flow(0, 2), int(2));
        assert_eq!(net.outflow(0), int(2));
    }

    #[test]
    fn long_path_augments_without_stack_overflow() {
        // 50 001 nodes in series: one augmenting path of length 50 000.
        // A recursive DFS would blow the thread stack here; the explicit
        // stack must not.
        let n = 50_001;
        let mut net = FlowNetwork::new(n);
        for v in 0..n - 1 {
            net.add_edge(v, v + 1, fin(1, 2));
        }
        assert_eq!(net.max_flow(0, n - 1), ratio(1, 2));
        assert!(net.check_conservation(0, n - 1));
        assert!(net.check_capacities());
    }

    #[test]
    fn larger_grid_network() {
        // 3x3 grid from corner to corner, unit capacities: max flow = 2.
        let idx = |r: usize, c: usize| r * 3 + c;
        let mut net = FlowNetwork::new(9);
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    net.add_edge(idx(r, c), idx(r, c + 1), fin(1, 1));
                }
                if r + 1 < 3 {
                    net.add_edge(idx(r, c), idx(r + 1, c), fin(1, 1));
                }
            }
        }
        assert_eq!(net.max_flow(idx(0, 0), idx(2, 2)), int(2));
        assert!(net.check_conservation(idx(0, 0), idx(2, 2)));
        assert!(net.check_capacities());
    }
}
