//! The floating-point engine: [`Network`] over `f64` capacities — and the
//! **only** module in this crate where floats and numeric casts are
//! permitted (prs-lint enforces the boundary).
//!
//! The float engine is the proposal half of the two-tier parametric
//! max-flow engine. It never decides anything on its own: the Dinkelbach
//! driver in `prs-bd` runs it to *propose* a candidate α and bottleneck
//! set, then certifies the proposal with a single exact flow. Residual
//! comparisons use a tolerance scaled to the largest finite capacity seen
//! (threaded through [`Capacity::Tol`]), so saturation detection is robust
//! but deliberately approximate — a near-tie that the tolerance misjudges
//! only costs a fallback to the exact loop, never a wrong answer.

use crate::capacity::{Cap, Capacity};
use crate::kernel::Network;
use crate::stats;
use crate::testkit::TestCapacity;

/// A directed flow network with `f64` capacities (Dinic).
pub type NetworkF64 = Network<f64>;

/// Saturation-tolerance state for the float backend: the largest finite
/// capacity seen scales the epsilon, so "saturated" adapts to the
/// magnitude of the instance instead of using an absolute cutoff.
#[derive(Clone, Debug, Default)]
pub struct F64Tol {
    /// Largest finite capacity seen; scales the saturation tolerance.
    cap_scale: f64,
}

const REL_EPS: f64 = 1e-12;

impl F64Tol {
    #[inline]
    fn eps(&self) -> f64 {
        REL_EPS * (1.0 + self.cap_scale)
    }
}

/// `f64::INFINITY` maps to [`Cap::Infinite`]; every other non-negative
/// finite value is a finite capacity. This keeps f64 call sites writing
/// plain numbers while the kernel models unboundedness explicitly — an
/// infinite arc can never be a cut edge, for floats exactly as for
/// rationals.
///
/// NaN and negative inputs clamp to `Cap::Finite(0.0)` — a dead arc, the
/// conservative reading of a meaningless capacity. The clamp is explicit
/// rather than a `debug_assert` so debug and release builds agree: the
/// previous assert compiled out in release, where NaN then failed the
/// `is_finite()` test and silently became an *uncuttable infinite* arc —
/// a poisoned input promoted to unbounded trust. The f64 tier only ever
/// proposes, so a zeroed arc at worst costs an exact-descent fallback.
impl From<f64> for Cap<f64> {
    fn from(cap: f64) -> Self {
        if cap.is_nan() || cap < 0.0 {
            Cap::Finite(0.0)
        } else if cap.is_finite() {
            Cap::Finite(cap)
        } else {
            Cap::Infinite
        }
    }
}

impl Capacity for f64 {
    type Tol = F64Tol;

    const ENGINE: &'static str = "f64";
    const SPAN_BFS: &'static str = "f64_bfs_phase";
    const SPAN_MAX_FLOW: &'static str = "f64_max_flow";

    fn zero() -> Self {
        0.0
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn is_negative(&self) -> bool {
        *self < 0.0
    }
    // NaN-safe override: the trait default (`!is_zero && !is_negative`)
    // answers *true* for NaN, which would let a NaN-contaminated seed or
    // bottleneck pass the "worth pushing?" gates in `seed_flow`. A strict
    // `> 0.0` comparison is false for NaN.
    fn is_positive(&self) -> bool {
        *self > 0.0
    }
    fn le(&self, rhs: &Self) -> bool {
        self <= rhs
    }
    fn add_assign_ref(&mut self, rhs: &Self) {
        *self += rhs;
    }
    fn sub_assign_ref(&mut self, rhs: &Self) {
        *self -= rhs;
    }
    fn neg_ref(&self) -> Self {
        -self
    }
    fn sub_ref(lhs: &Self, rhs: &Self) -> Self {
        lhs - rhs
    }
    fn has_headroom(flow: &Self, cap: &Self, tol: &F64Tol) -> bool {
        flow + tol.eps() < *cap
    }
    // NaN-safe: written as `!(pushed > 0)` rather than `pushed <= 0` so a
    // NaN bottleneck counts as exhausted. With `NaN <= 0.0 == false`, a
    // single NaN pushed amount would keep the augmentation loop running
    // forever; here it terminates the loop instead.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // the incomparable case (NaN) is the point
    fn exhausted(pushed: &Self) -> bool {
        !(*pushed > 0.0)
    }
    fn conserved(net: &Self, tol: &F64Tol) -> bool {
        net.abs() <= tol.eps()
    }
    fn observe(tol: &mut F64Tol, cap: &Self) {
        tol.cap_scale = tol.cap_scale.max(*cap);
    }

    fn record_bfs_phase() {
        stats::record_f64_bfs_phases(1);
    }
    fn record_augmenting_path() {
        stats::record_f64_augmenting_paths(1);
    }
    fn record_max_flow() {
        stats::record_f64_max_flows(1);
    }
}

impl TestCapacity for f64 {
    fn from_ratio(num: i64, den: i64) -> Self {
        num as f64 / den as f64
    }
    fn assert_feq(actual: &Self, expected: &Self) {
        assert!(
            (actual - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
            "f64 flow {actual} differs from expected {expected}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_converts_to_infinite_cap() {
        let mut net = NetworkF64::new(4);
        net.add_edge(0, 1, 2.0);
        let mid = net.add_edge(1, 2, f64::INFINITY);
        net.add_edge(2, 3, 0.5);
        assert_eq!(net.capacity_of(mid), &Cap::Infinite);
        assert!((net.max_flow(0, 3) - 0.5).abs() < 1e-9);
        // An infinite arc is never saturated, so it is never a cut edge.
        assert!(!net.is_saturated(mid));
    }

    #[test]
    fn tolerance_scales_with_capacities() {
        // At cap_scale 1e12 the saturation tolerance is ≈ 1e-12·1e12 = 1:
        // a 1e-3 arc counts as saturated from the start, so the engine
        // refuses to push the dust (the prefilter contract — near-zero
        // residuals defer to the exact certifier instead of polluting the
        // proposal). Without the big arc the same edge carries its 1e-3.
        let mut big = NetworkF64::new(3);
        big.add_edge(0, 1, 1.0e12); // dead end, but raises cap_scale
        big.add_edge(0, 2, 1.0e-3); // below tolerance at this scale
        assert_eq!(big.max_flow(0, 2), 0.0);

        let mut small = NetworkF64::new(2);
        small.add_edge(0, 1, 1.0e-3);
        assert!((small.max_flow(0, 1) - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    fn fractional_capacities_flow_within_tolerance() {
        let mut net = NetworkF64::new(2);
        net.add_edge(0, 1, 1.5);
        assert!((net.max_flow(0, 1) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn nan_and_negative_capacities_clamp_to_dead_arcs() {
        // Regression (release-mode bug): the old conversion guarded
        // negatives with a debug_assert (compiled out in release) and then
        // routed NaN through `is_finite() == false` into `Cap::Infinite` —
        // an uncuttable arc built from a poisoned input. Both now clamp to
        // a dead finite-zero arc, identically in debug and release.
        assert_eq!(Cap::from(f64::NAN), Cap::Finite(0.0));
        assert_eq!(Cap::from(-3.5), Cap::Finite(0.0));
        assert_eq!(Cap::from(f64::NEG_INFINITY), Cap::Finite(0.0));
        // The legitimate cases are untouched.
        assert_eq!(Cap::from(f64::INFINITY), Cap::Infinite);
        assert_eq!(Cap::from(2.5), Cap::Finite(2.5));
        assert_eq!(Cap::from(0.0), Cap::Finite(0.0));

        // End to end: a NaN capacity yields a dead arc, not infinite flow.
        let mut net = NetworkF64::new(2);
        let e = net.add_edge(0, 1, f64::NAN);
        assert_eq!(net.capacity_of(e), &Cap::Finite(0.0));
        assert_eq!(net.max_flow(0, 1), 0.0);
    }

    #[test]
    fn nan_is_neither_positive_nor_unexhausted() {
        // Regression: the trait-default `is_positive` called NaN positive,
        // and `exhausted(NaN)` was false — together enough to keep an
        // augmentation loop alive on a NaN bottleneck forever.
        assert!(!Capacity::is_positive(&f64::NAN));
        assert!(f64::exhausted(&f64::NAN));
        assert!(!f64::exhausted(&1.0));
        assert!(f64::exhausted(&0.0));
        assert!(f64::exhausted(&-1.0e-15));
    }

    #[test]
    fn nan_contaminated_network_terminates() {
        // Inject NaN past the `From` clamp (directly as a finite capacity)
        // and check the kernel still terminates with a sane answer instead
        // of hanging: NaN comparisons all answer false, so contaminated
        // arcs read as saturated and contribute nothing.
        let mut net = NetworkF64::new(4);
        net.add_edge(0, 1, Cap::Finite(f64::NAN));
        net.add_edge(1, 3, 8.0);
        net.add_edge(0, 2, 2.0);
        net.add_edge(2, 3, 2.0);
        let flow = net.max_flow(0, 3);
        assert!(
            (flow - 2.0).abs() < 1e-9,
            "clean parallel path must still carry its 2.0, got {flow}"
        );
    }
}
