//! The floating-point engine: [`Network`] over `f64` capacities — and the
//! **only** module in this crate where floats and numeric casts are
//! permitted (prs-lint enforces the boundary).
//!
//! The float engine is the proposal half of the two-tier parametric
//! max-flow engine. It never decides anything on its own: the Dinkelbach
//! driver in `prs-bd` runs it to *propose* a candidate α and bottleneck
//! set, then certifies the proposal with a single exact flow. Residual
//! comparisons use a tolerance scaled to the largest finite capacity seen
//! (threaded through [`Capacity::Tol`]), so saturation detection is robust
//! but deliberately approximate — a near-tie that the tolerance misjudges
//! only costs a fallback to the exact loop, never a wrong answer.

use crate::capacity::{Cap, Capacity};
use crate::kernel::Network;
use crate::stats;
use crate::testkit::TestCapacity;

/// A directed flow network with `f64` capacities (Dinic).
pub type NetworkF64 = Network<f64>;

/// Saturation-tolerance state for the float backend: the largest finite
/// capacity seen scales the epsilon, so "saturated" adapts to the
/// magnitude of the instance instead of using an absolute cutoff.
#[derive(Clone, Debug, Default)]
pub struct F64Tol {
    /// Largest finite capacity seen; scales the saturation tolerance.
    cap_scale: f64,
}

const REL_EPS: f64 = 1e-12;

impl F64Tol {
    #[inline]
    fn eps(&self) -> f64 {
        REL_EPS * (1.0 + self.cap_scale)
    }
}

/// `f64::INFINITY` maps to [`Cap::Infinite`]; every other (non-negative,
/// finite) value is a finite capacity. This keeps f64 call sites writing
/// plain numbers while the kernel models unboundedness explicitly — an
/// infinite arc can never be a cut edge, for floats exactly as for
/// rationals.
impl From<f64> for Cap<f64> {
    fn from(cap: f64) -> Self {
        debug_assert!(cap >= 0.0, "negative capacity");
        if cap.is_finite() {
            Cap::Finite(cap)
        } else {
            Cap::Infinite
        }
    }
}

impl Capacity for f64 {
    type Tol = F64Tol;

    const ENGINE: &'static str = "f64";
    const SPAN_BFS: &'static str = "f64_bfs_phase";
    const SPAN_MAX_FLOW: &'static str = "f64_max_flow";

    fn zero() -> Self {
        0.0
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn is_negative(&self) -> bool {
        *self < 0.0
    }
    fn le(&self, rhs: &Self) -> bool {
        self <= rhs
    }
    fn add_assign_ref(&mut self, rhs: &Self) {
        *self += rhs;
    }
    fn sub_assign_ref(&mut self, rhs: &Self) {
        *self -= rhs;
    }
    fn neg_ref(&self) -> Self {
        -self
    }
    fn sub_ref(lhs: &Self, rhs: &Self) -> Self {
        lhs - rhs
    }
    fn has_headroom(flow: &Self, cap: &Self, tol: &F64Tol) -> bool {
        flow + tol.eps() < *cap
    }
    fn exhausted(pushed: &Self) -> bool {
        *pushed <= 0.0
    }
    fn conserved(net: &Self, tol: &F64Tol) -> bool {
        net.abs() <= tol.eps()
    }
    fn observe(tol: &mut F64Tol, cap: &Self) {
        tol.cap_scale = tol.cap_scale.max(*cap);
    }

    fn record_bfs_phase() {
        stats::record_f64_bfs_phases(1);
    }
    fn record_augmenting_path() {
        stats::record_f64_augmenting_paths(1);
    }
    fn record_max_flow() {
        stats::record_f64_max_flows(1);
    }
}

impl TestCapacity for f64 {
    fn from_ratio(num: i64, den: i64) -> Self {
        num as f64 / den as f64
    }
    fn assert_feq(actual: &Self, expected: &Self) {
        assert!(
            (actual - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
            "f64 flow {actual} differs from expected {expected}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_converts_to_infinite_cap() {
        let mut net = NetworkF64::new(4);
        net.add_edge(0, 1, 2.0);
        let mid = net.add_edge(1, 2, f64::INFINITY);
        net.add_edge(2, 3, 0.5);
        assert_eq!(net.capacity_of(mid), &Cap::Infinite);
        assert!((net.max_flow(0, 3) - 0.5).abs() < 1e-9);
        // An infinite arc is never saturated, so it is never a cut edge.
        assert!(!net.is_saturated(mid));
    }

    #[test]
    fn tolerance_scales_with_capacities() {
        // At cap_scale 1e12 the saturation tolerance is ≈ 1e-12·1e12 = 1:
        // a 1e-3 arc counts as saturated from the start, so the engine
        // refuses to push the dust (the prefilter contract — near-zero
        // residuals defer to the exact certifier instead of polluting the
        // proposal). Without the big arc the same edge carries its 1e-3.
        let mut big = NetworkF64::new(3);
        big.add_edge(0, 1, 1.0e12); // dead end, but raises cap_scale
        big.add_edge(0, 2, 1.0e-3); // below tolerance at this scale
        assert_eq!(big.max_flow(0, 2), 0.0);

        let mut small = NetworkF64::new(2);
        small.add_edge(0, 1, 1.0e-3);
        assert!((small.max_flow(0, 1) - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    fn fractional_capacities_flow_within_tolerance() {
        let mut net = NetworkF64::new(2);
        net.add_edge(0, 1, 1.5);
        assert!((net.max_flow(0, 1) - 1.5).abs() < 1e-9);
    }
}
