//! Floating-point Dinic, the proposal half of the two-tier parametric
//! max-flow engine.
//!
//! Mirrors [`FlowNetwork`](crate::FlowNetwork) over `f64` capacities
//! (`f64::INFINITY` for the unbounded middle arcs). The float engine never
//! decides anything on its own: the Dinkelbach driver in `prs-bd` runs it to
//! *propose* a candidate α and bottleneck set, then certifies the proposal
//! with a single exact-rational flow. Residual comparisons use a tolerance
//! scaled to the largest finite capacity, so saturation detection is robust
//! but deliberately approximate — a near-tie that the tolerance misjudges
//! only costs a fallback to the exact loop, never a wrong answer.
//!
//! The network supports in-place reuse: [`NetworkF64::clear`] rebuilds the
//! topology without dropping arc storage, and
//! [`NetworkF64::set_capacity`] + [`NetworkF64::reset_flow`] support
//! capacity-only parameter updates between Dinkelbach steps.

use crate::stats;
use crate::{EdgeId, NodeId};
use std::collections::VecDeque;

#[derive(Clone)]
struct ArcF64 {
    to: NodeId,
    cap: f64,
    flow: f64,
}

impl ArcF64 {
    #[inline]
    fn has_residual(&self, eps: f64) -> bool {
        self.flow + eps < self.cap
    }
}

/// A directed flow network with `f64` capacities (Dinic).
pub struct NetworkF64 {
    arcs: Vec<ArcF64>,
    adj: Vec<Vec<usize>>,
    level: Vec<u32>,
    iter: Vec<usize>,
    /// Largest finite capacity seen; scales the saturation tolerance.
    cap_scale: f64,
}

const UNREACHED: u32 = u32::MAX;
const REL_EPS: f64 = 1e-12;

impl NetworkF64 {
    /// A network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        stats::record_networks_built(1);
        NetworkF64 {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![UNREACHED; n],
            iter: vec![0; n],
            cap_scale: 0.0,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Drop all arcs and resize to `n` nodes, keeping every allocation
    /// (arena reuse across decomposition rounds).
    pub fn clear(&mut self, n: usize) {
        stats::record_networks_reused(1);
        self.arcs.clear();
        self.adj.iter_mut().for_each(|a| a.clear());
        self.adj.resize_with(n, Vec::new);
        self.level.clear();
        self.level.resize(n, UNREACHED);
        self.iter.clear();
        self.iter.resize(n, 0);
        self.cap_scale = 0.0;
    }

    /// Add a directed edge `from → to` (`f64::INFINITY` allowed); returns
    /// its id.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: f64) -> EdgeId {
        debug_assert!(from < self.n() && to < self.n(), "node out of range");
        debug_assert_ne!(from, to, "self-loop arcs are not supported");
        debug_assert!(cap >= 0.0, "negative capacity");
        if cap.is_finite() {
            self.cap_scale = self.cap_scale.max(cap);
        }
        let id = self.arcs.len();
        self.adj[from].push(id);
        self.arcs.push(ArcF64 { to, cap, flow: 0.0 });
        self.adj[to].push(id + 1);
        self.arcs.push(ArcF64 {
            to: from,
            cap: 0.0,
            flow: 0.0,
        });
        id
    }

    /// Replace the capacity of forward edge `id` (parameter update between
    /// Dinkelbach steps; call [`reset_flow`](Self::reset_flow) before the
    /// next run).
    pub fn set_capacity(&mut self, id: EdgeId, cap: f64) {
        debug_assert_eq!(id % 2, 0, "capacities live on forward arcs");
        debug_assert!(cap >= 0.0, "negative capacity");
        if cap.is_finite() {
            self.cap_scale = self.cap_scale.max(cap);
        }
        self.arcs[id].cap = cap;
    }

    /// Flow currently assigned to forward edge `id`.
    pub fn flow_on(&self, id: EdgeId) -> f64 {
        self.arcs[id].flow
    }

    /// Reset all flows to zero.
    pub fn reset_flow(&mut self) {
        for a in &mut self.arcs {
            a.flow = 0.0;
        }
    }

    #[inline]
    fn eps(&self) -> f64 {
        REL_EPS * (1.0 + self.cap_scale)
    }

    fn bfs_levels(&mut self, s: NodeId) {
        stats::record_f64_bfs_phases(1);
        let _sp = prs_trace::span("flow", "f64_bfs_phase");
        let eps = self.eps();
        self.level.iter_mut().for_each(|l| *l = UNREACHED);
        self.level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &aid in &self.adj[v] {
                let a = &self.arcs[aid];
                if a.has_residual(eps) && self.level[a.to] == UNREACHED {
                    self.level[a.to] = self.level[v] + 1;
                    q.push_back(a.to);
                }
            }
        }
    }

    /// One augmenting path in the level graph (explicit stack, like the
    /// exact engine); returns the amount pushed, 0.0 when the phase is done.
    fn dfs_augment(&mut self, s: NodeId, t: NodeId) -> f64 {
        let eps = self.eps();
        let mut path: Vec<usize> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                let mut limit = f64::INFINITY;
                for &aid in &path {
                    let a = &self.arcs[aid];
                    limit = limit.min(a.cap - a.flow);
                }
                debug_assert!(limit.is_finite(), "s→t path crossed no finite arc");
                for &aid in &path {
                    self.arcs[aid].flow += limit;
                    self.arcs[aid ^ 1].flow -= limit;
                }
                stats::record_f64_augmenting_paths(1);
                return limit;
            }
            let mut advanced = false;
            while self.iter[v] < self.adj[v].len() {
                let aid = self.adj[v][self.iter[v]];
                let a = &self.arcs[aid];
                if a.has_residual(eps) && self.level[a.to] == self.level[v] + 1 {
                    path.push(aid);
                    v = a.to;
                    advanced = true;
                    break;
                }
                self.iter[v] += 1;
            }
            if !advanced {
                match path.pop() {
                    Some(aid) => {
                        let parent = self.arcs[aid ^ 1].to;
                        self.iter[parent] += 1;
                        v = parent;
                    }
                    None => return 0.0,
                }
            }
        }
    }

    /// Approximate maximum `s → t` flow. Augmentations below the saturation
    /// tolerance are treated as zero, so the value is within
    /// `O(E · eps)` of the true max flow — good enough to propose, never to
    /// certify.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> f64 {
        debug_assert_ne!(s, t, "source equals sink");
        stats::record_f64_max_flows(1);
        let mut sp = prs_trace::span("flow", "f64_max_flow");
        let mut phases: u64 = 0;
        let mut total = 0.0;
        loop {
            self.bfs_levels(s);
            phases += 1;
            if self.level[t] == UNREACHED {
                sp.attr("phases", || phases.to_string());
                return total;
            }
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(s, t);
                if pushed <= 0.0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    /// Nodes reachable from `s` in the residual graph (run after
    /// [`max_flow`](Self::max_flow)).
    pub fn min_cut_source_side(&self, s: NodeId) -> Vec<bool> {
        let eps = self.eps();
        let mut seen = vec![false; self.n()];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &aid in &self.adj[v] {
                let a = &self.arcs[aid];
                if a.has_residual(eps) && !seen[a.to] {
                    seen[a.to] = true;
                    stack.push(a.to);
                }
            }
        }
        seen
    }

    /// Nodes with a residual path *to* `t` (maximal-tight-set query; see the
    /// exact engine for the decomposition-side meaning).
    pub fn residual_reaches_sink(&self, t: NodeId) -> Vec<bool> {
        let eps = self.eps();
        let mut reaches = vec![false; self.n()];
        reaches[t] = true;
        let mut stack = vec![t];
        let mut incoming: Vec<Vec<NodeId>> = vec![Vec::new(); self.n()];
        for (from, arcs) in self.adj.iter().enumerate() {
            for &aid in arcs {
                let a = &self.arcs[aid];
                if a.has_residual(eps) {
                    incoming[a.to].push(from);
                }
            }
        }
        while let Some(v) = stack.pop() {
            for &u in &incoming[v] {
                if !reaches[u] {
                    reaches[u] = true;
                    stack.push(u);
                }
            }
        }
        reaches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = NetworkF64::new(2);
        net.add_edge(0, 1, 1.5);
        assert!((net.max_flow(0, 1) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn diamond_with_back_edge() {
        let mut net = NetworkF64::new(4);
        net.add_edge(0, 1, 1.0);
        net.add_edge(0, 2, 1.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 1.0);
        net.add_edge(2, 3, 1.0);
        assert!((net.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infinite_middle_edge() {
        let mut net = NetworkF64::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, f64::INFINITY);
        net.add_edge(2, 3, 0.5);
        assert!((net.max_flow(0, 3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_update_and_flow_reset_reuse_the_network() {
        let mut net = NetworkF64::new(3);
        let sa = net.add_edge(0, 1, 1.0);
        net.add_edge(1, 2, 10.0);
        assert!((net.max_flow(0, 2) - 1.0).abs() < 1e-9);
        net.set_capacity(sa, 4.0);
        net.reset_flow();
        assert!((net.max_flow(0, 2) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn clear_rebuilds_in_place() {
        let mut net = NetworkF64::new(2);
        net.add_edge(0, 1, 1.0);
        net.max_flow(0, 1);
        net.clear(3);
        assert_eq!(net.n(), 3);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 2, 3.0);
        assert!((net.max_flow(0, 2) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn long_path_no_stack_overflow() {
        let n = 50_001;
        let mut net = NetworkF64::new(n);
        for v in 0..n - 1 {
            net.add_edge(v, v + 1, 0.5);
        }
        assert!((net.max_flow(0, n - 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn min_cut_and_sink_reachability() {
        let mut net = NetworkF64::new(4);
        net.add_edge(0, 1, 10.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(2, 3, 10.0);
        net.max_flow(0, 3);
        assert_eq!(net.min_cut_source_side(0), vec![true, true, false, false]);
        let reaches = net.residual_reaches_sink(3);
        assert!(reaches[2] && reaches[3]);
        assert!(!reaches[0] && !reaches[1]);
    }
}
