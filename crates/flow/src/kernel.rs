//! The single Dinic max-flow kernel, generic over [`Capacity`].
//!
//! One arena, one `bfs_levels`, one explicit-stack `dfs_augment`, one
//! min-cut routine: every engine in this crate is a thin type alias over
//! [`Network`] plus a ~60-line [`Capacity`] impl. The kernel preserves
//! the arc-iteration order of the historical per-engine copies exactly —
//! adjacency lists record arcs in `add_edge` call order, the BFS queue is
//! FIFO, and the DFS cursor scans each list front to back — so replay
//! certificates and golden decompositions are bit-identical across the
//! unification.

use crate::capacity::{Cap, Capacity};
use crate::stats;
use std::collections::{BTreeMap, VecDeque};

/// Node index in a [`Network`].
pub type NodeId = usize;

/// Identifier of a directed edge, as returned by [`Network::add_edge`].
///
/// Internally each undirected residual pair occupies two consecutive arc
/// slots; `EdgeId` always refers to the forward arc.
pub type EdgeId = usize;

#[derive(Clone)]
struct Arc<C> {
    to: NodeId,
    cap: Cap<C>,
    /// Flow currently on this arc (negative on reverse arcs).
    flow: C,
}

impl<C: Capacity> Arc<C> {
    /// Residual capacity; `None` encodes +∞.
    fn residual(&self) -> Option<C> {
        match &self.cap {
            Cap::Infinite => None,
            Cap::Finite(c) => Some(C::sub_ref(c, &self.flow)),
        }
    }

    fn has_residual(&self, tol: &C::Tol) -> bool {
        match &self.cap {
            Cap::Infinite => true,
            Cap::Finite(c) => C::has_headroom(&self.flow, c, tol),
        }
    }
}

/// One middle-arc request for [`Network::seed_flow`]: route `desired`
/// units along `source_edge → mid_edge → sink_edge` of a three-layer
/// (source / bipartite middle / sink) network.
pub struct SeedArc<C> {
    /// Forward arc out of the source feeding this route's left node.
    pub source_edge: EdgeId,
    /// Forward middle arc the seed lands on.
    pub mid_edge: EdgeId,
    /// Forward arc from this route's right node into the sink.
    pub sink_edge: EdgeId,
    /// Requested flow; the kernel clamps it to remaining capacity.
    pub desired: C,
}

/// A directed flow network over any [`Capacity`] backend (Dinic).
pub struct Network<C: Capacity> {
    arcs: Vec<Arc<C>>,
    adj: Vec<Vec<usize>>,
    // Scratch buffers reused across phases (workhorse-buffer idiom).
    level: Vec<u32>,
    iter: Vec<usize>,
    /// Backend tolerance state, fed by every finite capacity seen.
    tol: C::Tol,
}

const UNREACHED: u32 = u32::MAX;

impl<C: Capacity> Network<C> {
    /// A network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        stats::record_networks_built(1);
        Network {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![UNREACHED; n],
            iter: vec![0; n],
            tol: C::Tol::default(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Drop all arcs and resize to `n` nodes, keeping every allocation so
    /// the next build reuses arc storage (arena reuse across decomposition
    /// rounds and sweep evaluations).
    pub fn clear(&mut self, n: usize) {
        stats::record_networks_reused(1);
        self.arcs.clear();
        self.adj.iter_mut().for_each(|a| a.clear());
        self.adj.resize_with(n, Vec::new);
        self.level.clear();
        self.level.resize(n, UNREACHED);
        self.iter.clear();
        self.iter.resize(n, 0);
        self.tol = C::Tol::default();
    }

    /// Replace the capacity of forward edge `id` without touching topology —
    /// the Dinkelbach loop updates only the sink arcs `w_u/α` between
    /// parameter values. Call [`reset_flow`](Self::reset_flow) before the
    /// next [`max_flow`](Self::max_flow).
    pub fn set_capacity(&mut self, id: EdgeId, cap: impl Into<Cap<C>>) {
        debug_assert_eq!(id % 2, 0, "capacities live on forward arcs");
        let cap = cap.into();
        if let Cap::Finite(c) = &cap {
            C::observe(&mut self.tol, c);
        }
        self.arcs[id].cap = cap;
    }

    /// Add a directed edge `from → to` with the given capacity; returns its
    /// id. Ids are assigned in call order for every backend, so one set of
    /// edge bookkeeping serves all engines.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cap: impl Into<Cap<C>>) -> EdgeId {
        assert!(from < self.n() && to < self.n(), "node out of range");
        assert_ne!(from, to, "self-loop arcs are not supported");
        let cap = cap.into();
        if let Cap::Finite(c) = &cap {
            C::observe(&mut self.tol, c);
        }
        let id = self.arcs.len();
        self.adj[from].push(id);
        self.arcs.push(Arc {
            to,
            cap,
            flow: C::zero(),
        });
        self.adj[to].push(id + 1);
        self.arcs.push(Arc {
            to: from,
            cap: Cap::Finite(C::zero()),
            flow: C::zero(),
        });
        id
    }

    /// Flow currently assigned to edge `id` (a forward arc id from
    /// [`add_edge`](Self::add_edge)).
    pub fn flow_on(&self, id: EdgeId) -> &C {
        &self.arcs[id].flow
    }

    /// The capacity of forward edge `id`.
    pub fn capacity_of(&self, id: EdgeId) -> &Cap<C> {
        debug_assert_eq!(id % 2, 0, "capacities live on forward arcs");
        &self.arcs[id].cap
    }

    /// Seed forward edge `id` with flow `f` before a [`max_flow`] run (warm
    /// start). The caller must keep the overall assignment capacity-valid
    /// and conserving; `max_flow` then augments from this state and returns
    /// only the *additional* flow pushed — the total value is the preset
    /// amount plus the return value.
    ///
    /// [`max_flow`]: Self::max_flow
    pub fn preset_flow(&mut self, id: EdgeId, f: C) {
        debug_assert_eq!(id % 2, 0, "presets go on forward arcs");
        debug_assert!(!f.is_negative());
        debug_assert!(match &self.arcs[id].cap {
            Cap::Infinite => true,
            Cap::Finite(c) => f.le(c),
        });
        self.arcs[id ^ 1].flow = f.neg_ref();
        self.arcs[id].flow = f;
    }

    /// Install the largest valid warm-start seed at most `seeds` on a
    /// three-layer network and return its total value.
    ///
    /// Each request is clamped — in order — to the remaining capacity of
    /// its source and sink arcs, then preset on its middle arc; finally the
    /// per-source and per-sink sums are mirrored onto the boundary arcs so
    /// the seed conserves at every inner node. The result is always a
    /// *valid* flow (capacity-respecting and conserving), so a following
    /// [`max_flow`](Self::max_flow) completes it to a maximum flow:
    /// seeding changes only how many augmenting paths are needed, never
    /// the result.
    pub fn seed_flow(&mut self, seeds: &[SeedArc<C>]) -> C {
        let mut out: BTreeMap<EdgeId, C> = BTreeMap::new();
        let mut intake: BTreeMap<EdgeId, C> = BTreeMap::new();
        for seed in seeds {
            let mut desired = seed.desired.clone();
            if !desired.is_positive() {
                continue;
            }
            // Clamp the sender to its remaining source capacity and the
            // receiver to its remaining sink room.
            if let Cap::Finite(c) = &self.arcs[seed.source_edge].cap {
                let supply = match out.get(&seed.source_edge) {
                    Some(used) => C::sub_ref(c, used),
                    None => c.clone(),
                };
                if !supply.is_positive() {
                    continue;
                }
                if !desired.le(&supply) {
                    desired = supply;
                }
            }
            if let Cap::Finite(c) = &self.arcs[seed.sink_edge].cap {
                let room = match intake.get(&seed.sink_edge) {
                    Some(used) => C::sub_ref(c, used),
                    None => c.clone(),
                };
                if !room.is_positive() {
                    continue;
                }
                if !desired.le(&room) {
                    desired = room;
                }
            }
            out.entry(seed.source_edge)
                .or_insert_with(C::zero)
                .add_assign_ref(&desired);
            intake
                .entry(seed.sink_edge)
                .or_insert_with(C::zero)
                .add_assign_ref(&desired);
            self.preset_flow(seed.mid_edge, desired);
        }
        // Mirror the middle flows onto the boundary arcs so the seed
        // conserves at every inner node. Every accumulated entry is
        // positive by construction.
        let sinks: Vec<(EdgeId, C)> = intake.into_iter().collect();
        for (e, amt) in sinks {
            self.preset_flow(e, amt);
        }
        let mut total = C::zero();
        let sources: Vec<(EdgeId, C)> = out.into_iter().collect();
        for (e, amt) in sources {
            total.add_assign_ref(&amt);
            self.preset_flow(e, amt);
        }
        total
    }

    /// True iff edge `id` is saturated (meaningless for infinite arcs: always
    /// false there).
    pub fn is_saturated(&self, id: EdgeId) -> bool {
        !self.arcs[id].has_residual(&self.tol)
    }

    /// Reset all flows to zero.
    pub fn reset_flow(&mut self) {
        for a in &mut self.arcs {
            a.flow = C::zero();
        }
    }

    fn bfs_levels(&mut self, s: NodeId) {
        C::record_bfs_phase();
        let mut sp = prs_trace::span("flow", C::SPAN_BFS);
        sp.attr("engine", || C::ENGINE.to_string());
        self.level.iter_mut().for_each(|l| *l = UNREACHED);
        self.level[s] = 0;
        let mut q = VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            for &aid in &self.adj[v] {
                let a = &self.arcs[aid];
                if a.has_residual(&self.tol) && self.level[a.to] == UNREACHED {
                    self.level[a.to] = self.level[v] + 1;
                    q.push_back(a.to);
                }
            }
        }
    }

    /// Find one augmenting path in the level graph and push flow along it;
    /// returns the amount pushed (zero when no path remains this phase).
    ///
    /// Iterative with an explicit arc stack: path lengths are bounded only by
    /// the node count, so recursion would overflow the thread stack on long
    /// chains (n ≳ 10⁴).
    fn dfs_augment(&mut self, s: NodeId, t: NodeId) -> C {
        let mut path: Vec<usize> = Vec::new();
        let mut v = s;
        loop {
            if v == t {
                // Bottleneck = min finite residual along the path. Every
                // s→t path crosses a finite arc, so the min exists; ties
                // keep the earliest arc (first-min semantics, identical
                // for every backend).
                let mut limit: Option<C> = None;
                for &aid in &path {
                    if let Some(r) = self.arcs[aid].residual() {
                        limit = Some(match limit {
                            Some(l) if l.le(&r) => l,
                            _ => r,
                        });
                    }
                }
                // prs-lint: allow(panic, reason = "s has only finite-capacity out-arcs, so every s→t path bounds the minimum; a violation is a solver bug, not an input error")
                let pushed = limit.expect("an s→t path must pass a finite-capacity arc");
                for &aid in &path {
                    self.arcs[aid].flow.add_assign_ref(&pushed);
                    self.arcs[aid ^ 1].flow.sub_assign_ref(&pushed);
                }
                C::record_augmenting_path();
                return pushed;
            }
            // Advance v's per-phase arc cursor to the next usable level arc.
            let mut advanced = false;
            while self.iter[v] < self.adj[v].len() {
                let aid = self.adj[v][self.iter[v]];
                let a = &self.arcs[aid];
                if a.has_residual(&self.tol) && self.level[a.to] == self.level[v] + 1 {
                    path.push(aid);
                    v = a.to;
                    advanced = true;
                    break;
                }
                self.iter[v] += 1;
            }
            if !advanced {
                // Dead end: retreat one step and skip the arc that led here.
                match path.pop() {
                    Some(aid) => {
                        let parent = self.arcs[aid ^ 1].to;
                        self.iter[parent] += 1;
                        v = parent;
                    }
                    None => return C::zero(),
                }
            }
        }
    }

    /// Compute the maximum `s → t` flow in the backend's arithmetic. The
    /// network must not contain an infinite-capacity `s → t` path; the
    /// Definition 2/5 networks never do (every path crosses a finite source
    /// or sink arc). Exact backends return the exact optimum; the tolerant
    /// backend treats augmentations below its saturation tolerance as zero,
    /// so its value is within `O(E · eps)` of the true max flow — good
    /// enough to propose, never to certify.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> C {
        assert_ne!(s, t, "source equals sink");
        C::record_max_flow();
        let mut sp = prs_trace::span("flow", C::SPAN_MAX_FLOW);
        sp.attr("engine", || C::ENGINE.to_string());
        let mut phases: u64 = 0;
        let mut total = C::zero();
        loop {
            self.bfs_levels(s);
            phases += 1;
            if self.level[t] == UNREACHED {
                sp.attr("phases", || phases.to_string());
                return total;
            }
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(s, t);
                if C::exhausted(&pushed) {
                    break;
                }
                total.add_assign_ref(&pushed);
            }
        }
    }

    /// Nodes reachable from `s` in the residual graph (the s-side of a
    /// minimum cut after [`max_flow`](Self::max_flow) has run).
    pub fn min_cut_source_side(&self, s: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.n()];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &aid in &self.adj[v] {
                let a = &self.arcs[aid];
                if a.has_residual(&self.tol) && !seen[a.to] {
                    seen[a.to] = true;
                    stack.push(a.to);
                }
            }
        }
        seen
    }

    /// Nodes that can reach `t` through the residual graph. Computed by a
    /// reverse traversal: `u` reaches `t` iff some residual arc `u → x` leads
    /// to a node that reaches `t`.
    ///
    /// This is the query behind the *maximal bottleneck* extraction: at the
    /// optimal α, a left-copy vertex belongs to the maximal tight set iff it
    /// can **not** reach `t` (see prs-bd).
    pub fn residual_reaches_sink(&self, t: NodeId) -> Vec<bool> {
        // Build reverse residual adjacency on the fly: arc u→x residual
        // contributes reverse edge x→u.
        let mut reaches = vec![false; self.n()];
        reaches[t] = true;
        let mut stack = vec![t];
        // Precompute incoming residual arcs per node once.
        let mut incoming: Vec<Vec<NodeId>> = vec![Vec::new(); self.n()];
        for (from, arcs) in self.adj.iter().enumerate() {
            for &aid in arcs {
                let a = &self.arcs[aid];
                if a.has_residual(&self.tol) {
                    incoming[a.to].push(from);
                }
            }
        }
        while let Some(v) = stack.pop() {
            for &u in &incoming[v] {
                if !reaches[u] {
                    reaches[u] = true;
                    stack.push(u);
                }
            }
        }
        reaches
    }

    /// Net flow leaving `s` over forward arcs: flow on edges `s → ·` minus
    /// flow on edges `· → s`. After [`max_flow`](Self::max_flow) this equals
    /// the flow value when `s` was the source (even if the network has edges
    /// into the source); at a conserving interior node it is zero.
    pub fn outflow(&self, s: NodeId) -> C {
        // An edge u → s appears in adj[s] as its reverse arc, whose flow is
        // exactly −(flow on u → s), so the plain sum over adj[s] is the net.
        let mut net = C::zero();
        for &aid in &self.adj[s] {
            net.add_assign_ref(&self.arcs[aid].flow);
        }
        net
    }

    /// Verify conservation at every node except `s` and `t` (testing hook).
    pub fn check_conservation(&self, s: NodeId, t: NodeId) -> bool {
        for v in 0..self.n() {
            if v == s || v == t {
                continue;
            }
            let mut net = C::zero();
            for &aid in &self.adj[v] {
                net.add_assign_ref(&self.arcs[aid].flow);
            }
            if !C::conserved(&net, &self.tol) {
                return false;
            }
        }
        true
    }

    /// Verify `0 ≤ flow ≤ cap` on all forward arcs (testing hook).
    pub fn check_capacities(&self) -> bool {
        self.arcs.iter().step_by(2).all(|a| {
            !a.flow.is_negative()
                && match &a.cap {
                    Cap::Infinite => true,
                    Cap::Finite(c) => a.flow.le(c),
                }
        })
    }
}
