//! Process-wide instrumentation counters for the parametric max-flow
//! engines.
//!
//! The decomposition hot path fans out across worker threads (deviation
//! sweeps, Sybil grids, audit batches), so the counters are lock-free
//! atomics that any crate in the stack can bump; [`snapshot`] reads a
//! consistent-enough view for reporting (counts are monotone, so a snapshot
//! taken at a quiescent point — e.g. after a sweep joins its workers — is
//! exact). `prs audit --stats` and the experiment harness call [`reset`]
//! before a measured region and [`snapshot`] after it.

use std::sync::atomic::{AtomicU64, Ordering};

/// A point-in-time copy of every engine counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Exact-engine Dinic BFS phases.
    pub exact_bfs_phases: u64,
    /// Exact-engine augmenting paths pushed.
    pub exact_augmenting_paths: u64,
    /// Exact max-flow computations run to completion.
    pub exact_max_flows: u64,
    /// Float-engine Dinic BFS phases.
    pub f64_bfs_phases: u64,
    /// Float-engine augmenting paths pushed.
    pub f64_augmenting_paths: u64,
    /// Float max-flow computations run to completion.
    pub f64_max_flows: u64,
    /// Exact Dinkelbach descent steps (certifications + fallback steps).
    pub dinkelbach_iterations: u64,
    /// Rounds where the float proposal certified on the first exact flow.
    pub fast_path_hits: u64,
    /// Rounds where certification failed and the exact descent resumed.
    pub fast_path_fallbacks: u64,
    /// Flow networks built from scratch (fresh arc storage).
    pub networks_built: u64,
    /// Network rebuilds that reused existing arc storage (arena hits).
    pub networks_reused: u64,
    /// Session rounds settled by a cached shape certificate (one exact
    /// certification max-flow, no descent).
    pub session_hits: u64,
    /// Session rounds that ran a full descent (no cached candidate, or the
    /// warm candidate failed certification).
    pub session_misses: u64,
    /// Session rounds seeded from a cached shape (hits plus failed probes).
    pub session_warm_starts: u64,
}

impl FlowStats {
    /// Fraction of decomposition rounds settled by the fast path
    /// (`NaN` when no round was instrumented).
    pub fn fast_path_rate(&self) -> f64 {
        let total = self.fast_path_hits + self.fast_path_fallbacks;
        if total == 0 {
            f64::NAN
        } else {
            // prs-lint: allow(cast, reason = "display-only ratio of event counters; f64 precision loss above 2^53 events is irrelevant")
            self.fast_path_hits as f64 / total as f64
        }
    }

    /// Fraction of session-served rounds settled straight from the shape
    /// cache (`NaN` when no session round was instrumented).
    pub fn session_hit_rate(&self) -> f64 {
        let total = self.session_hits + self.session_misses;
        if total == 0 {
            f64::NAN
        } else {
            // prs-lint: allow(cast, reason = "display-only ratio of event counters; f64 precision loss above 2^53 events is irrelevant")
            self.session_hits as f64 / total as f64
        }
    }

    /// Field-wise difference `self − earlier` (counters are monotone).
    pub fn since(&self, earlier: &FlowStats) -> FlowStats {
        FlowStats {
            exact_bfs_phases: self.exact_bfs_phases - earlier.exact_bfs_phases,
            exact_augmenting_paths: self.exact_augmenting_paths - earlier.exact_augmenting_paths,
            exact_max_flows: self.exact_max_flows - earlier.exact_max_flows,
            f64_bfs_phases: self.f64_bfs_phases - earlier.f64_bfs_phases,
            f64_augmenting_paths: self.f64_augmenting_paths - earlier.f64_augmenting_paths,
            f64_max_flows: self.f64_max_flows - earlier.f64_max_flows,
            dinkelbach_iterations: self.dinkelbach_iterations - earlier.dinkelbach_iterations,
            fast_path_hits: self.fast_path_hits - earlier.fast_path_hits,
            fast_path_fallbacks: self.fast_path_fallbacks - earlier.fast_path_fallbacks,
            networks_built: self.networks_built - earlier.networks_built,
            networks_reused: self.networks_reused - earlier.networks_reused,
            session_hits: self.session_hits - earlier.session_hits,
            session_misses: self.session_misses - earlier.session_misses,
            session_warm_starts: self.session_warm_starts - earlier.session_warm_starts,
        }
    }

    /// Render as `key = value` lines for terminal reporting.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let rate = self.fast_path_rate();
        let rows: &[(&str, u64)] = &[
            ("exact max-flows", self.exact_max_flows),
            ("exact BFS phases", self.exact_bfs_phases),
            ("exact augmenting paths", self.exact_augmenting_paths),
            ("f64 max-flows", self.f64_max_flows),
            ("f64 BFS phases", self.f64_bfs_phases),
            ("f64 augmenting paths", self.f64_augmenting_paths),
            ("Dinkelbach iterations", self.dinkelbach_iterations),
            ("fast-path hits", self.fast_path_hits),
            ("fast-path fallbacks", self.fast_path_fallbacks),
            ("networks built", self.networks_built),
            ("networks reused", self.networks_reused),
            ("session hits", self.session_hits),
            ("session misses", self.session_misses),
            ("session warm-starts", self.session_warm_starts),
        ];
        for (k, v) in rows {
            out.push_str(&format!("  {k:<24} {v}\n"));
        }
        if rate.is_finite() {
            out.push_str(&format!(
                "  {:<24} {:.1}%\n",
                "fast-path rate",
                rate * 100.0
            ));
        }
        let session_rate = self.session_hit_rate();
        if session_rate.is_finite() {
            out.push_str(&format!(
                "  {:<24} {:.1}%\n",
                "session hit rate",
                session_rate * 100.0
            ));
        }
        out
    }

    /// Serialize as a JSON object (no external serializer in the build
    /// environment).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"exact_max_flows\": {}, \"exact_bfs_phases\": {}, ",
                "\"exact_augmenting_paths\": {}, \"f64_max_flows\": {}, ",
                "\"f64_bfs_phases\": {}, \"f64_augmenting_paths\": {}, ",
                "\"dinkelbach_iterations\": {}, \"fast_path_hits\": {}, ",
                "\"fast_path_fallbacks\": {}, \"networks_built\": {}, ",
                "\"networks_reused\": {}, \"session_hits\": {}, ",
                "\"session_misses\": {}, \"session_warm_starts\": {}}}"
            ),
            self.exact_max_flows,
            self.exact_bfs_phases,
            self.exact_augmenting_paths,
            self.f64_max_flows,
            self.f64_bfs_phases,
            self.f64_augmenting_paths,
            self.dinkelbach_iterations,
            self.fast_path_hits,
            self.fast_path_fallbacks,
            self.networks_built,
            self.networks_reused,
            self.session_hits,
            self.session_misses,
            self.session_warm_starts,
        )
    }
}

macro_rules! counters {
    ($($static_name:ident => $field:ident, $record:ident;)+) => {
        $(static $static_name: AtomicU64 = AtomicU64::new(0);)+

        $(
            /// Bump the corresponding engine counter by `n`.
            #[inline]
            pub fn $record(n: u64) {
                $static_name.fetch_add(n, Ordering::Relaxed);
            }
        )+

        /// Read every counter.
        pub fn snapshot() -> FlowStats {
            FlowStats {
                $($field: $static_name.load(Ordering::Relaxed),)+
            }
        }

        /// Zero every counter (start of a measured region).
        pub fn reset() {
            $($static_name.store(0, Ordering::Relaxed);)+
        }
    };
}

counters! {
    EXACT_BFS => exact_bfs_phases, record_exact_bfs_phases;
    EXACT_AUG => exact_augmenting_paths, record_exact_augmenting_paths;
    EXACT_FLOWS => exact_max_flows, record_exact_max_flows;
    F64_BFS => f64_bfs_phases, record_f64_bfs_phases;
    F64_AUG => f64_augmenting_paths, record_f64_augmenting_paths;
    F64_FLOWS => f64_max_flows, record_f64_max_flows;
    DINKELBACH => dinkelbach_iterations, record_dinkelbach_iterations;
    FAST_HITS => fast_path_hits, record_fast_path_hits;
    FAST_FALLBACKS => fast_path_fallbacks, record_fast_path_fallbacks;
    NETS_BUILT => networks_built, record_networks_built;
    NETS_REUSED => networks_reused, record_networks_reused;
    SESSION_HITS => session_hits, record_session_hits;
    SESSION_MISSES => session_misses, record_session_misses;
    SESSION_WARM => session_warm_starts, record_session_warm_starts;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global; the tests below only assert relative
    // movement so they stay robust under parallel test execution.

    #[test]
    fn counters_accumulate_and_diff() {
        let before = snapshot();
        record_fast_path_hits(3);
        record_networks_reused(2);
        let after = snapshot();
        let delta = after.since(&before);
        assert!(delta.fast_path_hits >= 3);
        assert!(delta.networks_reused >= 2);
    }

    #[test]
    fn render_and_json_mention_every_counter() {
        let s = FlowStats {
            fast_path_hits: 7,
            fast_path_fallbacks: 1,
            ..FlowStats::default()
        };
        let text = s.render();
        assert!(text.contains("fast-path hits"));
        assert!(text.contains("87.5%"), "rate rendering: {text}");
        let json = s.to_json();
        assert!(json.contains("\"fast_path_hits\": 7"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn rate_is_nan_when_uninstrumented() {
        assert!(FlowStats::default().fast_path_rate().is_nan());
        assert!(FlowStats::default().session_hit_rate().is_nan());
    }

    #[test]
    fn session_counters_round_trip() {
        let before = snapshot();
        record_session_hits(4);
        record_session_misses(1);
        record_session_warm_starts(5);
        let delta = snapshot().since(&before);
        assert!(delta.session_hits >= 4);
        assert!(delta.session_misses >= 1);
        assert!(delta.session_warm_starts >= 5);
        let s = FlowStats {
            session_hits: 3,
            session_misses: 1,
            session_warm_starts: 3,
            ..FlowStats::default()
        };
        assert!(s.render().contains("session hits"));
        assert!(s.render().contains("75.0%"), "{}", s.render());
        assert!(s.to_json().contains("\"session_warm_starts\": 3"));
    }
}
