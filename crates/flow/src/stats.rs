//! Process-wide instrumentation counters for the parametric max-flow
//! engines.
//!
//! The decomposition hot path fans out across worker threads (deviation
//! sweeps, Sybil grids, audit batches), so the counters are lock-free
//! atomics that any crate in the stack can bump; [`snapshot`] reads a
//! consistent-enough view for reporting (counts are monotone, so a snapshot
//! taken at a quiescent point — e.g. after a sweep joins its workers — is
//! exact). `prs audit --stats` and the experiment harness call [`reset`]
//! before a measured region and [`snapshot`] after it.
//!
//! The counters are [`prs_trace::Counter`]s, so the same values surface in
//! `prs-trace` summaries (`prs audit --trace`) alongside the span timings —
//! one recorder, two views. Counters are always live; span recording being
//! off changes nothing here.

use prs_trace::Counter;

/// A point-in-time copy of every engine counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Exact-engine Dinic BFS phases.
    pub exact_bfs_phases: u64,
    /// Exact-engine augmenting paths pushed.
    pub exact_augmenting_paths: u64,
    /// Exact max-flow computations run to completion.
    pub exact_max_flows: u64,
    /// Float-engine Dinic BFS phases.
    pub f64_bfs_phases: u64,
    /// Float-engine augmenting paths pushed.
    pub f64_augmenting_paths: u64,
    /// Float max-flow computations run to completion.
    pub f64_max_flows: u64,
    /// Checked-i128 engine Dinic BFS phases.
    pub i128_bfs_phases: u64,
    /// Checked-i128 engine augmenting paths pushed.
    pub i128_augmenting_paths: u64,
    /// Checked-i128 max-flow computations run to completion.
    pub i128_max_flows: u64,
    /// Certification rounds promoted from the i128 tier to BigInt
    /// (build-time width rejection or a runtime checked-arithmetic trip).
    pub i128_promotions: u64,
    /// Exact Dinkelbach descent steps (certifications + fallback steps).
    pub dinkelbach_iterations: u64,
    /// Rounds where the float proposal certified on the first exact flow.
    pub fast_path_hits: u64,
    /// Rounds where certification failed and the exact descent resumed.
    pub fast_path_fallbacks: u64,
    /// Flow networks built from scratch (fresh arc storage).
    pub networks_built: u64,
    /// Network rebuilds that reused existing arc storage (arena hits).
    pub networks_reused: u64,
    /// Session rounds settled by a cached shape certificate (one exact
    /// certification max-flow, no descent).
    pub session_hits: u64,
    /// Session rounds that ran a full descent (no cached candidate, or the
    /// warm candidate failed certification).
    pub session_misses: u64,
    /// Session rounds seeded from a cached shape (hits plus failed probes).
    pub session_warm_starts: u64,
    /// Delta mutations answered `Unchanged` without any flow invocation
    /// (no-op deltas, idempotent edge ops, C–C edge insertions).
    pub delta_unchanged: u64,
    /// Delta mutations served by round-scoped recertification (seeded
    /// certification flows only, previous round structure confirmed).
    pub delta_recertified: u64,
    /// Delta mutations that fell back to a full recompute (cold state,
    /// vertex-count change, or a descent somewhere in the replay).
    pub delta_recomputed: u64,
}

impl FlowStats {
    /// Fraction of decomposition rounds settled by the fast path
    /// (`NaN` when no round was instrumented).
    // prs-lint: allow(float, reason = "display-only ratio; derived from exact counters, never fed back into the solver")
    pub fn fast_path_rate(&self) -> f64 {
        let total = self.fast_path_hits + self.fast_path_fallbacks;
        if total == 0 {
            f64::NAN
        } else {
            // prs-lint: allow(cast, reason = "display-only ratio of event counters; f64 precision loss above 2^53 events is irrelevant")
            self.fast_path_hits as f64 / total as f64
        }
    }

    /// Fraction of session-served rounds settled straight from the shape
    /// cache (`NaN` when no session round was instrumented).
    // prs-lint: allow(float, reason = "display-only ratio; derived from exact counters, never fed back into the solver")
    pub fn session_hit_rate(&self) -> f64 {
        let total = self.session_hits + self.session_misses;
        if total == 0 {
            f64::NAN
        } else {
            // prs-lint: allow(cast, reason = "display-only ratio of event counters; f64 precision loss above 2^53 events is irrelevant")
            self.session_hits as f64 / total as f64
        }
    }

    /// Field-wise difference `self − earlier`, saturating at zero.
    ///
    /// Counters are monotone between resets, but a [`reset`] between the
    /// two snapshots makes `earlier` exceed `self`; saturating keeps that
    /// case a zero delta instead of a debug-build panic (or a release-mode
    /// wraparound masquerading as ~2^64 BFS phases).
    pub fn since(&self, earlier: &FlowStats) -> FlowStats {
        FlowStats {
            exact_bfs_phases: self
                .exact_bfs_phases
                .saturating_sub(earlier.exact_bfs_phases),
            exact_augmenting_paths: self
                .exact_augmenting_paths
                .saturating_sub(earlier.exact_augmenting_paths),
            exact_max_flows: self.exact_max_flows.saturating_sub(earlier.exact_max_flows),
            f64_bfs_phases: self.f64_bfs_phases.saturating_sub(earlier.f64_bfs_phases),
            f64_augmenting_paths: self
                .f64_augmenting_paths
                .saturating_sub(earlier.f64_augmenting_paths),
            f64_max_flows: self.f64_max_flows.saturating_sub(earlier.f64_max_flows),
            i128_bfs_phases: self.i128_bfs_phases.saturating_sub(earlier.i128_bfs_phases),
            i128_augmenting_paths: self
                .i128_augmenting_paths
                .saturating_sub(earlier.i128_augmenting_paths),
            i128_max_flows: self.i128_max_flows.saturating_sub(earlier.i128_max_flows),
            i128_promotions: self.i128_promotions.saturating_sub(earlier.i128_promotions),
            dinkelbach_iterations: self
                .dinkelbach_iterations
                .saturating_sub(earlier.dinkelbach_iterations),
            fast_path_hits: self.fast_path_hits.saturating_sub(earlier.fast_path_hits),
            fast_path_fallbacks: self
                .fast_path_fallbacks
                .saturating_sub(earlier.fast_path_fallbacks),
            networks_built: self.networks_built.saturating_sub(earlier.networks_built),
            networks_reused: self.networks_reused.saturating_sub(earlier.networks_reused),
            session_hits: self.session_hits.saturating_sub(earlier.session_hits),
            session_misses: self.session_misses.saturating_sub(earlier.session_misses),
            session_warm_starts: self
                .session_warm_starts
                .saturating_sub(earlier.session_warm_starts),
            delta_unchanged: self.delta_unchanged.saturating_sub(earlier.delta_unchanged),
            delta_recertified: self
                .delta_recertified
                .saturating_sub(earlier.delta_recertified),
            delta_recomputed: self
                .delta_recomputed
                .saturating_sub(earlier.delta_recomputed),
        }
    }

    /// Render as `key = value` lines for terminal reporting.
    // prs-lint: allow(float, reason = "percentage formatting of display-only rates")
    pub fn render(&self) -> String {
        let mut out = String::new();
        let rate = self.fast_path_rate();
        let rows: &[(&str, u64)] = &[
            ("exact max-flows", self.exact_max_flows),
            ("exact BFS phases", self.exact_bfs_phases),
            ("exact augmenting paths", self.exact_augmenting_paths),
            ("f64 max-flows", self.f64_max_flows),
            ("f64 BFS phases", self.f64_bfs_phases),
            ("f64 augmenting paths", self.f64_augmenting_paths),
            ("i128 max-flows", self.i128_max_flows),
            ("i128 BFS phases", self.i128_bfs_phases),
            ("i128 augmenting paths", self.i128_augmenting_paths),
            ("i128 promotions", self.i128_promotions),
            ("Dinkelbach iterations", self.dinkelbach_iterations),
            ("fast-path hits", self.fast_path_hits),
            ("fast-path fallbacks", self.fast_path_fallbacks),
            ("networks built", self.networks_built),
            ("networks reused", self.networks_reused),
            ("session hits", self.session_hits),
            ("session misses", self.session_misses),
            ("session warm-starts", self.session_warm_starts),
            ("delta unchanged", self.delta_unchanged),
            ("delta recertified", self.delta_recertified),
            ("delta recomputed", self.delta_recomputed),
        ];
        for (k, v) in rows {
            out.push_str(&format!("  {k:<24} {v}\n"));
        }
        if rate.is_finite() {
            out.push_str(&format!(
                "  {:<24} {:.1}%\n",
                "fast-path rate",
                rate * 100.0
            ));
        }
        let session_rate = self.session_hit_rate();
        if session_rate.is_finite() {
            out.push_str(&format!(
                "  {:<24} {:.1}%\n",
                "session hit rate",
                session_rate * 100.0
            ));
        }
        out
    }

    /// Serialize as a JSON object (no external serializer in the build
    /// environment).
    ///
    /// The derived `fast_path_rate`/`session_hit_rate` keys are appended
    /// only when finite: with zero instrumented rounds the rates are
    /// `NaN`, which has no JSON representation, so the keys are omitted
    /// rather than emitting an unparseable `NaN` literal.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"exact_max_flows\": {}, \"exact_bfs_phases\": {}, ",
                "\"exact_augmenting_paths\": {}, \"f64_max_flows\": {}, ",
                "\"f64_bfs_phases\": {}, \"f64_augmenting_paths\": {}, ",
                "\"i128_max_flows\": {}, \"i128_bfs_phases\": {}, ",
                "\"i128_augmenting_paths\": {}, \"i128_promotions\": {}, ",
                "\"dinkelbach_iterations\": {}, \"fast_path_hits\": {}, ",
                "\"fast_path_fallbacks\": {}, \"networks_built\": {}, ",
                "\"networks_reused\": {}, \"session_hits\": {}, ",
                "\"session_misses\": {}, \"session_warm_starts\": {}, ",
                "\"delta_unchanged\": {}, \"delta_recertified\": {}, ",
                "\"delta_recomputed\": {}"
            ),
            self.exact_max_flows,
            self.exact_bfs_phases,
            self.exact_augmenting_paths,
            self.f64_max_flows,
            self.f64_bfs_phases,
            self.f64_augmenting_paths,
            self.i128_max_flows,
            self.i128_bfs_phases,
            self.i128_augmenting_paths,
            self.i128_promotions,
            self.dinkelbach_iterations,
            self.fast_path_hits,
            self.fast_path_fallbacks,
            self.networks_built,
            self.networks_reused,
            self.session_hits,
            self.session_misses,
            self.session_warm_starts,
            self.delta_unchanged,
            self.delta_recertified,
            self.delta_recomputed,
        );
        let fast = self.fast_path_rate();
        if fast.is_finite() {
            out.push_str(&format!(", \"fast_path_rate\": {fast:.6}"));
        }
        let session = self.session_hit_rate();
        if session.is_finite() {
            out.push_str(&format!(", \"session_hit_rate\": {session:.6}"));
        }
        out.push('}');
        out
    }
}

macro_rules! counters {
    ($($static_name:ident($trace_name:literal) => $field:ident, $record:ident;)+) => {
        // Each engine counter is a `prs_trace::Counter`, so the same value
        // the `FlowStats` API reports also shows up (under its dotted
        // trace name) in `prs-trace` summaries.
        $(static $static_name: Counter = Counter::new($trace_name);)+

        $(
            /// Bump the corresponding engine counter by `n`.
            #[inline]
            pub fn $record(n: u64) {
                $static_name.add(n);
            }
        )+

        /// Read every counter.
        pub fn snapshot() -> FlowStats {
            FlowStats {
                $($field: $static_name.get(),)+
            }
        }

        /// Zero every counter (start of a measured region).
        pub fn reset() {
            $($static_name.set(0);)+
        }
    };
}

counters! {
    EXACT_BFS("flow.exact_bfs_phases") => exact_bfs_phases, record_exact_bfs_phases;
    EXACT_AUG("flow.exact_augmenting_paths") => exact_augmenting_paths, record_exact_augmenting_paths;
    EXACT_FLOWS("flow.exact_max_flows") => exact_max_flows, record_exact_max_flows;
    F64_BFS("flow.f64_bfs_phases") => f64_bfs_phases, record_f64_bfs_phases;
    F64_AUG("flow.f64_augmenting_paths") => f64_augmenting_paths, record_f64_augmenting_paths;
    F64_FLOWS("flow.f64_max_flows") => f64_max_flows, record_f64_max_flows;
    I128_BFS("flow.i128_bfs_phases") => i128_bfs_phases, record_i128_bfs_phases;
    I128_AUG("flow.i128_augmenting_paths") => i128_augmenting_paths, record_i128_augmenting_paths;
    I128_FLOWS("flow.i128_max_flows") => i128_max_flows, record_i128_max_flows;
    I128_PROMOTIONS("bd.i128_promotions") => i128_promotions, record_i128_promotions;
    DINKELBACH("bd.dinkelbach_iterations") => dinkelbach_iterations, record_dinkelbach_iterations;
    FAST_HITS("bd.fast_path_hits") => fast_path_hits, record_fast_path_hits;
    FAST_FALLBACKS("bd.fast_path_fallbacks") => fast_path_fallbacks, record_fast_path_fallbacks;
    NETS_BUILT("flow.networks_built") => networks_built, record_networks_built;
    NETS_REUSED("flow.networks_reused") => networks_reused, record_networks_reused;
    SESSION_HITS("bd.session_hits") => session_hits, record_session_hits;
    SESSION_MISSES("bd.session_misses") => session_misses, record_session_misses;
    SESSION_WARM("bd.session_warm_starts") => session_warm_starts, record_session_warm_starts;
    DELTA_UNCHANGED("bd.delta_unchanged") => delta_unchanged, record_delta_unchanged;
    DELTA_RECERTIFIED("bd.delta_recertified") => delta_recertified, record_delta_recertified;
    DELTA_RECOMPUTED("bd.delta_recomputed") => delta_recomputed, record_delta_recomputed;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global; the tests below only assert relative
    // movement so they stay robust under parallel test execution.

    #[test]
    fn counters_accumulate_and_diff() {
        let before = snapshot();
        record_fast_path_hits(3);
        record_networks_reused(2);
        let after = snapshot();
        let delta = after.since(&before);
        assert!(delta.fast_path_hits >= 3);
        assert!(delta.networks_reused >= 2);
    }

    #[test]
    fn render_and_json_mention_every_counter() {
        let s = FlowStats {
            fast_path_hits: 7,
            fast_path_fallbacks: 1,
            ..FlowStats::default()
        };
        let text = s.render();
        assert!(text.contains("fast-path hits"));
        assert!(text.contains("87.5%"), "rate rendering: {text}");
        let json = s.to_json();
        assert!(json.contains("\"fast_path_hits\": 7"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn rate_is_nan_when_uninstrumented() {
        assert!(FlowStats::default().fast_path_rate().is_nan());
        assert!(FlowStats::default().session_hit_rate().is_nan());
    }

    #[test]
    fn since_saturates_after_reset_between_snapshots() {
        // Regression: `reset()` between two snapshots makes `earlier`
        // exceed the later snapshot; the delta must clamp to zero instead
        // of panicking (debug) or wrapping (release).
        let earlier = FlowStats {
            exact_max_flows: 10,
            session_hits: 4,
            dinkelbach_iterations: 100,
            ..FlowStats::default()
        };
        let later = FlowStats {
            exact_max_flows: 2,
            session_hits: 7,
            ..FlowStats::default()
        };
        let delta = later.since(&earlier);
        assert_eq!(delta.exact_max_flows, 0);
        assert_eq!(delta.dinkelbach_iterations, 0);
        assert_eq!(delta.session_hits, 3);
    }

    #[test]
    fn json_omits_rates_when_no_rounds_ran() {
        // Regression: `NaN` has no JSON representation; uninstrumented
        // snapshots must omit the rate keys entirely.
        let empty = FlowStats::default().to_json();
        assert!(!empty.contains("NaN"), "{empty}");
        assert!(!empty.contains("fast_path_rate"), "{empty}");
        assert!(!empty.contains("session_hit_rate"), "{empty}");
        assert!(empty.ends_with('}'), "{empty}");

        let active = FlowStats {
            fast_path_hits: 3,
            fast_path_fallbacks: 1,
            session_hits: 1,
            session_misses: 1,
            ..FlowStats::default()
        }
        .to_json();
        assert!(active.contains("\"fast_path_rate\": 0.750000"), "{active}");
        assert!(
            active.contains("\"session_hit_rate\": 0.500000"),
            "{active}"
        );
    }

    #[test]
    fn counters_surface_in_trace_registry() {
        record_exact_max_flows(1);
        record_session_hits(1);
        let names: Vec<&str> = prs_trace::counter_values()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(names.contains(&"flow.exact_max_flows"), "{names:?}");
        assert!(names.contains(&"bd.session_hits"), "{names:?}");
    }

    #[test]
    fn session_counters_round_trip() {
        let before = snapshot();
        record_session_hits(4);
        record_session_misses(1);
        record_session_warm_starts(5);
        let delta = snapshot().since(&before);
        assert!(delta.session_hits >= 4);
        assert!(delta.session_misses >= 1);
        assert!(delta.session_warm_starts >= 5);
        let s = FlowStats {
            session_hits: 3,
            session_misses: 1,
            session_warm_starts: 3,
            ..FlowStats::default()
        };
        assert!(s.render().contains("session hits"));
        assert!(s.render().contains("75.0%"), "{}", s.render());
        assert!(s.to_json().contains("\"session_warm_starts\": 3"));
    }

    #[test]
    fn delta_counters_round_trip() {
        let before = snapshot();
        record_delta_unchanged(2);
        record_delta_recertified(3);
        record_delta_recomputed(1);
        let delta = snapshot().since(&before);
        assert!(delta.delta_unchanged >= 2);
        assert!(delta.delta_recertified >= 3);
        assert!(delta.delta_recomputed >= 1);
        let s = FlowStats {
            delta_unchanged: 5,
            delta_recertified: 2,
            delta_recomputed: 1,
            ..FlowStats::default()
        };
        assert!(s.render().contains("delta unchanged"));
        assert!(s.render().contains("delta recertified"));
        assert!(s.render().contains("delta recomputed"));
        let json = s.to_json();
        assert!(json.contains("\"delta_unchanged\": 5"), "{json}");
        assert!(json.contains("\"delta_recertified\": 2"), "{json}");
        assert!(json.contains("\"delta_recomputed\": 1"), "{json}");
        let names: Vec<&str> = prs_trace::counter_values()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(names.contains(&"bd.delta_unchanged"), "{names:?}");
        assert!(names.contains(&"bd.delta_recertified"), "{names:?}");
        assert!(names.contains(&"bd.delta_recomputed"), "{names:?}");
    }

    #[test]
    fn i128_counters_round_trip() {
        let before = snapshot();
        record_i128_bfs_phases(2);
        record_i128_augmenting_paths(3);
        record_i128_max_flows(1);
        record_i128_promotions(1);
        let delta = snapshot().since(&before);
        assert!(delta.i128_bfs_phases >= 2);
        assert!(delta.i128_augmenting_paths >= 3);
        assert!(delta.i128_max_flows >= 1);
        assert!(delta.i128_promotions >= 1);
        let s = FlowStats {
            i128_max_flows: 9,
            i128_promotions: 2,
            ..FlowStats::default()
        };
        assert!(s.render().contains("i128 max-flows"));
        assert!(s.render().contains("i128 promotions"));
        let json = s.to_json();
        assert!(json.contains("\"i128_max_flows\": 9"), "{json}");
        assert!(json.contains("\"i128_promotions\": 2"), "{json}");
        let names: Vec<&str> = prs_trace::counter_values()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(names.contains(&"flow.i128_max_flows"), "{names:?}");
        assert!(names.contains(&"bd.i128_promotions"), "{names:?}");
    }
}
