//! The BD Allocation Mechanism (Definition 5).
//!
//! Given the bottleneck decomposition, the allocation is assembled pair by
//! pair:
//!
//! * For `(B_i, C_i)` with `α_i < 1`: a bipartite max-flow on the *actual*
//!   edges between `B_i` and `C_i`, with source caps `w_u` (`u ∈ B_i`) and
//!   sink caps `w_v/α_i` (`v ∈ C_i`). Feasibility (every cap saturated) is
//!   exactly the tightness of the pair. The allocation is `x_{uv} = f_{uv}`
//!   and the proportional response back, `x_{vu} = α_i · f_{uv}`.
//! * For the terminal pair with `α_k = 1` (`B_k = C_k`): the same
//!   construction on the bipartite double cover of `G[B_k]`.
//! * Every other edge carries zero.
//!
//! The resulting utilities satisfy Proposition 6, which is asserted by the
//! test-suite across graph families.

use crate::decomposition::BottleneckDecomposition;
use prs_flow::{Cap, FlowNetwork};
use prs_graph::{Graph, VertexId};
use prs_numeric::Rational;

/// A full resource allocation `X = {x_uv}` on a graph: how much each agent
/// sends to each neighbor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    n: usize,
    /// For edge index `e = (u, v)` with `u < v` (graph edge order):
    /// `forward[e]` is `x_{uv}`, `backward[e]` is `x_{vu}`.
    forward: Vec<Rational>,
    backward: Vec<Rational>,
    /// Cached edge list mirroring the graph's.
    edges: Vec<(VertexId, VertexId)>,
}

impl Allocation {
    /// The zero allocation on `g`.
    pub fn zeros(g: &Graph) -> Self {
        Allocation {
            n: g.n(),
            forward: vec![Rational::zero(); g.m()],
            backward: vec![Rational::zero(); g.m()],
            edges: g.edges().to_vec(),
        }
    }

    fn edge_index(&self, u: VertexId, v: VertexId) -> Option<(usize, bool)> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.binary_search(&key).ok().map(|e| (e, u < v))
    }

    /// `x_{uv}`: the amount `u` sends to `v`. Zero when `(u,v)` is not an
    /// edge.
    pub fn sent(&self, u: VertexId, v: VertexId) -> Rational {
        match self.edge_index(u, v) {
            Some((e, true)) => self.forward[e].clone(),
            Some((e, false)) => self.backward[e].clone(),
            None => Rational::zero(),
        }
    }

    fn add_sent(&mut self, u: VertexId, v: VertexId, amount: &Rational) {
        // prs-lint: allow(panic, reason = "private helper; callers iterate graph edges, so (u,v) is an edge by construction")
        let (e, fwd) = self.edge_index(u, v).expect("allocation on a non-edge");
        if fwd {
            self.forward[e] += amount;
        } else {
            self.backward[e] += amount;
        }
    }

    /// The utility `U_v(X) = Σ_u x_{uv}` — total resource received.
    pub fn utility(&self, v: VertexId) -> Rational {
        let mut total = Rational::zero();
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            if a == v {
                total += &self.backward[e];
            } else if b == v {
                total += &self.forward[e];
            }
        }
        total
    }

    /// All utilities in vertex order.
    pub fn utilities(&self) -> Vec<Rational> {
        let mut out = vec![Rational::zero(); self.n];
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            out[b] += &self.forward[e];
            out[a] += &self.backward[e];
        }
        out
    }

    /// Total resource sent by `v`.
    pub fn sent_total(&self, v: VertexId) -> Rational {
        let mut total = Rational::zero();
        for (e, &(a, b)) in self.edges.iter().enumerate() {
            if a == v {
                total += &self.forward[e];
            } else if b == v {
                total += &self.backward[e];
            }
        }
        total
    }

    /// Check `Σ_u x_{vu} = w_v` for every vertex with at least one positive
    /// outgoing share, and `x ≥ 0` everywhere (testing hook).
    ///
    /// Budget balance holds for every agent in a pair (B-side by source
    /// saturation, C-side by the `α·f` return shares).
    pub fn check_budget_balance(&self, g: &Graph) -> Result<(), String> {
        for x in self.forward.iter().chain(&self.backward) {
            if x.is_negative() {
                return Err("negative share".into());
            }
        }
        for v in 0..self.n {
            let sent = self.sent_total(v);
            if &sent != g.weight(v) {
                return Err(format!("vertex {v} sends {sent} but owns {}", g.weight(v)));
            }
        }
        Ok(())
    }
}

/// Compute the BD allocation of `g` under decomposition `bd` (Definition 5).
///
/// Panics if `bd` was not produced from `g` (the per-pair flows would then
/// fail to saturate, which is asserted).
pub fn allocate(g: &Graph, bd: &BottleneckDecomposition) -> Allocation {
    let mut sp = prs_trace::span("bd", "allocate");
    sp.attr("pairs", || bd.pairs().len().to_string());
    let mut alloc = Allocation::zeros(g);
    let one = Rational::one();
    // One arena network rebuilt in place per pair (`clear` keeps storage).
    let mut net = FlowNetwork::new(0);
    for (k, pair) in bd.pairs().iter().enumerate() {
        let double_cover = pair.alpha == one;
        let mut sp_pair = prs_trace::span("bd", "allocate_pair");
        sp_pair.attr("pair", || k.to_string());
        sp_pair.attr("members", || (pair.b.len() + pair.c.len()).to_string());
        // The α_k = 1 terminal pair routes flow on the bipartite double
        // cover of G[B_k] instead of the B→C bipartite network.
        sp_pair.attr("double_cover", || double_cover.to_string());
        if double_cover {
            allocate_terminal_pair(g, pair, &mut net, &mut alloc);
        } else {
            allocate_regular_pair(g, pair, &mut net, &mut alloc);
        }
    }
    alloc
}

/// `α_i < 1`: bipartite flow `B_i → C_i` over the actual graph edges.
fn allocate_regular_pair(
    g: &Graph,
    pair: &crate::decomposition::BottleneckPair,
    net: &mut FlowNetwork,
    alloc: &mut Allocation,
) {
    let b: Vec<VertexId> = pair.b.to_vec();
    let c: Vec<VertexId> = pair.c.to_vec();
    // Network nodes: 0 = s, 1 = t, 2.. = B members, then C members.
    net.clear(2 + b.len() + c.len());
    let b_node = |i: usize| 2 + i;
    let c_node = |j: usize| 2 + b.len() + j;
    let c_pos: std::collections::BTreeMap<VertexId, usize> =
        c.iter().enumerate().map(|(j, &v)| (v, j)).collect();

    let mut expected = Rational::zero();
    for (i, &u) in b.iter().enumerate() {
        net.add_edge(0, b_node(i), Cap::Finite(g.weight(u).clone()));
        expected += g.weight(u);
    }
    for (j, &v) in c.iter().enumerate() {
        net.add_edge(c_node(j), 1, Cap::Finite(g.weight(v) / &pair.alpha));
    }
    let mut mid = Vec::new(); // (edge id, u, v)
    for (i, &u) in b.iter().enumerate() {
        for &v in g.neighbors(u) {
            if let Some(&j) = c_pos.get(&v) {
                let id = net.add_edge(b_node(i), c_node(j), Cap::Infinite);
                mid.push((id, u, v));
            }
        }
    }
    let flow = net.max_flow(0, 1);
    assert_eq!(
        flow, expected,
        "pair flow must saturate B-side (decomposition/graph mismatch?)"
    );
    for (id, u, v) in mid {
        let f = net.flow_on(id).clone();
        if f.is_positive() {
            alloc.add_sent(u, v, &f);
            alloc.add_sent(v, u, &(&f * &pair.alpha));
        }
    }
}

/// `α_k = 1`: flow on the bipartite double cover of `G[B_k]`.
fn allocate_terminal_pair(
    g: &Graph,
    pair: &crate::decomposition::BottleneckPair,
    net: &mut FlowNetwork,
    alloc: &mut Allocation,
) {
    let b: Vec<VertexId> = pair.b.to_vec();
    let pos: std::collections::BTreeMap<VertexId, usize> =
        b.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    net.clear(2 + 2 * b.len());
    let l_node = |i: usize| 2 + i;
    let r_node = |i: usize| 2 + b.len() + i;

    let mut expected = Rational::zero();
    for (i, &u) in b.iter().enumerate() {
        net.add_edge(0, l_node(i), Cap::Finite(g.weight(u).clone()));
        net.add_edge(r_node(i), 1, Cap::Finite(g.weight(u).clone()));
        expected += g.weight(u);
    }
    let mut mid = Vec::new();
    for (i, &u) in b.iter().enumerate() {
        for &v in g.neighbors(u) {
            if let Some(&j) = pos.get(&v) {
                // Directed u → v' arc of the double cover.
                let id = net.add_edge(l_node(i), r_node(j), Cap::Infinite);
                mid.push((id, u, v));
            }
        }
    }
    let flow = net.max_flow(0, 1);
    assert_eq!(
        flow, expected,
        "terminal pair flow must saturate (α = 1 tightness)"
    );
    // Symmetrize: if f is a feasible double-cover flow so is its transpose,
    // hence (f + fᵀ)/2 — which has the same row sums and utilities but is
    // additionally a *fixed point* of the proportional response dynamics
    // (α = 1 forces x_vu = x_uv at the fixed point since U_v = w_v).
    let half = Rational::from_ratio(1, 2);
    for (id, u, v) in mid {
        let f = net.flow_on(id).clone();
        if f.is_positive() {
            let h = &f * &half;
            alloc.add_sent(u, v, &h);
            alloc.add_sent(v, u, &h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose;
    use prs_graph::{builders, random};
    use prs_numeric::{int, ratio, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    fn check_prop6(g: &Graph) {
        let bd = decompose(g).unwrap();
        let alloc = allocate(g, &bd);
        alloc.check_budget_balance(g).unwrap();
        for v in 0..g.n() {
            assert_eq!(
                alloc.utility(v),
                bd.utility(g, v),
                "Prop 6 utility mismatch at vertex {v} on {g:?}"
            );
        }
    }

    #[test]
    fn figure1_allocation_utilities() {
        check_prop6(&builders::figure1_example());
    }

    #[test]
    fn two_vertex_exchange() {
        let g = builders::path(ints(&[1, 4])).unwrap();
        let bd = decompose(&g).unwrap();
        let alloc = allocate(&g, &bd);
        // Everything flows across the single edge.
        assert_eq!(alloc.sent(1, 0), int(4));
        assert_eq!(alloc.sent(0, 1), int(1));
        assert_eq!(alloc.utility(0), int(4));
        assert_eq!(alloc.utility(1), int(1));
    }

    #[test]
    fn uniform_rings_all_receive_their_weight() {
        for n in [3usize, 4, 5, 6, 7] {
            let g = builders::uniform_ring(n, int(2)).unwrap();
            let bd = decompose(&g).unwrap();
            let alloc = allocate(&g, &bd);
            alloc.check_budget_balance(&g).unwrap();
            for v in 0..n {
                assert_eq!(alloc.utility(v), int(2), "n={n} v={v}");
            }
        }
    }

    #[test]
    fn random_rings_satisfy_prop6() {
        let mut rng = StdRng::seed_from_u64(31);
        for n in 3..=10 {
            for _ in 0..10 {
                check_prop6(&random::random_ring(&mut rng, n, 1, 20));
            }
        }
    }

    #[test]
    fn random_connected_graphs_satisfy_prop6() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            check_prop6(&random::random_connected(&mut rng, 9, 0.3, 1, 15));
        }
    }

    #[test]
    fn rational_weights_satisfy_prop6() {
        let g = builders::ring(vec![ratio(1, 2), ratio(1, 3), ratio(2, 5), ratio(7, 4)]).unwrap();
        check_prop6(&g);
    }

    #[test]
    fn zero_weight_leaf_path_allocation() {
        let g = builders::path(vec![int(0), int(2), int(3)]).unwrap();
        check_prop6(&g);
    }

    #[test]
    fn allocation_zero_outside_pairs() {
        // Fig. 1: the edge v3–v4 joins C₁ to B₂, so it must carry nothing.
        let g = builders::figure1_example();
        let bd = decompose(&g).unwrap();
        let alloc = allocate(&g, &bd);
        assert_eq!(alloc.sent(2, 3), int(0));
        assert_eq!(alloc.sent(3, 2), int(0));
    }

    #[test]
    fn sent_on_non_edge_is_zero() {
        let g = builders::path(ints(&[1, 1, 1])).unwrap();
        let bd = decompose(&g).unwrap();
        let alloc = allocate(&g, &bd);
        assert_eq!(alloc.sent(0, 2), int(0));
    }
}
