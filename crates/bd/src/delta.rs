//! First-class mutations for a long-lived [`DecompositionSession`].
//!
//! A deployed sharing mechanism does not see cold instances; it sees a
//! stream of small mutations — one agent re-reports a weight, two peers
//! open or close a link. This module defines the mutation vocabulary
//! ([`Delta`]), the tier report every mutation comes back with
//! ([`UpdateOutcome`]), and the reusable Prop. 11/12 breakpoint-cell
//! certificate ([`StabilityCell`]) that the deviation sweep exports and the
//! session consults to predict round ratios without re-deriving them.
//!
//! The serving tiers (cheapest first; see `DESIGN.md` §3.3 for the
//! soundness argument of each):
//!
//! 1. **Unchanged** — answered in O(1) with **zero flow invocations**:
//!    net no-op batches, idempotent edge operations, and insertions of an
//!    edge between two strictly C-class agents (which provably leave the
//!    whole decomposition — pairs, classes, and α values — untouched).
//! 2. **Recertified** — only the Dinkelbach rounds whose bottleneck sets
//!    can see the mutation re-run a certification max-flow, seeded from the
//!    previous certifying flow; every untouched round replays its previous
//!    certificate verbatim.
//! 3. **Recomputed** — transparent fallback to the general warm solver
//!    whenever the incremental structure breaks (cold state, a descent,
//!    a restructured prefix). Results are bit-identical to a cold
//!    [`decompose`](crate::decompose) in every tier, by construction.
//!
//! [`DecompositionSession`]: crate::DecompositionSession

use crate::decomposition::BottleneckDecomposition;
use prs_graph::VertexId;
use prs_numeric::Rational;

/// One mutation of the session's owned instance.
///
/// Applied atomically by [`apply`](crate::DecompositionSession::apply):
/// either the whole delta commits (and the reported tier describes how the
/// new decomposition was obtained) or the session state is left exactly as
/// it was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// Replace the weight of vertex `v` with `w` (must be non-negative).
    SetWeight {
        /// The vertex whose weight changes.
        v: VertexId,
        /// The new weight.
        w: Rational,
    },
    /// Insert the undirected edge `(u, v)`. Inserting an edge that is
    /// already present is an idempotent no-op, not an error.
    AddEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Remove the undirected edge `(u, v)`. Removing an absent edge is an
    /// idempotent no-op, not an error.
    RemoveEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Apply several deltas as one atomic mutation: a single
    /// re-decomposition serves the coalesced result, and a batch whose net
    /// effect is the identity is answered `Unchanged`.
    Batch(Vec<Delta>),
}

impl Delta {
    /// The number of primitive (non-batch) mutations this delta contains.
    pub fn len(&self) -> usize {
        match self {
            Delta::Batch(items) => items.iter().map(Delta::len).sum(),
            _ => 1,
        }
    }

    /// True iff the delta contains no primitive mutation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Direction of an [`update_edge`](crate::DecompositionSession::update_edge)
/// mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeOp {
    /// Insert the edge.
    Add,
    /// Remove the edge.
    Remove,
}

/// Which serving tier answered a [`Delta`] (module docs list the tiers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The decomposition is provably identical to the previous one; no flow
    /// engine work was done.
    Unchanged,
    /// The previous decomposition's round structure survived: `rounds`
    /// rounds re-ran a seeded certification max-flow and every other round
    /// replayed its previous certificate verbatim.
    Recertified {
        /// Number of rounds that ran a certification flow.
        rounds: usize,
    },
    /// The incremental structure broke (cold state, a Dinkelbach descent,
    /// or a restructured prefix) and the general warm solver produced the
    /// result.
    Recomputed,
}

/// Exact Möbius coefficients of one pair's α-curve inside a stability
/// cell: `α(x) = (p·x + q)/(r·x + s)` as a function of the focus vertex's
/// reported weight `x`.
///
/// Mirrors `prs-deviation`'s per-pair breakpoint model (Prop. 11/12): on a
/// cell with constant combinatorial shape, each pair's ratio is a Möbius
/// function of the single moving weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellMoebius {
    /// Numerator slope.
    pub p: Rational,
    /// Numerator constant.
    pub q: Rational,
    /// Denominator slope.
    pub r: Rational,
    /// Denominator constant.
    pub s: Rational,
}

impl CellMoebius {
    /// Evaluate the curve at `x`; `None` when the denominator vanishes.
    pub fn eval(&self, x: &Rational) -> Option<Rational> {
        let den = &(&self.r * x) + &self.s;
        if den.is_zero() {
            return None;
        }
        Some(&(&(&self.p * x) + &self.q) / &den)
    }
}

/// A reusable single-weight stability certificate: on the closed interval
/// `[lo, hi]` of vertex `vertex`'s reported weight, the decomposition keeps
/// the combinatorial `shape` and each pair's α follows its exact
/// [`CellMoebius`] curve.
///
/// Exported by the deviation sweep (`prs-deviation`) from its endpoint-
/// verified `ShapeInterval`s and installed into a session with
/// [`install_cell`](crate::DecompositionSession::install_cell). The session
/// uses cells to **predict** round ratios on the recertified tier — every
/// prediction is still validated by the certification max-flow (a feasible
/// flow with no tight set exposes an under-predicted α and the session
/// falls back to the exact candidate ratio), so a stale or lying cell can
/// cost one wasted flow but never change a result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StabilityCell {
    /// The vertex whose weight the cell is parameterized by.
    pub vertex: VertexId,
    /// Lower end of the covered weight interval (inclusive).
    pub lo: Rational,
    /// Upper end of the covered weight interval (inclusive).
    pub hi: Rational,
    /// The constant combinatorial shape on the cell (pair memberships, as
    /// produced by [`BottleneckDecomposition::shape`]).
    pub shape: Vec<(Vec<VertexId>, Vec<VertexId>)>,
    /// Per-pair α-curves, in pair order (`alphas.len() == shape.len()`).
    pub alphas: Vec<CellMoebius>,
}

impl StabilityCell {
    /// True iff the cell covers weight `x` for vertex `v`.
    pub fn covers(&self, v: VertexId, x: &Rational) -> bool {
        self.vertex == v && self.lo <= *x && *x <= self.hi
    }

    /// True iff the cell's shape equals the decomposition's.
    pub fn shape_matches(&self, bd: &BottleneckDecomposition) -> bool {
        self.shape == bd.shape()
    }

    /// The α-curve of pair `round`, if the cell has one.
    pub fn alpha_curve(&self, round: usize) -> Option<&CellMoebius> {
        self.alphas.get(round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_numeric::{int, ratio};

    #[test]
    fn delta_len_flattens_batches() {
        let d = Delta::Batch(vec![
            Delta::SetWeight { v: 0, w: int(3) },
            Delta::Batch(vec![
                Delta::AddEdge { u: 1, v: 2 },
                Delta::RemoveEdge { u: 2, v: 3 },
            ]),
        ]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(Delta::Batch(vec![]).is_empty());
        assert_eq!(Delta::AddEdge { u: 0, v: 1 }.len(), 1);
    }

    #[test]
    fn moebius_eval() {
        // α(x) = (x + 1) / (2x + 3) at x = 2 → 3/7.
        let m = CellMoebius {
            p: int(1),
            q: int(1),
            r: int(2),
            s: int(3),
        };
        assert_eq!(m.eval(&int(2)), Some(ratio(3, 7)));
        // Constant curve: α(x) = 5/9.
        let c = CellMoebius {
            p: int(0),
            q: int(5),
            r: int(0),
            s: int(9),
        };
        assert_eq!(c.eval(&int(100)), Some(ratio(5, 9)));
        // Vanishing denominator.
        let z = CellMoebius {
            p: int(1),
            q: int(0),
            r: int(1),
            s: int(-2),
        };
        assert_eq!(z.eval(&int(2)), None);
    }

    #[test]
    fn cell_covers_closed_interval() {
        let cell = StabilityCell {
            vertex: 3,
            lo: ratio(1, 2),
            hi: int(4),
            shape: vec![],
            alphas: vec![],
        };
        assert!(cell.covers(3, &ratio(1, 2)));
        assert!(cell.covers(3, &int(4)));
        assert!(cell.covers(3, &int(2)));
        assert!(!cell.covers(3, &ratio(1, 3)));
        assert!(!cell.covers(2, &int(2)));
        assert_eq!(cell.alpha_curve(0), None);
    }
}
