#![warn(missing_docs)]
//! # prs-bd — bottleneck decomposition and the BD Allocation Mechanism
//!
//! This crate implements the combinatorial heart of the paper:
//!
//! * **Bottleneck decomposition** (Definition 2, Wu–Zhang): repeatedly find
//!   the *maximal bottleneck* `B_i` — the largest vertex set minimizing the
//!   inclusive expansion ratio `α(S) = w(Γ(S))/w(S)` — take `C_i = Γ(B_i)`,
//!   remove both, recurse. Implemented exactly for **arbitrary graphs** via a
//!   Dinkelbach-style parametric max-flow (see [`decomposition`]): a
//!   Hall-type feasibility network decides `min_S α(S) ≥ α`, min-cuts yield
//!   strictly better candidates until the optimum is hit, and residual
//!   reachability extracts the (unique) maximal bottleneck.
//! * **Class partition** (Definition 4): every agent is a B-class or C-class
//!   vertex (both, in the terminal `B_k = C_k`, `α_k = 1` pair).
//! * **BD Allocation Mechanism** (Definition 5): the per-pair bipartite
//!   max-flow allocation whose utilities obey Proposition 6
//!   (`U_v = w_v·α_i` for `v ∈ B_i`, `U_v = w_v/α_i` for `v ∈ C_i`), and
//!   which is the fixed point of the proportional response dynamics.
//! * A brute-force [`reference`] implementation (exhaustive subset scan)
//!   used as a test oracle on small instances.
//!
//! Everything is computed in exact rational arithmetic; α-ratio ties —
//! which decide the combinatorial shape of the decomposition — are resolved
//! exactly, never by floating-point luck.
//!
//! ## Example
//!
//! ```
//! use prs_graph::builders::figure1_example;
//! use prs_bd::decompose;
//! use prs_numeric::ratio;
//!
//! let g = figure1_example();
//! let bd = decompose(&g).unwrap();
//! assert_eq!(bd.pairs().len(), 2);
//! assert_eq!(bd.pairs()[0].alpha, ratio(1, 3));   // (B₁,C₁) = ({v1,v2},{v3})
//! assert_eq!(bd.pairs()[1].alpha, ratio(1, 1));   // (B₂,C₂) = ({v4,v5,v6}, same)
//! ```

pub mod allocation;
pub mod decomposition;
pub mod delta;
pub mod error;
pub mod par;
pub mod reference;
pub mod session;

pub use allocation::{allocate, Allocation};
pub use decomposition::{
    decompose, decompose_exact, AgentClass, BottleneckDecomposition, BottleneckPair,
};
pub use delta::{CellMoebius, Delta, EdgeOp, StabilityCell, UpdateOutcome};
pub use error::BdError;
pub use par::{SessionPool, ShardPool};
pub use session::{DecompositionSession, SessionConfig, SessionStats};
