//! `DecompositionSession` — a stateful, warm-started decomposition server.
//!
//! The misreport sweep (Section III-B) and the Sybil grids call
//! [`decompose`](crate::decompose) at hundreds of nearby parameter values.
//! Because the decomposition `𝓑(x)` is **piecewise constant** in any single
//! weight (the breakpoint argument of Section III-B: finitely many candidate
//! ratios `w(Γ(S))/w(S)` cross each other at finitely many `x`), the
//! combinatorial *shape* — which vertices form each round's maximal
//! bottleneck — repeats across almost the entire grid. A cold call cannot
//! exploit that: every round re-runs the float Dinkelbach descent (each step
//! of which computes an exact α-ratio), then certifies.
//!
//! A session keeps the flow arenas **and** a small MRU cache of *shape
//! certificates*: the per-round certified bottleneck sets of recent
//! decompositions, with their certifying flow patterns. Each round then
//! takes the cheapest sound path:
//!
//! 1. **Replay** — a cached round whose exact inputs (alive set, weights on
//!    it, induced adjacency) equal the current round's returns its certified
//!    `(B, α)` verbatim, zero flow work. This dominates inside a sweep:
//!    only one weight moves per grid point, so every round solved after the
//!    moving vertex is peeled is an exact replay of the cached tail.
//! 2. **Warm certification** — otherwise compute `α̂ = α(B_cached)` (one
//!    exact ratio) and certify it with a single max-flow on a
//!    **scaled-integer network**: every capacity is multiplied by `p·D`
//!    (`α̂ = p/q` in lowest terms, `D` the lcm of the alive weights'
//!    denominators), so source arcs carry `(w_v·D)·p` and sink arcs
//!    `(w_v·D)·q` — all integers, turning each Dinic step from a
//!    gcd-normalized rational operation into plain big-integer arithmetic.
//!    The network is pre-seeded with the cached certifying flow rescaled to
//!    the current weights, so inside a known `ShapeInterval` the flow is
//!    (nearly) maximal before the first BFS.
//! 3. **Descent** — at a breakpoint the certification is infeasible and the
//!    unchanged exact Dinkelbach descent resumes from the min cut (still on
//!    the integer network); with no usable candidate at all, the standard
//!    two-tier engine runs on the session's arenas.
//!
//! ## The delta API
//!
//! A session constructed **over an instance**
//! ([`DecompositionSession::new`] takes ownership of the [`Graph`]) serves a
//! *stream of mutations* instead of instance-at-a-time calls:
//! [`apply`](DecompositionSession::apply) takes a [`Delta`] (`SetWeight` /
//! `AddEdge` / `RemoveEdge` / `Batch`), mutates the owned instance
//! transactionally, and reports which tier served it
//! ([`UpdateOutcome::Unchanged`] / [`Recertified`](UpdateOutcome::Recertified)
//! / [`Recomputed`](UpdateOutcome::Recomputed)). The incremental solver
//! replays the previous decomposition's rounds verbatim wherever the
//! mutation is invisible, re-certifies (seeded from the previous certifying
//! flow via the kernel's `SeedArc` machinery) only the rounds whose
//! bottleneck sets can see it, and falls back to the general warm solver
//! the moment the round structure diverges — see `DESIGN.md` §3.3 for the
//! tier soundness arguments and cell-cache invalidation rules.
//!
//! **Bit-identity.** Replay is sound because the round solver is a pure
//! function of the inputs it compares. For *any* vertex set `S`,
//! `α(S) ≥ α* = min α`, so a cached candidate can never seed the descent
//! below the optimum; at the optimum the maximal tight set extracted from
//! the residual graph is unique (flow-independent — DESIGN.md §3.1); and
//! uniform positive scaling of all capacities preserves the feasibility
//! decision, min cuts, and residual reachability, so the integer network
//! extracts the same sets as the rational one. The session therefore
//! changes only where exact arithmetic is spent, never what it concludes;
//! the `session_equivalence` and `incremental_equivalence` property suites
//! enforce this against cold [`decompose`](crate::decompose) calls.

use crate::decomposition::{
    drive, maximal_bottleneck, AgentClass, BottleneckDecomposition, Layout, RoundNets,
};
use crate::delta::{Delta, EdgeOp, StabilityCell, UpdateOutcome};
use crate::error::BdError;
use prs_flow::{stats, SeedArc};
use prs_graph::{Graph, VertexId, VertexSet};
use prs_numeric::{BigInt, Rational, Sign};

/// How many MRU cache entries a warm-start probe inspects per round.
/// Sweeps alternate between at most two shapes near a breakpoint (the
/// bisection pattern), so a small probe window captures essentially all
/// hits without scanning the whole cache.
const PROBE_WINDOW: usize = 4;

/// Tuning knobs for a [`DecompositionSession`].
///
/// Construct via [`SessionConfig::new`] + `with_*` builders; the struct is
/// `#[non_exhaustive]` so future knobs are non-breaking.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Seed each round from cached shape certificates (default `true`).
    /// With this off the session still amortizes arena allocation but every
    /// round runs the plain two-tier descent.
    pub warm_start: bool,
    /// Maximum number of cached shape certificates (default `32`; `0`
    /// disables the cache entirely).
    pub cache_capacity: usize,
}

impl SessionConfig {
    /// The default configuration: warm starts on, 32 cached shapes.
    pub fn new() -> Self {
        SessionConfig {
            warm_start: true,
            cache_capacity: 32,
        }
    }

    /// Enable or disable warm-starting from cached shapes.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Set the shape-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache_capacity = cap;
        self
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::new()
    }
}

/// Counter snapshot of one session (see [`DecompositionSession::stats`]).
///
/// `hits + misses` equals the total number of decomposition rounds served;
/// `warm_starts ≥ hits` (a warm-started round that fails certification
/// counts as a miss).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Rounds settled by a cached shape: at most one certification max-flow.
    pub hits: u64,
    /// Rounds that ran a descent (no usable cached candidate, or the warm
    /// candidate sat on the wrong side of a breakpoint).
    pub misses: u64,
    /// Rounds seeded from a cached shape (successful or not).
    pub warm_starts: u64,
}

/// One certified round of a memoized decomposition: the answer `(B, α)`
/// plus everything needed to (a) replay it verbatim when the round's exact
/// inputs recur and (b) seed the certification max-flow when only the
/// weights moved.
#[derive(Clone)]
struct RoundCert {
    /// The certified maximal bottleneck `B_i`.
    b: VertexSet,
    /// Its certified ratio `α_i`.
    alpha: Rational,
    /// The certification context, shared so replaying a cached round into a
    /// fresh cache entry is a pointer bump, not a deep copy.
    data: std::sync::Arc<CertData>,
}

/// The inputs and certificate of one solved round.
struct CertData {
    /// The alive set the round was solved on.
    alive: VertexSet,
    /// `w_v` for each alive `v`, in `alive` iteration order.
    weights: Vec<Rational>,
    /// The alive-induced adjacency `(v, u)` pairs, in network build order.
    adj: Vec<(VertexId, VertexId)>,
    /// The certifying max-flow's middle arcs carrying positive flow:
    /// `(v, u, flow, w_v-at-certification)`. A later warm start on weights
    /// `w'` seeds the arc `left(v)→right(u)` with `flow · w'_v / w_v` —
    /// a straight clone when `w'_v = w_v`, the common case in a sweep where
    /// only one vertex's weight moves per grid point.
    support: Vec<(VertexId, VertexId, Rational, Rational)>,
}

/// One memoized decomposition: the certified per-round bottleneck sets and
/// their certifying flow patterns.
///
/// The capacity signature is implicit: `rounds[i]` is only *used* as a
/// candidate, never trusted — its α-ratio is recomputed exactly against the
/// current weights, and the seeded flow is clamped to the current capacities
/// before [`max_flow`](prs_flow::FlowNetwork::max_flow) completes it, so a
/// stale entry costs one wasted certification flow at worst and can never
/// corrupt a result.
struct ShapeEntry {
    n: usize,
    rounds: Vec<RoundCert>,
}

/// The owned instance a session serves deltas against, with its current
/// certified decomposition and any installed stability cells.
struct DeltaState {
    /// The instance as of the last committed delta.
    graph: Graph,
    /// The current decomposition + per-round certificates; `None` until the
    /// first [`current`](DecompositionSession::current) /
    /// [`apply`](DecompositionSession::apply) forces a solve.
    current: Option<CurrentResult>,
    /// Installed Prop. 11/12 breakpoint-cell certificates, consulted on the
    /// recertified tier and invalidated on commit (`DESIGN.md` §3.3).
    cells: Vec<StabilityCell>,
}

/// The decomposition of the owned instance together with the round
/// certificates that seed the next delta's recertification flows.
struct CurrentResult {
    bd: BottleneckDecomposition,
    certs: Vec<RoundCert>,
}

/// The canonicalized difference between the owned instance and its mutated
/// scratch copy. Computing the diff (rather than trusting the delta's
/// literal ops) coalesces batches and makes idempotent / self-cancelling
/// mutations invisible for free.
struct GraphDiff {
    /// Vertices whose weight changed.
    weights: Vec<VertexId>,
    /// Edges present after the mutation but not before.
    added: Vec<(VertexId, VertexId)>,
    /// Edges present before the mutation but not after.
    removed: Vec<(VertexId, VertexId)>,
}

impl GraphDiff {
    fn between(old: &Graph, new: &Graph) -> GraphDiff {
        let weights = (0..old.n())
            .filter(|&v| old.weight(v) != new.weight(v))
            .collect();
        let (mut added, mut removed) = (Vec::new(), Vec::new());
        let (a, b) = (old.edges(), new.edges());
        let (mut i, mut j) = (0, 0);
        // Both edge lists are sorted, so a single merge pass yields the
        // symmetric difference.
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                }
                (Some(&x), Some(&y)) if x < y => {
                    removed.push(x);
                    i += 1;
                }
                (Some(_), Some(&y)) => {
                    added.push(y);
                    j += 1;
                }
                (Some(&x), None) => {
                    removed.push(x);
                    i += 1;
                }
                (None, Some(&y)) => {
                    added.push(y);
                    j += 1;
                }
                (None, None) => {}
            }
        }
        GraphDiff {
            weights,
            added,
            removed,
        }
    }

    /// True iff any part of the diff is visible inside `alive`: a moved
    /// weight on an alive vertex, or a churned edge with both endpoints
    /// alive. An edge with a dead endpoint does not exist in the
    /// alive-induced subgraph either way, so it cannot affect the round.
    fn visible_in(&self, alive: &VertexSet) -> bool {
        self.weights.iter().any(|&v| alive.contains(v))
            || self
                .added
                .iter()
                .chain(&self.removed)
                .any(|&(u, v)| alive.contains(u) && alive.contains(v))
    }
}

/// A reusable decomposition solver: owns the exact and f64 flow arenas
/// across calls and memoizes shape certificates so repeated decompositions
/// of nearby instances cost one certification max-flow per round instead of
/// a full Dinkelbach descent.
///
/// Results are **bit-identical** to [`decompose`](crate::decompose) on every
/// input; see the module docs for the argument.
///
/// A session constructed with [`new`](Self::new) / [`with_config`](Self::with_config)
/// *owns* its instance and serves mutations through [`apply`](Self::apply):
///
/// ```
/// use prs_bd::{decompose, DecompositionSession, Delta, UpdateOutcome};
/// use prs_graph::builders;
/// use prs_numeric::int;
///
/// let g = builders::path(vec![int(1), int(10), int(3)]).unwrap();
/// let mut session = DecompositionSession::new(g.clone());
/// assert_eq!(*session.current().unwrap(), decompose(&g).unwrap());
///
/// // Stream a mutation instead of rebuilding the instance:
/// session.apply(Delta::SetWeight { v: 0, w: int(2) }).unwrap();
/// let g2 = builders::path(vec![int(2), int(10), int(3)]).unwrap();
/// assert_eq!(*session.current().unwrap(), decompose(&g2).unwrap());
///
/// // A no-op batch is answered without touching the flow engine:
/// assert_eq!(
///     session.apply(Delta::Batch(vec![])).unwrap(),
///     UpdateOutcome::Unchanged,
/// );
/// ```
///
/// A [`detached`](Self::detached) session has no owned instance and serves
/// the legacy instance-at-a-time path (deviation sweeps, Sybil grids):
///
/// ```
/// use prs_bd::{decompose, DecompositionSession};
/// use prs_graph::builders;
/// use prs_numeric::int;
///
/// let mut session = DecompositionSession::detached();
/// for w in 1..6 {
///     let g = builders::path(vec![int(w), int(10)]).unwrap();
///     assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
/// }
/// assert!(session.stats().hits > 0); // the shape repeated across the sweep
/// ```
pub struct DecompositionSession {
    cfg: SessionConfig,
    nets: RoundNets,
    /// MRU-ordered shape certificates (front = most recent).
    cache: Vec<ShapeEntry>,
    local: SessionStats,
    /// The owned instance + delta-serving state; `None` for detached
    /// sessions.
    delta: Option<DeltaState>,
}

impl DecompositionSession {
    /// A session owning `g`, with the default [`SessionConfig`].
    ///
    /// The first [`current`](Self::current) or [`apply`](Self::apply) call
    /// decomposes the instance; construction itself does no flow work.
    pub fn new(g: Graph) -> Self {
        Self::with_config(g, SessionConfig::new())
    }

    /// A session owning `g`, with explicit tuning knobs.
    pub fn with_config(g: Graph, cfg: SessionConfig) -> Self {
        let mut s = Self::detached_with_config(cfg);
        s.replace_instance(g);
        s
    }

    /// A session with no owned instance: the delta API is unavailable
    /// (returns [`BdError::DetachedSession`]) but
    /// [`decompose`](Self::decompose) serves arbitrary instances through the
    /// shared arenas and shape cache.
    pub fn detached() -> Self {
        Self::detached_with_config(SessionConfig::new())
    }

    /// A detached session with explicit tuning knobs.
    pub fn detached_with_config(cfg: SessionConfig) -> Self {
        DecompositionSession {
            cfg,
            nets: RoundNets::new(0),
            cache: Vec::new(),
            local: SessionStats::default(),
            delta: None,
        }
    }

    /// This session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The owned instance as of the last committed delta (`None` when
    /// detached).
    pub fn graph(&self) -> Option<&Graph> {
        self.delta.as_ref().map(|s| &s.graph)
    }

    /// Lifetime hit/miss/warm-start counters for this session. The same
    /// counts also flow into the process-global [`prs_flow::stats`]
    /// (`session_hits` / `session_misses` / `session_warm_starts`).
    pub fn stats(&self) -> SessionStats {
        self.local
    }

    /// Number of cached shape certificates.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drop every cached shape certificate (arenas are kept).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Number of installed stability cells.
    pub fn cell_count(&self) -> usize {
        self.delta.as_ref().map_or(0, |s| s.cells.len())
    }

    /// Install a [`StabilityCell`] certificate for the owned instance.
    ///
    /// Matching cells let the recertified tier predict a round's ratio
    /// without computing any candidate α-ratio. Predictions are always
    /// validated by the certification flow — a feasible flow with no tight
    /// set exposes an under-predicted α̂ and the session retries with the
    /// exact candidate ratio — so a stale or lying cell can waste one flow
    /// but never change a result. Returns `false` (dropping the cell) when
    /// the session is detached.
    pub fn install_cell(&mut self, cell: StabilityCell) -> bool {
        match self.delta.as_mut() {
            Some(state) => {
                state.cells.push(cell);
                true
            }
            None => false,
        }
    }

    /// Replace (or attach) the owned instance wholesale, dropping the delta
    /// state — current decomposition and stability cells — while keeping the
    /// flow arenas and the MRU shape cache warm.
    pub fn replace_instance(&mut self, g: Graph) {
        self.delta = Some(DeltaState {
            graph: g,
            current: None,
            cells: Vec::new(),
        });
    }

    /// The decomposition of the owned instance, solving it on first use.
    pub fn current(&mut self) -> Result<&BottleneckDecomposition, BdError> {
        let needs_solve = match &self.delta {
            None => return Err(BdError::DetachedSession),
            Some(state) => state.current.is_none(),
        };
        if needs_solve {
            let g = match &self.delta {
                Some(state) => state.graph.clone(),
                None => return Err(BdError::DetachedSession),
            };
            let (bd, certs) = self.run_decompose(&g, true)?;
            self.store(g.n(), certs.clone());
            if let Some(state) = self.delta.as_mut() {
                state.current = Some(CurrentResult { bd, certs });
            }
        }
        match &self.delta {
            Some(DeltaState {
                current: Some(cur), ..
            }) => Ok(&cur.bd),
            _ => Err(BdError::DetachedSession),
        }
    }

    /// Apply one [`Delta`] to the owned instance and re-serve the
    /// decomposition, reporting which tier answered (module docs +
    /// `DESIGN.md` §3.3). Atomic: on any error the instance, the current
    /// decomposition, and the installed cells are left exactly as they
    /// were.
    pub fn apply(&mut self, delta: Delta) -> Result<UpdateOutcome, BdError> {
        let mut sp = prs_trace::span("bd", "delta_apply");
        sp.attr("ops", || delta.len().to_string());
        let Some(mut state) = self.delta.take() else {
            return Err(BdError::DetachedSession);
        };
        let out = self.apply_to_state(&mut state, &delta);
        self.delta = Some(state);
        match &out {
            Ok(UpdateOutcome::Unchanged) => {
                sp.attr("tier", || "unchanged".to_string());
                stats::record_delta_unchanged(1);
            }
            Ok(UpdateOutcome::Recertified { .. }) => {
                sp.attr("tier", || "recertified".to_string());
                stats::record_delta_recertified(1);
            }
            Ok(UpdateOutcome::Recomputed) => {
                sp.attr("tier", || "recomputed".to_string());
                stats::record_delta_recomputed(1);
                // A full recompute under a delta that was expected to serve
                // incrementally is the service-level anomaly the flight
                // recorder exists for: capture the rounds leading up to it.
                prs_trace::metrics::anomaly("delta_recomputed");
            }
            Err(_) => {
                sp.attr("tier", || "rejected".to_string());
            }
        }
        out
    }

    /// Replace the weight of vertex `v` with `w` — shorthand for
    /// [`apply`](Self::apply)`(Delta::SetWeight { v, w })`.
    pub fn update_weight(&mut self, v: VertexId, w: Rational) -> Result<UpdateOutcome, BdError> {
        self.apply(Delta::SetWeight { v, w })
    }

    /// Insert or remove one edge of the owned instance — shorthand for
    /// [`apply`](Self::apply) with the matching [`Delta`] variant.
    pub fn update_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        op: EdgeOp,
    ) -> Result<UpdateOutcome, BdError> {
        self.apply(match op {
            EdgeOp::Add => Delta::AddEdge { u, v },
            EdgeOp::Remove => Delta::RemoveEdge { u, v },
        })
    }

    /// The transactional body of [`apply`](Self::apply): every mutation
    /// happens on a scratch copy first, and `state` is only committed once
    /// a full re-serve has succeeded.
    fn apply_to_state(
        &mut self,
        state: &mut DeltaState,
        delta: &Delta,
    ) -> Result<UpdateOutcome, BdError> {
        let mut scratch = state.graph.clone();
        apply_delta_ops(&mut scratch, delta)?;

        // Tier 1a — net no-op: idempotent edge ops and self-cancelling
        // batches leave the instance literally equal, so the current
        // decomposition (whether or not it has been forced yet) still
        // describes it. Zero flow work.
        if scratch == state.graph {
            return Ok(UpdateOutcome::Unchanged);
        }

        let diff = GraphDiff::between(&state.graph, &scratch);

        // Cold delta state: nothing to be incremental against — decompose
        // the mutated instance through the general warm solver.
        let Some(cur) = state.current.as_ref() else {
            let (bd, certs) = self.run_decompose(&scratch, true)?;
            self.store(scratch.n(), certs.clone());
            retain_cells(&mut state.cells, &diff, &scratch);
            state.graph = scratch;
            state.current = Some(CurrentResult { bd, certs });
            return Ok(UpdateOutcome::Recomputed);
        };

        // Tier 1b — strictly-C edge insertions leave the decomposition
        // untouched (DESIGN.md §3.3): for every round up to an endpoint's
        // pair, the bottleneck B_r avoids both endpoints, so Γ(B_r) — and
        // with it α_r and the maximal tight set — is unchanged, while α(S)
        // can only grow for other sets; once an endpoint is peeled the edge
        // is invisible to the induced subgraph. (The removal analogue is
        // *not* sound: deleting an edge can lower some α(S) below α_r.)
        if diff.weights.is_empty()
            && diff.removed.is_empty()
            && diff.added.iter().all(|&(u, v)| {
                cur.bd.class_of(u) == AgentClass::C && cur.bd.class_of(v) == AgentClass::C
            })
        {
            // The round certificates keep their pre-insertion adjacency;
            // that is sound (replay *compares* inputs before trusting, and
            // seeds are clamped) but means the next visible delta sees the
            // edge as cache-stale, which costs at most one extra flow.
            retain_cells(&mut state.cells, &diff, &scratch);
            state.graph = scratch;
            return Ok(UpdateOutcome::Unchanged);
        }

        // Tiers 2/3 — incremental re-decomposition: replay the previous
        // rounds wherever the diff is invisible, recertify the rounds that
        // can see it, fall back to the general solver when the structure
        // diverges.
        let cell = if diff.added.is_empty() && diff.removed.is_empty() && diff.weights.len() == 1 {
            let v = diff.weights[0];
            let x = scratch.weight(v);
            state
                .cells
                .iter()
                .find(|c| c.covers(v, x) && c.shape_matches(&cur.bd))
                .cloned()
        } else {
            None
        };
        let (bd, certs, recert_rounds, clean) =
            self.redecompose_delta(&scratch, cur, &diff, cell.as_ref())?;
        self.store(scratch.n(), certs.clone());
        retain_cells(&mut state.cells, &diff, &scratch);
        state.graph = scratch;
        state.current = Some(CurrentResult { bd, certs });
        Ok(if clean {
            UpdateOutcome::Recertified {
                rounds: recert_rounds,
            }
        } else {
            UpdateOutcome::Recomputed
        })
    }

    /// Incrementally re-decompose the mutated instance `g` against the
    /// previous result. Returns the new decomposition, its round
    /// certificates, the number of recertified rounds, and whether the
    /// serve was *clean* (every round settled by verbatim replay or a
    /// single first-try certification flow — the
    /// [`UpdateOutcome::Recertified`] tier).
    fn redecompose_delta(
        &mut self,
        g: &Graph,
        prev: &CurrentResult,
        diff: &GraphDiff,
        cell: Option<&StabilityCell>,
    ) -> Result<(BottleneckDecomposition, Vec<RoundCert>, usize, bool), BdError> {
        let mut certified: Vec<RoundCert> = Vec::new();
        let mut recert_rounds = 0usize;
        let mut clean = true;
        let result = {
            let cfg = self.cfg.clone();
            let nets = &mut self.nets;
            let cache = &self.cache;
            let local = &mut self.local;
            let certified = &mut certified;
            let recert_rounds = &mut recert_rounds;
            let clean = &mut clean;
            let prev_bd = &prev.bd;
            let prev_certs = &prev.certs;
            // The round-by-round alive set the *previous* decomposition
            // would produce; as long as the actual alive set tracks it, the
            // old round structure is still in force ("prefix intact") and
            // the old certificates are usable as-is.
            let mut prefix_intact = true;
            let mut expected_alive = VertexSet::full(g.n());
            let focus_x = cell.map(|c| g.weight(c.vertex).clone());
            drive(g, move |g, alive, round| {
                if prefix_intact {
                    if round > 0 {
                        if let Some(p) = prev_bd.pairs().get(round - 1) {
                            expected_alive.subtract(&p.b.union(&p.c));
                        }
                    }
                    // The equality check is the whole soundness guard: any
                    // divergence — a different B, the same B with a grown
                    // or shrunk partner class C, extra rounds — shows up as
                    // a mismatched alive set at the next round's entry.
                    if round >= prev_bd.k() || *alive != expected_alive {
                        prefix_intact = false;
                    }
                }
                if !prefix_intact {
                    // Structural break: serve the remaining rounds through
                    // the general warm solver (MRU replay, warm
                    // certification, cold two-tier).
                    *clean = false;
                    return solve_round_warm(
                        g, alive, round, &cfg, nets, cache, local, certified, true,
                    );
                }
                let pair = &prev_bd.pairs()[round];
                if !diff.visible_in(alive) {
                    // Tail replay: this round's inputs (alive set, weights
                    // on it, induced adjacency) are identical to the
                    // previous decomposition's, and the round solver is a
                    // pure function of them — the certificate replays
                    // verbatim, zero flow work.
                    let mut sp = prs_trace::span("bd", "session_round");
                    sp.attr("round", || round.to_string());
                    sp.attr("path", || "delta_replay".to_string());
                    local.hits += 1;
                    local.warm_starts += 1;
                    stats::record_session_hits(1);
                    stats::record_session_warm_starts(1);
                    if let Some(rc) = prev_certs.get(round) {
                        certified.push(rc.clone());
                    }
                    return Ok((pair.b.clone(), pair.alpha.clone()));
                }
                // The mutation is visible: recertify this round, seeded
                // from the previous certifying flow.
                let mut sp = prs_trace::span("bd", "session_round");
                sp.attr("round", || round.to_string());
                local.warm_starts += 1;
                stats::record_session_warm_starts(1);
                let support: &[(VertexId, VertexId, Rational, Rational)] = prev_certs
                    .get(round)
                    .map_or(&[], |rc| rc.data.support.as_slice());
                let one = Rational::one();
                let mut attempt = None;
                if let (Some(c), Some(x)) = (cell, focus_x.as_ref()) {
                    // A matching stability cell predicts this round's ratio
                    // outright. The certification flow adjudicates: a
                    // feasible flow with no tight set means the prediction
                    // undershot the optimum (a lying cell) and the exact
                    // candidate ratio below retries.
                    if let Some(alpha_hat) = c.alpha_curve(round).and_then(|m| m.eval(x)) {
                        if alpha_hat.is_positive() && alpha_hat <= one {
                            sp.attr("cell", || "predicted".to_string());
                            match certify_with_candidate(
                                g, alive, round, nets, alpha_hat, support, true,
                            )? {
                                CertAttempt::Undershot => {}
                                done => attempt = Some(done),
                            }
                        }
                    }
                }
                if attempt.is_none() {
                    // Exact candidate ratio of the previous bottleneck:
                    // α(B_prev) ≥ α* always, so certification either
                    // confirms it (tight set extraction included) or the
                    // descent walks down from it.
                    if let Some(alpha_hat) = g.alpha_ratio_in(&pair.b, alive) {
                        if alpha_hat.is_positive() && alpha_hat <= one {
                            attempt = Some(certify_with_candidate(
                                g, alive, round, nets, alpha_hat, support, false,
                            )?);
                        }
                    }
                }
                match attempt {
                    Some(CertAttempt::Certified {
                        b,
                        alpha,
                        first_try,
                    }) => {
                        if first_try {
                            sp.attr("path", || "delta_recert".to_string());
                            local.hits += 1;
                            stats::record_session_hits(1);
                            *recert_rounds += 1;
                        } else {
                            // Crossed a breakpoint: the exact descent ran;
                            // the result is still bit-identical but the
                            // serve is no longer a pure recertification.
                            sp.attr("path", || "delta_descent".to_string());
                            local.misses += 1;
                            stats::record_session_misses(1);
                            *clean = false;
                        }
                        certified.push(snapshot_cert_int(nets, g, alive, &b, &alpha));
                        Ok((b, alpha))
                    }
                    Some(CertAttempt::Undershot) | None => {
                        // No usable candidate (the mutation pushed the
                        // previous bottleneck's ratio out of (0, 1], or the
                        // cell prediction failed without an exact backup):
                        // plain two-tier round.
                        sp.attr("path", || "cold".to_string());
                        local.misses += 1;
                        stats::record_session_misses(1);
                        *clean = false;
                        let (b, alpha) = maximal_bottleneck(g, alive, round, nets)?;
                        certified.push(snapshot_cert(nets, g, alive, &b, &alpha));
                        Ok((b, alpha))
                    }
                }
            })
        };
        result.map(|bd| (bd, certified, recert_rounds, clean))
    }

    /// Warm-decompose an arbitrary instance on this session's arenas and
    /// shape cache. Bit-identical to [`decompose`](crate::decompose).
    ///
    /// **Deprecated re-entry shim.** This predates the owned-instance delta
    /// API: prefer constructing the session over the instance
    /// ([`DecompositionSession::new`]) and streaming [`Delta`]s through
    /// [`apply`](Self::apply), which replays/recertifies instead of
    /// re-solving. `decompose` neither reads nor updates the session's delta
    /// state; it is kept because the deviation sweep and the Sybil grids
    /// legitimately decompose many *unrelated* instances through one arena.
    pub fn decompose(&mut self, g: &Graph) -> Result<BottleneckDecomposition, BdError> {
        let (bd, certs) = self.run_decompose(g, false)?;
        self.store(g.n(), certs);
        Ok(bd)
    }

    /// Drive a full decomposition through [`solve_round_warm`], collecting
    /// round certificates when the cache wants them or `force_collect` asks
    /// for them (the delta path needs certificates even with the MRU cache
    /// disabled).
    fn run_decompose(
        &mut self,
        g: &Graph,
        force_collect: bool,
    ) -> Result<(BottleneckDecomposition, Vec<RoundCert>), BdError> {
        let collect = force_collect || self.cfg.cache_capacity > 0;
        let mut certified: Vec<RoundCert> = Vec::new();
        let result = {
            let cfg = self.cfg.clone();
            let nets = &mut self.nets;
            let cache = &self.cache;
            let local = &mut self.local;
            let certified = &mut certified;
            drive(g, |g, alive, round| {
                solve_round_warm(
                    g, alive, round, &cfg, nets, cache, local, certified, collect,
                )
            })
        };
        result.map(|bd| (bd, certified))
    }

    /// Insert a freshly certified shape at the cache front (MRU), deduping
    /// identical shapes (the fresh entry wins, so the cached flow pattern
    /// tracks the most recent weights) and evicting beyond capacity.
    fn store(&mut self, n: usize, rounds: Vec<RoundCert>) {
        if self.cfg.cache_capacity == 0 {
            return;
        }
        if let Some(pos) = self.cache.iter().position(|e| {
            e.n == n
                && e.rounds.len() == rounds.len()
                && e.rounds.iter().zip(&rounds).all(|(a, b)| a.b == b.b)
        }) {
            self.cache.remove(pos);
        }
        self.cache.insert(0, ShapeEntry { n, rounds });
        self.cache.truncate(self.cfg.cache_capacity);
    }
}

impl Default for DecompositionSession {
    /// The default session is [`detached`](DecompositionSession::detached).
    fn default() -> Self {
        Self::detached()
    }
}

/// Apply `delta` to `g`, validating as it goes. Idempotent edge operations
/// (inserting a present edge, removing an absent one) are accepted as
/// no-ops; everything else surfaces the underlying
/// [`GraphError`](prs_graph::GraphError) as [`BdError::InvalidDelta`].
fn apply_delta_ops(g: &mut Graph, delta: &Delta) -> Result<(), BdError> {
    match delta {
        Delta::SetWeight { v, w } => g.try_set_weight(*v, w.clone()).map_err(BdError::from),
        Delta::AddEdge { u, v } => {
            if *u < g.n() && *v < g.n() && u != v && g.has_edge(*u, *v) {
                return Ok(()); // idempotent re-insert
            }
            g.add_edge(*u, *v).map_err(BdError::from)
        }
        Delta::RemoveEdge { u, v } => {
            if *u < g.n() && *v < g.n() && !g.has_edge(*u, *v) {
                return Ok(()); // idempotent removal of an absent edge
            }
            g.remove_edge(*u, *v).map_err(BdError::from)
        }
        Delta::Batch(items) => {
            for d in items {
                apply_delta_ops(g, d)?;
            }
            Ok(())
        }
    }
}

/// Cell-cache invalidation on commit (`DESIGN.md` §3.3): a committed diff
/// keeps only the cells it provably does not disturb — a pure single-weight
/// move of the cell's own focus vertex, landing inside the cell's certified
/// interval. Any edge churn or any other vertex's weight move invalidates
/// every cell.
fn retain_cells(cells: &mut Vec<StabilityCell>, diff: &GraphDiff, g: &Graph) {
    if diff.added.is_empty() && diff.removed.is_empty() && diff.weights.len() == 1 {
        let v = diff.weights[0];
        let x = g.weight(v);
        cells.retain(|c| c.covers(v, x));
    } else {
        cells.clear();
    }
}

/// The result of one warm certification attempt (see
/// [`certify_with_candidate`]).
enum CertAttempt {
    /// The round settled: `b` is the maximal tight set at the certified
    /// `alpha`; `first_try` is false iff a Dinkelbach descent ran.
    Certified {
        b: VertexSet,
        alpha: Rational,
        first_try: bool,
    },
    /// Feasible at `α̂` with slack everywhere — no tight set exists, so the
    /// *predicted* `α̂` sits strictly below the round optimum. Only possible
    /// (and only reported) when the caller opted into predictions;
    /// candidate ratios `α(S)` of real sets are always ≥ the optimum.
    Undershot,
}

/// Certify a candidate ratio `α̂` on the scaled-integer network, seeded
/// from `support` (a previous certifying flow pattern), descending exactly
/// when infeasible. The shared engine behind both the MRU warm path and the
/// delta recertification path.
///
/// With `allow_undershoot`, `α̂` may be a *prediction* (a stability-cell
/// evaluation) rather than the ratio of a concrete set: feasibility with an
/// empty tight set then reports [`CertAttempt::Undershot`] instead of
/// settling, and the caller retries with an exact candidate. This is what
/// makes cell predictions safe to use directly as certification parameters:
/// a feasible flow **with** a nonempty tight set proves `α̂` equals the
/// round optimum (some set attains it), infeasibility proves `α̂` is above
/// it (descent resumes as usual), and the empty-tight-set case is exactly
/// the signature of an under-prediction.
#[allow(clippy::too_many_arguments)]
fn certify_with_candidate(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
    nets: &mut RoundNets,
    alpha_hat: Rational,
    support: &[(VertexId, VertexId, Rational, Rational)],
    allow_undershoot: bool,
) -> Result<CertAttempt, BdError> {
    let layout = Layout { n: g.n() };
    // Build the *scaled-integer* network directly at α̂: multiplying every
    // capacity by `p·D` (α̂ = p/q in lowest terms, `D` clears the alive
    // weights' denominators) turns each Dinic step from a gcd-normalized
    // rational operation into a plain big-integer one, while preserving the
    // feasibility decision, min cuts, and residual reachability — so the
    // extracted sets are bit-identical to the rational network's. Then seed
    // it with the cached round's certifying flow pattern rescaled to the
    // current weights: inside a known `ShapeInterval` the seed is already
    // (nearly) maximal, so certification does little more than one
    // confirming BFS instead of a full augmenting-path run.
    nets.rebuild_int_only(g, alive, &alpha_hat);
    let mut seeded = seed_certification_flow_int(nets, g, alive, support);
    let mut alpha = alpha_hat;
    let mut first = true;
    loop {
        stats::record_dinkelbach_iterations(1);
        let mut sp_iter = prs_trace::span("bd", "dinkelbach_iter");
        sp_iter.attr("engine", || "session".to_string());
        if !first {
            nets.set_alpha_int(g, alive, &alpha);
        }
        let (mut flow, promoted) = nets.cert_max_flow(g, alive, &alpha);
        if promoted {
            // A runtime overflow discarded the i128 network mid-round — and
            // with it any seed installed there; the BigInt rerun pushed its
            // whole flow from zero, so nothing must be added back.
            seeded = BigInt::zero();
        }
        if first {
            // `max_flow` reports only the flow it pushed on top of the seed.
            flow += &seeded;
        }
        // Feasible iff the sources saturate: max flow = Σ (w_v·D)·p.
        if flow == nets.int_source_total {
            let reaches = nets.cert_residual_reaches_sink();
            let mut b = VertexSet::empty(g.n());
            for v in alive.iter() {
                if !reaches[layout.left(v)] {
                    b.insert(v);
                }
            }
            if b.is_empty() && allow_undershoot && first {
                return Ok(CertAttempt::Undershot);
            }
            debug_assert!(!b.is_empty(), "a tight set must exist at the optimum");
            return Ok(CertAttempt::Certified {
                b,
                alpha,
                first_try: first,
            });
        }
        // Breakpoint crossed: the candidate's ratio is no longer the
        // minimum. Continue the unchanged exact descent from the min cut —
        // no float-tier re-entry; misses are rare and the pure descent from
        // α̂ is already close.
        first = false;
        let side = nets.cert_min_cut_source_side();
        let mut s_set = VertexSet::empty(g.n());
        for v in alive.iter() {
            if side[layout.left(v)] {
                s_set.insert(v);
            }
        }
        // prs-lint: allow(panic, reason = "the s-side of an infeasible cut contains a source arc, hence positive weight; failure is a solver bug")
        let new_alpha = g
            .alpha_ratio_in(&s_set, alive)
            .expect("violating sets have positive weight");
        if new_alpha.is_zero() {
            return Err(BdError::ZeroAlpha { round });
        }
        debug_assert!(
            new_alpha < alpha,
            "Dinkelbach step must strictly decrease α"
        );
        alpha = new_alpha;
    }
}

/// One session round, fastest path first:
///
/// 1. **Replay**: a cached round whose exact inputs (alive set, weights,
///    induced adjacency) match the current ones returns its certified
///    `(B, α)` verbatim — zero flow work. Sound because the round solver is
///    a pure function of those inputs.
/// 2. **Warm certification**: otherwise probe the shape cache for the best
///    candidate set, build the exact network at its ratio `α̂`, seed it with
///    the cached certifying flow, and run a single certification max-flow.
/// 3. **Fallback**: no usable candidate → the standard two-tier engine;
///    certification fails at a breakpoint → the unchanged exact descent.
#[allow(clippy::too_many_arguments)]
fn solve_round_warm(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
    cfg: &SessionConfig,
    nets: &mut RoundNets,
    cache: &[ShapeEntry],
    local: &mut SessionStats,
    certified: &mut Vec<RoundCert>,
    collect: bool,
) -> Result<(VertexSet, Rational), BdError> {
    // The `path` attribute names which of the session's tiers settled the
    // round: `replay`, `warm_hit`, `warm_descent`, or `cold`.
    let mut sp = prs_trace::span("bd", "session_round");
    sp.attr("round", || round.to_string());
    if cfg.warm_start {
        if let Some(rc) = replay_candidate(g, alive, round, cache) {
            sp.attr("path", || "replay".to_string());
            local.hits += 1;
            local.warm_starts += 1;
            stats::record_session_hits(1);
            stats::record_session_warm_starts(1);
            if collect {
                certified.push(rc.clone());
            }
            return Ok((rc.b.clone(), rc.alpha.clone()));
        }
    }

    let warm = if cfg.warm_start {
        best_warm_candidate(g, alive, round, cache)
    } else {
        None
    };

    let Some((alpha_hat, entry_idx)) = warm else {
        // Cold round: the plain two-tier engine (float proposal + exact
        // certification), reusing this session's arenas.
        sp.attr("path", || "cold".to_string());
        local.misses += 1;
        stats::record_session_misses(1);
        let (b, alpha) = maximal_bottleneck(g, alive, round, nets)?;
        if collect {
            certified.push(snapshot_cert(nets, g, alive, &b, &alpha));
        }
        return Ok((b, alpha));
    };

    local.warm_starts += 1;
    stats::record_session_warm_starts(1);

    match certify_with_candidate(
        g,
        alive,
        round,
        nets,
        alpha_hat,
        &cache[entry_idx].rounds[round].data.support,
        false,
    )? {
        CertAttempt::Certified {
            b,
            alpha,
            first_try,
        } => {
            if first_try {
                sp.attr("path", || "warm_hit".to_string());
                local.hits += 1;
                stats::record_session_hits(1);
            } else {
                sp.attr("path", || "warm_descent".to_string());
                local.misses += 1;
                stats::record_session_misses(1);
            }
            if collect {
                certified.push(snapshot_cert_int(nets, g, alive, &b, &alpha));
            }
            Ok((b, alpha))
        }
        CertAttempt::Undershot => {
            // Unreachable with `allow_undershoot = false` (candidate ratios
            // of real sets are ≥ the optimum); recover through the standard
            // two-tier engine rather than asserting.
            sp.attr("path", || "cold".to_string());
            local.misses += 1;
            stats::record_session_misses(1);
            let (b, alpha) = maximal_bottleneck(g, alive, round, nets)?;
            if collect {
                certified.push(snapshot_cert(nets, g, alive, &b, &alpha));
            }
            Ok((b, alpha))
        }
    }
}

/// Find a cached round whose exact inputs — alive set, weights on it, and
/// the alive-induced adjacency — equal the current round's. The round
/// solver is a pure function of those inputs, so its certified `(B, α)`
/// replays verbatim: no network rebuild, no ratio computation, no flow.
///
/// This is the dominant path inside a sweep: only one vertex's weight moves
/// per grid point, so every round solved after that vertex is peeled is an
/// exact replay of the cached decomposition's tail.
fn replay_candidate<'a>(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
    cache: &'a [ShapeEntry],
) -> Option<&'a RoundCert> {
    for entry in cache.iter().take(PROBE_WINDOW) {
        if entry.n != g.n() || round >= entry.rounds.len() {
            continue;
        }
        let data = &entry.rounds[round].data;
        if data.alive != *alive {
            continue;
        }
        if !alive
            .iter()
            .zip(&data.weights)
            .all(|(v, w)| g.weight(v) == w)
        {
            continue;
        }
        // Same alive set and weights; confirm the induced adjacency (the
        // session accepts arbitrary graphs, not just one weight family).
        let mut cached_adj = data.adj.iter();
        let mut same = true;
        'topo: for v in alive.iter() {
            for &u in g.neighbors(v) {
                if alive.contains(u) && cached_adj.next() != Some(&(v, u)) {
                    same = false;
                    break 'topo;
                }
            }
        }
        if same && cached_adj.next().is_none() {
            return Some(&entry.rounds[round]);
        }
    }
    None
}

/// Snapshot a freshly certified round into a [`RoundCert`]: the answer, the
/// inputs it was solved on, and the certifying max-flow's middle-arc
/// pattern (read off the exact network, which every solve path leaves at
/// the feasible optimum).
fn snapshot_cert(
    nets: &RoundNets,
    g: &Graph,
    alive: &VertexSet,
    b: &VertexSet,
    alpha: &Rational,
) -> RoundCert {
    let mut weights = Vec::with_capacity(alive.len());
    for v in alive.iter() {
        weights.push(g.weight(v).clone());
    }
    let mut adj = Vec::with_capacity(nets.mid_edges.len());
    let mut support = Vec::new();
    for &(v, u, e) in &nets.mid_edges {
        adj.push((v, u));
        let f = nets.exact.flow_on(e);
        if f.is_positive() {
            support.push((v, u, f.clone(), g.weight(v).clone()));
        }
    }
    RoundCert {
        b: b.clone(),
        alpha: alpha.clone(),
        data: std::sync::Arc::new(CertData {
            alive: alive.clone(),
            weights,
            adj,
            support,
        }),
    }
}

/// Probe the MRU front of the cache for this round's best warm seed: the
/// candidate set with the smallest exact α-ratio among usable entries
/// (`0 < α̂ ≤ 1`, candidate alive), together with the cache index it came
/// from (its certifying flow pattern seeds the max-flow). Smaller seeds
/// dominate: `α(S) ≥ α*` always, so the smallest available ratio is the one
/// closest to the optimum.
fn best_warm_candidate(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
    cache: &[ShapeEntry],
) -> Option<(Rational, usize)> {
    let one = Rational::one();
    let mut best: Option<(Rational, usize)> = None;
    for (idx, entry) in cache.iter().take(PROBE_WINDOW).enumerate() {
        if entry.n != g.n() || round >= entry.rounds.len() {
            continue;
        }
        let cand = &entry.rounds[round].b;
        if cand.is_empty() || !cand.is_subset(alive) {
            continue;
        }
        let Some(alpha_hat) = g.alpha_ratio_in(cand, alive) else {
            continue;
        };
        if !alpha_hat.is_positive() || alpha_hat > one {
            continue;
        }
        if best.as_ref().is_none_or(|(b, _)| alpha_hat < *b) {
            best = Some((alpha_hat, idx));
        }
    }
    best
}

/// Snapshot a round certified on the *integer* network (BigInt or the
/// checked-i128 fast tier — whichever the round settled on): identical to
/// [`snapshot_cert`] except the middle-arc flows are read off the active
/// scaled engine and divided back by the scale `p·D`, so the cached
/// support is in true (unscaled) flow units regardless of which engine
/// certifies next time.
fn snapshot_cert_int(
    nets: &RoundNets,
    g: &Graph,
    alive: &VertexSet,
    b: &VertexSet,
    alpha: &Rational,
) -> RoundCert {
    debug_assert!(nets.int_scale.is_positive());
    let scale = nets.int_scale.magnitude();
    let mut weights = Vec::with_capacity(alive.len());
    for v in alive.iter() {
        weights.push(g.weight(v).clone());
    }
    let mut adj = Vec::with_capacity(nets.mid_edges.len());
    let mut support = Vec::new();
    for &(v, u, e) in &nets.mid_edges {
        adj.push((v, u));
        let f = nets.cert_flow_on(e);
        if f.is_positive() {
            support.push((v, u, Rational::new(f, scale.clone()), g.weight(v).clone()));
        }
    }
    RoundCert {
        b: b.clone(),
        alpha: alpha.clone(),
        data: std::sync::Arc::new(CertData {
            alive: alive.clone(),
            weights,
            adj,
            support,
        }),
    }
}

/// Preload the scaled-integer network with the cached certifying flow
/// pattern, rescaled from the cached weights to the current ones (and into
/// the `p·D` integer units). The session translates each cached support
/// arc into a [`SeedArc`] request — resolving vertices to edge ids and
/// computing the rescaled amount — and the kernel's
/// [`seed_flow`](prs_flow::Network::seed_flow) clamps the requests to
/// remaining capacity and installs a valid (capacity-respecting,
/// conserving) flow. Returns the seeded flow value (the amount already
/// routed s→t, in scaled units).
///
/// Each middle arc requests `⌊flow·(w'_v/w_v)·pD⌋`; the floor loses at
/// most one scaled unit per arc, which the certification max-flow recovers
/// from the residual graph: Dinic completes **any** valid flow to a
/// maximum flow, so seeding changes only how many augmenting paths are
/// needed, never the result.
fn seed_certification_flow_int(
    nets: &mut RoundNets,
    g: &Graph,
    alive: &VertexSet,
    support: &[(VertexId, VertexId, Rational, Rational)],
) -> BigInt {
    if support.is_empty() {
        return BigInt::zero();
    }
    debug_assert!(nets.int_scale.is_positive());
    let mut seeds = Vec::with_capacity(support.len());
    for (v, u, f, w_then) in support {
        let (v, u) = (*v, *u);
        if !alive.contains(v) || !alive.contains(u) {
            continue;
        }
        let Ok(mid) = nets
            .mid_edges
            .binary_search_by(|probe| (probe.0, probe.1).cmp(&(v, u)))
        else {
            continue; // edge no longer present (different topology)
        };
        let Ok(vpos) = nets.source_edges.binary_search_by(|probe| probe.0.cmp(&v)) else {
            continue;
        };
        let Ok(upos) = nets.sink_edges.binary_search_by(|probe| probe.0.cmp(&u)) else {
            continue;
        };
        let w_now = g.weight(v);
        // desired = ⌊ f · (w'_v / w_v) · p·D ⌋, assembled numerator over
        // denominator so there is exactly one big division per arc.
        let num = &(&(f.numer() * w_now.numer())
            * &BigInt::from_parts(Sign::Plus, w_then.denom().clone()))
            * &nets.int_scale;
        let den = &(&BigInt::from_parts(Sign::Plus, f.denom().clone())
            * &BigInt::from_parts(Sign::Plus, w_now.denom().clone()))
            * w_then.numer();
        seeds.push(SeedArc {
            source_edge: nets.source_edges[vpos].1,
            mid_edge: nets.mid_edges[mid].2,
            sink_edge: nets.sink_edges[upos].1,
            desired: &num / &den,
        });
    }
    nets.cert_seed_flow(&seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose;
    use crate::delta::CellMoebius;
    use prs_graph::builders;
    use prs_numeric::{int, ratio, Rational};

    fn path_graph(w0: Rational) -> Graph {
        builders::path(vec![w0, int(10), int(3)]).unwrap()
    }

    #[test]
    fn session_matches_cold_decompose_across_a_sweep() {
        let mut session = DecompositionSession::detached();
        for k in 1..40 {
            let g = path_graph(ratio(k, 7));
            let warm = session.decompose(&g).unwrap();
            let cold = decompose(&g).unwrap();
            assert_eq!(warm, cold, "diverged at w0 = {}/7", k);
        }
        let s = session.stats();
        assert!(s.hits > 0, "a 40-point sweep must re-enter shapes: {s:?}");
        assert!(s.hits + s.misses > 0);
        assert!(s.warm_starts >= s.hits);
    }

    #[test]
    fn warm_start_off_never_warm_starts() {
        let cfg = SessionConfig::new().with_warm_start(false);
        let mut session = DecompositionSession::detached_with_config(cfg);
        for k in 1..10 {
            let g = path_graph(int(k));
            assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
        }
        let s = session.stats();
        assert_eq!(s.warm_starts, 0);
        assert_eq!(s.hits, 0);
        assert!(s.misses > 0);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let cfg = SessionConfig::new().with_cache_capacity(0);
        let mut session = DecompositionSession::detached_with_config(cfg);
        for k in 1..6 {
            let g = path_graph(int(k));
            session.decompose(&g).unwrap();
        }
        assert_eq!(session.cache_len(), 0);
        assert_eq!(session.stats().hits, 0);
    }

    #[test]
    fn cache_evicts_beyond_capacity_and_dedupes() {
        let cfg = SessionConfig::new().with_cache_capacity(2);
        let mut session = DecompositionSession::detached_with_config(cfg);
        // Same shape every time → a single deduped entry.
        for k in 1..5 {
            session.decompose(&path_graph(int(k))).unwrap();
        }
        assert_eq!(session.cache_len(), 1);
        // Distinct shapes (different n) evict down to capacity.
        session
            .decompose(&builders::path(vec![int(1), int(4)]).unwrap())
            .unwrap();
        session
            .decompose(&builders::star(vec![int(10), int(1), int(1), int(1)]).unwrap())
            .unwrap();
        assert_eq!(session.cache_len(), 2);
    }

    #[test]
    fn counters_are_monotone_and_account_every_round() {
        let mut session = DecompositionSession::detached();
        let mut prev = SessionStats::default();
        let mut rounds_served = 0u64;
        for k in 1..12 {
            let g = path_graph(int(k));
            let bd = session.decompose(&g).unwrap();
            rounds_served += bd.k() as u64;
            let s = session.stats();
            assert!(s.hits >= prev.hits);
            assert!(s.misses >= prev.misses);
            assert!(s.warm_starts >= prev.warm_starts);
            assert_eq!(s.hits + s.misses, rounds_served);
            prev = s;
        }
    }

    #[test]
    fn errors_propagate_and_leave_session_usable() {
        let mut session = DecompositionSession::detached();
        let empty = Graph::new(vec![], &[]).unwrap();
        assert_eq!(session.decompose(&empty), Err(BdError::EmptyGraph));
        let isolated = Graph::new(vec![int(1), int(1), int(1)], &[(0, 1)]).unwrap();
        assert!(matches!(
            session.decompose(&isolated),
            Err(BdError::ZeroAlpha { .. })
        ));
        let g = path_graph(int(3));
        assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
    }

    #[test]
    fn config_builders_compose() {
        let cfg = SessionConfig::new()
            .with_warm_start(false)
            .with_cache_capacity(7);
        assert!(!cfg.warm_start);
        assert_eq!(cfg.cache_capacity, 7);
        assert_eq!(SessionConfig::default(), SessionConfig::new());
    }

    // ---- delta API ----

    #[test]
    fn owned_session_current_matches_cold() {
        let g = path_graph(int(4));
        let mut session = DecompositionSession::new(g.clone());
        assert_eq!(session.graph(), Some(&g));
        assert_eq!(*session.current().unwrap(), decompose(&g).unwrap());
        // Second call is served from state, same answer.
        assert_eq!(*session.current().unwrap(), decompose(&g).unwrap());
    }

    #[test]
    fn detached_session_rejects_delta_api() {
        let mut session = DecompositionSession::detached();
        assert_eq!(session.current().err(), Some(BdError::DetachedSession));
        assert_eq!(
            session.apply(Delta::SetWeight { v: 0, w: int(1) }).err(),
            Some(BdError::DetachedSession)
        );
        assert_eq!(session.graph(), None);
        assert!(!session.install_cell(StabilityCell {
            vertex: 0,
            lo: int(1),
            hi: int(2),
            shape: vec![],
            alphas: vec![],
        }));
        // Attaching an instance turns the delta API on.
        session.replace_instance(path_graph(int(2)));
        assert!(session.current().is_ok());
    }

    #[test]
    fn noop_deltas_are_unchanged_with_zero_flow_work() {
        let mut session = DecompositionSession::new(path_graph(int(5)));
        session.current().unwrap();
        let hits_before = session.stats();
        // Empty batch.
        assert_eq!(
            session.apply(Delta::Batch(vec![])).unwrap(),
            UpdateOutcome::Unchanged
        );
        // Idempotent re-insert of an existing edge.
        assert_eq!(
            session.apply(Delta::AddEdge { u: 0, v: 1 }).unwrap(),
            UpdateOutcome::Unchanged
        );
        // Idempotent removal of an absent edge.
        assert_eq!(
            session.apply(Delta::RemoveEdge { u: 0, v: 2 }).unwrap(),
            UpdateOutcome::Unchanged
        );
        // Re-stating the current weight.
        assert_eq!(
            session.update_weight(1, int(10)).unwrap(),
            UpdateOutcome::Unchanged
        );
        // A batch whose net effect cancels out.
        assert_eq!(
            session
                .apply(Delta::Batch(vec![
                    Delta::AddEdge { u: 0, v: 2 },
                    Delta::SetWeight { v: 0, w: int(9) },
                    Delta::SetWeight { v: 0, w: int(5) },
                    Delta::RemoveEdge { u: 0, v: 2 },
                ]))
                .unwrap(),
            UpdateOutcome::Unchanged
        );
        // None of those touched a solver round.
        assert_eq!(session.stats(), hits_before);
    }

    #[test]
    fn strictly_c_edge_insertion_is_unchanged() {
        // Star with a heavy hub: B = {hub}, C = all leaves, single round.
        let g = builders::star(vec![int(10), int(1), int(1), int(1)]).unwrap();
        let mut session = DecompositionSession::new(g.clone());
        let before = session.current().unwrap().clone();
        assert_eq!(before.class_of(1), AgentClass::C);
        assert_eq!(before.class_of(2), AgentClass::C);
        let stats_before = session.stats();
        assert_eq!(
            session.update_edge(1, 2, EdgeOp::Add).unwrap(),
            UpdateOutcome::Unchanged
        );
        assert_eq!(session.stats(), stats_before, "no solver round may run");
        // The committed instance has the edge; the decomposition is
        // (provably, and verifiably) identical to cold on the new graph.
        let committed = session.graph().unwrap().clone();
        assert!(committed.has_edge(1, 2));
        assert_eq!(*session.current().unwrap(), decompose(&committed).unwrap());
        assert_eq!(*session.current().unwrap(), before);
        // A later visible delta on the post-insertion instance still matches
        // cold (stale certificates may cost a flow, never correctness).
        session.update_weight(3, int(7)).unwrap();
        let committed = session.graph().unwrap().clone();
        assert_eq!(*session.current().unwrap(), decompose(&committed).unwrap());
    }

    #[test]
    fn weight_delta_matches_cold_and_reports_tier() {
        let mut session = DecompositionSession::new(path_graph(int(5)));
        session.current().unwrap();
        for k in [6, 2, 40, 1] {
            let out = session.update_weight(0, int(k)).unwrap();
            assert_ne!(out, UpdateOutcome::Unchanged, "w0 = {k} must be visible");
            let committed = session.graph().unwrap().clone();
            assert_eq!(
                *session.current().unwrap(),
                decompose(&committed).unwrap(),
                "diverged at w0 = {k}"
            );
        }
    }

    #[test]
    fn edge_churn_matches_cold() {
        let g = builders::ring(vec![int(3), int(5), int(7), int(2)]).unwrap();
        let mut session = DecompositionSession::new(g);
        session.current().unwrap();
        session.apply(Delta::AddEdge { u: 0, v: 2 }).unwrap();
        let committed = session.graph().unwrap().clone();
        assert_eq!(*session.current().unwrap(), decompose(&committed).unwrap());
        session.update_edge(1, 2, EdgeOp::Remove).unwrap();
        let committed = session.graph().unwrap().clone();
        assert_eq!(*session.current().unwrap(), decompose(&committed).unwrap());
    }

    #[test]
    fn invalid_deltas_roll_back_atomically() {
        let g = path_graph(int(5));
        let mut session = DecompositionSession::new(g.clone());
        let before = session.current().unwrap().clone();
        // Out-of-range vertex.
        assert!(matches!(
            session.update_weight(99, int(1)),
            Err(BdError::InvalidDelta { .. })
        ));
        // Negative weight.
        assert!(matches!(
            session.update_weight(0, int(-3)),
            Err(BdError::InvalidDelta { .. })
        ));
        // Self-loop insertion.
        assert!(matches!(
            session.apply(Delta::AddEdge { u: 1, v: 1 }),
            Err(BdError::InvalidDelta { .. })
        ));
        // A batch that fails midway must not commit its earlier ops.
        assert!(session
            .apply(Delta::Batch(vec![
                Delta::SetWeight { v: 0, w: int(77) },
                Delta::AddEdge { u: 5, v: 6 },
            ]))
            .is_err());
        assert_eq!(session.graph(), Some(&g), "instance must be untouched");
        assert_eq!(*session.current().unwrap(), before);
    }

    #[test]
    fn solver_errors_roll_back_atomically() {
        // Removing the only edge of a positive-weight pendant vertex makes
        // the decomposition undefined (ZeroAlpha) — the session must keep
        // serving the pre-delta instance.
        let g = builders::path(vec![int(1), int(2), int(3)]).unwrap();
        let mut session = DecompositionSession::new(g.clone());
        let before = session.current().unwrap().clone();
        assert!(matches!(
            session.update_edge(0, 1, EdgeOp::Remove),
            Err(BdError::ZeroAlpha { .. })
        ));
        assert_eq!(session.graph(), Some(&g));
        assert_eq!(*session.current().unwrap(), before);
        // And it still accepts good deltas afterwards.
        assert!(session.update_weight(0, int(4)).is_ok());
        let committed = session.graph().unwrap().clone();
        assert_eq!(*session.current().unwrap(), decompose(&committed).unwrap());
    }

    #[test]
    fn stability_cells_install_and_invalidate() {
        let g = path_graph(int(5));
        let mut session = DecompositionSession::new(g);
        let shape = session.current().unwrap().shape();
        let alphas = session
            .current()
            .unwrap()
            .pairs()
            .iter()
            .map(|p| CellMoebius {
                p: Rational::zero(),
                q: p.alpha.clone(),
                r: Rational::zero(),
                s: Rational::one(),
            })
            .collect::<Vec<_>>();
        assert!(session.install_cell(StabilityCell {
            vertex: 0,
            lo: int(4),
            hi: int(6),
            shape,
            alphas,
        }));
        assert_eq!(session.cell_count(), 1);
        // A move inside the cell keeps it installed…
        session.update_weight(0, int(6)).unwrap();
        assert_eq!(session.cell_count(), 1);
        let committed = session.graph().unwrap().clone();
        assert_eq!(*session.current().unwrap(), decompose(&committed).unwrap());
        // …a move outside (or any other mutation) invalidates.
        session.update_weight(0, int(40)).unwrap();
        assert_eq!(session.cell_count(), 0);
        let committed = session.graph().unwrap().clone();
        assert_eq!(*session.current().unwrap(), decompose(&committed).unwrap());
    }

    #[test]
    fn lying_cell_cannot_change_results() {
        let g = path_graph(int(5));
        let mut session = DecompositionSession::new(g);
        let shape = session.current().unwrap().shape();
        let k = shape.len();
        // A cell that predicts an absurdly low constant α for every round.
        let alphas = (0..k)
            .map(|_| CellMoebius {
                p: Rational::zero(),
                q: Rational::one(),
                r: Rational::zero(),
                s: int(1000),
            })
            .collect::<Vec<_>>();
        session.install_cell(StabilityCell {
            vertex: 0,
            lo: int(1),
            hi: int(100),
            shape,
            alphas,
        });
        session.update_weight(0, int(6)).unwrap();
        let committed = session.graph().unwrap().clone();
        assert_eq!(*session.current().unwrap(), decompose(&committed).unwrap());
    }
}
