//! `DecompositionSession` — a warm-started, memoizing solver handle.
//!
//! The misreport sweep (Section III-B) and the Sybil grids call
//! [`decompose`](crate::decompose) at hundreds of nearby parameter values.
//! Because the decomposition `𝓑(x)` is **piecewise constant** in any single
//! weight (the breakpoint argument of Section III-B: finitely many candidate
//! ratios `w(Γ(S))/w(S)` cross each other at finitely many `x`), the
//! combinatorial *shape* — which vertices form each round's maximal
//! bottleneck — repeats across almost the entire grid. A cold call cannot
//! exploit that: every round re-runs the float Dinkelbach descent (each step
//! of which computes an exact α-ratio), then certifies.
//!
//! A session keeps the flow arenas **and** a small MRU cache of *shape
//! certificates*: the per-round certified bottleneck sets of recent
//! decompositions, with their certifying flow patterns. Each round then
//! takes the cheapest sound path:
//!
//! 1. **Replay** — a cached round whose exact inputs (alive set, weights on
//!    it, induced adjacency) equal the current round's returns its certified
//!    `(B, α)` verbatim, zero flow work. This dominates inside a sweep:
//!    only one weight moves per grid point, so every round solved after the
//!    moving vertex is peeled is an exact replay of the cached tail.
//! 2. **Warm certification** — otherwise compute `α̂ = α(B_cached)` (one
//!    exact ratio) and certify it with a single max-flow on a
//!    **scaled-integer network**: every capacity is multiplied by `p·D`
//!    (`α̂ = p/q` in lowest terms, `D` the lcm of the alive weights'
//!    denominators), so source arcs carry `(w_v·D)·p` and sink arcs
//!    `(w_v·D)·q` — all integers, turning each Dinic step from a
//!    gcd-normalized rational operation into plain big-integer arithmetic.
//!    The network is pre-seeded with the cached certifying flow rescaled to
//!    the current weights, so inside a known `ShapeInterval` the flow is
//!    (nearly) maximal before the first BFS.
//! 3. **Descent** — at a breakpoint the certification is infeasible and the
//!    unchanged exact Dinkelbach descent resumes from the min cut (still on
//!    the integer network); with no usable candidate at all, the standard
//!    two-tier engine runs on the session's arenas.
//!
//! **Bit-identity.** Replay is sound because the round solver is a pure
//! function of the inputs it compares. For *any* vertex set `S`,
//! `α(S) ≥ α* = min α`, so a cached candidate can never seed the descent
//! below the optimum; at the optimum the maximal tight set extracted from
//! the residual graph is unique (flow-independent — DESIGN.md §3.1); and
//! uniform positive scaling of all capacities preserves the feasibility
//! decision, min cuts, and residual reachability, so the integer network
//! extracts the same sets as the rational one. The session therefore
//! changes only where exact arithmetic is spent, never what it concludes;
//! the `session_equivalence` property suite enforces this against cold
//! [`decompose`](crate::decompose) calls.

use crate::decomposition::{drive, maximal_bottleneck, BottleneckDecomposition, Layout, RoundNets};
use crate::error::BdError;
use prs_flow::{stats, SeedArc};
use prs_graph::{Graph, VertexId, VertexSet};
use prs_numeric::{BigInt, Rational, Sign};

/// How many MRU cache entries a warm-start probe inspects per round.
/// Sweeps alternate between at most two shapes near a breakpoint (the
/// bisection pattern), so a small probe window captures essentially all
/// hits without scanning the whole cache.
const PROBE_WINDOW: usize = 4;

/// Tuning knobs for a [`DecompositionSession`].
///
/// Construct via [`SessionConfig::new`] + `with_*` builders; the struct is
/// `#[non_exhaustive]` so future knobs are non-breaking.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Seed each round from cached shape certificates (default `true`).
    /// With this off the session still amortizes arena allocation but every
    /// round runs the plain two-tier descent.
    pub warm_start: bool,
    /// Maximum number of cached shape certificates (default `32`; `0`
    /// disables the cache entirely).
    pub cache_capacity: usize,
}

impl SessionConfig {
    /// The default configuration: warm starts on, 32 cached shapes.
    pub fn new() -> Self {
        SessionConfig {
            warm_start: true,
            cache_capacity: 32,
        }
    }

    /// Enable or disable warm-starting from cached shapes.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Set the shape-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache_capacity = cap;
        self
    }
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig::new()
    }
}

/// Counter snapshot of one session (see [`DecompositionSession::stats`]).
///
/// `hits + misses` equals the total number of decomposition rounds served;
/// `warm_starts ≥ hits` (a warm-started round that fails certification
/// counts as a miss).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Rounds settled by a cached shape: one certification max-flow.
    pub hits: u64,
    /// Rounds that ran a descent (no usable cached candidate, or the warm
    /// candidate sat on the wrong side of a breakpoint).
    pub misses: u64,
    /// Rounds seeded from a cached shape (successful or not).
    pub warm_starts: u64,
}

/// One certified round of a memoized decomposition: the answer `(B, α)`
/// plus everything needed to (a) replay it verbatim when the round's exact
/// inputs recur and (b) seed the certification max-flow when only the
/// weights moved.
#[derive(Clone)]
struct RoundCert {
    /// The certified maximal bottleneck `B_i`.
    b: VertexSet,
    /// Its certified ratio `α_i`.
    alpha: Rational,
    /// The certification context, shared so replaying a cached round into a
    /// fresh cache entry is a pointer bump, not a deep copy.
    data: std::sync::Arc<CertData>,
}

/// The inputs and certificate of one solved round.
struct CertData {
    /// The alive set the round was solved on.
    alive: VertexSet,
    /// `w_v` for each alive `v`, in `alive` iteration order.
    weights: Vec<Rational>,
    /// The alive-induced adjacency `(v, u)` pairs, in network build order.
    adj: Vec<(VertexId, VertexId)>,
    /// The certifying max-flow's middle arcs carrying positive flow:
    /// `(v, u, flow, w_v-at-certification)`. A later warm start on weights
    /// `w'` seeds the arc `left(v)→right(u)` with `flow · w'_v / w_v` —
    /// a straight clone when `w'_v = w_v`, the common case in a sweep where
    /// only one vertex's weight moves per grid point.
    support: Vec<(VertexId, VertexId, Rational, Rational)>,
}

/// One memoized decomposition: the certified per-round bottleneck sets and
/// their certifying flow patterns.
///
/// The capacity signature is implicit: `rounds[i]` is only *used* as a
/// candidate, never trusted — its α-ratio is recomputed exactly against the
/// current weights, and the seeded flow is clamped to the current capacities
/// before [`max_flow`](prs_flow::FlowNetwork::max_flow) completes it, so a
/// stale entry costs one wasted certification flow at worst and can never
/// corrupt a result.
struct ShapeEntry {
    n: usize,
    rounds: Vec<RoundCert>,
}

/// A reusable decomposition solver: owns the exact and f64 flow arenas
/// across calls and memoizes shape certificates so repeated decompositions
/// of nearby instances cost one certification max-flow per round instead of
/// a full Dinkelbach descent.
///
/// Results are **bit-identical** to [`decompose`](crate::decompose) on every
/// input; see the module docs for the argument.
///
/// ```
/// use prs_bd::{decompose, DecompositionSession};
/// use prs_graph::builders;
/// use prs_numeric::{int, ratio};
///
/// let mut session = DecompositionSession::new();
/// for w in 1..6 {
///     let g = builders::path(vec![int(w), int(10)]).unwrap();
///     assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
/// }
/// assert!(session.stats().hits > 0); // the shape repeated across the sweep
/// ```
pub struct DecompositionSession {
    cfg: SessionConfig,
    nets: RoundNets,
    /// MRU-ordered shape certificates (front = most recent).
    cache: Vec<ShapeEntry>,
    local: SessionStats,
}

impl DecompositionSession {
    /// A session with the default [`SessionConfig`].
    pub fn new() -> Self {
        Self::with_config(SessionConfig::new())
    }

    /// A session with explicit tuning knobs.
    pub fn with_config(cfg: SessionConfig) -> Self {
        DecompositionSession {
            cfg,
            nets: RoundNets::new(0),
            cache: Vec::new(),
            local: SessionStats::default(),
        }
    }

    /// This session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// Lifetime hit/miss/warm-start counters for this session. The same
    /// counts also flow into the process-global [`prs_flow::stats`]
    /// (`session_hits` / `session_misses` / `session_warm_starts`).
    pub fn stats(&self) -> SessionStats {
        self.local
    }

    /// Number of cached shape certificates.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drop every cached shape certificate (arenas are kept).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Compute the bottleneck decomposition of `g`, warm-starting each round
    /// from this session's shape cache. Bit-identical to
    /// [`decompose`](crate::decompose).
    pub fn decompose(&mut self, g: &Graph) -> Result<BottleneckDecomposition, BdError> {
        let mut certified: Vec<RoundCert> = Vec::new();
        let result = {
            let cfg = self.cfg.clone();
            let nets = &mut self.nets;
            let cache = &self.cache;
            let local = &mut self.local;
            let certified = &mut certified;
            drive(g, |g, alive, round| {
                solve_round_warm(g, alive, round, &cfg, nets, cache, local, certified)
            })
        };
        if result.is_ok() {
            self.store(g.n(), certified);
        }
        result
    }

    /// Insert a freshly certified shape at the cache front (MRU), deduping
    /// identical shapes (the fresh entry wins, so the cached flow pattern
    /// tracks the most recent weights) and evicting beyond capacity.
    fn store(&mut self, n: usize, rounds: Vec<RoundCert>) {
        if self.cfg.cache_capacity == 0 {
            return;
        }
        if let Some(pos) = self.cache.iter().position(|e| {
            e.n == n
                && e.rounds.len() == rounds.len()
                && e.rounds.iter().zip(&rounds).all(|(a, b)| a.b == b.b)
        }) {
            self.cache.remove(pos);
        }
        self.cache.insert(0, ShapeEntry { n, rounds });
        self.cache.truncate(self.cfg.cache_capacity);
    }
}

impl Default for DecompositionSession {
    fn default() -> Self {
        Self::new()
    }
}

/// One session round, fastest path first:
///
/// 1. **Replay**: a cached round whose exact inputs (alive set, weights,
///    induced adjacency) match the current ones returns its certified
///    `(B, α)` verbatim — zero flow work. Sound because the round solver is
///    a pure function of those inputs.
/// 2. **Warm certification**: otherwise probe the shape cache for the best
///    candidate set, build the exact network at its ratio `α̂`, seed it with
///    the cached certifying flow, and run a single certification max-flow.
/// 3. **Fallback**: no usable candidate → the standard two-tier engine;
///    certification fails at a breakpoint → the unchanged exact descent.
#[allow(clippy::too_many_arguments)]
fn solve_round_warm(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
    cfg: &SessionConfig,
    nets: &mut RoundNets,
    cache: &[ShapeEntry],
    local: &mut SessionStats,
    certified: &mut Vec<RoundCert>,
) -> Result<(VertexSet, Rational), BdError> {
    // The `path` attribute names which of the session's tiers settled the
    // round: `replay`, `warm_hit`, `warm_descent`, or `cold`.
    let mut sp = prs_trace::span("bd", "session_round");
    sp.attr("round", || round.to_string());
    if cfg.warm_start {
        if let Some(rc) = replay_candidate(g, alive, round, cache) {
            sp.attr("path", || "replay".to_string());
            local.hits += 1;
            local.warm_starts += 1;
            stats::record_session_hits(1);
            stats::record_session_warm_starts(1);
            if cfg.cache_capacity > 0 {
                certified.push(rc.clone());
            }
            return Ok((rc.b.clone(), rc.alpha.clone()));
        }
    }

    let warm = if cfg.warm_start {
        best_warm_candidate(g, alive, round, cache)
    } else {
        None
    };

    let Some((alpha_hat, entry_idx)) = warm else {
        // Cold round: the plain two-tier engine (float proposal + exact
        // certification), reusing this session's arenas.
        sp.attr("path", || "cold".to_string());
        local.misses += 1;
        stats::record_session_misses(1);
        let (b, alpha) = maximal_bottleneck(g, alive, round, nets)?;
        if cfg.cache_capacity > 0 {
            certified.push(snapshot_cert(nets, g, alive, &b, &alpha));
        }
        return Ok((b, alpha));
    };

    local.warm_starts += 1;
    stats::record_session_warm_starts(1);

    let layout = Layout { n: g.n() };

    // Build the *scaled-integer* network directly at α̂: multiplying every
    // capacity by `p·D` (α̂ = p/q in lowest terms, `D` clears the alive
    // weights' denominators) turns each Dinic step from a gcd-normalized
    // rational operation into a plain big-integer one, while preserving the
    // feasibility decision, min cuts, and residual reachability — so the
    // extracted sets are bit-identical to the rational network's. Then seed
    // it with the cached round's certifying flow pattern rescaled to the
    // current weights: inside a known `ShapeInterval` the seed is already
    // (nearly) maximal, so certification does little more than one
    // confirming BFS instead of a full augmenting-path run.
    nets.rebuild_int_only(g, alive, &alpha_hat);
    let mut seeded =
        seed_certification_flow_int(nets, g, alive, &cache[entry_idx].rounds[round].data.support);
    let mut alpha = alpha_hat;
    let mut first = true;
    loop {
        stats::record_dinkelbach_iterations(1);
        let mut sp_iter = prs_trace::span("bd", "dinkelbach_iter");
        sp_iter.attr("engine", || "session".to_string());
        if !first {
            nets.set_alpha_int(g, alive, &alpha);
        }
        let (mut flow, promoted) = nets.cert_max_flow(g, alive, &alpha);
        if promoted {
            // A runtime overflow discarded the i128 network mid-round — and
            // with it any seed installed there; the BigInt rerun pushed its
            // whole flow from zero, so nothing must be added back.
            seeded = BigInt::zero();
        }
        if first {
            // `max_flow` reports only the flow it pushed on top of the seed.
            flow += &seeded;
        }
        // Feasible iff the sources saturate: max flow = Σ (w_v·D)·p.
        if flow == nets.int_source_total {
            if first {
                sp.attr("path", || "warm_hit".to_string());
                local.hits += 1;
                stats::record_session_hits(1);
            }
            let reaches = nets.cert_residual_reaches_sink();
            let mut b = VertexSet::empty(g.n());
            for v in alive.iter() {
                if !reaches[layout.left(v)] {
                    b.insert(v);
                }
            }
            debug_assert!(!b.is_empty(), "a tight set must exist at the optimum");
            if cfg.cache_capacity > 0 {
                certified.push(snapshot_cert_int(nets, g, alive, &b, &alpha));
            }
            return Ok((b, alpha));
        }
        if first {
            // Breakpoint crossed: the cached shape's ratio is no longer the
            // minimum. Continue the unchanged exact descent from the min
            // cut — no float-tier re-entry; misses are rare and the pure
            // descent from α̂ is already close.
            sp.attr("path", || "warm_descent".to_string());
            local.misses += 1;
            stats::record_session_misses(1);
            first = false;
        }
        let side = nets.cert_min_cut_source_side();
        let mut s_set = VertexSet::empty(g.n());
        for v in alive.iter() {
            if side[layout.left(v)] {
                s_set.insert(v);
            }
        }
        // prs-lint: allow(panic, reason = "the s-side of an infeasible cut contains a source arc, hence positive weight; failure is a solver bug")
        let new_alpha = g
            .alpha_ratio_in(&s_set, alive)
            .expect("violating sets have positive weight");
        if new_alpha.is_zero() {
            return Err(BdError::ZeroAlpha { round });
        }
        debug_assert!(
            new_alpha < alpha,
            "Dinkelbach step must strictly decrease α"
        );
        alpha = new_alpha;
    }
}

/// Find a cached round whose exact inputs — alive set, weights on it, and
/// the alive-induced adjacency — equal the current round's. The round
/// solver is a pure function of those inputs, so its certified `(B, α)`
/// replays verbatim: no network rebuild, no ratio computation, no flow.
///
/// This is the dominant path inside a sweep: only one vertex's weight moves
/// per grid point, so every round solved after that vertex is peeled is an
/// exact replay of the cached decomposition's tail.
fn replay_candidate<'a>(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
    cache: &'a [ShapeEntry],
) -> Option<&'a RoundCert> {
    for entry in cache.iter().take(PROBE_WINDOW) {
        if entry.n != g.n() || round >= entry.rounds.len() {
            continue;
        }
        let data = &entry.rounds[round].data;
        if data.alive != *alive {
            continue;
        }
        if !alive
            .iter()
            .zip(&data.weights)
            .all(|(v, w)| g.weight(v) == w)
        {
            continue;
        }
        // Same alive set and weights; confirm the induced adjacency (the
        // session accepts arbitrary graphs, not just one weight family).
        let mut cached_adj = data.adj.iter();
        let mut same = true;
        'topo: for v in alive.iter() {
            for &u in g.neighbors(v) {
                if alive.contains(u) && cached_adj.next() != Some(&(v, u)) {
                    same = false;
                    break 'topo;
                }
            }
        }
        if same && cached_adj.next().is_none() {
            return Some(&entry.rounds[round]);
        }
    }
    None
}

/// Snapshot a freshly certified round into a [`RoundCert`]: the answer, the
/// inputs it was solved on, and the certifying max-flow's middle-arc
/// pattern (read off the exact network, which every solve path leaves at
/// the feasible optimum).
fn snapshot_cert(
    nets: &RoundNets,
    g: &Graph,
    alive: &VertexSet,
    b: &VertexSet,
    alpha: &Rational,
) -> RoundCert {
    let mut weights = Vec::with_capacity(alive.len());
    for v in alive.iter() {
        weights.push(g.weight(v).clone());
    }
    let mut adj = Vec::with_capacity(nets.mid_edges.len());
    let mut support = Vec::new();
    for &(v, u, e) in &nets.mid_edges {
        adj.push((v, u));
        let f = nets.exact.flow_on(e);
        if f.is_positive() {
            support.push((v, u, f.clone(), g.weight(v).clone()));
        }
    }
    RoundCert {
        b: b.clone(),
        alpha: alpha.clone(),
        data: std::sync::Arc::new(CertData {
            alive: alive.clone(),
            weights,
            adj,
            support,
        }),
    }
}

/// Probe the MRU front of the cache for this round's best warm seed: the
/// candidate set with the smallest exact α-ratio among usable entries
/// (`0 < α̂ ≤ 1`, candidate alive), together with the cache index it came
/// from (its certifying flow pattern seeds the max-flow). Smaller seeds
/// dominate: `α(S) ≥ α*` always, so the smallest available ratio is the one
/// closest to the optimum.
fn best_warm_candidate(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
    cache: &[ShapeEntry],
) -> Option<(Rational, usize)> {
    let one = Rational::one();
    let mut best: Option<(Rational, usize)> = None;
    for (idx, entry) in cache.iter().take(PROBE_WINDOW).enumerate() {
        if entry.n != g.n() || round >= entry.rounds.len() {
            continue;
        }
        let cand = &entry.rounds[round].b;
        if cand.is_empty() || !cand.is_subset(alive) {
            continue;
        }
        let Some(alpha_hat) = g.alpha_ratio_in(cand, alive) else {
            continue;
        };
        if !alpha_hat.is_positive() || alpha_hat > one {
            continue;
        }
        if best.as_ref().is_none_or(|(b, _)| alpha_hat < *b) {
            best = Some((alpha_hat, idx));
        }
    }
    best
}

/// Snapshot a round certified on the *integer* network (BigInt or the
/// checked-i128 fast tier — whichever the round settled on): identical to
/// [`snapshot_cert`] except the middle-arc flows are read off the active
/// scaled engine and divided back by the scale `p·D`, so the cached
/// support is in true (unscaled) flow units regardless of which engine
/// certifies next time.
fn snapshot_cert_int(
    nets: &RoundNets,
    g: &Graph,
    alive: &VertexSet,
    b: &VertexSet,
    alpha: &Rational,
) -> RoundCert {
    debug_assert!(nets.int_scale.is_positive());
    let scale = nets.int_scale.magnitude();
    let mut weights = Vec::with_capacity(alive.len());
    for v in alive.iter() {
        weights.push(g.weight(v).clone());
    }
    let mut adj = Vec::with_capacity(nets.mid_edges.len());
    let mut support = Vec::new();
    for &(v, u, e) in &nets.mid_edges {
        adj.push((v, u));
        let f = nets.cert_flow_on(e);
        if f.is_positive() {
            support.push((v, u, Rational::new(f, scale.clone()), g.weight(v).clone()));
        }
    }
    RoundCert {
        b: b.clone(),
        alpha: alpha.clone(),
        data: std::sync::Arc::new(CertData {
            alive: alive.clone(),
            weights,
            adj,
            support,
        }),
    }
}

/// Preload the scaled-integer network with the cached certifying flow
/// pattern, rescaled from the cached weights to the current ones (and into
/// the `p·D` integer units). The session translates each cached support
/// arc into a [`SeedArc`] request — resolving vertices to edge ids and
/// computing the rescaled amount — and the kernel's
/// [`seed_flow`](prs_flow::Network::seed_flow) clamps the requests to
/// remaining capacity and installs a valid (capacity-respecting,
/// conserving) flow. Returns the seeded flow value (the amount already
/// routed s→t, in scaled units).
///
/// Each middle arc requests `⌊flow·(w'_v/w_v)·pD⌋`; the floor loses at
/// most one scaled unit per arc, which the certification max-flow recovers
/// from the residual graph: Dinic completes **any** valid flow to a
/// maximum flow, so seeding changes only how many augmenting paths are
/// needed, never the result.
fn seed_certification_flow_int(
    nets: &mut RoundNets,
    g: &Graph,
    alive: &VertexSet,
    support: &[(VertexId, VertexId, Rational, Rational)],
) -> BigInt {
    if support.is_empty() {
        return BigInt::zero();
    }
    debug_assert!(nets.int_scale.is_positive());
    let mut seeds = Vec::with_capacity(support.len());
    for (v, u, f, w_then) in support {
        let (v, u) = (*v, *u);
        if !alive.contains(v) || !alive.contains(u) {
            continue;
        }
        let Ok(mid) = nets
            .mid_edges
            .binary_search_by(|probe| (probe.0, probe.1).cmp(&(v, u)))
        else {
            continue; // edge no longer present (different topology)
        };
        let Ok(vpos) = nets.source_edges.binary_search_by(|probe| probe.0.cmp(&v)) else {
            continue;
        };
        let Ok(upos) = nets.sink_edges.binary_search_by(|probe| probe.0.cmp(&u)) else {
            continue;
        };
        let w_now = g.weight(v);
        // desired = ⌊ f · (w'_v / w_v) · p·D ⌋, assembled numerator over
        // denominator so there is exactly one big division per arc.
        let num = &(&(f.numer() * w_now.numer())
            * &BigInt::from_parts(Sign::Plus, w_then.denom().clone()))
            * &nets.int_scale;
        let den = &(&BigInt::from_parts(Sign::Plus, f.denom().clone())
            * &BigInt::from_parts(Sign::Plus, w_now.denom().clone()))
            * w_then.numer();
        seeds.push(SeedArc {
            source_edge: nets.source_edges[vpos].1,
            mid_edge: nets.mid_edges[mid].2,
            sink_edge: nets.sink_edges[upos].1,
            desired: &num / &den,
        });
    }
    nets.cert_seed_flow(&seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose;
    use prs_graph::builders;
    use prs_numeric::{int, ratio, Rational};

    fn path_graph(w0: Rational) -> Graph {
        builders::path(vec![w0, int(10), int(3)]).unwrap()
    }

    #[test]
    fn session_matches_cold_decompose_across_a_sweep() {
        let mut session = DecompositionSession::new();
        for k in 1..40 {
            let g = path_graph(ratio(k, 7));
            let warm = session.decompose(&g).unwrap();
            let cold = decompose(&g).unwrap();
            assert_eq!(warm, cold, "diverged at w0 = {}/7", k);
        }
        let s = session.stats();
        assert!(s.hits > 0, "a 40-point sweep must re-enter shapes: {s:?}");
        assert!(s.hits + s.misses > 0);
        assert!(s.warm_starts >= s.hits);
    }

    #[test]
    fn warm_start_off_never_warm_starts() {
        let cfg = SessionConfig::new().with_warm_start(false);
        let mut session = DecompositionSession::with_config(cfg);
        for k in 1..10 {
            let g = path_graph(int(k));
            assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
        }
        let s = session.stats();
        assert_eq!(s.warm_starts, 0);
        assert_eq!(s.hits, 0);
        assert!(s.misses > 0);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let cfg = SessionConfig::new().with_cache_capacity(0);
        let mut session = DecompositionSession::with_config(cfg);
        for k in 1..6 {
            let g = path_graph(int(k));
            session.decompose(&g).unwrap();
        }
        assert_eq!(session.cache_len(), 0);
        assert_eq!(session.stats().hits, 0);
    }

    #[test]
    fn cache_evicts_beyond_capacity_and_dedupes() {
        let cfg = SessionConfig::new().with_cache_capacity(2);
        let mut session = DecompositionSession::with_config(cfg);
        // Same shape every time → a single deduped entry.
        for k in 1..5 {
            session.decompose(&path_graph(int(k))).unwrap();
        }
        assert_eq!(session.cache_len(), 1);
        // Distinct shapes (different n) evict down to capacity.
        session
            .decompose(&builders::path(vec![int(1), int(4)]).unwrap())
            .unwrap();
        session
            .decompose(&builders::star(vec![int(10), int(1), int(1), int(1)]).unwrap())
            .unwrap();
        assert_eq!(session.cache_len(), 2);
    }

    #[test]
    fn counters_are_monotone_and_account_every_round() {
        let mut session = DecompositionSession::new();
        let mut prev = SessionStats::default();
        let mut rounds_served = 0u64;
        for k in 1..12 {
            let g = path_graph(int(k));
            let bd = session.decompose(&g).unwrap();
            rounds_served += bd.k() as u64;
            let s = session.stats();
            assert!(s.hits >= prev.hits);
            assert!(s.misses >= prev.misses);
            assert!(s.warm_starts >= prev.warm_starts);
            assert_eq!(s.hits + s.misses, rounds_served);
            prev = s;
        }
    }

    #[test]
    fn errors_propagate_and_leave_session_usable() {
        let mut session = DecompositionSession::new();
        let empty = Graph::new(vec![], &[]).unwrap();
        assert_eq!(session.decompose(&empty), Err(BdError::EmptyGraph));
        let isolated = Graph::new(vec![int(1), int(1), int(1)], &[(0, 1)]).unwrap();
        assert!(matches!(
            session.decompose(&isolated),
            Err(BdError::ZeroAlpha { .. })
        ));
        let g = path_graph(int(3));
        assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
    }

    #[test]
    fn config_builders_compose() {
        let cfg = SessionConfig::new()
            .with_warm_start(false)
            .with_cache_capacity(7);
        assert!(!cfg.warm_start);
        assert_eq!(cfg.cache_capacity, 7);
        assert_eq!(SessionConfig::default(), SessionConfig::new());
    }
}
