//! Exact bottleneck decomposition via parametric max-flow.
//!
//! ## Algorithm
//!
//! For a parameter `α`, build the Hall-type feasibility network
//!
//! ```text
//!   s ──w_v──▶ v_L      (every alive vertex v)
//!   v_L ──∞──▶ u_R      (every alive edge (v,u), both directions)
//!   u_R ──w_u/α──▶ t
//! ```
//!
//! The max flow saturates the source arcs **iff** `w(S) ≤ w(Γ(S))/α` for all
//! alive `S`, i.e. iff `α ≤ min_S α(S)` (a deficiency-version of Hall's
//! theorem). Dinkelbach iteration then computes `α* = min_S α(S)` exactly:
//! start at `α = α(V_alive)`, and while infeasible, read a violating set off
//! the min cut (its α-ratio is strictly smaller) and retry with that ratio.
//! Each step strictly decreases `α` within the finite set
//! `{w(Γ(S))/w(S) : S ⊆ V}`, so the loop terminates at the exact optimum.
//!
//! At the optimum, the **maximal bottleneck** is recovered from the residual
//! graph of the feasible flow: `v` belongs to it iff `v_L` has *no* residual
//! path to `t`. (Tight sets form a union-closed family; the unreachable set
//! is exactly their union — see DESIGN.md §3.1 for the exchange argument.)

use crate::error::BdError;
use prs_flow::network_i128::{overflow_detected, reset_overflow};
use prs_flow::{
    stats, Cap, CapI128, CapInt, EdgeId, FlowNetwork, NetworkF64, NetworkI128, NetworkInt, SeedArc,
};
use prs_graph::{Graph, VertexId, VertexSet};
use prs_numeric::{gcd::lcm, BigInt, BigUint, Rational, Sign};

/// Which side of its bottleneck pair an agent is on (Definition 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AgentClass {
    /// In `B_i` with `α_i < 1`.
    B,
    /// In `C_i` with `α_i < 1`.
    C,
    /// In the terminal pair `B_k = C_k` with `α_k = 1`: simultaneously B- and
    /// C-class.
    Both,
}

impl AgentClass {
    /// True for `B` and `Both`.
    pub fn is_b(self) -> bool {
        matches!(self, AgentClass::B | AgentClass::Both)
    }

    /// True for `C` and `Both`.
    pub fn is_c(self) -> bool {
        matches!(self, AgentClass::C | AgentClass::Both)
    }
}

/// One bottleneck pair `(B_i, C_i)` with its α-ratio.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BottleneckPair {
    /// The maximal bottleneck `B_i`.
    pub b: VertexSet,
    /// Its neighbor set `C_i = Γ(B_i)` in the round's subgraph.
    pub c: VertexSet,
    /// `α_i = w(C_i)/w(B_i)`.
    pub alpha: Rational,
}

/// The bottleneck decomposition `𝓑 = {(B₁,C₁), …, (B_k,C_k)}` of a graph,
/// together with the per-vertex class partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BottleneckDecomposition {
    pairs: Vec<BottleneckPair>,
    pair_of: Vec<usize>,
    class_of: Vec<AgentClass>,
}

impl BottleneckDecomposition {
    /// Assemble a decomposition from raw parts (used by the brute-force
    /// reference implementation; invariants are the caller's burden).
    pub(crate) fn from_parts(
        pairs: Vec<BottleneckPair>,
        pair_of: Vec<usize>,
        class_of: Vec<AgentClass>,
    ) -> Self {
        BottleneckDecomposition {
            pairs,
            pair_of,
            class_of,
        }
    }

    /// The ordered pairs `(B_i, C_i)`, `α` strictly increasing.
    pub fn pairs(&self) -> &[BottleneckPair] {
        &self.pairs
    }

    /// Number of pairs `k`.
    pub fn k(&self) -> usize {
        self.pairs.len()
    }

    /// Index `i` of the pair containing vertex `v`.
    pub fn pair_of(&self, v: VertexId) -> usize {
        self.pair_of[v]
    }

    /// The class of vertex `v` (Definition 4).
    pub fn class_of(&self, v: VertexId) -> AgentClass {
        self.class_of[v]
    }

    /// `α_v`: the α-ratio of the pair containing `v`.
    pub fn alpha_of(&self, v: VertexId) -> &Rational {
        &self.pairs[self.pair_of[v]].alpha
    }

    /// The equilibrium utility of `v` under the BD allocation
    /// (Proposition 6): `w_v·α_i` for B-class, `w_v/α_i` for C-class,
    /// `w_v` for the terminal `α = 1` pair.
    pub fn utility(&self, g: &Graph, v: VertexId) -> Rational {
        let alpha = self.alpha_of(v);
        match self.class_of[v] {
            AgentClass::B => g.weight(v) * alpha,
            AgentClass::C => g.weight(v) / alpha,
            AgentClass::Both => g.weight(v).clone(),
        }
    }

    /// All equilibrium utilities in vertex order.
    pub fn utilities(&self, g: &Graph) -> Vec<Rational> {
        (0..g.n()).map(|v| self.utility(g, v)).collect()
    }

    /// A canonical, comparable description of the decomposition: for each
    /// pair, the sorted members of `B_i` and `C_i` plus `α_i`. Two graphs
    /// (over the same vertex ids) have equal signatures iff their
    /// decompositions coincide — used by the misreport sweep to detect
    /// breakpoints.
    pub fn signature(&self) -> Vec<(Vec<VertexId>, Vec<VertexId>, Rational)> {
        self.pairs
            .iter()
            .map(|p| (p.b.to_vec(), p.c.to_vec(), p.alpha.clone()))
            .collect()
    }

    /// The combinatorial part of the signature (pair memberships only,
    /// ignoring the α values, which move continuously with weights).
    pub fn shape(&self) -> Vec<(Vec<VertexId>, Vec<VertexId>)> {
        self.pairs
            .iter()
            .map(|p| (p.b.to_vec(), p.c.to_vec()))
            .collect()
    }

    /// Check every clause of Proposition 3 plus partition-ness; returns a
    /// description of the first violated invariant, if any.
    pub fn check_proposition3(&self, g: &Graph) -> Result<(), String> {
        let n = g.n();
        let k = self.pairs.len();
        let one = Rational::one();
        // Pairs partition V.
        let mut seen = VertexSet::empty(n);
        for (i, p) in self.pairs.iter().enumerate() {
            let bc = p.b.union(&p.c);
            if !seen.is_disjoint(&bc) {
                return Err(format!("pair {i} overlaps earlier pairs"));
            }
            seen.union_with(&bc);
        }
        if seen.len() != n {
            return Err("pairs do not cover V".into());
        }
        for (i, p) in self.pairs.iter().enumerate() {
            // (1) strictly increasing, positive, ≤ 1.
            if !p.alpha.is_positive() {
                return Err(format!("α_{i} not positive"));
            }
            if p.alpha > one {
                return Err(format!("α_{i} > 1"));
            }
            if i + 1 < k && self.pairs[i].alpha >= self.pairs[i + 1].alpha {
                return Err(format!("α_{i} ≥ α_{}", i + 1));
            }
            // (2) α_i = 1 ⟹ i = k−1 and B = C; else B independent, B∩C = ∅.
            if p.alpha == one {
                if i != k - 1 {
                    return Err(format!("α_{i} = 1 but pair is not last"));
                }
                if p.b != p.c {
                    return Err("α = 1 pair has B ≠ C".into());
                }
            } else {
                if !p.b.is_disjoint(&p.c) {
                    return Err(format!("pair {i}: B ∩ C ≠ ∅ with α < 1"));
                }
                let full = VertexSet::full(n);
                if !g.is_independent_in(&p.b, &full) {
                    return Err(format!("pair {i}: B not independent with α < 1"));
                }
            }
        }
        // (3) no B_i – B_j edges; (4) B_i – C_j edges need j ≤ i.
        for &(u, v) in g.edges() {
            for (x, y) in [(u, v), (v, u)] {
                if self.class_of[x] == AgentClass::B {
                    let i = self.pair_of[x];
                    let j = self.pair_of[y];
                    match self.class_of[y] {
                        AgentClass::B if i != j => {
                            return Err(format!("edge between B_{i} and B_{j}"))
                        }
                        AgentClass::C | AgentClass::Both if j > i => {
                            return Err(format!("edge from B_{i} into C_{j} with j > i"))
                        }
                        _ => {}
                    }
                }
            }
        }
        Ok(())
    }
}

/// Node layout of the feasibility network.
pub(crate) struct Layout {
    pub(crate) n: usize,
}

impl Layout {
    pub(crate) const S: usize = 0;
    pub(crate) const T: usize = 1;
    pub(crate) fn left(&self, v: VertexId) -> usize {
        2 + v
    }
    pub(crate) fn right(&self, v: VertexId) -> usize {
        2 + self.n + v
    }
    pub(crate) fn nodes(&self) -> usize {
        2 + 2 * self.n
    }
}

/// Build the Hall feasibility network for parameter `alpha` on the induced
/// subgraph `alive`.
fn feasibility_network(g: &Graph, alive: &VertexSet, alpha: &Rational) -> FlowNetwork {
    let layout = Layout { n: g.n() };
    let mut net = FlowNetwork::new(layout.nodes());
    for v in alive.iter() {
        net.add_edge(Layout::S, layout.left(v), Cap::Finite(g.weight(v).clone()));
        net.add_edge(layout.right(v), Layout::T, Cap::Finite(g.weight(v) / alpha));
        for &u in g.neighbors(v) {
            if alive.contains(u) {
                net.add_edge(layout.left(v), layout.right(u), Cap::Infinite);
            }
        }
    }
    net
}

/// Find the maximal bottleneck of the induced subgraph on `alive` and its
/// α-ratio, exactly — single-tier reference: every Dinkelbach step is an
/// exact max-flow on a freshly built network.
fn maximal_bottleneck_exact(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
) -> Result<(VertexSet, Rational), BdError> {
    let layout = Layout { n: g.n() };
    let w_alive = g.set_weight_of(alive);
    debug_assert!(!w_alive.is_zero());

    // α₀ = α(V_alive) = w(Γ(V_alive) ∩ alive) / w(alive) ≤ 1.
    // prs-lint: allow(panic, reason = "decompose() rejects zero-weight alive sets before every round, so the ratio is defined")
    let mut alpha = g
        .alpha_ratio_in(alive, alive)
        .expect("w(alive) > 0 checked by caller");
    if alpha.is_zero() {
        return Err(BdError::ZeroAlpha { round });
    }

    loop {
        stats::record_dinkelbach_iterations(1);
        let mut sp = prs_trace::span("bd", "dinkelbach_iter");
        sp.attr("engine", || "exact".to_string());
        let mut net = feasibility_network(g, alive, &alpha);
        let flow = net.max_flow(Layout::S, Layout::T);
        if flow == w_alive {
            // Feasible: α = min_S α(S). Extract the maximal tight set.
            let reaches = net.residual_reaches_sink(Layout::T);
            let mut b = VertexSet::empty(g.n());
            for v in alive.iter() {
                if !reaches[layout.left(v)] {
                    b.insert(v);
                }
            }
            debug_assert!(!b.is_empty(), "a tight set must exist at the optimum");
            return Ok((b, alpha));
        }
        // Infeasible: the s-side of the min cut yields a violating set.
        let side = net.min_cut_source_side(Layout::S);
        let mut s_set = VertexSet::empty(g.n());
        for v in alive.iter() {
            if side[layout.left(v)] {
                s_set.insert(v);
            }
        }
        // prs-lint: allow(panic, reason = "the s-side of an infeasible cut contains a source arc, hence positive weight; failure is a solver bug")
        let new_alpha = g
            .alpha_ratio_in(&s_set, alive)
            .expect("violating sets have positive weight");
        if new_alpha.is_zero() {
            return Err(BdError::ZeroAlpha { round });
        }
        debug_assert!(
            new_alpha < alpha,
            "Dinkelbach step must strictly decrease α"
        );
        alpha = new_alpha;
    }
}

/// Which engine holds the current scaled-integer certification build.
///
/// `rebuild_int_only` admits a round to the checked-`i128` tier iff both
/// endpoint cap totals fit in `i128` (every individual capacity is bounded
/// by its total, so they then fit too); otherwise — or when the checked
/// arithmetic trips at runtime — the round promotes to the BigInt engine,
/// which computes the identical answer without the width limit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CertEngine {
    /// The checked machine-word fast tier (`NetworkI128`).
    I128,
    /// The arbitrary-precision fallback (`NetworkInt`).
    Int,
}

/// Paired exact + float feasibility networks for the two-tier engine.
///
/// Rebuilt **in place** when the alive set changes (one `clear` per
/// decomposition round) and re-parameterized capacity-only between
/// Dinkelbach steps: only the sink arcs `w_u/α` depend on α, so a step is
/// `set_capacity` over the sink arcs plus `reset_flow` — no allocation.
pub(crate) struct RoundNets {
    pub(crate) exact: FlowNetwork,
    pub(crate) approx: NetworkF64,
    /// Scaled-integer twin of `exact` for the session's warm certification:
    /// capacities are multiplied by `p·D` (α = p/q in lowest terms, `D`
    /// clears the alive weights' denominators), turning every flow step into
    /// gcd-free big-integer arithmetic. Only meaningful after
    /// [`RoundNets::rebuild_int_only`] with `cert_engine == CertEngine::Int`.
    pub(crate) exact_int: NetworkInt,
    /// Checked-`i128` twin of `exact_int` — the certification fast tier.
    /// Same arc order, hence the same `EdgeId`s. Only meaningful when
    /// `cert_engine == CertEngine::I128`.
    pub(crate) exact_i128: NetworkI128,
    /// Which engine the last `rebuild_int_only`/`set_alpha_int` targeted.
    pub(crate) cert_engine: CertEngine,
    /// `p·D` of the current integer build (positive when valid).
    pub(crate) int_scale: BigInt,
    /// `D` = lcm of the alive weights' denominators (α-independent part of
    /// the scale, kept so a Dinkelbach step can re-parameterize in place).
    int_d: BigInt,
    /// Scaled integer weight `w_v·D` per alive vertex, in `alive` order.
    int_weights: Vec<BigInt>,
    /// Sum of the integer source capacities `Σ w_v·D·p` — the feasibility
    /// target: the scaled network saturates its sources iff the max flow
    /// equals this.
    pub(crate) int_source_total: BigInt,
    /// Per alive vertex: `(v, sink edge, f64 sink edge)`. The sink edge is
    /// valid for whichever engine built last (`exact` after
    /// [`RoundNets::rebuild`], `exact_int` after
    /// [`RoundNets::rebuild_int_only`] — the two add arcs in the same order,
    /// so the ids coincide).
    ///
    /// The f64 `EdgeId` is only meaningful after a full [`RoundNets::rebuild`]
    /// — an integer-only rebuild records a placeholder and flips
    /// `approx_valid` off.
    pub(crate) sink_edges: Vec<(VertexId, EdgeId, EdgeId)>,
    /// Per alive vertex: `(v, exact source edge)`, in `alive` order.
    pub(crate) source_edges: Vec<(VertexId, EdgeId)>,
    /// The exact middle arcs `(v, u, edge left(v)→right(u))`, sorted
    /// lexicographically by `(v, u)` (alive iteration is ascending and
    /// neighbor lists are sorted). The session reads the certifying flow
    /// off these arcs and seeds the next warm start from it.
    pub(crate) mid_edges: Vec<(VertexId, VertexId, EdgeId)>,
    /// Whether `approx` mirrors the current alive set (exact-only rebuilds
    /// leave it stale).
    approx_valid: bool,
}

impl RoundNets {
    pub(crate) fn new(n_nodes: usize) -> Self {
        RoundNets {
            exact: FlowNetwork::new(n_nodes),
            approx: NetworkF64::new(n_nodes),
            exact_int: NetworkInt::new(n_nodes),
            exact_i128: NetworkI128::new(n_nodes),
            cert_engine: CertEngine::Int,
            int_scale: BigInt::zero(),
            int_d: BigInt::zero(),
            int_weights: Vec::new(),
            int_source_total: BigInt::zero(),
            sink_edges: Vec::new(),
            source_edges: Vec::new(),
            mid_edges: Vec::new(),
            approx_valid: false,
        }
    }

    // prs-lint: allow(float, reason = "two-tier proposer: the approx network is built from to_f64 images and only ever proposes; certification is exact")
    /// Rebuild both networks for the induced subgraph on `alive` at `alpha`.
    pub(crate) fn rebuild(&mut self, g: &Graph, alive: &VertexSet, alpha: &Rational) {
        let layout = Layout { n: g.n() };
        let alpha_f = alpha.to_f64();
        self.exact.clear(layout.nodes());
        self.approx.clear(layout.nodes());
        self.approx_valid = true;
        self.sink_edges.clear();
        self.source_edges.clear();
        self.mid_edges.clear();
        for v in alive.iter() {
            let w = g.weight(v);
            let s = self
                .exact
                .add_edge(Layout::S, layout.left(v), Cap::Finite(w.clone()));
            let e = self
                .exact
                .add_edge(layout.right(v), Layout::T, Cap::Finite(w / alpha));
            self.approx.add_edge(Layout::S, layout.left(v), w.to_f64());
            let a = self
                .approx
                .add_edge(layout.right(v), Layout::T, w.to_f64() / alpha_f);
            self.sink_edges.push((v, e, a));
            self.source_edges.push((v, s));
            for &u in g.neighbors(v) {
                if alive.contains(u) {
                    let m = self
                        .exact
                        .add_edge(layout.left(v), layout.right(u), Cap::Infinite);
                    self.mid_edges.push((v, u, m));
                    self.approx
                        .add_edge(layout.left(v), layout.right(u), f64::INFINITY);
                }
            }
        }
    }

    /// Re-parameterize the exact network to `alpha` (sink caps + flow reset).
    pub(crate) fn set_alpha_exact(&mut self, g: &Graph, alpha: &Rational) {
        for &(v, e, _) in &self.sink_edges {
            self.exact.set_capacity(e, Cap::Finite(g.weight(v) / alpha));
        }
        self.exact.reset_flow();
    }

    /// Rebuild only the scaled-integer network at `alpha = p/q` — the
    /// session's warm certification path. Every capacity is multiplied by
    /// the positive constant `p·D`, where `D` is the lcm of the alive
    /// weights' denominators: source arcs carry `(w_v·D)·p`, sink arcs
    /// `(w_v·D)·q`, middle arcs stay infinite — all integers, so Dinic runs
    /// gcd-free. Uniform positive scaling preserves the feasibility
    /// decision, min cuts, and residual reachability of the rational
    /// network, so every set extracted here is bit-identical to what
    /// [`RoundNets::rebuild_exact_only`] at the same `alpha` would yield.
    ///
    /// Arcs are added in the exact same order as `rebuild_inner`, so the
    /// `EdgeId`s recorded in `source_edges` / `sink_edges` / `mid_edges`
    /// are valid for `exact_int`.
    pub(crate) fn rebuild_int_only(&mut self, g: &Graph, alive: &VertexSet, alpha: &Rational) {
        self.approx_valid = false;
        self.int_weights.clear();
        let mut d = BigUint::one();
        for v in alive.iter() {
            d = lcm(&d, g.weight(v).denom());
        }
        let d = BigInt::from_parts(Sign::Plus, d);
        let p = alpha.numer();
        let q = BigInt::from_parts(Sign::Plus, alpha.denom().clone());
        debug_assert!(p.is_positive(), "bottleneck ratios are positive");
        let mut total = BigInt::zero();
        let mut caps = Vec::with_capacity(alive.len());
        for v in alive.iter() {
            let w = g.weight(v);
            // w_v·D is integral because denom(w_v) divides D.
            let iw = w.numer() * &(&d / &BigInt::from_parts(Sign::Plus, w.denom().clone()));
            let src_cap = &iw * p;
            let snk_cap = &iw * &q;
            total += &src_cap;
            caps.push((src_cap, snk_cap));
            self.int_weights.push(iw);
        }
        if let Some(caps128) = admit_i128(&caps) {
            self.build_arcs_i128(g, alive, &caps128);
        } else {
            // Build-time promotion: some p·D-scaled capacity (or an endpoint
            // total) does not fit in i128 — go straight to BigInt.
            stats::record_i128_promotions(1);
            prs_trace::metrics::anomaly("i128_promotion_build");
            self.build_arcs_int(g, alive, &caps);
        }
        self.int_scale = p * &d;
        self.int_d = d;
        self.int_source_total = total;
    }

    /// Add the certification arcs to the BigInt engine. Arc order matches
    /// `rebuild` / `build_arcs_i128`, so the recorded `EdgeId`s are valid
    /// for whichever engine built last.
    fn build_arcs_int(&mut self, g: &Graph, alive: &VertexSet, caps: &[(BigInt, BigInt)]) {
        let layout = Layout { n: g.n() };
        self.cert_engine = CertEngine::Int;
        self.exact_int.clear(layout.nodes());
        self.sink_edges.clear();
        self.source_edges.clear();
        self.mid_edges.clear();
        for (i, v) in alive.iter().enumerate() {
            let s = self.exact_int.add_edge(
                Layout::S,
                layout.left(v),
                CapInt::Finite(caps[i].0.clone()),
            );
            let e = self.exact_int.add_edge(
                layout.right(v),
                Layout::T,
                CapInt::Finite(caps[i].1.clone()),
            );
            self.sink_edges.push((v, e, EdgeId::default()));
            self.source_edges.push((v, s));
            for &u in g.neighbors(v) {
                if alive.contains(u) {
                    let m =
                        self.exact_int
                            .add_edge(layout.left(v), layout.right(u), CapInt::Infinite);
                    self.mid_edges.push((v, u, m));
                }
            }
        }
    }

    /// Add the certification arcs to the checked-`i128` fast tier. Same arc
    /// order as `build_arcs_int` — the engines are `EdgeId`-compatible.
    fn build_arcs_i128(&mut self, g: &Graph, alive: &VertexSet, caps: &[(i128, i128)]) {
        let layout = Layout { n: g.n() };
        self.cert_engine = CertEngine::I128;
        reset_overflow();
        self.exact_i128.clear(layout.nodes());
        self.sink_edges.clear();
        self.source_edges.clear();
        self.mid_edges.clear();
        for (i, v) in alive.iter().enumerate() {
            let s = self
                .exact_i128
                .add_edge(Layout::S, layout.left(v), CapI128::Finite(caps[i].0));
            let e =
                self.exact_i128
                    .add_edge(layout.right(v), Layout::T, CapI128::Finite(caps[i].1));
            self.sink_edges.push((v, e, EdgeId::default()));
            self.source_edges.push((v, s));
            for &u in g.neighbors(v) {
                if alive.contains(u) {
                    let m = self.exact_i128.add_edge(
                        layout.left(v),
                        layout.right(u),
                        CapI128::Infinite,
                    );
                    self.mid_edges.push((v, u, m));
                }
            }
        }
    }

    /// Re-parameterize the integer network to `alpha = p'/q'`. Unlike the
    /// rational network, *both* arc families depend on α here (source caps
    /// carry the `p` factor of the scale), so both are rewritten; `D` and
    /// the arc structure are untouched. An i128-tier round whose new
    /// capacities no longer fit promotes to BigInt here (the descent can
    /// only shrink `p`, but `q` can grow without bound).
    pub(crate) fn set_alpha_int(&mut self, g: &Graph, alive: &VertexSet, alpha: &Rational) {
        let p = alpha.numer();
        let q = BigInt::from_parts(Sign::Plus, alpha.denom().clone());
        debug_assert!(p.is_positive(), "bottleneck ratios are positive");
        debug_assert_eq!(self.int_weights.len(), self.source_edges.len());
        let mut total = BigInt::zero();
        let mut caps = Vec::with_capacity(self.int_weights.len());
        for iw in &self.int_weights {
            let src_cap = iw * p;
            total += &src_cap;
            caps.push((src_cap, iw * &q));
        }
        match self.cert_engine {
            CertEngine::I128 => match admit_i128(&caps) {
                Some(caps128) => {
                    reset_overflow();
                    for (i, &(src, snk)) in caps128.iter().enumerate() {
                        self.exact_i128
                            .set_capacity(self.source_edges[i].1, CapI128::Finite(src));
                        self.exact_i128
                            .set_capacity(self.sink_edges[i].1, CapI128::Finite(snk));
                    }
                    self.exact_i128.reset_flow();
                }
                None => {
                    // Mid-descent promotion: the BigInt twin was never built
                    // this round, so construct it outright (same arc order →
                    // the recorded EdgeIds stay valid).
                    stats::record_i128_promotions(1);
                    prs_trace::metrics::anomaly("i128_promotion_descent");
                    self.build_arcs_int(g, alive, &caps);
                }
            },
            CertEngine::Int => {
                for (i, (src, snk)) in caps.into_iter().enumerate() {
                    self.exact_int
                        .set_capacity(self.source_edges[i].1, CapInt::Finite(src));
                    self.exact_int
                        .set_capacity(self.sink_edges[i].1, CapInt::Finite(snk));
                }
                self.exact_int.reset_flow();
            }
        }
        self.int_scale = p * &self.int_d;
        self.int_source_total = total;
    }

    /// Run the certification max-flow on the active engine, returning the
    /// pushed flow in BigInt units and whether a *runtime* overflow promoted
    /// the round mid-flight. On promotion the poisoned i128 result is
    /// discarded and the max-flow reruns cold on a freshly built BigInt
    /// network at the same α — any seed installed on the i128 network is
    /// gone, so callers must drop their seeded-flow bookkeeping when the
    /// flag comes back `true`.
    pub(crate) fn cert_max_flow(
        &mut self,
        g: &Graph,
        alive: &VertexSet,
        alpha: &Rational,
    ) -> (BigInt, bool) {
        match self.cert_engine {
            CertEngine::I128 => {
                let flow = self.exact_i128.max_flow(Layout::S, Layout::T);
                if !overflow_detected() {
                    return (BigInt::from(flow), false);
                }
                // The admission check bounds every partial sum by an endpoint
                // total that fits, so this is defense-in-depth rather than an
                // expected path — but soundness must not depend on that
                // argument staying true under refactors. (The poison flag
                // itself already tripped the flight recorder inside
                // `prs_flow`; this anomaly marks the promotion decision.)
                stats::record_i128_promotions(1);
                prs_trace::metrics::anomaly("i128_promotion_runtime");
                let p = alpha.numer();
                let q = BigInt::from_parts(Sign::Plus, alpha.denom().clone());
                let caps: Vec<(BigInt, BigInt)> = self
                    .int_weights
                    .iter()
                    .map(|iw| (iw * p, iw * &q))
                    .collect();
                self.build_arcs_int(g, alive, &caps);
                (self.exact_int.max_flow(Layout::S, Layout::T), true)
            }
            CertEngine::Int => (self.exact_int.max_flow(Layout::S, Layout::T), false),
        }
    }

    /// Engine-dispatched [`prs_flow::Network::residual_reaches_sink`].
    pub(crate) fn cert_residual_reaches_sink(&self) -> Vec<bool> {
        match self.cert_engine {
            CertEngine::I128 => self.exact_i128.residual_reaches_sink(Layout::T),
            CertEngine::Int => self.exact_int.residual_reaches_sink(Layout::T),
        }
    }

    /// Engine-dispatched [`prs_flow::Network::min_cut_source_side`].
    pub(crate) fn cert_min_cut_source_side(&self) -> Vec<bool> {
        match self.cert_engine {
            CertEngine::I128 => self.exact_i128.min_cut_source_side(Layout::S),
            CertEngine::Int => self.exact_int.min_cut_source_side(Layout::S),
        }
    }

    /// Flow on `e` in the active certification engine, widened to BigInt.
    pub(crate) fn cert_flow_on(&self, e: EdgeId) -> BigInt {
        match self.cert_engine {
            CertEngine::I128 => BigInt::from(*self.exact_i128.flow_on(e)),
            CertEngine::Int => self.exact_int.flow_on(e).clone(),
        }
    }

    /// Seed the active certification engine with the given flow requests
    /// (desired amounts in scaled BigInt units), returning the total flow
    /// actually installed.
    ///
    /// On the i128 tier each `desired` is narrowed with a clamp to
    /// `i128::MAX`: the kernel's `seed_flow` caps every request by the
    /// remaining source supply and sink room, and those are bounded by
    /// endpoint totals the admission check proved fit — so the clamp can
    /// never change the installed amount, only the (ignored) excess of the
    /// request.
    pub(crate) fn cert_seed_flow(&mut self, seeds: &[SeedArc<BigInt>]) -> BigInt {
        match self.cert_engine {
            CertEngine::I128 => {
                let narrowed: Vec<SeedArc<i128>> = seeds
                    .iter()
                    .map(|s| SeedArc {
                        source_edge: s.source_edge,
                        mid_edge: s.mid_edge,
                        sink_edge: s.sink_edge,
                        desired: s.desired.to_i128().unwrap_or(i128::MAX),
                    })
                    .collect();
                let total = self.exact_i128.seed_flow(&narrowed);
                debug_assert!(self.exact_i128.check_capacities());
                debug_assert!(self.exact_i128.check_conservation(Layout::S, Layout::T));
                BigInt::from(total)
            }
            CertEngine::Int => {
                let total = self.exact_int.seed_flow(seeds);
                debug_assert!(self.exact_int.check_capacities());
                debug_assert!(self.exact_int.check_conservation(Layout::S, Layout::T));
                total
            }
        }
    }

    // prs-lint: allow(float, reason = "two-tier proposer: re-parameterizes the approx network only; certification is exact")
    /// Re-parameterize the float network to `alpha_f`.
    fn set_alpha_f64(&mut self, g: &Graph, alpha_f: f64) {
        debug_assert!(self.approx_valid, "float network is stale");
        for &(v, _, a) in &self.sink_edges {
            self.approx.set_capacity(a, g.weight(v).to_f64() / alpha_f);
        }
        self.approx.reset_flow();
    }
}

/// Try to narrow a full set of scaled certification capacities to `i128` —
/// the admission test of the fast tier. Succeeds iff every capacity *and*
/// both endpoint totals fit (the `checked_add` chain proves the totals,
/// which in turn bound every partial sum the kernel can form: a flow value
/// never exceeds an endpoint total, so an admitted network cannot overflow
/// at runtime). Returns `None` on the first miss, which the callers count
/// as one promotion to BigInt.
fn admit_i128(caps: &[(BigInt, BigInt)]) -> Option<Vec<(i128, i128)>> {
    let mut src_total: i128 = 0;
    let mut snk_total: i128 = 0;
    let mut out = Vec::with_capacity(caps.len());
    for (src, snk) in caps {
        let s = src.to_i128()?;
        let k = snk.to_i128()?;
        src_total = src_total.checked_add(s)?;
        snk_total = snk_total.checked_add(k)?;
        out.push((s, k));
    }
    Some(out)
}

// prs-lint: allow(float, reason = "tier-1 proposer: every candidate it returns is re-certified by an exact max-flow before adoption (see maximal_bottleneck)")
/// Tier 1: run the Dinkelbach descent on the float network and return a
/// candidate bottleneck set, or `None` when the float loop stalls or
/// produces nothing usable (the exact tier then starts from α₀ unchanged).
///
/// The parameter values fed to the float network are `to_f64` images of
/// *exact* α-ratios of actual vertex sets, so the returned candidate always
/// corresponds to a well-defined exact ratio for the certification pass.
fn propose_f64(
    g: &Graph,
    alive: &VertexSet,
    alpha0: &Rational,
    nets: &mut RoundNets,
) -> Option<VertexSet> {
    let _sp = prs_trace::span("bd", "f64_propose");
    let layout = Layout { n: g.n() };
    let w_alive_f: f64 = alive.iter().map(|v| g.weight(v).to_f64()).sum();
    let tol = 1e-9 * (1.0 + w_alive_f);
    let mut alpha_f = alpha0.to_f64();
    if alpha_f.is_nan() || alpha_f <= 0.0 {
        return None; // α₀ underflowed: nothing useful to propose
    }
    let mut last_violating: Option<VertexSet> = None;

    // The exact descent takes at most |alive| strictly decreasing steps;
    // give the float loop the same budget plus slack, then give up.
    for _ in 0..alive.len() + 4 {
        nets.set_alpha_f64(g, alpha_f);
        let flow = nets.approx.max_flow(Layout::S, Layout::T);
        if flow >= w_alive_f - tol {
            // Float-feasible: extract the unreachable set as the candidate
            // maximal bottleneck. Empty (float α slipped strictly below the
            // optimum, every source arc has slack) falls back to the last
            // violating set.
            let reaches = nets.approx.residual_reaches_sink(Layout::T);
            let mut b = VertexSet::empty(g.n());
            for v in alive.iter() {
                if !reaches[layout.left(v)] {
                    b.insert(v);
                }
            }
            if !b.is_empty() {
                return Some(b);
            }
            return last_violating;
        }
        let side = nets.approx.min_cut_source_side(Layout::S);
        let mut s_set = VertexSet::empty(g.n());
        for v in alive.iter() {
            if side[layout.left(v)] {
                s_set.insert(v);
            }
        }
        if s_set.is_empty() {
            return last_violating;
        }
        let new_alpha_f = g.alpha_ratio_in(&s_set, alive)?.to_f64();
        if new_alpha_f.is_nan() || new_alpha_f <= 0.0 || new_alpha_f >= alpha_f {
            // No float-visible progress (near-tie or rounding): stop and let
            // the exact tier certify what we have.
            return Some(s_set);
        }
        alpha_f = new_alpha_f;
        last_violating = Some(s_set);
    }
    last_violating
}

/// Find the maximal bottleneck of the induced subgraph on `alive` — the
/// two-tier engine.
///
/// Tier 1 ([`propose_f64`]) runs the Dinkelbach descent approximately and
/// proposes a candidate set `B̂`; its **exact** ratio `α̂ = α(B̂)` seeds
/// tier 2. Tier 2 is the unchanged exact descent: certify feasibility at
/// the current α with one exact max-flow; on success extract the maximal
/// tight set from the exact residual graph, otherwise read a violating set
/// off the exact min cut and descend. Correctness is by construction:
///
/// * `α̂ = α(B̂) ≥ α* = min_S α(S)` for *any* set `B̂`, so seeding never
///   undershoots;
/// * if `α̂ = α*`, the first certification flow is feasible and extraction
///   happens on the exact network at the exact optimum — identical to what
///   the single-tier engine extracts (the maximal tight set is unique);
/// * if `α̂ > α*`, certification fails and the exact descent proceeds as if
///   it had started there — every subsequent step is exact.
///
/// The float tier can therefore change only *how fast* the optimum is
/// reached (one exact flow on a hit instead of a full descent), never the
/// result.
pub(crate) fn maximal_bottleneck(
    g: &Graph,
    alive: &VertexSet,
    round: usize,
    nets: &mut RoundNets,
) -> Result<(VertexSet, Rational), BdError> {
    let layout = Layout { n: g.n() };
    let w_alive = g.set_weight_of(alive);
    debug_assert!(!w_alive.is_zero());

    // prs-lint: allow(panic, reason = "decompose() rejects zero-weight alive sets before every round, so the ratio is defined")
    let alpha0 = g
        .alpha_ratio_in(alive, alive)
        .expect("w(alive) > 0 checked by caller");
    if alpha0.is_zero() {
        return Err(BdError::ZeroAlpha { round });
    }
    nets.rebuild(g, alive, &alpha0);

    // Tier 1: float proposal, adopted only when its exact ratio is a valid
    // descent seed (0 < α̂ ≤ 1; anything else keeps α₀).
    let mut alpha = alpha0.clone();
    let mut proposed = false;
    if let Some(candidate) = propose_f64(g, alive, &alpha0, nets) {
        if let Some(alpha_hat) = g.alpha_ratio_in(&candidate, alive) {
            if alpha_hat.is_positive() && alpha_hat <= Rational::one() {
                alpha = alpha_hat;
                proposed = true;
            }
        }
    }

    // Tier 2: exact certification / descent.
    let mut first = true;
    loop {
        stats::record_dinkelbach_iterations(1);
        let mut sp = prs_trace::span("bd", "dinkelbach_iter");
        sp.attr("engine", || "two_tier".to_string());
        nets.set_alpha_exact(g, &alpha);
        let flow = nets.exact.max_flow(Layout::S, Layout::T);
        if flow == w_alive {
            if proposed && first {
                stats::record_fast_path_hits(1);
            }
            let reaches = nets.exact.residual_reaches_sink(Layout::T);
            let mut b = VertexSet::empty(g.n());
            for v in alive.iter() {
                if !reaches[layout.left(v)] {
                    b.insert(v);
                }
            }
            debug_assert!(!b.is_empty(), "a tight set must exist at the optimum");
            return Ok((b, alpha));
        }
        if proposed && first {
            stats::record_fast_path_fallbacks(1);
        }
        first = false;
        let side = nets.exact.min_cut_source_side(Layout::S);
        let mut s_set = VertexSet::empty(g.n());
        for v in alive.iter() {
            if side[layout.left(v)] {
                s_set.insert(v);
            }
        }
        // prs-lint: allow(panic, reason = "the s-side of an infeasible cut contains a source arc, hence positive weight; failure is a solver bug")
        let new_alpha = g
            .alpha_ratio_in(&s_set, alive)
            .expect("violating sets have positive weight");
        if new_alpha.is_zero() {
            return Err(BdError::ZeroAlpha { round });
        }
        debug_assert!(
            new_alpha < alpha,
            "Dinkelbach step must strictly decrease α"
        );
        alpha = new_alpha;
    }
}

/// Compute the bottleneck decomposition of `g` (Definition 2), exactly.
///
/// This is the two-tier engine: a floating-point Dinkelbach pass proposes
/// each round's optimum, one exact max-flow certifies it, and any
/// disagreement falls back to the exact descent — so the result is
/// bit-identical to [`decompose_exact`] while typically an order of
/// magnitude cheaper in exact arithmetic. Flow networks are rebuilt in
/// place across rounds and re-parameterized capacity-only inside each
/// round's descent.
///
/// Errors on the degenerate inputs for which the decomposition is undefined:
/// empty graphs, subgraphs whose minimum α-ratio is 0 (isolated
/// positive-weight agents), or residues of total weight 0.
pub fn decompose(g: &Graph) -> Result<BottleneckDecomposition, BdError> {
    decompose_driver(g, true)
}

/// Compute the bottleneck decomposition with the single-tier exact engine:
/// every Dinkelbach step is an exact max-flow on a freshly built network.
///
/// Kept as the reference implementation; `decompose` must agree with it on
/// every input (asserted by the cross-engine property suite).
pub fn decompose_exact(g: &Graph) -> Result<BottleneckDecomposition, BdError> {
    decompose_driver(g, false)
}

fn decompose_driver(g: &Graph, two_tier: bool) -> Result<BottleneckDecomposition, BdError> {
    let mut nets = two_tier.then(|| RoundNets::new(2 + 2 * g.n().max(1)));
    drive(g, |g, alive, round| match &mut nets {
        Some(nets) => maximal_bottleneck(g, alive, round, nets),
        None => maximal_bottleneck_exact(g, alive, round),
    })
}

/// The shared round loop of every decomposition engine: peel maximal
/// bottlenecks off the alive set until it is empty, classifying vertices as
/// it goes. `solve_round(g, alive, round)` supplies each round's
/// `(B, α)` — the single-tier descent, the two-tier engine, or the session's
/// warm-started solver.
pub(crate) fn drive<F>(g: &Graph, mut solve_round: F) -> Result<BottleneckDecomposition, BdError>
where
    F: FnMut(&Graph, &VertexSet, usize) -> Result<(VertexSet, Rational), BdError>,
{
    if g.n() == 0 {
        return Err(BdError::EmptyGraph);
    }
    let n = g.n();
    let mut sp = prs_trace::span("bd", "decompose");
    sp.attr("n", || n.to_string());
    let mut alive = VertexSet::full(n);
    let mut pairs = Vec::new();
    let mut pair_of = vec![usize::MAX; n];
    let mut class_of = vec![AgentClass::B; n];
    let mut round = 0;

    while !alive.is_empty() {
        if g.set_weight_of(&alive).is_zero() {
            return Err(BdError::ZeroWeightResidue { round });
        }
        let (b, alpha) = {
            let mut sp_round = prs_trace::span("bd", "round");
            sp_round.attr("round", || round.to_string());
            sp_round.attr("alive", || alive.len().to_string());
            solve_round(g, &alive, round)?
        };
        let c = g.neighborhood_in(&b, &alive);
        let one = Rational::one();
        debug_assert!(alpha <= one, "α(S) ≤ α(V) ≤ 1 on every subgraph");

        for v in b.iter() {
            pair_of[v] = round;
            class_of[v] = if alpha == one {
                AgentClass::Both
            } else {
                AgentClass::B
            };
        }
        for v in c.iter() {
            if !b.contains(v) {
                pair_of[v] = round;
                class_of[v] = if alpha == one {
                    AgentClass::Both
                } else {
                    AgentClass::C
                };
            }
        }
        let removed = b.union(&c);
        alive.subtract(&removed);
        pairs.push(BottleneckPair { b, c, alpha });
        round += 1;
    }

    sp.attr("rounds", || round.to_string());
    let bd = BottleneckDecomposition {
        pairs,
        pair_of,
        class_of,
    };
    debug_assert_eq!(bd.check_proposition3(g), Ok(()));
    Ok(bd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::builders;
    use prs_numeric::{int, ratio, Rational};

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn figure1_decomposition() {
        let g = builders::figure1_example();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.k(), 2);
        assert_eq!(bd.pairs()[0].b.to_vec(), vec![0, 1]); // {v1, v2}
        assert_eq!(bd.pairs()[0].c.to_vec(), vec![2]); // {v3}
        assert_eq!(bd.pairs()[0].alpha, ratio(1, 3));
        assert_eq!(bd.pairs()[1].b.to_vec(), vec![3, 4, 5]); // {v4, v5, v6}
        assert_eq!(bd.pairs()[1].c.to_vec(), vec![3, 4, 5]);
        assert_eq!(bd.pairs()[1].alpha, int(1));
        assert_eq!(bd.class_of(0), AgentClass::B);
        assert_eq!(bd.class_of(2), AgentClass::C);
        assert_eq!(bd.class_of(4), AgentClass::Both);
        assert_eq!(bd.check_proposition3(&g), Ok(()));
    }

    #[test]
    fn figure1_utilities_match_prop6() {
        let g = builders::figure1_example();
        let bd = decompose(&g).unwrap();
        // v1 ∈ B₁: U = 2·(1/3). v2 ∈ B₁: U = 1·(1/3). v3 ∈ C₁:
        // U = 1/(1/3) = 3. v4..v6 (α = 1): U = w = 1.
        assert_eq!(bd.utility(&g, 0), ratio(2, 3));
        assert_eq!(bd.utility(&g, 1), ratio(1, 3));
        assert_eq!(bd.utility(&g, 2), int(3));
        for v in 3..6 {
            assert_eq!(bd.utility(&g, v), int(1));
        }
        // Total utility equals total weight (everything given is received).
        let total: Rational = bd.utilities(&g).iter().sum();
        assert_eq!(total, g.total_weight());
    }

    #[test]
    fn uniform_even_ring_alpha_one() {
        let g = builders::uniform_ring(6, int(1)).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.k(), 1);
        assert_eq!(bd.pairs()[0].alpha, int(1));
        assert_eq!(bd.pairs()[0].b.len(), 6);
        assert!((0..6).all(|v| bd.class_of(v) == AgentClass::Both));
    }

    #[test]
    fn uniform_odd_ring_alpha_one() {
        let g = builders::uniform_ring(5, int(1)).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.k(), 1);
        assert_eq!(bd.pairs()[0].alpha, int(1));
        assert_eq!(bd.pairs()[0].b.len(), 5);
    }

    #[test]
    fn two_vertex_path() {
        // Weights 1 and 4: B = {light}, C = {heavy}, α = 1/4? No: α(S) for
        // S={0}: w({1})/w({0}) = 4; S={1}: 1/4; S={0,1}: 5/5 = 1. Min = 1/4.
        let g = builders::path(ints(&[1, 4])).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.k(), 1);
        assert_eq!(bd.pairs()[0].alpha, ratio(1, 4));
        assert_eq!(bd.pairs()[0].b.to_vec(), vec![1]);
        assert_eq!(bd.pairs()[0].c.to_vec(), vec![0]);
        assert_eq!(bd.utility(&g, 1), int(1)); // 4 · 1/4
        assert_eq!(bd.utility(&g, 0), int(4)); // 1 / (1/4)
    }

    #[test]
    fn balanced_two_vertex_path_is_alpha_one() {
        let g = builders::path(ints(&[3, 3])).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.k(), 1);
        assert_eq!(bd.pairs()[0].alpha, int(1));
        assert_eq!(bd.pairs()[0].b.to_vec(), vec![0, 1]);
    }

    #[test]
    fn star_heavy_center() {
        // Center weight 10, three leaves weight 1: min α = 3/10 (S = center),
        // so B = {center}, C = leaves.
        let g = builders::star(ints(&[10, 1, 1, 1])).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.k(), 1);
        assert_eq!(bd.pairs()[0].alpha, ratio(3, 10));
        assert_eq!(bd.pairs()[0].b.to_vec(), vec![0]);
        assert_eq!(bd.pairs()[0].c.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn star_light_center() {
        // Center 1, leaves 10 each: min α = 1/30 (S = leaves), B = leaves.
        let g = builders::star(ints(&[1, 10, 10, 10])).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.pairs()[0].alpha, ratio(1, 30));
        assert_eq!(bd.pairs()[0].b.to_vec(), vec![1, 2, 3]);
        assert_eq!(bd.pairs()[0].c.to_vec(), vec![0]);
    }

    #[test]
    fn heavy_interior_path_single_pair() {
        // Path 1 – 100 – 1 – 1. Candidate ratios: α({1}) = 2/100 = 1/50,
        // α({1,3}) = w({0,2})/w({1,3}) = 2/101 < 1/50 — and {1,3} is
        // independent, so the maximal bottleneck absorbs the far leaf:
        // B = {1,3}, C = Γ(B) = {0,2}, one pair, α = 2/101.
        let g = builders::path(ints(&[1, 100, 1, 1])).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.k(), 1);
        assert_eq!(bd.pairs()[0].alpha, ratio(2, 101));
        assert_eq!(bd.pairs()[0].b.to_vec(), vec![1, 3]);
        assert_eq!(bd.pairs()[0].c.to_vec(), vec![0, 2]);
    }

    #[test]
    fn multi_pair_path() {
        // Path 10 – 1 – 5 – 5. Round 0: α({1}) = 15/1 large; α({0})=1/10;
        // α({0,2}) = (1+5)/15 = 2/5; α({0}) = 1/10 is the minimum
        // (independent sets only can win; {0} beats {0,2} since vertex 2's
        // neighborhood adds weight 5+1=6 for weight 5).
        // So B₁={0}, C₁={1}, α₁=1/10; residue {2,3} has α = 1 (balanced edge).
        let g = builders::path(ints(&[10, 1, 5, 5])).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.k(), 2);
        assert_eq!(bd.pairs()[0].alpha, ratio(1, 10));
        assert_eq!(bd.pairs()[0].b.to_vec(), vec![0]);
        assert_eq!(bd.pairs()[0].c.to_vec(), vec![1]);
        assert_eq!(bd.pairs()[1].alpha, int(1));
        assert_eq!(bd.pairs()[1].b.to_vec(), vec![2, 3]);
        assert_eq!(bd.check_proposition3(&g), Ok(()));
    }

    #[test]
    fn zero_weight_leaf_joins_its_neighbors_pair() {
        // Path 0(w=0) – 1(w=2) – 2(w=3): the zero-weight leaf lands in the
        // same pair as vertex 1's pair, B side (cf. Case C-2 of Lemma 14).
        let g = builders::path(vec![int(0), int(2), int(3)]).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(bd.check_proposition3(&g), Ok(()));
        let total: Rational = bd.utilities(&g).iter().sum();
        assert_eq!(total, g.total_weight());
        assert_eq!(bd.utility(&g, 0), int(0));
    }

    #[test]
    fn isolated_positive_vertex_is_zero_alpha_error() {
        let g = prs_graph::Graph::new(ints(&[1, 1, 1]), &[(0, 1)]).unwrap();
        assert!(matches!(decompose(&g), Err(BdError::ZeroAlpha { .. })));
    }

    #[test]
    fn empty_graph_error() {
        let g = prs_graph::Graph::new(vec![], &[]).unwrap();
        assert_eq!(decompose(&g), Err(BdError::EmptyGraph));
    }

    #[test]
    fn signature_detects_combinatorial_change() {
        let g1 = builders::path(ints(&[1, 4])).unwrap();
        let g2 = builders::path(ints(&[1, 5])).unwrap();
        let s1 = decompose(&g1).unwrap();
        let s2 = decompose(&g2).unwrap();
        assert_eq!(s1.shape(), s2.shape()); // same B/C split
        assert_ne!(s1.signature(), s2.signature()); // different α
    }
}
