//! Errors surfaced by the decomposition / allocation pipeline.

use prs_graph::GraphError;
use std::fmt;

/// Why a bottleneck decomposition or BD allocation could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BdError {
    /// The graph has no vertices.
    EmptyGraph,
    /// Some subgraph reached during the decomposition has a set `S` with
    /// `w(Γ(S)) = 0 < w(S)` (α-ratio 0), e.g. an isolated positive-weight
    /// vertex. The sharing model assigns such agents no exchange partner, so
    /// the decomposition is undefined (Proposition 3 requires `α₁ > 0`).
    ZeroAlpha {
        /// Decomposition round at which the degenerate set appeared.
        round: usize,
    },
    /// A residual subgraph consists solely of zero-weight vertices; every
    /// α-ratio in it is undefined.
    ZeroWeightResidue {
        /// Decomposition round at which the residue appeared.
        round: usize,
    },
    /// A [`Delta`](crate::Delta) mutation was rejected by the graph layer
    /// (out-of-range vertex, negative weight, self-loop, …). The session it
    /// was applied to is left untouched.
    InvalidDelta {
        /// The underlying graph-mutation error.
        source: GraphError,
    },
    /// A delta-API call ([`apply`](crate::DecompositionSession::apply),
    /// [`current`](crate::DecompositionSession::current), …) reached a
    /// session constructed without an owned instance
    /// ([`DecompositionSession::detached`](crate::DecompositionSession::detached)).
    DetachedSession,
}

impl From<GraphError> for BdError {
    fn from(source: GraphError) -> Self {
        BdError::InvalidDelta { source }
    }
}

impl fmt::Display for BdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BdError::EmptyGraph => write!(f, "cannot decompose the empty graph"),
            BdError::ZeroAlpha { round } => write!(
                f,
                "α-ratio 0 encountered at decomposition round {round} \
                 (a vertex set has a zero-weight neighborhood)"
            ),
            BdError::ZeroWeightResidue { round } => write!(
                f,
                "residual subgraph at round {round} has total weight 0; \
                 α-ratios are undefined there"
            ),
            BdError::InvalidDelta { source } => write!(f, "invalid delta: {source}"),
            BdError::DetachedSession => write!(
                f,
                "delta API called on a detached session (no owned instance); \
                 construct with DecompositionSession::new(graph) or call \
                 replace_instance first"
            ),
        }
    }
}

impl std::error::Error for BdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BdError::InvalidDelta { source } => Some(source),
            _ => None,
        }
    }
}
