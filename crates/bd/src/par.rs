//! Deterministic parallel fan-out for decomposition consumers.
//!
//! The deviation sweep, the Sybil grid search, and the audit batches all
//! fan the same shape of work out: `count` independent exact evaluations
//! whose results must come back in input order (so downstream best-pick and
//! interval assembly are bit-identical to a sequential run). This module
//! centralizes the crossbeam scoped-thread idiom used by
//! `prs-dynamics::parallel`: a shared atomic cursor hands out indices
//! (work stealing), each worker writes into its index's slot, and the scope
//! join makes the slots safe to drain in order.

// prs-lint: allow-file(panic, reason = "every expect here is poison/join propagation: a worker panic has already aborted the computation, and re-raising at the join is the correct way to surface it; the cursor-coverage expect is the module's ordering invariant")

use crate::session::{DecompositionSession, SessionConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for `count` independent jobs: the machine's parallelism,
/// capped by the job count, at least 1.
pub fn worker_threads(count: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(count).max(1)
}

/// Evaluate `f(i)` for `i ∈ 0..count` across `threads` scoped workers and
/// return the results **in index order**, independent of scheduling.
///
/// Falls back to a plain sequential map when a single worker suffices, so
/// callers never pay thread spawn cost for tiny inputs.
pub fn par_map_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads == 1 {
        // Same span shape as the threaded path, so traces always carry a
        // worker-tagged section (single-core machines included).
        let mut sp = prs_trace::span("bd", "par_worker");
        sp.attr("worker", || "0".to_string());
        let out = (0..count).map(f).collect();
        sp.attr("jobs", || count.to_string());
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        let (cursor, slots, f) = (&cursor, &slots, &f);
        for w in 0..threads {
            scope.spawn(move |_| {
                {
                    let mut sp = prs_trace::span("bd", "par_worker");
                    sp.attr("worker", || w.to_string());
                    let mut jobs: u64 = 0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        jobs += 1;
                        // One uncontended lock per job, not per step: each
                        // index is handed to exactly one worker by the
                        // cursor.
                        *slots[i].lock().expect("slot poisoned") = Some(f(i));
                    }
                    sp.attr("jobs", || jobs.to_string());
                }
                // Must be the closure's last act: the scope join can race
                // this thread's TLS destructors (see prs_trace::flush_thread).
                prs_trace::flush_thread();
            });
        }
    })
    .expect("parallel worker panicked");
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("cursor covered every index")
        })
        .collect()
}

/// A pool of [`DecompositionSession`]s for parallel fan-outs: each worker
/// checks one session out for its whole lifetime (so every evaluation it
/// runs warm-starts from its predecessors), and sessions return to the pool
/// at the join — a later fan-out (the next zoom level, the bisection pass)
/// re-checks them out with their shape caches intact.
pub struct SessionPool {
    cfg: SessionConfig,
    free: Mutex<Vec<DecompositionSession>>,
}

impl SessionPool {
    /// An empty pool; sessions are created on demand with `cfg`.
    pub fn new(cfg: SessionConfig) -> Self {
        SessionPool {
            cfg,
            free: Mutex::new(Vec::new()),
        }
    }

    /// Take a session out of the pool (or create a fresh one).
    pub fn checkout(&self) -> DecompositionSession {
        self.free
            .lock()
            .expect("pool poisoned")
            .pop()
            .unwrap_or_else(|| DecompositionSession::with_config(self.cfg.clone()))
    }

    /// Return a session (and its warm cache) to the pool.
    pub fn checkin(&self, session: DecompositionSession) {
        self.free.lock().expect("pool poisoned").push(session);
    }

    /// Aggregate hit/miss/warm-start counters over the pooled (checked-in)
    /// sessions.
    pub fn stats(&self) -> crate::session::SessionStats {
        let free = self.free.lock().expect("pool poisoned");
        let mut total = crate::session::SessionStats::default();
        for s in free.iter() {
            let st = s.stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.warm_starts += st.warm_starts;
        }
        total
    }

    /// [`par_map_indexed`], with a pooled session threaded through each
    /// worker: evaluate `f(&mut session, i)` for `i ∈ 0..count` on
    /// `threads` workers and return results in index order.
    pub fn map_indexed<T, F>(&self, count: usize, threads: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut DecompositionSession, usize) -> T + Sync,
    {
        let threads = threads.clamp(1, count.max(1));
        if threads == 1 {
            let mut sp = prs_trace::span("bd", "pool_worker");
            sp.attr("worker", || "0".to_string());
            let mut session = self.checkout();
            let out = (0..count).map(|i| f(&mut session, i)).collect();
            self.checkin(session);
            sp.attr("jobs", || count.to_string());
            return out;
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        crossbeam::scope(|scope| {
            let (cursor, slots, f) = (&cursor, &slots, &f);
            for w in 0..threads {
                scope.spawn(move |_| {
                    {
                        let mut sp = prs_trace::span("bd", "pool_worker");
                        sp.attr("worker", || w.to_string());
                        let mut jobs: u64 = 0;
                        let mut session = self.checkout();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                break;
                            }
                            jobs += 1;
                            *slots[i].lock().expect("slot poisoned") = Some(f(&mut session, i));
                        }
                        self.checkin(session);
                        sp.attr("jobs", || jobs.to_string());
                    }
                    prs_trace::flush_thread();
                });
            }
        })
        .expect("parallel worker panicked");
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot poisoned")
                    .expect("cursor covered every index")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose;
    use prs_graph::builders;
    use prs_numeric::int;

    #[test]
    fn results_in_index_order() {
        let out = par_map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        assert_eq!(par_map_indexed(3, 1, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_threads_bounds() {
        assert_eq!(worker_threads(0), 1);
        assert!(worker_threads(1000) >= 1);
        assert!(worker_threads(2) <= 2);
    }

    #[test]
    fn pooled_sessions_match_cold_decompose() {
        let pool = SessionPool::new(SessionConfig::new());
        let out = pool.map_indexed(24, 4, |session, i| {
            let g = builders::path(vec![int(1 + i as i64), int(10), int(3)]).unwrap();
            (session.decompose(&g).unwrap(), decompose(&g).unwrap())
        });
        for (warm, cold) in out {
            assert_eq!(warm, cold);
        }
        // All sessions are back in the pool and did real work.
        let stats = pool.stats();
        assert!(stats.hits + stats.misses > 0);
    }

    #[test]
    fn pool_reuses_sessions_across_fanouts() {
        let pool = SessionPool::new(SessionConfig::new());
        let g = builders::path(vec![int(2), int(10), int(3)]).unwrap();
        pool.map_indexed(4, 1, |session, _| session.decompose(&g).unwrap());
        let warm_before = pool.stats();
        pool.map_indexed(4, 1, |session, _| session.decompose(&g).unwrap());
        let warm_after = pool.stats();
        assert!(
            warm_after.hits > warm_before.hits,
            "second fan-out must hit the warmed cache: {warm_before:?} → {warm_after:?}"
        );
    }
}
