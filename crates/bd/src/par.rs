//! Deterministic parallel fan-out for decomposition consumers.
//!
//! The deviation sweep, the Sybil grid search, and the audit batches all
//! fan the same shape of work out: `count` independent exact evaluations
//! whose results must come back in input order (so downstream best-pick and
//! interval assembly are bit-identical to a sequential run). This module
//! centralizes the crossbeam scoped-thread idiom used by
//! `prs-dynamics::parallel`: a shared atomic cursor hands out indices
//! (work stealing), each worker writes into its index's slot, and the scope
//! join makes the slots safe to drain in order.

// prs-lint: allow-file(panic, reason = "every expect here is poison/join propagation: a worker panic has already aborted the computation, and re-raising at the join is the correct way to surface it; the cursor-coverage expect is the module's ordering invariant")

use crate::delta::{Delta, UpdateOutcome};
use crate::error::BdError;
use crate::session::{DecompositionSession, SessionConfig};
use prs_graph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for `count` independent jobs: the machine's parallelism,
/// capped by the job count, at least 1.
pub fn worker_threads(count: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(count).max(1)
}

/// Evaluate `f(i)` for `i ∈ 0..count` across `threads` scoped workers and
/// return the results **in index order**, independent of scheduling.
///
/// Falls back to a plain sequential map when a single worker suffices, so
/// callers never pay thread spawn cost for tiny inputs.
pub fn par_map_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads == 1 {
        // Same span shape as the threaded path, so traces always carry a
        // worker-tagged section (single-core machines included).
        let mut sp = prs_trace::span("bd", "par_worker");
        sp.attr("worker", || "0".to_string());
        let out = (0..count).map(f).collect();
        sp.attr("jobs", || count.to_string());
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        let (cursor, slots, f) = (&cursor, &slots, &f);
        for w in 0..threads {
            scope.spawn(move |_| {
                {
                    let mut sp = prs_trace::span("bd", "par_worker");
                    sp.attr("worker", || w.to_string());
                    let mut jobs: u64 = 0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        jobs += 1;
                        // One uncontended lock per job, not per step: each
                        // index is handed to exactly one worker by the
                        // cursor.
                        *slots[i].lock().expect("slot poisoned") = Some(f(i));
                    }
                    sp.attr("jobs", || jobs.to_string());
                }
                // Must be the closure's last act: the scope join can race
                // this thread's TLS destructors (see prs_trace::flush_thread).
                prs_trace::flush_thread();
            });
        }
    })
    .expect("parallel worker panicked");
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("cursor covered every index")
        })
        .collect()
}

/// A pool of [`DecompositionSession`]s for parallel fan-outs: each worker
/// checks one session out for its whole lifetime (so every evaluation it
/// runs warm-starts from its predecessors), and sessions return to the pool
/// at the join — a later fan-out (the next zoom level, the bisection pass)
/// re-checks them out with their shape caches intact.
pub struct SessionPool {
    cfg: SessionConfig,
    free: Mutex<Vec<DecompositionSession>>,
}

impl SessionPool {
    /// An empty pool; sessions are created on demand with `cfg`.
    pub fn new(cfg: SessionConfig) -> Self {
        SessionPool {
            cfg,
            free: Mutex::new(Vec::new()),
        }
    }

    /// Take a session out of the pool (or create a fresh one).
    pub fn checkout(&self) -> DecompositionSession {
        self.free
            .lock()
            .expect("pool poisoned")
            .pop()
            .unwrap_or_else(|| DecompositionSession::detached_with_config(self.cfg.clone()))
    }

    /// Return a session (and its warm cache) to the pool.
    pub fn checkin(&self, session: DecompositionSession) {
        self.free.lock().expect("pool poisoned").push(session);
    }

    /// Aggregate hit/miss/warm-start counters over the pooled (checked-in)
    /// sessions.
    pub fn stats(&self) -> crate::session::SessionStats {
        let free = self.free.lock().expect("pool poisoned");
        let mut total = crate::session::SessionStats::default();
        for s in free.iter() {
            // UFCS: a bare `.stats()` is ambiguous to the lock-order
            // linker, which would alias it with this very function and
            // report a `free`→`free` re-entrancy cycle.
            let st = DecompositionSession::stats(s);
            total.hits += st.hits;
            total.misses += st.misses;
            total.warm_starts += st.warm_starts;
        }
        total
    }

    /// [`par_map_indexed`], with a pooled session threaded through each
    /// worker: evaluate `f(&mut session, i)` for `i ∈ 0..count` on
    /// `threads` workers and return results in index order.
    pub fn map_indexed<T, F>(&self, count: usize, threads: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut DecompositionSession, usize) -> T + Sync,
    {
        let threads = threads.clamp(1, count.max(1));
        if threads == 1 {
            let mut sp = prs_trace::span("bd", "pool_worker");
            sp.attr("worker", || "0".to_string());
            let mut session = self.checkout();
            let out = (0..count).map(|i| f(&mut session, i)).collect();
            self.checkin(session);
            sp.attr("jobs", || count.to_string());
            return out;
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        crossbeam::scope(|scope| {
            let (cursor, slots, f) = (&cursor, &slots, &f);
            for w in 0..threads {
                scope.spawn(move |_| {
                    {
                        let mut sp = prs_trace::span("bd", "pool_worker");
                        sp.attr("worker", || w.to_string());
                        let mut jobs: u64 = 0;
                        let mut session = self.checkout();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= count {
                                break;
                            }
                            jobs += 1;
                            *slots[i].lock().expect("slot poisoned") = Some(f(&mut session, i));
                        }
                        self.checkin(session);
                        sp.attr("jobs", || jobs.to_string());
                    }
                    prs_trace::flush_thread();
                });
            }
        })
        .expect("parallel worker panicked");
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot poisoned")
                    .expect("cursor covered every index")
            })
            .collect()
    }
}

/// One shard of a [`ShardPool`]: a long-lived owned-instance session plus
/// its FIFO delta queue.
struct Shard {
    session: DecompositionSession,
    queue: Vec<Delta>,
}

/// A sharded fleet of long-lived delta-serving sessions — the parallel face
/// of the stream-of-mutations API.
///
/// Each shard owns one instance (one swarm neighborhood, one tenant, …) and
/// an in-order delta queue. Producers [`enqueue`](ShardPool::enqueue)
/// mutations at any time; [`drain`](ShardPool::drain) then applies every
/// shard's queue FIFO, shards running in parallel over
/// [`par_map_indexed`]'s deterministic fan-out. Because deltas never cross
/// shards, the result is independent of scheduling: each shard's outcome
/// vector equals what a sequential replay of its queue would produce.
pub struct ShardPool {
    shards: Vec<Mutex<Shard>>,
}

impl ShardPool {
    /// One owned-instance session per shard, every session tuned by `cfg`.
    pub fn new(instances: Vec<Graph>, cfg: SessionConfig) -> Self {
        ShardPool {
            shards: instances
                .into_iter()
                .map(|g| {
                    Mutex::new(Shard {
                        session: DecompositionSession::with_config(g, cfg.clone()),
                        queue: Vec::new(),
                    })
                })
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True iff the pool has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Append `delta` to shard `shard`'s queue (FIFO). Returns `false` when
    /// the shard index is out of range (the delta is dropped).
    pub fn enqueue(&self, shard: usize, delta: Delta) -> bool {
        match self.shards.get(shard) {
            Some(m) => {
                m.lock().expect("shard poisoned").queue.push(delta);
                true
            }
            None => false,
        }
    }

    /// Number of queued (not yet drained) deltas on shard `shard`.
    pub fn queued(&self, shard: usize) -> usize {
        self.shards
            .get(shard)
            .map_or(0, |m| m.lock().expect("shard poisoned").queue.len())
    }

    /// Apply every shard's queued deltas in FIFO order — shards in parallel
    /// across `threads` workers — and return each shard's per-delta
    /// outcomes, in shard order. A rejected delta (its `Err` is reported in
    /// place) leaves that shard's session untouched and the drain moves on
    /// to the next queued delta.
    pub fn drain(&self, threads: usize) -> Vec<Vec<Result<UpdateOutcome, BdError>>> {
        par_map_indexed(self.shards.len(), threads, |i| {
            let mut shard = self.shards[i].lock().expect("shard poisoned");
            let queue = std::mem::take(&mut shard.queue);
            let mut sp = prs_trace::span("bd", "shard_drain");
            sp.attr("shard", || i.to_string());
            sp.attr("deltas", || queue.len().to_string());
            // prs-lint: allow(lock-order, reason = "by design: each worker applies deltas under its own shard's lock only — shards are disjoint (one lock per worker, never nested), so the engine running under it cannot deadlock")
            queue.into_iter().map(|d| shard.session.apply(d)).collect()
        })
    }

    /// Run `f` against shard `shard`'s session (e.g. to read
    /// [`current`](DecompositionSession::current) or
    /// [`stats`](DecompositionSession::stats) after a drain). `None` when
    /// the shard index is out of range.
    pub fn with_session<T>(
        &self,
        shard: usize,
        f: impl FnOnce(&mut DecompositionSession) -> T,
    ) -> Option<T> {
        self.shards
            .get(shard)
            .map(|m| f(&mut m.lock().expect("shard poisoned").session))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose;
    use prs_graph::builders;
    use prs_numeric::int;

    #[test]
    fn results_in_index_order() {
        let out = par_map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        assert_eq!(par_map_indexed(3, 1, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_threads_bounds() {
        assert_eq!(worker_threads(0), 1);
        assert!(worker_threads(1000) >= 1);
        assert!(worker_threads(2) <= 2);
    }

    #[test]
    fn pooled_sessions_match_cold_decompose() {
        let pool = SessionPool::new(SessionConfig::new());
        let out = pool.map_indexed(24, 4, |session, i| {
            let g = builders::path(vec![int(1 + i as i64), int(10), int(3)]).unwrap();
            (session.decompose(&g).unwrap(), decompose(&g).unwrap())
        });
        for (warm, cold) in out {
            assert_eq!(warm, cold);
        }
        // All sessions are back in the pool and did real work.
        let stats = pool.stats();
        assert!(stats.hits + stats.misses > 0);
    }

    #[test]
    fn shard_pool_drains_fifo_and_matches_cold() {
        let instances: Vec<Graph> = (0..6)
            .map(|i| builders::path(vec![int(2 + i), int(10), int(3)]).unwrap())
            .collect();
        let pool = ShardPool::new(instances.clone(), SessionConfig::new());
        assert_eq!(pool.len(), 6);
        assert!(!pool.is_empty());
        for (i, _) in instances.iter().enumerate() {
            assert!(pool.enqueue(i, Delta::SetWeight { v: 0, w: int(7) }));
            assert!(pool.enqueue(
                i,
                Delta::SetWeight {
                    v: 0,
                    w: int(1 + i as i64),
                }
            ));
        }
        assert!(!pool.enqueue(99, Delta::Batch(vec![])), "range-checked");
        assert_eq!(pool.queued(0), 2);
        let outcomes = pool.drain(4);
        assert_eq!(outcomes.len(), 6);
        assert_eq!(pool.queued(0), 0);
        for (i, per_shard) in outcomes.iter().enumerate() {
            assert_eq!(per_shard.len(), 2, "shard {i} served its whole queue");
            assert!(per_shard.iter().all(|o| o.is_ok()));
            // FIFO: the final committed weight is the *second* enqueued one.
            let expected = builders::path(vec![int(1 + i as i64), int(10), int(3)]).unwrap();
            pool.with_session(i, |s| {
                assert_eq!(s.graph(), Some(&expected));
                assert_eq!(*s.current().unwrap(), decompose(&expected).unwrap());
            })
            .unwrap();
        }
    }

    #[test]
    fn shard_pool_reports_rejections_in_place() {
        let pool = ShardPool::new(
            vec![builders::path(vec![int(1), int(2)]).unwrap()],
            SessionConfig::new(),
        );
        pool.enqueue(0, Delta::SetWeight { v: 9, w: int(1) });
        pool.enqueue(0, Delta::SetWeight { v: 0, w: int(5) });
        let outcomes = pool.drain(1);
        assert!(matches!(outcomes[0][0], Err(BdError::InvalidDelta { .. })));
        assert!(outcomes[0][1].is_ok(), "queue continues past a rejection");
        let expected = builders::path(vec![int(5), int(2)]).unwrap();
        pool.with_session(0, |s| assert_eq!(s.graph(), Some(&expected)))
            .unwrap();
    }

    #[test]
    fn pool_reuses_sessions_across_fanouts() {
        let pool = SessionPool::new(SessionConfig::new());
        let g = builders::path(vec![int(2), int(10), int(3)]).unwrap();
        pool.map_indexed(4, 1, |session, _| session.decompose(&g).unwrap());
        let warm_before = pool.stats();
        pool.map_indexed(4, 1, |session, _| session.decompose(&g).unwrap());
        let warm_after = pool.stats();
        assert!(
            warm_after.hits > warm_before.hits,
            "second fan-out must hit the warmed cache: {warm_before:?} → {warm_after:?}"
        );
    }
}
