//! Deterministic parallel fan-out for decomposition consumers.
//!
//! The deviation sweep, the Sybil grid search, and the audit batches all
//! fan the same shape of work out: `count` independent exact evaluations
//! whose results must come back in input order (so downstream best-pick and
//! interval assembly are bit-identical to a sequential run). This module
//! centralizes the crossbeam scoped-thread idiom used by
//! `prs-dynamics::parallel`: a shared atomic cursor hands out indices
//! (work stealing), each worker writes into its index's slot, and the scope
//! join makes the slots safe to drain in order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for `count` independent jobs: the machine's parallelism,
/// capped by the job count, at least 1.
pub fn worker_threads(count: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(count).max(1)
}

/// Evaluate `f(i)` for `i ∈ 0..count` across `threads` scoped workers and
/// return the results **in index order**, independent of scheduling.
///
/// Falls back to a plain sequential map when a single worker suffices, so
/// callers never pay thread spawn cost for tiny inputs.
pub fn par_map_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, count.max(1));
    if threads == 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                // One uncontended lock per job, not per step: each index is
                // handed to exactly one worker by the cursor.
                *slots[i].lock().expect("slot poisoned") = Some(f(i));
            });
        }
    })
    .expect("parallel worker panicked");
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("cursor covered every index")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = par_map_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        assert_eq!(par_map_indexed(3, 1, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_threads_bounds() {
        assert_eq!(worker_threads(0), 1);
        assert!(worker_threads(1000) >= 1);
        assert!(worker_threads(2) <= 2);
    }
}
