//! Brute-force reference implementation of the bottleneck decomposition.
//!
//! Enumerates all `2^n − 1` candidate sets per round to find the minimum
//! α-ratio and the maximal bottleneck (the union of all minimizers — tight
//! sets are union-closed). Exponential, only for cross-checking the
//! flow-based algorithm on small instances in tests and experiments.

use crate::decomposition::{BottleneckDecomposition, BottleneckPair};
use crate::error::BdError;
use crate::AgentClass;
use prs_graph::{Graph, VertexSet};
use prs_numeric::Rational;

/// Minimum α-ratio over nonempty positive-weight subsets of `alive`, with
/// the union of all minimizing sets (= the maximal bottleneck).
pub fn brute_force_maximal_bottleneck(
    g: &Graph,
    alive: &VertexSet,
) -> Option<(VertexSet, Rational)> {
    let members = alive.to_vec();
    let n = members.len();
    assert!(n <= 20, "brute force limited to 20 alive vertices");
    let mut best: Option<Rational> = None;
    let mut union = VertexSet::empty(g.n());
    for mask in 1u32..(1 << n) {
        let mut s = VertexSet::empty(g.n());
        for (i, &v) in members.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                s.insert(v);
            }
        }
        let Some(alpha) = g.alpha_ratio_in(&s, alive) else {
            continue; // zero-weight set: α undefined
        };
        match &best {
            Some(b) if alpha > *b => {}
            Some(b) if alpha == *b => union.union_with(&s),
            _ => {
                best = Some(alpha);
                union = s;
            }
        }
    }
    best.map(|alpha| (union, alpha))
}

/// Full decomposition by repeated brute-force rounds. Mirrors
/// [`crate::decompose`] exactly, including its error cases.
pub fn brute_force_decompose(g: &Graph) -> Result<BottleneckDecomposition, BdError> {
    if g.n() == 0 {
        return Err(BdError::EmptyGraph);
    }
    let n = g.n();
    let mut alive = VertexSet::full(n);
    let mut pairs = Vec::new();
    let mut pair_of = vec![usize::MAX; n];
    let mut class_of = vec![AgentClass::B; n];
    let mut round = 0;
    let one = Rational::one();

    while !alive.is_empty() {
        if g.set_weight_of(&alive).is_zero() {
            return Err(BdError::ZeroWeightResidue { round });
        }
        // prs-lint: allow(panic, reason = "alive set weight checked nonzero two lines up, so the brute-force minimum exists")
        let (b, alpha) = brute_force_maximal_bottleneck(g, &alive)
            .expect("positive-weight alive set has a defined minimum");
        if alpha.is_zero() {
            return Err(BdError::ZeroAlpha { round });
        }
        // Note on zero-weight vertices: if `Γ(v) ⊆ Γ(B)` and `w_v = 0`,
        // then `α(B ∪ {v}) = α(B)`, so `B ∪ {v}` is itself a minimizer and
        // the union in `brute_force_maximal_bottleneck` already absorbed `v`.
        // No extra closure pass is needed.
        let c = g.neighborhood_in(&b, &alive);
        for v in b.iter() {
            pair_of[v] = round;
            class_of[v] = if alpha == one {
                AgentClass::Both
            } else {
                AgentClass::B
            };
        }
        for v in c.iter() {
            if !b.contains(v) {
                pair_of[v] = round;
                class_of[v] = if alpha == one {
                    AgentClass::Both
                } else {
                    AgentClass::C
                };
            }
        }
        alive.subtract(&b.union(&c));
        pairs.push(BottleneckPair { b, c, alpha });
        round += 1;
    }
    Ok(BottleneckDecomposition::from_parts(
        pairs, pair_of, class_of,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose;
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn agrees_with_flow_on_figure1() {
        let g = builders::figure1_example();
        let flow_bd = decompose(&g).unwrap();
        let brute_bd = brute_force_decompose(&g).unwrap();
        assert_eq!(flow_bd.signature(), brute_bd.signature());
    }

    #[test]
    fn agrees_with_flow_on_random_rings() {
        let mut rng = StdRng::seed_from_u64(2024);
        for n in 3..=9 {
            for _ in 0..20 {
                let g = random::random_ring(&mut rng, n, 1, 12);
                let flow_bd = decompose(&g).unwrap();
                let brute_bd = brute_force_decompose(&g).unwrap();
                assert_eq!(
                    flow_bd.signature(),
                    brute_bd.signature(),
                    "mismatch on ring {:?}",
                    g.weights()
                );
            }
        }
    }

    #[test]
    fn agrees_with_flow_on_random_connected_graphs() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let g = random::random_connected(&mut rng, 8, 0.35, 1, 9);
            let flow_bd = decompose(&g).unwrap();
            let brute_bd = brute_force_decompose(&g).unwrap();
            assert_eq!(
                flow_bd.signature(),
                brute_bd.signature(),
                "mismatch on graph {g:?}"
            );
        }
    }

    #[test]
    fn agrees_with_flow_on_paths_with_zero_leaf() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in 3..=8 {
            for _ in 0..15 {
                let mut weights = random::random_weights(&mut rng, n, 1, 8);
                weights[0] = int(0); // Sybil-style zero leaf
                let g = builders::path(weights).unwrap();
                let flow_bd = decompose(&g).unwrap();
                let brute_bd = brute_force_decompose(&g).unwrap();
                assert_eq!(
                    flow_bd.signature(),
                    brute_bd.signature(),
                    "mismatch on path {:?}",
                    g.weights()
                );
            }
        }
    }
}
