//! Flight recorder against the real session stack: ring wraparound under
//! sustained span traffic, and dump-on-promotion for the adversarial
//! `2^±200` family (the "poisoned round" acceptance scenario).
//!
//! One `#[test]`: the flight recorder's capacity/dump state is
//! process-global, so phases that re-install it must not interleave.

use prs_bd::{decompose, DecompositionSession, SessionConfig};
use prs_graph::builders;
use prs_numeric::{int, Rational};
use prs_trace::metrics::{self, FlightConfig, MetricsConfig};

fn pow2(e: i32) -> Rational {
    Rational::from_integer(2).pow(e)
}

#[test]
fn flight_ring_wraps_and_promotion_dumps_poisoned_round() {
    // Phase 1 — wraparound: a tiny ring under a full decomposition's span
    // traffic holds exactly its capacity, newest events last.
    metrics::install(
        &MetricsConfig::new()
            .with_enabled(false)
            .with_flight(FlightConfig::new().with_capacity(8)),
    );
    let g1 = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
    let mut session = DecompositionSession::detached_with_config(SessionConfig::new());
    assert_eq!(session.decompose(&g1).unwrap(), decompose(&g1).unwrap());
    let ring = metrics::flight_snapshot();
    assert_eq!(
        ring.len(),
        8,
        "a decomposition records far more than 8 events; ring must wrap"
    );
    // Events enter the ring as spans *close*, so within one thread the
    // end timestamps are monotone oldest→newest (start times are not:
    // an enclosing span starts before and closes after its children).
    assert!(
        ring.windows(2)
            .all(|w| w[0].start_ns + w[0].dur_ns <= w[1].start_ns + w[1].dur_ns),
        "ring order must be oldest→newest: {ring:?}"
    );

    // Phase 2 — dump on promotion: 2^±200 scale separation fails the i128
    // admission check, the promotion anomaly fires, and the recorder dumps
    // the thread's recent spans (the rounds leading up to the poisoned
    // one) as a Chrome-trace excerpt.
    let dir = std::env::temp_dir().join(format!("prs-flight-bd-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    metrics::install(
        &MetricsConfig::new().with_flight(
            FlightConfig::new()
                .with_capacity(512)
                .with_dump_dir(&dir)
                .with_max_dumps(64),
        ),
    );
    let dumps_before = metrics::flight_dump_count();
    // The promotion lives on the *warm* certification path, so decompose
    // two members of the family: the first (cold) fills the ring with
    // completed rounds, the second warm-starts and promotes.
    let mut session = DecompositionSession::detached_with_config(SessionConfig::new());
    for j in 0..2i32 {
        let eps = pow2(-200 - j);
        let big = pow2(200 + j);
        let w = vec![eps.clone(), int(1), int(1), big, eps];
        let g = builders::ring(w).unwrap();
        assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
    }
    metrics::disable();
    assert!(
        metrics::flight_dump_count() > dumps_before,
        "the 2^±200 promotion must write a flight dump"
    );

    let mut dumped = String::new();
    for entry in std::fs::read_dir(&dir).unwrap().filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            name.starts_with("flight-") && name.ends_with(".json"),
            "unexpected dump name {name}"
        );
        dumped.push_str(&std::fs::read_to_string(entry.path()).unwrap());
        assert!(
            name.contains("i128_promotion"),
            "dump must be named for its trigger: {name}"
        );
    }
    // The excerpt holds the poisoned round's span traffic: session rounds
    // that closed before the promotion, and the anomaly marker itself.
    assert!(dumped.contains("\"session_round\""), "{dumped}");
    assert!(dumped.contains("\"anomaly\""), "{dumped}");
    assert!(dumped.contains("i128_promotion"), "{dumped}");
    assert_eq!(
        dumped.matches('{').count(),
        dumped.matches('}').count(),
        "dumps must be balanced chrome JSON"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
