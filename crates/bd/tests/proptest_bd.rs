//! Property tests for the bottleneck decomposition and BD allocation.

use proptest::prelude::*;
use prs_bd::{allocate, decompose, reference::brute_force_decompose, AgentClass};
use prs_graph::{builders, Graph};
use prs_numeric::{int, Rational};

/// Random small connected graph from a spanning-tree skeleton plus extras.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..9).prop_flat_map(|n| {
        let parents = proptest::collection::vec(0usize..8, n - 1);
        let extras = proptest::collection::vec((0usize..8, 0usize..8), 0..6);
        let weights = proptest::collection::vec(1i64..12, n);
        (Just(n), parents, extras, weights).prop_map(|(n, parents, extras, weights)| {
            let mut edges: Vec<(usize, usize)> = parents
                .iter()
                .enumerate()
                .map(|(i, &p)| (p % (i + 1), i + 1))
                .collect();
            for (u, v) in extras {
                let (u, v) = (u % n, v % n);
                if u != v && !edges.contains(&(u.min(v), u.max(v))) {
                    edges.push((u.min(v), u.max(v)));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            Graph::new(weights.into_iter().map(int).collect(), &edges).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flow_decomposition_matches_brute_force(g in arb_graph()) {
        let flow_bd = decompose(&g).unwrap();
        let brute_bd = brute_force_decompose(&g).unwrap();
        prop_assert_eq!(flow_bd.signature(), brute_bd.signature(), "on {:?}", g);
    }

    #[test]
    fn proposition3_invariants(g in arb_graph()) {
        let bd = decompose(&g).unwrap();
        prop_assert!(bd.check_proposition3(&g).is_ok());
    }

    #[test]
    fn allocation_realizes_prop6(g in arb_graph()) {
        let bd = decompose(&g).unwrap();
        let alloc = allocate(&g, &bd);
        prop_assert!(alloc.check_budget_balance(&g).is_ok());
        for v in 0..g.n() {
            prop_assert_eq!(alloc.utility(v), bd.utility(&g, v));
        }
    }

    #[test]
    fn utilities_conserve_total_weight(g in arb_graph()) {
        let bd = decompose(&g).unwrap();
        let total: Rational = bd.utilities(&g).iter().sum();
        prop_assert_eq!(total, g.total_weight());
    }

    #[test]
    fn b_class_gives_more_than_it_gets(g in arb_graph()) {
        // For α < 1: B-class agents receive w·α < w (they subsidize),
        // C-class receive w/α > w. Both-class receive exactly w.
        let bd = decompose(&g).unwrap();
        for v in 0..g.n() {
            let u = bd.utility(&g, v);
            let w = g.weight(v);
            match bd.class_of(v) {
                AgentClass::B => prop_assert!(&u <= w),
                AgentClass::C => prop_assert!(&u >= w),
                AgentClass::Both => prop_assert_eq!(&u, w),
            }
        }
    }

    #[test]
    fn uniform_scaling_preserves_shape(g in arb_graph(), k in 2i64..9) {
        // α(S) is scale-invariant: multiplying every weight by k preserves
        // the decomposition shape and all α-ratios.
        let scaled = Graph::new(
            g.weights().iter().map(|w| w * &int(k)).collect(),
            g.edges(),
        ).unwrap();
        let bd1 = decompose(&g).unwrap();
        let bd2 = decompose(&scaled).unwrap();
        prop_assert_eq!(bd1.signature(), bd2.signature());
    }

    #[test]
    fn decomposition_is_deterministic(g in arb_graph()) {
        let a = decompose(&g).unwrap();
        let b = decompose(&g).unwrap();
        prop_assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn path_decompositions_with_zero_leaf(weights in proptest::collection::vec(1i64..10, 2..8)) {
        // Sybil-style: a zero-weight leaf attached to a positive path.
        let mut ws: Vec<Rational> = weights.into_iter().map(int).collect();
        ws.insert(0, Rational::zero());
        let g = builders::path(ws).unwrap();
        let bd = decompose(&g).unwrap();
        prop_assert!(bd.check_proposition3(&g).is_ok());
        prop_assert_eq!(bd.utility(&g, 0), Rational::zero());
        let brute = brute_force_decompose(&g).unwrap();
        prop_assert_eq!(bd.signature(), brute.signature());
    }
}
