//! Concurrency model of [`prs_bd::SessionPool`] under the loom API.
//!
//! The pool's contract: `checkout` hands every concurrent worker a
//! *distinct* session (never aliased), `checkin` returns it with its warm
//! cache intact, and `map_indexed` produces index-ordered results that are
//! bit-identical to cold sequential decomposition regardless of how the
//! scheduler interleaves the workers.
//!
//! Built against the vendored loom shim (`third_party/loom`): `model`
//! re-runs each body many times on real OS threads rather than exploring
//! schedules exhaustively. The bodies are written to the loom API, so they
//! run unchanged (and exhaustively) under the real loom once a registry
//! is available.

use loom::sync::Arc;
use prs_bd::{decompose, SessionConfig, SessionPool};
use prs_graph::builders;
use prs_numeric::int;

#[test]
fn concurrent_checkout_yields_distinct_sessions() {
    loom::model(|| {
        let pool = Arc::new(SessionPool::new(SessionConfig::new()));
        // Pre-warm two sessions into the pool so both threads contend for
        // pooled (not freshly created) sessions.
        pool.checkin(prs_bd::DecompositionSession::detached_with_config(
            SessionConfig::new(),
        ));
        pool.checkin(prs_bd::DecompositionSession::detached_with_config(
            SessionConfig::new(),
        ));

        let handles: Vec<_> = (0..2)
            .map(|k| {
                let pool = Arc::clone(&pool);
                loom::thread::spawn(move || {
                    let mut s = pool.checkout();
                    let g = builders::path(vec![int(1 + k), int(10), int(3)]).unwrap();
                    let bd = s.decompose(&g).unwrap();
                    pool.checkin(s);
                    (g, bd)
                })
            })
            .collect();
        for h in handles {
            let (g, warm) = h.join().unwrap();
            assert_eq!(warm, decompose(&g).unwrap(), "warm ≠ cold on {g:?}");
        }
        // Conservation: both sessions came back; nothing was lost or
        // duplicated by the interleaving.
        let stats = pool.stats();
        assert!(
            stats.hits + stats.misses >= 2,
            "both workers' sessions (and their counters) must be pooled again: {stats:?}"
        );
    });
}

#[test]
fn map_indexed_is_order_deterministic_under_interleaving() {
    loom::model(|| {
        let pool = SessionPool::new(SessionConfig::new());
        let out = pool.map_indexed(6, 3, |session, i| {
            let g = builders::path(vec![int(1 + i as i64), int(7), int(2)]).unwrap();
            session.decompose(&g).unwrap()
        });
        // Index order and exact equality with a cold run, whatever the
        // worker interleaving was.
        for (i, warm) in out.iter().enumerate() {
            let g = builders::path(vec![int(1 + i as i64), int(7), int(2)]).unwrap();
            assert_eq!(warm, &decompose(&g).unwrap(), "slot {i}");
        }
    });
}

#[test]
fn checkin_preserves_warm_caches_across_fanouts() {
    loom::model(|| {
        let pool = SessionPool::new(SessionConfig::new());
        let g = builders::path(vec![int(2), int(9), int(4)]).unwrap();
        pool.map_indexed(4, 2, |session, _| session.decompose(&g).unwrap());
        let before = pool.stats();
        pool.map_indexed(4, 2, |session, _| session.decompose(&g).unwrap());
        let after = pool.stats();
        assert!(
            after.hits > before.hits,
            "second fan-out must reuse warmed sessions: {before:?} → {after:?}"
        );
    });
}
