//! The delta API's correctness contract: every [`Delta`] a session serves —
//! from whichever tier — must leave it **bit-identical** to a cold
//! [`decompose`] of the mutated graph, and every rejected delta must leave
//! it bit-identical to the graph it already held. These tests replay random
//! churn scripts (weight moves, edge insertions/removals, atomic batches,
//! and deliberately invalid events) against long-lived sessions over random
//! rings, random connected graphs, and every shipped `instances/*.prs`
//! file, checking the contract after **every** event — including scripts
//! that straddle the i128 → BigInt certification promotion boundary.

use prs_bd::{decompose, DecompositionSession, Delta, UpdateOutcome};
use prs_graph::{builders, random, Graph};
use prs_numeric::{int, Rational};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `2^e` as an exact rational, `e` possibly very negative.
fn pow2(e: i32) -> Rational {
    Rational::from_integer(2).pow(e)
}

/// Mirror one primitive of `delta` onto `g` with the session's idempotent
/// edge semantics (re-adding a present edge / removing an absent one is a
/// no-op, not an error).
fn apply_to_mirror(g: &mut Graph, delta: &Delta) {
    match delta {
        Delta::SetWeight { v, w } => g.try_set_weight(*v, w.clone()).unwrap(),
        Delta::AddEdge { u, v } => {
            if !g.has_edge(*u, *v) {
                g.add_edge(*u, *v).unwrap();
            }
        }
        Delta::RemoveEdge { u, v } => {
            if g.has_edge(*u, *v) {
                g.remove_edge(*u, *v).unwrap();
            }
        }
        Delta::Batch(items) => {
            for d in items {
                apply_to_mirror(g, d);
            }
        }
    }
}

/// One random event. Mostly valid mutations in `[0, 9]`-ish weight range,
/// with a sprinkling of invalid ones (negative weight, out-of-range vertex,
/// self-loop) that the session must reject atomically.
fn random_delta<R: Rng>(rng: &mut R, g: &Graph) -> Delta {
    let n = g.n();
    match rng.gen_range(0u32..12) {
        // Weights stay strictly positive: Proposition 3's invariants (and
        // the cold engine's debug asserts) assume the paper's w > 0 model.
        0..=4 => Delta::SetWeight {
            v: rng.gen_range(0..n),
            w: int(rng.gen_range(1..=9)),
        },
        5 | 6 => Delta::AddEdge {
            u: rng.gen_range(0..n),
            v: rng.gen_range(0..n), // may be a self-loop → rejected
        },
        7 => {
            if g.edges().is_empty() {
                Delta::AddEdge { u: 0, v: 1 }
            } else {
                let (u, v) = g.edges()[rng.gen_range(0..g.edges().len())];
                Delta::RemoveEdge { u, v }
            }
        }
        8 | 9 => {
            let k = rng.gen_range(1..=3);
            Delta::Batch(
                (0..k)
                    .map(|_| match rng.gen_range(0u32..3) {
                        0 => Delta::SetWeight {
                            v: rng.gen_range(0..n),
                            w: int(rng.gen_range(1..=9)),
                        },
                        1 => Delta::AddEdge {
                            u: rng.gen_range(0..n.saturating_sub(1)),
                            v: rng.gen_range(0..n),
                        },
                        _ => Delta::RemoveEdge {
                            u: rng.gen_range(0..n),
                            v: rng.gen_range(0..n),
                        },
                    })
                    .collect(),
            )
        }
        10 => Delta::SetWeight {
            v: rng.gen_range(0..n),
            w: int(-1), // negative → InvalidDelta, rolled back
        },
        _ => Delta::SetWeight {
            v: n + rng.gen_range(0..3usize), // out of range → InvalidDelta
            w: int(1),
        },
    }
}

/// Replay `events` random events against a session owning `g`, checking
/// bit-identity with a cold decomposition of the mirror after every event.
/// Accepted deltas advance the mirror; rejected ones must leave the session
/// serving the unmutated mirror.
fn churn_matches_cold<R: Rng>(g: Graph, rng: &mut R, events: usize, label: &str) {
    let mut session = DecompositionSession::new(g.clone());
    let mut mirror = g;
    for step in 0..events {
        let delta = random_delta(rng, &mirror);
        let applied = session.apply(delta.clone());
        if applied.is_ok() {
            apply_to_mirror(&mut mirror, &delta);
        }
        // Whether the event committed, was rejected as invalid, or made the
        // graph undecomposable (solver error → rollback), the session must
        // now serve exactly the mirror's cold decomposition. The mirror
        // itself can be undecomposable only if the session accepted a delta
        // it should have rolled back — which is precisely the bug this
        // suite exists to catch.
        let cold = decompose(&mirror);
        match (session.current(), cold) {
            (Ok(inc), Ok(cold)) => {
                assert_eq!(
                    inc, &cold,
                    "{label}: divergence after step {step} ({delta:?})"
                );
            }
            (inc, cold) => panic!(
                "{label}: step {step} left an undecomposable state \
                 (session: {inc:?}, cold: {cold:?})"
            ),
        }
    }
}

#[test]
fn random_ring_churn_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0001);
    for case in 0..6 {
        let n = rng.gen_range(3..9);
        let g = random::random_ring(&mut rng, n, 1, 9);
        churn_matches_cold(g, &mut rng, 30, &format!("ring case {case}"));
    }
}

#[test]
fn random_connected_graph_churn_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(0x5eed_0002);
    for case in 0..4 {
        let n = rng.gen_range(4..9);
        let g = random::random_connected(&mut rng, n, 0.4, 1, 9);
        churn_matches_cold(g, &mut rng, 25, &format!("connected case {case}"));
    }
}

#[test]
fn shipped_instances_survive_churn() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../instances");
    let mut rng = StdRng::seed_from_u64(0x5eed_0003);
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("instances/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("prs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let g = parse_shipped(&text);
        seen += 1;
        churn_matches_cold(g, &mut rng, 25, &path.display().to_string());
    }
    assert!(seen >= 3, "expected the shipped instance set, found {seen}");
}

#[test]
fn churn_across_the_promotion_boundary_stays_bit_identical() {
    // Deterministic script walking the quickstart ring into 400-bit scale
    // separation (which forces the certification tier to promote i128 →
    // BigInt) and back down to the fast tier — with per-event bit-identity
    // throughout, exactly like the small-weight scripts.
    let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
    let mut session = DecompositionSession::new(g.clone());
    let mut mirror = g;
    let before = prs_flow::stats::snapshot();
    let script = vec![
        Delta::SetWeight { v: 0, w: pow2(220) },
        Delta::SetWeight {
            v: 2,
            w: pow2(-220),
        },
        Delta::Batch(vec![
            Delta::SetWeight { v: 1, w: pow2(200) },
            Delta::SetWeight {
                v: 3,
                w: pow2(-200),
            },
        ]),
        Delta::SetWeight { v: 0, w: int(3) },
        Delta::SetWeight { v: 2, w: int(4) },
        Delta::Batch(vec![
            Delta::SetWeight { v: 1, w: int(1) },
            Delta::SetWeight { v: 3, w: int(1) },
        ]),
    ];
    for (step, delta) in script.into_iter().enumerate() {
        let out = session.apply(delta.clone()).unwrap();
        assert_ne!(out, UpdateOutcome::Unchanged, "step {step} moves weights");
        apply_to_mirror(&mut mirror, &delta);
        let cold = decompose(&mirror).unwrap();
        assert_eq!(
            session.current().unwrap(),
            &cold,
            "promotion script diverged at step {step}"
        );
    }
    // The script's whole point: at least one certification promoted. (A
    // `== 0` window would be flaky — counters are process-global — but
    // `> 0` only requires our own promotions to have been counted.)
    let delta = prs_flow::stats::snapshot().since(&before);
    assert!(
        delta.i128_promotions > 0,
        "400-bit scale separation must have promoted: {delta:?}"
    );
    // And the way back down is served without BigInt again eventually —
    // the final state is the original quickstart ring.
    assert_eq!(session.current().unwrap(), &decompose(&mirror).unwrap());
}

/// Minimal reader for the shipped `.prs` format (`# comments`, a kind line,
/// `weights:`, optional `edges:`) — just enough for this suite; the real
/// parser lives in `prs-core`, on which `prs-bd` cannot depend.
fn parse_shipped(text: &str) -> Graph {
    let mut kind = String::new();
    let mut weights: Vec<Rational> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("weights:") {
            weights = rest
                .split_whitespace()
                .map(|t| t.parse::<Rational>().unwrap())
                .collect();
        } else if let Some(rest) = line.strip_prefix("edges:") {
            edges = rest
                .split_whitespace()
                .map(|t| {
                    let (u, v) = t.split_once('-').unwrap();
                    (u.parse().unwrap(), v.parse().unwrap())
                })
                .collect();
        } else {
            kind = line.to_string();
        }
    }
    match kind.as_str() {
        "ring" => builders::ring(weights).unwrap(),
        "path" => builders::path(weights).unwrap(),
        _ => Graph::new(weights, &edges).unwrap(),
    }
}
