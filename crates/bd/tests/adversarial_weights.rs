//! Certification round-trip under adversarial weight magnitudes.
//!
//! The session's warm path re-certifies a remembered decomposition shape
//! on the scaled-integer network (capacities × `p · D`); the cold path
//! derives the shape from scratch on the rational engine. With weights
//! like `2⁻ᵏ` next to `2ᵏ` the scale factor `p · D` is hundreds of bits
//! wide, so any truncation anywhere in the chain would make the two paths
//! disagree. These tests pin the equality on exactly those instances —
//! including the paper's lower-bound family, whose ratios approach the
//! tight bound of 2 through precisely this kind of scale separation.

use proptest::prelude::*;
use prs_bd::{decompose, DecompositionSession, SessionConfig};
use prs_graph::builders;
use prs_numeric::Rational;

/// `2^e` as an exact rational, `e` possibly very negative.
fn pow2(e: i32) -> Rational {
    Rational::from_integer(2).pow(e)
}

/// Random ring weights `2^e` with exponents spread over ±`span`.
fn arb_scale_separated_ring() -> impl Strategy<Value = Vec<Rational>> {
    (3usize..7).prop_flat_map(|n| {
        proptest::collection::vec(-200i32..=200, n)
            .prop_map(|exps| exps.into_iter().map(pow2).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn session_matches_cold_decompose_on_adversarial_rings(weights in arb_scale_separated_ring()) {
        let g = builders::ring(weights).unwrap();
        let mut session = DecompositionSession::detached_with_config(SessionConfig::new());
        // Twice through the session: the first call populates the shape
        // cache (cold inside the session), the second re-certifies the
        // remembered shape on the scaled-integer network (the warm path
        // the optimizers live on). Both must equal the cold engine.
        let first = session.decompose(&g).unwrap();
        let second = session.decompose(&g).unwrap();
        let cold = decompose(&g).unwrap();
        prop_assert_eq!(&first, &cold);
        prop_assert_eq!(&second, &cold);
        // The certified utilities conserve total weight exactly even at
        // 400-bit scale separation.
        let total: Rational = (0..g.n()).map(|v| cold.utility(&g, v)).sum();
        let weight_sum: Rational = g.weights().iter().cloned().sum();
        prop_assert_eq!(total, weight_sum);
    }

    #[test]
    fn warm_hits_do_occur_on_perturbed_family(k in 50u32..300) {
        // A one-parameter family around the lower-bound ring: nearby
        // members share decomposition shapes, so the session must take
        // its warm path (not silently fall back to cold) while agreeing
        // with the cold engine bit-for-bit.
        let mut session = DecompositionSession::detached_with_config(SessionConfig::new());
        for j in 0..4u32 {
            let eps = pow2(-(k as i32) - j as i32);
            let big = pow2(k as i32 + j as i32);
            let w = vec![
                eps.clone(),
                Rational::one(),
                Rational::one(),
                big,
                eps,
            ];
            let g = builders::ring(w).unwrap();
            prop_assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
        }
        let stats = session.stats();
        prop_assert!(stats.hits + stats.warm_starts > 0,
            "scale-separated family must exercise the warm path: {:?}", stats);
    }
}
