//! The checked-i128 certification fast tier: routing and promotion.
//!
//! The session's warm certification path now tries the `i128` engine
//! before BigInt. Two things must hold: shipped-scale instances run
//! entirely on the fast tier (promotion count exactly zero), and
//! adversarial scale separation promotes — with results bit-identical to
//! the cold rational engine either way.
//!
//! Both phases live in a single `#[test]`: the promotion counter is
//! process-global, so a concurrently running promoting test would make a
//! "promotions == 0" window assertion flaky.

use prs_bd::{decompose, DecompositionSession, SessionConfig};
use prs_flow::stats;
use prs_graph::builders;
use prs_numeric::{int, Rational};

fn pow2(e: i32) -> Rational {
    Rational::from_integer(2).pow(e)
}

#[test]
fn fast_tier_serves_small_weights_and_promotes_adversarial_ones() {
    // Phase 1 — shipped-scale weights: the warm certification must run on
    // the i128 engine (i128 max-flows move) and never promote.
    let before = stats::snapshot();
    let mut session = DecompositionSession::detached_with_config(SessionConfig::new());
    let g1 = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
    let g2 = builders::ring(vec![int(4), int(1), int(4), int(1), int(5)]).unwrap();
    assert_eq!(session.decompose(&g1).unwrap(), decompose(&g1).unwrap());
    assert_eq!(session.decompose(&g2).unwrap(), decompose(&g2).unwrap());
    let delta = stats::snapshot().since(&before);
    assert!(
        delta.i128_max_flows > 0,
        "warm certification must land on the i128 fast tier: {delta:?}"
    );
    assert_eq!(
        delta.i128_promotions, 0,
        "small-weight instances must not promote: {delta:?}"
    );

    // Phase 2 — adversarial scale separation: weights 2^±200 make the
    // p·D-scaled capacities hundreds of bits wide, so the admission test
    // fails and the round promotes to BigInt. The decomposition is still
    // bit-identical to the cold rational engine.
    let before = stats::snapshot();
    let mut session = DecompositionSession::detached_with_config(SessionConfig::new());
    for j in 0..2i32 {
        let eps = pow2(-200 - j);
        let big = pow2(200 + j);
        let w = vec![eps.clone(), int(1), int(1), big, eps];
        let g = builders::ring(w).unwrap();
        assert_eq!(session.decompose(&g).unwrap(), decompose(&g).unwrap());
    }
    let delta = stats::snapshot().since(&before);
    let s = session.stats();
    assert!(
        s.hits + s.warm_starts > 0,
        "family must exercise the warm path: {s:?}"
    );
    assert!(
        delta.i128_promotions > 0,
        "400-bit scale separation must promote to BigInt: {delta:?}"
    );
}
