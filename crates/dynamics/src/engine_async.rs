//! Asynchronous (Gauss–Seidel) proportional response.
//!
//! Definition 1 updates all agents simultaneously from the previous round's
//! receipts. Real P2P swarms are not synchronized; this engine updates one
//! agent at a time — each response is computed from the *current* state, so
//! later agents in a round already see earlier agents' new allocations.
//!
//! Empirically the asynchronous schedule converges to the same BD fixed
//! point (tested below), often in fewer sweeps — evidence that the
//! equilibrium the paper analyzes is robust to scheduling, not an artifact
//! of lockstep rounds.

use prs_graph::{Graph, VertexId};

/// Update ordering for the asynchronous engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Agents update in id order every sweep.
    RoundRobin,
    /// A fixed pseudo-random permutation per sweep, derived from the seed
    /// (deterministic across runs).
    Shuffled(u64),
}

/// Asynchronous proportional response engine over `f64`.
pub struct AsyncEngine {
    w: Vec<f64>,
    adj: Vec<Vec<VertexId>>,
    rev: Vec<Vec<usize>>,
    x: Vec<Vec<f64>>,
    schedule: Schedule,
    sweep: usize,
}

impl AsyncEngine {
    /// Start at the Definition 1 even split.
    pub fn new(g: &Graph, schedule: Schedule) -> Self {
        let n = g.n();
        let w = g.weights_f64();
        let adj: Vec<Vec<VertexId>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
        let rev = crate::engine_f64::build_rev(&adj);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|v| {
                let d = adj[v].len().max(1) as f64;
                vec![w[v] / d; adj[v].len()]
            })
            .collect();
        AsyncEngine {
            w,
            adj,
            rev,
            x,
            schedule,
            sweep: 0,
        }
    }

    /// Current utilities (receipts under the current allocation).
    pub fn utilities(&self) -> Vec<f64> {
        let mut u = vec![0.0; self.adj.len()];
        for v in 0..self.adj.len() {
            for (i, &nb) in self.adj[v].iter().enumerate() {
                u[nb] += self.x[v][i];
            }
        }
        u
    }

    /// Number of completed sweeps.
    pub fn sweeps(&self) -> usize {
        self.sweep
    }

    fn order(&self) -> Vec<VertexId> {
        let n = self.adj.len();
        match self.schedule {
            Schedule::RoundRobin => (0..n).collect(),
            Schedule::Shuffled(seed) => {
                // Deterministic Fisher–Yates from a xorshift stream keyed
                // by (seed, sweep).
                let mut order: Vec<VertexId> = (0..n).collect();
                let mut s = seed ^ (self.sweep as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
                let mut next = move || {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s
                };
                for i in (1..n).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
                order
            }
        }
    }

    /// One asynchronous sweep: every agent updates once, in schedule order,
    /// responding to the *current* incoming allocations.
    pub fn sweep_once(&mut self) {
        for v in self.order() {
            let d = self.adj[v].len();
            if d == 0 {
                continue;
            }
            // Receipts right now.
            let mut incoming = vec![0.0; d];
            let mut total = 0.0;
            for (i, slot) in incoming.iter_mut().enumerate() {
                let u = self.adj[v][i];
                let amt = self.x[u][self.rev[v][i]];
                *slot = amt;
                total += amt;
            }
            if total > 0.0 {
                let scale = self.w[v] / total;
                for (slot, &amt) in self.x[v].iter_mut().zip(&incoming) {
                    *slot = amt * scale;
                }
            } else {
                for slot in self.x[v].iter_mut() {
                    *slot = self.w[v] / d as f64;
                }
            }
        }
        self.sweep += 1;
    }

    /// Run sweeps until utilities are within `eps` of `target` (relative)
    /// or the cap is hit. Returns `(converged, sweeps_used)`.
    pub fn run_until_close(
        &mut self,
        target: &[f64],
        eps: f64,
        max_sweeps: usize,
    ) -> (bool, usize) {
        let err = |u: &[f64]| {
            u.iter()
                .zip(target)
                .map(|(g, t)| (g - t).abs() / (1.0 + t.abs()))
                .fold(0.0f64, f64::max)
        };
        let mut used = 0;
        while err(&self.utilities()) > eps {
            if used >= max_sweeps {
                return (false, used);
            }
            self.sweep_once();
            used += 1;
        }
        (true, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_bd::decompose;
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn targets(g: &Graph) -> Vec<f64> {
        decompose(g)
            .unwrap()
            .utilities(g)
            .iter()
            .map(|u| u.to_f64())
            .collect()
    }

    #[test]
    fn round_robin_converges_to_bd() {
        let mut rng = StdRng::seed_from_u64(99);
        for n in [4usize, 6, 9] {
            let g = random::random_ring(&mut rng, n, 1, 9);
            let t = targets(&g);
            let mut eng = AsyncEngine::new(&g, Schedule::RoundRobin);
            // Tolerance matched to the worst case: α = 1 instances converge
            // only sublinearly (~1/t), same as the synchronous engine.
            let (ok, sweeps) = eng.run_until_close(&t, 1e-5, 500_000);
            assert!(
                ok,
                "async round-robin failed on {:?} after {sweeps}",
                g.weights()
            );
        }
    }

    #[test]
    fn shuffled_schedule_converges_to_the_same_point() {
        let mut rng = StdRng::seed_from_u64(101);
        let g = random::random_ring(&mut rng, 7, 1, 9);
        let t = targets(&g);
        for seed in [1u64, 42, 1234] {
            let mut eng = AsyncEngine::new(&g, Schedule::Shuffled(seed));
            let (ok, _) = eng.run_until_close(&t, 1e-5, 500_000);
            assert!(ok, "shuffled({seed}) failed on {:?}", g.weights());
        }
    }

    #[test]
    fn async_often_needs_no_more_sweeps_than_sync() {
        // Not a theorem — a sanity expectation on a benign instance.
        let g = builders::path(vec![int(1), int(2), int(4)]).unwrap();
        let t = targets(&g);
        let mut sync = crate::F64Engine::new(&g);
        let sync_rep = sync.run_until_close(&t, 1e-9, 1_000_000);
        let mut async_eng = AsyncEngine::new(&g, Schedule::RoundRobin);
        let (ok, sweeps) = async_eng.run_until_close(&t, 1e-9, 1_000_000);
        assert!(ok && sync_rep.converged);
        assert!(
            sweeps <= sync_rep.rounds * 2,
            "async {sweeps} vs sync {}",
            sync_rep.rounds
        );
    }

    #[test]
    fn uniform_ring_fixed_point_is_preserved() {
        let g = builders::uniform_ring(5, int(2)).unwrap();
        let mut eng = AsyncEngine::new(&g, Schedule::RoundRobin);
        let before = eng.utilities();
        for _ in 0..5 {
            eng.sweep_once();
        }
        assert_eq!(eng.utilities(), before);
    }
}
