//! Parallel convergence sweeps over many instances.
//!
//! Follows the crossbeam scoped-thread idiom: a shared atomic cursor hands
//! out instance indices (work stealing), each worker owns its engine and
//! writes its result into a disjoint slot — no locks on the hot path, and
//! data-race freedom is enforced by the scope.

// prs-lint: allow-file(panic, reason = "poison/join propagation in the fan-out scaffolding: a worker panic already aborted the sweep, and the all-slots-filled expect is the cursor-coverage invariant")

use crate::engine_f64::{ConvergenceReport, F64Engine};
use prs_graph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-instance outcome of a sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// Index into the input instance list.
    pub instance: usize,
    /// Instance size (vertices).
    pub n: usize,
    /// Convergence outcome.
    pub report: ConvergenceReport,
}

/// Run the proportional response dynamics on every `(graph, target)` pair
/// concurrently, with `threads` workers, stopping each instance at
/// tolerance `eps` or `max_rounds`.
pub fn convergence_sweep(
    instances: &[(Graph, Vec<f64>)],
    eps: f64,
    max_rounds: usize,
    threads: usize,
) -> Vec<SweepResult> {
    let threads = threads.max(1).min(instances.len().max(1));
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<SweepResult>> = vec![None; instances.len()];
    // Hand each worker a disjoint view of the results via split_at_mut-style
    // slot distribution: collect into per-index cells.
    let cells: Vec<parking_lot_free::Cell<SweepResult>> = (0..instances.len())
        .map(|_| parking_lot_free::Cell::new())
        .collect();

    crossbeam::scope(|scope| {
        let (cursor, cells) = (&cursor, &cells);
        for w in 0..threads {
            scope.spawn(move |_| {
                {
                    let mut sp = prs_trace::span("dynamics", "par_worker");
                    sp.attr("worker", || w.to_string());
                    let mut jobs: u64 = 0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= instances.len() {
                            break;
                        }
                        jobs += 1;
                        let (g, target) = &instances[i];
                        let mut eng = F64Engine::new(g);
                        let report = eng.run_until_close(target, eps, max_rounds);
                        cells[i].set(SweepResult {
                            instance: i,
                            n: g.n(),
                            report,
                        });
                    }
                    sp.attr("jobs", || jobs.to_string());
                }
                // Last act: the scope join can race TLS destructors.
                prs_trace::flush_thread();
            });
        }
    })
    .expect("sweep worker panicked");

    for (i, cell) in cells.into_iter().enumerate() {
        results[i] = cell.take();
    }
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// A minimal one-shot cell: written at most once by exactly one worker (the
/// cursor hands each index to a single thread), then read after the scope
/// joins. The `Mutex`-free alternative would be `UnsafeCell`; a tiny
/// spin-free `Once`-style wrapper over `std::sync::Mutex` keeps it obviously
/// sound while staying off the hot path (one lock per *instance*, not per
/// round).
mod parking_lot_free {
    use std::sync::Mutex;

    pub struct Cell<T>(Mutex<Option<T>>);

    impl<T> Cell<T> {
        pub fn new() -> Self {
            Cell(Mutex::new(None))
        }
        pub fn set(&self, value: T) {
            let mut guard = self.0.lock().expect("poisoned");
            debug_assert!(guard.is_none(), "slot written twice");
            *guard = Some(value);
        }
        pub fn take(self) -> Option<T> {
            self.0.into_inner().expect("poisoned")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_bd::decompose;
    use prs_graph::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_instances(count: usize, n: usize, seed: u64) -> Vec<(Graph, Vec<f64>)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let g = random::random_ring(&mut rng, n, 1, 10);
                let bd = decompose(&g).unwrap();
                let target = bd.utilities(&g).iter().map(|u| u.to_f64()).collect();
                (g, target)
            })
            .collect()
    }

    #[test]
    fn sweep_converges_all_instances() {
        let instances = make_instances(16, 8, 5);
        let results = convergence_sweep(&instances, 1e-7, 200_000, 4);
        assert_eq!(results.len(), 16);
        for r in &results {
            assert!(
                r.report.converged,
                "instance {} failed: {:?}",
                r.instance, r.report
            );
        }
    }

    #[test]
    fn sweep_matches_sequential() {
        let instances = make_instances(6, 6, 9);
        let par = convergence_sweep(&instances, 1e-8, 100_000, 3);
        for (i, (g, target)) in instances.iter().enumerate() {
            let mut eng = crate::F64Engine::new(g);
            let seq = eng.run_until_close(target, 1e-8, 100_000);
            assert_eq!(par[i].report, seq, "instance {i}");
        }
    }

    #[test]
    fn single_thread_and_oversubscribed_agree() {
        let instances = make_instances(5, 7, 13);
        let a = convergence_sweep(&instances, 1e-7, 100_000, 1);
        let b = convergence_sweep(&instances, 1e-7, 100_000, 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.report, y.report);
        }
    }
}
