//! Fast floating-point proportional response engine.

use prs_bd::Allocation;
use prs_graph::{Graph, VertexId};
use prs_p2psim::CsrTopology;

/// Outcome of a convergence run ([`F64Engine::run_until_close`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ConvergenceReport {
    /// Whether the (cycle-averaged) utilities came within `eps` of the target.
    pub converged: bool,
    /// Rounds executed.
    pub rounds: usize,
    /// Final cycle-averaged error against the target.
    pub final_error: f64,
    /// Final raw (unaveraged) error; `raw_error ≫ final_error` indicates a
    /// period-2 oscillation (possible on bipartite structures).
    pub raw_error: f64,
}

/// Proportional response dynamics over `f64`.
///
/// ```
/// use prs_graph::builders;
/// use prs_numeric::int;
/// use prs_dynamics::F64Engine;
///
/// let g = builders::path(vec![int(1), int(4)]).unwrap();
/// let mut engine = F64Engine::new(&g);
/// engine.run(5);
/// // The 2-agent exchange is at its fixed point: each receives the
/// // other's whole weight.
/// assert_eq!(engine.utilities(), &[4.0, 1.0]);
/// ```
///
/// State is the full allocation `x_vu(t)` stored as one flat arc lane over
/// the shared [`CsrTopology`] from `prs-p2psim` (the same struct-of-arrays
/// layout the swarm engine runs on), plus the received totals (the
/// utilities). `topo.rev(a)` maps each arc to its reverse, so a round is
/// two flat passes with no hashing and no per-round allocation.
pub struct F64Engine {
    w: Vec<f64>,
    topo: CsrTopology,
    /// `x[a]`: what arc `a`'s owner currently sends along it.
    x: Vec<f64>,
    x_next: Vec<f64>,
    /// `received[v] = U_v(t)` under the current `x`.
    received: Vec<f64>,
    /// Utilities one round earlier (for cycle-averaged convergence checks).
    prev_received: Vec<f64>,
    round: usize,
}

impl F64Engine {
    /// Start the dynamics at the Definition 1 initial condition
    /// `x_vu(0) = w_v / d_v`.
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let w = g.weights_f64();
        let topo = CsrTopology::from_graph(g);
        let mut x = vec![0.0; topo.arena_len()];
        for v in 0..n {
            let d = topo.degree(v).max(1) as f64;
            let even = w[v] / d;
            for a in topo.range(v) {
                x[a] = even;
            }
        }
        let x_next = x.clone();
        let mut eng = F64Engine {
            w,
            topo,
            x,
            x_next,
            received: vec![0.0; n],
            prev_received: vec![0.0; n],
            round: 0,
        };
        eng.recompute_received();
        eng.prev_received.copy_from_slice(&eng.received);
        eng
    }

    /// Start the dynamics at an arbitrary allocation (e.g. the exact BD
    /// allocation, to verify it is a fixed point).
    pub fn with_allocation(g: &Graph, alloc: &Allocation) -> Self {
        let mut eng = Self::new(g);
        for v in 0..g.n() {
            for a in eng.topo.range(v) {
                eng.x[a] = alloc.sent(v, eng.topo.peer_at(a)).to_f64();
            }
        }
        eng.recompute_received();
        eng.prev_received.copy_from_slice(&eng.received);
        eng
    }

    fn recompute_received(&mut self) {
        self.received.iter_mut().for_each(|r| *r = 0.0);
        for v in 0..self.topo.n_slots() {
            for a in self.topo.range(v) {
                self.received[self.topo.peer_at(a)] += self.x[a];
            }
        }
    }

    /// Current round index `t`.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current utilities `U_v(t)` (total received this round).
    pub fn utilities(&self) -> &[f64] {
        &self.received
    }

    /// Utilities averaged over the last two rounds (stable under period-2
    /// oscillation).
    pub fn averaged_utilities(&self) -> Vec<f64> {
        self.received
            .iter()
            .zip(&self.prev_received)
            .map(|(a, b)| 0.5 * (a + b))
            .collect()
    }

    /// What `v` currently sends to `u` (0 if not adjacent).
    pub fn sent(&self, v: VertexId, u: VertexId) -> f64 {
        match self.topo.find_arc(v, u) {
            Some(a) => self.x[a],
            None => 0.0,
        }
    }

    /// Execute one round of equation (1).
    pub fn step(&mut self) {
        for v in 0..self.topo.n_slots() {
            let total = self.received[v];
            if total > 0.0 {
                let scale = self.w[v] / total;
                for a in self.topo.range(v) {
                    // What the peer sent to v last round:
                    let incoming = self.x[self.topo.rev(a)];
                    self.x_next[a] = incoming * scale;
                }
            } else {
                // Nothing received (all neighbors weightless): fall back to
                // the even split; with w_v = 0 this is all zeros anyway.
                let d = self.topo.degree(v).max(1) as f64;
                let even = self.w[v] / d;
                for a in self.topo.range(v) {
                    self.x_next[a] = even;
                }
            }
        }
        std::mem::swap(&mut self.x, &mut self.x_next);
        self.prev_received.copy_from_slice(&self.received);
        self.recompute_received();
        self.round += 1;
    }

    /// Run up to `max_rounds` rounds, stopping once the cycle-averaged
    /// utilities are within `eps` of `target` (relative to `1 + |target|`).
    ///
    /// On instances whose terminal `α = 1` component has nontrivial structure
    /// the dynamics converge sublinearly: the cycle-averaged utilities behave
    /// like `u* + c/t`, so reaching `eps` directly needs `Θ(1/eps)` rounds.
    /// To cut through that tail, the loop snapshots the averaged utilities at
    /// doubling checkpoints and also tests the Richardson extrapolation
    /// `2·ū(2t) − ū(t)`, which cancels the `c/t` term and reaches the fixed
    /// point orders of magnitude sooner (see `docs/NUMERICS.md`). Instances
    /// that converge geometrically satisfy the plain check first, so the
    /// extrapolation never slows anything down.
    pub fn run_until_close(
        &mut self,
        target: &[f64],
        eps: f64,
        max_rounds: usize,
    ) -> ConvergenceReport {
        assert_eq!(target.len(), self.received.len());
        // One span per run with doubling-checkpoint instants; per-round
        // spans would swamp the recorder (runs reach millions of rounds).
        let mut sp = prs_trace::span("dynamics", "run_until_close");
        sp.attr("n", || self.received.len().to_string());
        let mut err = error_vs(&self.averaged_utilities(), target);
        let mut raw = error_vs(&self.received, target);
        let mut rounds = 0;
        // Richardson checkpoints: snapshot ū at t, compare at 2t.
        let mut next_check = 16usize;
        let mut snapshot: Option<Vec<f64>> = None;
        while err > eps && rounds < max_rounds {
            self.step();
            rounds += 1;
            err = error_vs(&self.averaged_utilities(), target);
            raw = error_vs(&self.received, target);
            if rounds == next_check {
                let avg = self.averaged_utilities();
                if let Some(prev) = &snapshot {
                    let extrapolated: Vec<f64> =
                        avg.iter().zip(prev).map(|(a, b)| 2.0 * a - b).collect();
                    err = err.min(error_vs(&extrapolated, target));
                }
                snapshot = Some(avg);
                next_check = next_check.saturating_mul(2);
                if prs_trace::is_enabled() {
                    prs_trace::instant("dynamics", "convergence_checkpoint", || {
                        vec![("round", rounds.to_string()), ("error", format!("{err:e}"))]
                    });
                }
            }
        }
        sp.attr("rounds", || rounds.to_string());
        sp.attr("converged", || (err <= eps).to_string());
        sp.attr("final_error", || format!("{err:e}"));
        ConvergenceReport {
            converged: err <= eps,
            rounds,
            final_error: err,
            raw_error: raw,
        }
    }

    /// Run exactly `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }
}

/// Reverse-arc index: `rev[v][i]` is the position of `v` in the neighbor
/// list of `adj[v][i]`. (Nested-vec form, used by the async and exact
/// engines; the f64 engine uses the flat `CsrTopology` equivalent.)
pub(crate) fn build_rev(adj: &[Vec<VertexId>]) -> Vec<Vec<usize>> {
    adj.iter()
        .enumerate()
        .map(|(v, nb)| {
            nb.iter()
                .map(|&u| {
                    adj[u]
                        .binary_search(&v)
                        // prs-lint: allow(panic, reason = "Graph guarantees symmetric sorted adjacency; asymmetry is a graph-construction bug")
                        .expect("undirected adjacency is symmetric")
                })
                .collect()
        })
        .collect()
}

fn error_vs(got: &[f64], target: &[f64]) -> f64 {
    got.iter()
        .zip(target)
        .map(|(g, t)| (g - t).abs() / (1.0 + t.abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_bd::{allocate, decompose};
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bd_targets(g: &Graph) -> Vec<f64> {
        let bd = decompose(g).unwrap();
        bd.utilities(g).iter().map(|u| u.to_f64()).collect()
    }

    #[test]
    fn two_agents_converge_instantly() {
        let g = builders::path(vec![int(1), int(4)]).unwrap();
        let mut eng = F64Engine::new(&g);
        let rep = eng.run_until_close(&bd_targets(&g), 1e-12, 10);
        assert!(rep.converged);
        assert_eq!(eng.sent(0, 1), 1.0);
        assert_eq!(eng.sent(1, 0), 4.0);
    }

    #[test]
    fn uniform_ring_is_fixed_point_of_initial_condition() {
        let g = builders::uniform_ring(6, int(2)).unwrap();
        let mut eng = F64Engine::new(&g);
        let before: Vec<f64> = eng.utilities().to_vec();
        eng.run(5);
        assert_eq!(eng.utilities(), &before[..]);
        assert!(eng.utilities().iter().all(|&u| (u - 2.0).abs() < 1e-15));
    }

    #[test]
    fn asymmetric_path_converges_to_prop6() {
        let g = builders::path(vec![int(1), int(2), int(4)]).unwrap();
        let target = bd_targets(&g); // (2/5)·1, 2/(2/5), 4·(2/5) = 0.4, 5, 1.6
        let mut eng = F64Engine::new(&g);
        let rep = eng.run_until_close(&target, 1e-9, 10_000);
        assert!(rep.converged, "report: {rep:?}");
    }

    #[test]
    fn random_rings_converge_to_prop6() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [3usize, 4, 6, 9, 15] {
            let g = random::random_ring(&mut rng, n, 1, 10);
            let target = bd_targets(&g);
            let mut eng = F64Engine::new(&g);
            let rep = eng.run_until_close(&target, 1e-7, 200_000);
            assert!(rep.converged, "n={n} weights={:?} {rep:?}", g.weights());
        }
    }

    #[test]
    fn random_connected_graphs_converge_to_prop6() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..5 {
            let g = random::random_connected(&mut rng, 10, 0.3, 1, 10);
            let target = bd_targets(&g);
            let mut eng = F64Engine::new(&g);
            let rep = eng.run_until_close(&target, 1e-7, 200_000);
            assert!(rep.converged, "{rep:?} on {g:?}");
        }
    }

    #[test]
    fn bd_allocation_is_a_fixed_point() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..10 {
            let g = random::random_ring(&mut rng, 7, 1, 9);
            let bd = decompose(&g).unwrap();
            let alloc = allocate(&g, &bd);
            let mut eng = F64Engine::with_allocation(&g, &alloc);
            let before: Vec<f64> = eng.utilities().to_vec();
            eng.run(3);
            for (a, b) in eng.utilities().iter().zip(&before) {
                assert!((a - b).abs() < 1e-9, "fixed point drifted: {a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_weight_leaf_sends_nothing() {
        let g = builders::path(vec![int(0), int(2), int(3)]).unwrap();
        let mut eng = F64Engine::new(&g);
        eng.run(50);
        assert_eq!(eng.sent(0, 1), 0.0);
        // Vertex 1's received equals what vertex 2 sends it; utilities match
        // the closed form eventually.
        let target = bd_targets(&g);
        let rep = eng.run_until_close(&target, 1e-9, 100_000);
        assert!(rep.converged, "{rep:?}");
    }
}
