//! Exact rational proportional response engine.
//!
//! Runs equation (1) in exact arithmetic. Denominators compound every round,
//! so this engine is for short horizons on small instances — where it serves
//! two purposes: certifying that the `f64` engine has not drifted, and
//! verifying *exactly* that the BD allocation is a fixed point of the
//! dynamics (a statement about rationals that floating point can only
//! approximate).

use crate::engine_f64::build_rev;
use prs_bd::Allocation;
use prs_graph::{Graph, VertexId};
use prs_numeric::Rational;

/// Proportional response dynamics over exact rationals.
pub struct ExactEngine {
    w: Vec<Rational>,
    adj: Vec<Vec<VertexId>>,
    rev: Vec<Vec<usize>>,
    x: Vec<Vec<Rational>>,
    received: Vec<Rational>,
    round: usize,
}

impl ExactEngine {
    /// Start at the Definition 1 initial condition `x_vu(0) = w_v / d_v`.
    pub fn new(g: &Graph) -> Self {
        let n = g.n();
        let adj: Vec<Vec<VertexId>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
        let rev = build_rev(&adj);
        let x: Vec<Vec<Rational>> = (0..n)
            .map(|v| {
                let d = Rational::from_integer(adj[v].len().max(1) as i64);
                vec![g.weight(v) / &d; adj[v].len()]
            })
            .collect();
        let mut eng = ExactEngine {
            w: g.weights().to_vec(),
            adj,
            rev,
            x,
            received: vec![Rational::zero(); n],
            round: 0,
        };
        eng.recompute_received();
        eng
    }

    /// Start at an arbitrary exact allocation.
    pub fn with_allocation(g: &Graph, alloc: &Allocation) -> Self {
        let mut eng = Self::new(g);
        for v in 0..g.n() {
            for (i, &u) in eng.adj[v].clone().iter().enumerate() {
                eng.x[v][i] = alloc.sent(v, u);
            }
        }
        eng.recompute_received();
        eng
    }

    fn recompute_received(&mut self) {
        self.received.iter_mut().for_each(|r| *r = Rational::zero());
        for v in 0..self.adj.len() {
            for (i, &u) in self.adj[v].iter().enumerate() {
                self.received[u] += &self.x[v][i];
            }
        }
    }

    /// Current round index.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Current exact utilities.
    pub fn utilities(&self) -> &[Rational] {
        &self.received
    }

    /// What `v` currently sends to `u`.
    pub fn sent(&self, v: VertexId, u: VertexId) -> Rational {
        match self.adj[v].binary_search(&u) {
            Ok(i) => self.x[v][i].clone(),
            Err(_) => Rational::zero(),
        }
    }

    /// One exact round of equation (1).
    pub fn step(&mut self) {
        let mut x_next = self.x.clone();
        for (v, x_next_v) in x_next.iter_mut().enumerate() {
            let total = &self.received[v];
            if total.is_positive() {
                let scale = &self.w[v] / total;
                for (i, &u) in self.adj[v].iter().enumerate() {
                    x_next_v[i] = &self.x[u][self.rev[v][i]] * &scale;
                }
            } else {
                let d = Rational::from_integer(self.adj[v].len().max(1) as i64);
                for slot in x_next_v.iter_mut() {
                    *slot = &self.w[v] / &d;
                }
            }
        }
        self.x = x_next;
        self.recompute_received();
        self.round += 1;
    }

    /// Run `rounds` exact rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_bd::{allocate, decompose};
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bd_allocation_is_exactly_fixed() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..8 {
            let g = random::random_ring(&mut rng, 6, 1, 9);
            let bd = decompose(&g).unwrap();
            let alloc = allocate(&g, &bd);
            let mut eng = ExactEngine::with_allocation(&g, &alloc);
            let u0 = eng.utilities().to_vec();
            eng.step();
            // Not just utilities — the whole allocation must be unchanged.
            for v in 0..g.n() {
                for &u in g.neighbors(v) {
                    assert_eq!(
                        eng.sent(v, u),
                        alloc.sent(v, u),
                        "allocation moved at ({v},{u}) on {:?}",
                        g.weights()
                    );
                }
            }
            assert_eq!(eng.utilities(), &u0[..]);
        }
    }

    #[test]
    fn exact_matches_f64_engine_short_horizon() {
        let g = builders::path(vec![int(1), int(2), int(4)]).unwrap();
        let mut exact = ExactEngine::new(&g);
        let mut fast = crate::F64Engine::new(&g);
        for _ in 0..12 {
            exact.step();
            fast.step();
        }
        for v in 0..g.n() {
            let e = exact.utilities()[v].to_f64();
            let f = fast.utilities()[v];
            assert!((e - f).abs() < 1e-9, "v={v}: exact {e} vs f64 {f}");
        }
    }

    #[test]
    fn conservation_every_round() {
        let g = builders::ring(vec![int(3), int(1), int(4), int(1), int(5)]).unwrap();
        let total = g.total_weight();
        let mut eng = ExactEngine::new(&g);
        for _ in 0..6 {
            eng.step();
            let sum: prs_numeric::Rational = eng.utilities().iter().sum();
            assert_eq!(sum, total, "resource must be conserved exactly");
        }
    }

    #[test]
    fn initial_condition_is_even_split() {
        let g = builders::uniform_ring(4, int(6)).unwrap();
        let eng = ExactEngine::new(&g);
        for v in 0..4 {
            for &u in g.neighbors(v) {
                assert_eq!(eng.sent(v, u), int(3));
            }
        }
    }
}
