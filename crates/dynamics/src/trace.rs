//! Convergence-trace analysis for the proportional response dynamics.
//!
//! Wu–Zhang prove convergence but give no rate; empirically the utility
//! error decays geometrically with a rate governed by how well-separated
//! the α-ratios of adjacent bottleneck pairs are. This module records
//! error traces and estimates that rate — used by experiment E4's analysis
//! and handy for diagnosing slow instances.

use crate::engine_f64::F64Engine;
use prs_graph::Graph;

/// A recorded error trace of one dynamics run.
#[derive(Clone, Debug)]
pub struct ConvergenceTrace {
    /// `errors[t]` = max-norm relative distance of the cycle-averaged
    /// utilities from the target after `t` rounds.
    pub errors: Vec<f64>,
}

impl ConvergenceTrace {
    /// Run the dynamics for `rounds` rounds against `target`, recording the
    /// error after every round.
    pub fn record(g: &Graph, target: &[f64], rounds: usize) -> ConvergenceTrace {
        let mut sp = prs_trace::span("dynamics", "convergence_trace");
        sp.attr("n", || g.n().to_string());
        sp.attr("rounds", || rounds.to_string());
        let mut eng = F64Engine::new(g);
        let mut errors = Vec::with_capacity(rounds + 1);
        let err = |eng: &F64Engine| {
            eng.averaged_utilities()
                .iter()
                .zip(target)
                .map(|(g, t)| (g - t).abs() / (1.0 + t.abs()))
                .fold(0.0f64, f64::max)
        };
        errors.push(err(&eng));
        // Per-round spans would swamp the buffer on long runs (E4 uses
        // hundreds of thousands of rounds), so the unified trace stream
        // carries log-spaced checkpoint instants instead.
        let mut checkpoint = 1usize;
        for t in 0..rounds {
            eng.step();
            errors.push(err(&eng));
            if t + 1 == checkpoint {
                checkpoint *= 2;
                if prs_trace::is_enabled() {
                    let e = errors.last().copied().unwrap_or(0.0);
                    prs_trace::instant("dynamics", "convergence_checkpoint", || {
                        vec![("round", (t + 1).to_string()), ("error", format!("{e:e}"))]
                    });
                }
            }
        }
        let trace = ConvergenceTrace { errors };
        sp.attr("final_error", || format!("{:e}", trace.final_error()));
        if let Some(rate) = trace.geometric_rate() {
            sp.attr("geometric_rate", || format!("{rate:.6}"));
        }
        trace
    }

    /// Estimate the geometric decay rate from the tail of the trace:
    /// the median of `e_{t+1}/e_t` over the last half (ignoring rounds
    /// where the error already hit floating-point noise).
    ///
    /// Returns `None` when fewer than 4 usable tail points exist — e.g. the
    /// run converged immediately.
    pub fn geometric_rate(&self) -> Option<f64> {
        let tail_start = self.errors.len() / 2;
        let mut ratios: Vec<f64> = self
            .errors
            .windows(2)
            .skip(tail_start)
            .filter(|w| w[0] > 1e-14 && w[1] > 1e-14)
            .map(|w| w[1] / w[0])
            .collect();
        if ratios.len() < 4 {
            return None;
        }
        ratios.sort_by(f64::total_cmp);
        Some(ratios[ratios.len() / 2])
    }

    /// First round at which the error drops below `eps` (`None` if never).
    pub fn rounds_to(&self, eps: f64) -> Option<usize> {
        self.errors.iter().position(|&e| e <= eps)
    }

    /// Final recorded error.
    pub fn final_error(&self) -> f64 {
        *self.errors.last().expect("nonempty trace") // prs-lint: allow(panic, reason = "the engine records an error every round and runs at least one round before exposing a trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_bd::decompose;
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn targets(g: &Graph) -> Vec<f64> {
        decompose(g)
            .unwrap()
            .utilities(g)
            .iter()
            .map(|u| u.to_f64())
            .collect()
    }

    #[test]
    fn trace_is_monotone_ish_and_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random::random_ring(&mut rng, 6, 1, 9);
        let t = targets(&g);
        let trace = ConvergenceTrace::record(&g, &t, 3000);
        assert!(trace.final_error() < 1e-6, "final {}", trace.final_error());
        assert!(trace.rounds_to(1e-4).is_some());
        // Errors shrink by orders of magnitude overall.
        assert!(trace.final_error() < trace.errors[1].max(1e-12));
    }

    #[test]
    fn geometric_rate_below_one() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = random::random_ring(&mut rng, 8, 1, 9);
        let t = targets(&g);
        let trace = ConvergenceTrace::record(&g, &t, 2000);
        if let Some(rate) = trace.geometric_rate() {
            assert!(rate < 1.0 + 1e-9, "rate {rate} not contractive");
            assert!(rate > 0.0);
        }
    }

    #[test]
    fn uniform_ring_converges_instantly() {
        let g = builders::uniform_ring(5, int(2)).unwrap();
        let t = targets(&g);
        let trace = ConvergenceTrace::record(&g, &t, 10);
        assert!(trace.errors.iter().all(|&e| e < 1e-12));
        assert_eq!(trace.rounds_to(1e-9), Some(0));
        // No usable decay tail on an instantly-converged run.
        assert_eq!(trace.geometric_rate(), None);
    }
}
