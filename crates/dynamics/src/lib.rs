#![warn(missing_docs)]
//! # prs-dynamics — proportional response dynamics
//!
//! Definition 1 of the paper (after Wu–Zhang STOC'07): every agent starts by
//! splitting its resource evenly among its neighbors,
//! `x_vu(0) = w_v / d_v`, and from then on responds proportionally to what it
//! received in the previous period,
//!
//! ```text
//! x_vu(t+1) = w_v · x_uv(t) / Σ_{k ∈ Γ(v)} x_kv(t).
//! ```
//!
//! Wu–Zhang proved these dynamics converge to the fixed-point **BD
//! allocation** (Proposition 6), which `prs-bd` computes in closed form —
//! giving this crate a ground truth to converge against, and the test-suite
//! a strong cross-validation: a distributed, message-passing protocol and an
//! exact combinatorial algorithm must agree.
//!
//! Two engines are provided:
//!
//! * [`F64Engine`] — fast floating-point iteration for large instances and
//!   benchmarks, with per-round utility traces and convergence detection
//!   (both cycle-averaged and raw).
//! * [`ExactEngine`] — exact rational iteration (denominators grow with the
//!   round count; intended for small instances and short horizons, where it
//!   certifies the `f64` engine bit-for-bit against drift).
//!
//! [`parallel::convergence_sweep`] runs many instances concurrently with
//! crossbeam scoped threads (one instance per task, work-stealing via a
//! shared atomic cursor).

pub mod engine_async;
pub mod engine_exact;
pub mod engine_f64;
pub mod parallel;
pub mod trace;

pub use engine_async::{AsyncEngine, Schedule};
pub use engine_exact::ExactEngine;
pub use engine_f64::{ConvergenceReport, F64Engine};
pub use trace::ConvergenceTrace;
