//! Property tests for the Sybil machinery beyond the root-level claims
//! suite: structural invariants of the split construction, optimizer
//! dominance relations, and the stage-audit contract.

use proptest::prelude::*;
use prs_graph::builders;
use prs_numeric::{int, ratio, Rational};
use prs_sybil::{
    attack::{best_sybil_split, AttackConfig},
    classify_initial_path, honest_split,
    split::SybilSplitFamily,
    stages::audit_stages,
    InitialPathCase,
};

fn arb_ring_weights() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(1i64..14, 3..8)
}

fn ring_of(weights: &[i64]) -> prs_graph::Graph {
    builders::ring(weights.iter().map(|&w| int(w)).collect()).unwrap()
}

fn quick() -> AttackConfig {
    AttackConfig::new()
        .with_grid(10)
        .with_zoom_levels(2)
        .with_keep(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn split_payoff_invariant_under_path_reversal(
        weights in arb_ring_weights(),
        v_raw in 0usize..8,
        num in 0i64..=16,
    ) {
        // Reversing the split path is a relabeling, so the copies' total
        // payoff is invariant. (Note U(w1) ≠ U(w_v − w1) in general: the
        // walk starts at the *successor*, so swapping the endpoint weights
        // does NOT mirror the interior unless the ring is palindromic —
        // a subtlety this suite originally got wrong and proptest caught.)
        let g = ring_of(&weights);
        let v = v_raw % g.n();
        let fam = SybilSplitFamily::new(g.clone(), v);
        let w_v = g.weight(v).clone();
        let w1 = &w_v * &ratio(num, 16);
        let w2 = &w_v - &w1;
        let direct = fam.payoff(&w1).map(|(x, y)| &x + &y);

        // Build the reversed path by hand and decompose it.
        let (p, p1, p2) = fam.path_at(&w1, &w2);
        let n = p.n();
        let rev_weights: Vec<_> = (0..n).map(|i| p.weight(n - 1 - i).clone()).collect();
        let rev = builders::path(rev_weights).unwrap();
        let reversed = prs_bd::decompose(&rev).ok().map(|bd| {
            &bd.utility(&rev, n - 1 - p1) + &bd.utility(&rev, n - 1 - p2)
        });
        prop_assert_eq!(direct, reversed, "reversal changed the payoff on {:?} v={}", weights, v);
    }

    #[test]
    fn optimizer_dominates_honest_and_midpoint(weights in arb_ring_weights(), v_raw in 0usize..8) {
        let g = ring_of(&weights);
        let v = v_raw % g.n();
        let out = best_sybil_split(&g, v, &quick());
        // Dominates the honest split…
        let (w1h, _) = honest_split(&g, v);
        let fam = SybilSplitFamily::new(g.clone(), v);
        if let Some((a, b)) = fam.payoff(&w1h) {
            prop_assert!(out.best.total() >= &a + &b);
        }
        // …and the even split.
        let half = &g.weight(v).clone() / &int(2);
        if let Some((a, b)) = fam.payoff(&half) {
            prop_assert!(out.best.total() >= &a + &b);
        }
    }

    #[test]
    fn more_effort_never_hurts(weights in arb_ring_weights(), v_raw in 0usize..8) {
        let g = ring_of(&weights);
        let v = v_raw % g.n();
        let coarse = best_sybil_split(&g, v, &AttackConfig::new().with_grid(8).with_zoom_levels(1).with_keep(1));
        let fine = best_sybil_split(&g, v, &AttackConfig::new().with_grid(24).with_zoom_levels(3).with_keep(2));
        prop_assert!(
            fine.best.total() >= coarse.best.total(),
            "finer search lost ground on {:?} v={}", weights, v
        );
    }

    #[test]
    fn initial_case_matches_ring_class(weights in arb_ring_weights(), v_raw in 0usize..8) {
        let g = ring_of(&weights);
        let v = v_raw % g.n();
        let rep = classify_initial_path(&g, v);
        match rep.ring_class {
            prs_bd::AgentClass::C => prop_assert!(matches!(
                rep.case,
                InitialPathCase::C1 | InitialPathCase::C2 | InitialPathCase::C3
            )),
            prs_bd::AgentClass::B => prop_assert!(matches!(rep.case, InitialPathCase::D1)),
            prs_bd::AgentClass::Both => unreachable!("folded into C"),
        }
        // The honest split always exhausts the budget.
        prop_assert_eq!(&rep.w1_0 + &rep.w2_0, g.weight(v).clone());
    }

    #[test]
    fn stage_audit_contract(weights in arb_ring_weights(), v_raw in 0usize..8) {
        let g = ring_of(&weights);
        let v = v_raw % g.n();
        let out = best_sybil_split(&g, v, &quick());
        let w2_star = g.weight(v) - &out.best.w1;
        if let Some(rep) = audit_stages(&g, v, &out.best.w1, &w2_star) {
            // Whatever the trajectory, every audited inequality must hold
            // and the corners must telescope to the endpoints.
            prop_assert!(rep.all_hold(), "checks {:?} on {:?}", rep.checks, weights);
            let total_delta = &(&rep.stage1.0 + &rep.stage1.1) + &(&rep.stage2.0 + &rep.stage2.1);
            let end_minus_start =
                &(&rep.fin.u1 + &rep.fin.u2) - &(&rep.initial.u1 + &rep.initial.u2);
            prop_assert_eq!(total_delta, end_minus_start);
        }
    }

    #[test]
    fn general_partition_count_sanity(k in 0usize..7) {
        // Bell numbers B_0..B_6 = 1,1,2,5,15,52,203.
        let bell = [1usize, 1, 2, 5, 15, 52, 203];
        let parts = prs_sybil::general::enumerate_partitions(k, 9);
        prop_assert_eq!(parts.len(), bell[k]);
        // Every partition is a valid restricted-growth string.
        for p in &parts {
            let mut max_seen = 0usize;
            for (i, &grp) in p.iter().enumerate() {
                prop_assert!(grp <= max_seen, "RGS violated at {i} in {p:?}");
                max_seen = max_seen.max(grp + 1);
            }
        }
    }
}

/// Directed replay of the counterexample pinned in
/// `proptest_sybil.proptest-regressions` (`weights = [1, 3, 1], v_raw = 2,
/// num = 0`): the degenerate split `w1 = 0` at the path-reversal property.
/// The vendored proptest shim cannot replay upstream `cc` seeds, so the
/// instance is kept alive here as a plain test.
#[test]
fn regression_1_3_1_reversal_at_zero_split() {
    let weights = [1i64, 3, 1];
    let g = ring_of(&weights);
    let v = 2usize;
    let fam = SybilSplitFamily::new(g.clone(), v);
    let w_v = g.weight(v).clone();
    let w1 = &w_v * &ratio(0, 16);
    let w2 = &w_v - &w1;
    let direct = fam.payoff(&w1).map(|(x, y)| &x + &y);

    let (p, p1, p2) = fam.path_at(&w1, &w2);
    let n = p.n();
    let rev_weights: Vec<_> = (0..n).map(|i| p.weight(n - 1 - i).clone()).collect();
    let rev = builders::path(rev_weights).unwrap();
    let reversed = prs_bd::decompose(&rev)
        .ok()
        .map(|bd| &bd.utility(&rev, n - 1 - p1) + &bd.utility(&rev, n - 1 - p2));
    assert_eq!(
        direct, reversed,
        "reversal changed the payoff on {weights:?} v={v}"
    );
}

#[test]
fn lower_bound_family_is_monotone_in_k() {
    let mut prev = Rational::zero();
    for k in [1u32, 3, 5, 7] {
        let g = prs_sybil::theorem8::lower_bound_ring(k);
        let out = best_sybil_split(
            &g,
            prs_sybil::theorem8::LOWER_BOUND_AGENT,
            &AttackConfig::new()
                .with_grid(32)
                .with_zoom_levels(4)
                .with_keep(2),
        );
        assert!(out.ratio > prev, "k={k}: {} ≤ {}", out.ratio, prev);
        prev = out.ratio;
    }
    assert!(prev <= Rational::from_integer(2));
}
