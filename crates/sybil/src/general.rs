//! Sybil attacks on **general graphs** — the paper's concluding conjecture.
//!
//! Definition 7 in full generality: agent `v` splits into `m ∈ [2, d_v]`
//! fictitious nodes, *partitions its neighbors* among them (each neighbor is
//! attached to exactly one copy), and divides `w_v` among the copies. The
//! paper proves ζ = 2 for rings and conjectures the same bound for general
//! networks; this module provides the machinery to probe that conjecture:
//!
//! * [`split_graph`] — build the post-attack graph for any neighbor
//!   partition and weight division.
//! * [`enumerate_partitions`] — all set partitions of the neighbor set
//!   (Bell-number many; degrees stay small in our experiments).
//! * [`best_general_sybil`] — optimize the attack over partitions and a
//!   weight-simplex grid; every evaluation is exact, so the result is a
//!   certified lower bound on ζ_v and any value above 2 would *refute* the
//!   conjecture.
//!
//! Experiment E14 runs this over trees, stars, complete and random graphs;
//! no violation has been observed (see EXPERIMENTS.md).

// prs-lint: allow-file(panic, reason = "splits of a validated graph are valid by construction, degenerate decompose failures are handled as None, and anything else is a solver bug the search must abort on")

use prs_bd::{decompose, BdError, DecompositionSession, SessionConfig};
use prs_graph::{Graph, VertexId};
use prs_numeric::Rational;

/// Build the attack graph: `v` is replaced by `m` copies; copy `j` inherits
/// the neighbors `i` with `partition[i] == j` (indices into `g.neighbors(v)`)
/// and weight `weights[j]`.
///
/// Returns the new graph and the ids of the copies. Copy `0` reuses `v`'s
/// id; copies `1..m` take fresh ids `n, n+1, …`.
pub fn split_graph(
    g: &Graph,
    v: VertexId,
    partition: &[usize],
    weights: &[Rational],
) -> (Graph, Vec<VertexId>) {
    let nbrs = g.neighbors(v);
    let m = weights.len();
    assert_eq!(partition.len(), nbrs.len(), "one group per neighbor");
    assert!(m >= 1, "at least one copy");
    assert!(
        partition.iter().all(|&p| p < m),
        "partition indices must address a copy"
    );
    let n = g.n();
    let copy_ids: Vec<VertexId> = (0..m).map(|j| if j == 0 { v } else { n + j - 1 }).collect();

    let mut new_weights: Vec<Rational> = g.weights().to_vec();
    new_weights[v] = weights[0].clone();
    for w in weights.iter().skip(1) {
        new_weights.push(w.clone());
    }

    let mut edges: Vec<(VertexId, VertexId)> = g
        .edges()
        .iter()
        .copied()
        .filter(|&(a, b)| a != v && b != v)
        .collect();
    for (i, &u) in nbrs.iter().enumerate() {
        edges.push((copy_ids[partition[i]], u));
    }
    let graph = Graph::new(new_weights, &edges).expect("split of a valid graph is valid");
    (graph, copy_ids)
}

/// All set partitions of `{0, …, k-1}` into at most `max_groups` nonempty
/// groups, in restricted-growth-string form (entry `i` = group of item `i`).
/// The trivial one-group partition is included (it reproduces `g` exactly).
pub fn enumerate_partitions(k: usize, max_groups: usize) -> Vec<Vec<usize>> {
    assert!(k <= 12, "Bell(k) explodes past 12 items");
    let mut out = Vec::new();
    let mut current = vec![0usize; k];
    fn rec(
        i: usize,
        used: usize,
        current: &mut Vec<usize>,
        max_groups: usize,
        out: &mut Vec<Vec<usize>>,
    ) {
        if i == current.len() {
            out.push(current.clone());
            return;
        }
        for grp in 0..=used.min(max_groups - 1) {
            current[i] = grp;
            let new_used = used.max(grp + 1);
            rec(i + 1, new_used, current, max_groups, out);
        }
    }
    if k == 0 {
        return vec![vec![]];
    }
    rec(0, 0, &mut current, max_groups.max(1), &mut out);
    out
}

/// Total payoff of one concrete general Sybil attack (sum of the copies'
/// utilities under the BD allocation of the split graph). `None` when the
/// split graph is undecomposable (degenerate weight placement).
pub fn attack_payoff(
    g: &Graph,
    v: VertexId,
    partition: &[usize],
    weights: &[Rational],
) -> Option<Rational> {
    attack_payoff_in(
        g,
        v,
        partition,
        weights,
        &mut DecompositionSession::detached(),
    )
}

/// [`attack_payoff`] through a caller-owned [`DecompositionSession`] — the
/// simplex-grid search's hot path (weight placements on one partition share
/// decomposition shapes).
pub fn attack_payoff_in(
    g: &Graph,
    v: VertexId,
    partition: &[usize],
    weights: &[Rational],
    session: &mut DecompositionSession,
) -> Option<Rational> {
    let (split, copies) = split_graph(g, v, partition, weights);
    match session.decompose(&split) {
        Ok(bd) => Some(copies.iter().map(|&c| bd.utility(&split, c)).sum()),
        Err(BdError::ZeroAlpha { .. }) | Err(BdError::ZeroWeightResidue { .. }) => None,
        Err(e) => panic!("unexpected decomposition failure: {e}"),
    }
}

/// Configuration for the general-graph attack search.
///
/// Construct via [`GeneralAttackConfig::new`] + `with_*` builders; the
/// struct is `#[non_exhaustive]` so new knobs (like the session cache
/// controls) land without breaking callers.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct GeneralAttackConfig {
    /// Weight-simplex granularity: weights are multiples of `w_v / grid`.
    pub grid: usize,
    /// Cap on the number of copies `m` (≤ d_v is enforced separately).
    pub max_copies: usize,
    /// Warm-start decompositions from a session cache (default `true`;
    /// results are bit-identical either way).
    pub warm_start: bool,
    /// Shape-cache capacity of the search session (default `32`).
    pub cache_capacity: usize,
}

impl GeneralAttackConfig {
    /// The default search: 12-cell simplex grid, at most 3 copies.
    pub fn new() -> Self {
        GeneralAttackConfig {
            grid: 12,
            max_copies: 3,
            warm_start: true,
            cache_capacity: 32,
        }
    }

    /// Set the weight-simplex granularity.
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = grid;
        self
    }

    /// Set the cap on the number of copies.
    pub fn with_max_copies(mut self, m: usize) -> Self {
        self.max_copies = m;
        self
    }

    /// Enable or disable session warm-starts.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Set the session shape-cache capacity.
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache_capacity = cap;
        self
    }

    /// The session configuration implied by these search knobs.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig::new()
            .with_warm_start(self.warm_start)
            .with_cache_capacity(self.cache_capacity)
    }
}

impl Default for GeneralAttackConfig {
    fn default() -> Self {
        GeneralAttackConfig::new()
    }
}

/// Outcome of the general attack search.
#[derive(Clone, Debug)]
pub struct GeneralSybilOutcome {
    /// `U_v` under honesty.
    pub honest_utility: Rational,
    /// Best attack payoff found.
    pub best_payoff: Rational,
    /// Certified lower bound on ζ_v.
    pub ratio: Rational,
    /// Best neighbor partition (group index per neighbor).
    pub best_partition: Vec<usize>,
    /// Best per-copy weights.
    pub best_weights: Vec<Rational>,
    /// Exact decompositions performed.
    pub evaluations: usize,
}

/// All compositions of `grid` into `m` non-negative parts.
fn compositions(grid: usize, m: usize) -> Vec<Vec<usize>> {
    fn rec(remaining: usize, slots: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if slots == 1 {
            current.push(remaining);
            out.push(current.clone());
            current.pop();
            return;
        }
        for take in 0..=remaining {
            current.push(take);
            rec(remaining - take, slots - 1, current, out);
            current.pop();
        }
    }
    let mut out = Vec::new();
    rec(grid, m, &mut Vec::new(), &mut out);
    out
}

/// Search the best Sybil attack for `v` on an arbitrary graph: all neighbor
/// partitions into `2..=min(d_v, max_copies)` groups × a weight-simplex
/// grid. Exact at every sample.
pub fn best_general_sybil(
    g: &Graph,
    v: VertexId,
    cfg: &GeneralAttackConfig,
) -> GeneralSybilOutcome {
    let bd = decompose(g).expect("graph decomposes");
    let honest = bd.utility(g, v);
    let d = g.degree(v);
    assert!(d >= 1, "isolated agents cannot share");
    let w_v = g.weight(v).clone();
    let unit = &w_v / &Rational::from_integer(cfg.grid as i64);

    let mut best_payoff = honest.clone(); // doing nothing is always available
    let mut best_partition: Vec<usize> = vec![0; d];
    let mut best_weights: Vec<Rational> = vec![w_v.clone()];
    let mut evals = 0usize;
    // One session for the whole search: weight placements within (and often
    // across) partitions revisit the same decomposition shapes.
    let mut session = DecompositionSession::detached_with_config(cfg.session_config());

    let max_m = d.min(cfg.max_copies).max(1);
    for partition in enumerate_partitions(d, max_m) {
        let m = partition.iter().max().map_or(1, |&g| g + 1);
        if m < 2 {
            continue; // the trivial partition is the honest baseline
        }
        for comp in compositions(cfg.grid, m) {
            let weights: Vec<Rational> = comp
                .iter()
                .map(|&k| &unit * &Rational::from_integer(k as i64))
                .collect();
            evals += 1;
            if let Some(payoff) = attack_payoff_in(g, v, &partition, &weights, &mut session) {
                if payoff > best_payoff {
                    best_payoff = payoff;
                    best_partition = partition.clone();
                    best_weights = weights;
                }
            }
        }
    }

    let ratio = if honest.is_positive() {
        &best_payoff / &honest
    } else {
        Rational::one()
    };
    GeneralSybilOutcome {
        honest_utility: honest,
        best_payoff,
        ratio,
        best_partition,
        best_weights,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::{builders, random};
    use prs_numeric::{int, ratio, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partition_counts_are_bell_numbers() {
        // Bell numbers 1, 1, 2, 5, 15 for k = 0..4 (unbounded groups).
        assert_eq!(enumerate_partitions(0, 9).len(), 1);
        assert_eq!(enumerate_partitions(1, 9).len(), 1);
        assert_eq!(enumerate_partitions(2, 9).len(), 2);
        assert_eq!(enumerate_partitions(3, 9).len(), 5);
        assert_eq!(enumerate_partitions(4, 9).len(), 15);
        // Capped at 2 groups: Stirling sums 2^(k-1).
        assert_eq!(enumerate_partitions(4, 2).len(), 8);
    }

    #[test]
    fn split_graph_on_ring_matches_path_construction() {
        // Splitting a ring agent into 2 copies with the {succ}/{pred}
        // partition must reproduce the split-path instance.
        let g = builders::ring(vec![int(4), int(2), int(3), int(5)]).unwrap();
        let v = 0;
        let (w1, w2) = (ratio(3, 2), ratio(5, 2));
        // neighbors(0) = [1, 3]: copy 0 gets neighbor 1, copy 1 gets 3.
        let (split, copies) = split_graph(&g, v, &[0, 1], &[w1.clone(), w2.clone()]);
        let bd_split = decompose(&split).unwrap();
        let total: Rational = copies.iter().map(|&c| bd_split.utility(&split, c)).sum();

        let (path, p1, p2) = builders::sybil_split_path(&g, v, w1, w2).unwrap();
        let bd_path = decompose(&path).unwrap();
        let want = &bd_path.utility(&path, p1) + &bd_path.utility(&path, p2);
        assert_eq!(total, want);
    }

    #[test]
    fn trivial_partition_reproduces_original_utilities() {
        let g = builders::ring(vec![int(4), int(2), int(3)]).unwrap();
        let payoff = attack_payoff(&g, 1, &[0, 0], &[int(2)]).unwrap();
        let bd = decompose(&g).unwrap();
        assert_eq!(payoff, bd.utility(&g, 1));
    }

    #[test]
    fn general_search_on_ring_respects_theorem8() {
        let mut rng = StdRng::seed_from_u64(64);
        for _ in 0..4 {
            let g = random::random_ring(&mut rng, 5, 1, 10);
            for v in 0..2 {
                let out = best_general_sybil(
                    &g,
                    v,
                    &GeneralAttackConfig::new().with_grid(10).with_max_copies(2),
                );
                assert!(out.ratio >= Rational::one());
                assert!(
                    out.ratio <= int(2),
                    "ζ = {} on {:?}",
                    out.ratio,
                    g.weights()
                );
            }
        }
    }

    #[test]
    fn conjecture_holds_on_small_stars_and_complete_graphs() {
        // The paper's conjecture: ζ ≤ 2 on general networks. Certified
        // lower bounds must stay below 2 on these families.
        let star = builders::star(vec![int(4), int(1), int(2), int(3)]).unwrap();
        let out = best_general_sybil(
            &star,
            0,
            &GeneralAttackConfig::new().with_grid(8).with_max_copies(3),
        );
        assert!(out.ratio <= int(2), "star: ζ = {}", out.ratio);

        let k4 = builders::complete(vec![int(3), int(1), int(2), int(5)]).unwrap();
        for v in 0..4 {
            let out = best_general_sybil(
                &k4,
                v,
                &GeneralAttackConfig::new().with_grid(6).with_max_copies(3),
            );
            assert!(out.ratio <= int(2), "K4 v={v}: ζ = {}", out.ratio);
        }
    }

    #[test]
    fn complete_network_is_truthful_for_sybil() {
        // On complete graphs the literature proves a *smaller* ratio; in
        // particular splitting should rarely pay at all on symmetric K_n.
        let kn = builders::complete(vec![int(2); 5]).unwrap();
        for v in 0..5 {
            let out = best_general_sybil(
                &kn,
                v,
                &GeneralAttackConfig::new().with_grid(6).with_max_copies(2),
            );
            assert_eq!(out.ratio, Rational::one(), "symmetric K5 admits no gain");
        }
    }

    #[test]
    fn compositions_cover_the_simplex() {
        let comps = compositions(4, 2);
        assert_eq!(comps.len(), 5); // (0,4) (1,3) (2,2) (3,1) (4,0)
        assert!(comps.iter().all(|c| c.iter().sum::<usize>() == 4));
        assert_eq!(compositions(3, 3).len(), 10); // C(5,2)
    }
}
