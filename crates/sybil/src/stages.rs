//! The two-stage trajectory decomposition of the Theorem 8 proof.
//!
//! The proof walks from the honest split `(w₁⁰, w₂⁰)` to the optimal split
//! `(w₁*, w₂*)` changing one copy's weight at a time, and bounds the per-
//! stage utility changes:
//!
//! * `v` **C-class** on the ring (§III-C), with WLOG `w₁* ≥ w₁⁰`:
//!   - Stage C-1: `w₂: w₂⁰ → w₂*` (decrease) — Lemma 16: `δ_{v¹} ≤ 0`,
//!     `δ_{v²} ≤ 0`.
//!   - Stage C-2: `w₁: w₁⁰ → w₁*` (increase) — Lemma 18 (if `v¹` ends
//!     C-class): `δ_{v¹} ≤ U_v`, `δ_{v²} = 0`; otherwise Lemma 19 bounds the
//!     total directly by `2·U_v`.
//! * `v` **B-class** on the ring (§III-D), with WLOG `w₁* ≥ w₁⁰`:
//!   - Stage D-1: `w₁: w₁⁰ → w₁*` (increase) — Lemma 22: `Δ_{v¹} ≤ U_v`,
//!     `Δ_{v²} = 0`.
//!   - Stage D-2: `w₂: w₂⁰ → w₂*` (decrease) — Lemma 24: `Δ_{v¹} ≤ 0`,
//!     `Δ_{v²} ≤ 0`.
//!
//! This module evaluates all four corner points exactly and checks each
//! inequality, yielding an executable audit of the proof skeleton on any
//! concrete instance.

use crate::split::{honest_split, SybilSplitFamily};
use prs_bd::{decompose, AgentClass};
use prs_graph::{Graph, VertexId};
use prs_numeric::Rational;

/// Exact utilities of the two copies at one `(w₁, w₂)` corner.
#[derive(Clone, Debug)]
pub struct Corner {
    /// Weight of `v¹` at this corner.
    pub w1: Rational,
    /// Weight of `v²` at this corner.
    pub w2: Rational,
    /// `U_{v¹}` (exact).
    pub u1: Rational,
    /// `U_{v²}` (exact).
    pub u2: Rational,
}

/// The audited stage decomposition of one attack trajectory.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// `v`'s class on the ring (`Both` folded to C, as in the paper).
    pub ring_class: AgentClass,
    /// Whether the trajectory was mirrored so that `w₁* ≥ w₁⁰` (the paper's
    /// WLOG).
    pub mirrored: bool,
    /// `U_v` on the original ring.
    pub honest_utility: Rational,
    /// The initial corner (honest split, possibly adjusted).
    pub initial: Corner,
    /// The corner after stage 1.
    pub mid: Corner,
    /// The final corner `(w₁*, w₂*)`.
    pub fin: Corner,
    /// Stage-1 deltas `(δ_{v¹}⁽¹⁾, δ_{v²}⁽¹⁾)` (or `Δ` for B-class).
    pub stage1: (Rational, Rational),
    /// Stage-2 deltas.
    pub stage2: (Rational, Rational),
    /// Which lemma inequalities held (audit log; all should be true).
    pub checks: Vec<(String, bool)>,
}

impl StageReport {
    /// True iff every audited inequality held.
    pub fn all_hold(&self) -> bool {
        self.checks.iter().all(|(_, ok)| *ok)
    }
}

fn corner(fam: &SybilSplitFamily, w1: &Rational, w2: &Rational) -> Option<Corner> {
    let (p, v1, v2) = fam.path_at(w1, w2);
    let bd = decompose(&p).ok()?;
    Some(Corner {
        w1: w1.clone(),
        w2: w2.clone(),
        u1: bd.utility(&p, v1),
        u2: bd.utility(&p, v2),
    })
}

/// The **Adjusting Technique** (paper, §III-C and §III-D): when both copies
/// start in the same bottleneck pair, slide along the diagonal
/// `(w₁⁰ + z, w₂⁰ − z)` — which keeps the decomposition, the α-ratio and the
/// total copy payoff constant — up to the critical `z` where the pair is
/// about to split, and restart the analysis there.
///
/// Returns the adjusted start, or `None` when the diagonal reaches
/// `(w₁*, w₂*)` with the shape intact — then `U(w₁*, w₂*) = U_v` and the
/// attack gains nothing (the paper's "cannot improve by Sybil attack
/// directly" case).
fn adjusting_technique(
    fam: &SybilSplitFamily,
    mirrored: bool,
    w1_0: &Rational,
    w2_0: &Rational,
    w1_s: &Rational,
    w2_s: &Rational,
    bits: u32,
) -> Option<(Rational, Rational)> {
    let phys = |a: &Rational, b: &Rational| -> Option<Vec<(Vec<usize>, Vec<usize>)>> {
        let (p, _, _) = if mirrored {
            fam.path_at(b, a)
        } else {
            fam.path_at(a, b)
        };
        decompose(&p).ok().map(|bd| bd.shape())
    };
    let d = w2_0 - w2_s;
    if !d.is_positive() {
        return None; // w₂ does not move: nothing to adjust, and no stage C-1
    }
    let shape0 = phys(w1_0, w2_0)?;
    // Same shape at the far end of the diagonal ⇒ no critical point ⇒ the
    // attack payoff equals U_v (shape and α never change on the diagonal).
    if phys(w1_s, w2_s).as_ref() == Some(&shape0) {
        return None;
    }
    // Bisect for the largest same-shape z ∈ [0, d).
    let mut lo = Rational::zero();
    let mut hi = d;
    for _ in 0..bits {
        let mid = lo.midpoint(&hi);
        let same = phys(&(w1_0 + &mid), &(w2_0 - &mid)).as_ref() == Some(&shape0);
        if same {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some((w1_0 + &lo, w2_0 - &lo))
}

/// Audit the stage decomposition for a trajectory from the honest split to
/// the target split `(w1_star, w2_star)` (typically the optimizer's best).
///
/// Returns `None` if any corner is undecomposable (degenerate boundary) or
/// if the Adjusting Technique shows the trajectory is payoff-neutral (the
/// paper's trivial case — there is nothing to audit).
///
/// Note: the optimizer works on the unordered split, so the paper's WLOG
/// `w₁* > w₁⁰` is realized by mirroring the path when necessary. The
/// adjustment is localized by bisection, so the lemma checks carry a tiny
/// tolerance (`U_v / 2²⁰`); the final Theorem 8 bound is checked exactly.
pub fn audit_stages(
    ring: &Graph,
    v: VertexId,
    w1_star: &Rational,
    w2_star: &Rational,
) -> Option<StageReport> {
    // prs-lint: allow(panic, reason = "validated positive-weight ring precondition: the decomposition always exists")
    let ring_bd = decompose(ring).expect("ring decomposes");
    let honest_u = ring_bd.utility(ring, v);
    let ring_class = match ring_bd.class_of(v) {
        AgentClass::Both => AgentClass::C,
        c => c,
    };

    let (w1_0, w2_0) = honest_split(ring, v);
    let fam = SybilSplitFamily::new(ring.clone(), v);

    // WLOG w₁* ≥ w₁⁰: otherwise swap the roles of the copies. Swapping
    // means looking at the same physical trajectory with (w1, w2) read in
    // the other order; utilities swap with them, which `Corner` handles by
    // swapping at evaluation time.
    let (mirrored, w1_0, w2_0, w1_s, w2_s) = if w1_star >= &w1_0 {
        (false, w1_0, w2_0, w1_star.clone(), w2_star.clone())
    } else {
        (true, w2_0, w1_0, w2_star.clone(), w1_star.clone())
    };
    // Evaluate a corner in possibly-mirrored coordinates.
    let eval = |a: &Rational, b: &Rational| -> Option<Corner> {
        if mirrored {
            corner(&fam, b, a).map(|c| Corner {
                w1: a.clone(),
                w2: b.clone(),
                u1: c.u2,
                u2: c.u1,
            })
        } else {
            corner(&fam, a, b)
        }
    };

    // Apply the Adjusting Technique when both copies share a pair at the
    // initial point (the paper's same-pair difficulty in Cases C-3 / D-1).
    let (w1_0, w2_0) = {
        let (p0, p_v1, p_v2) = if mirrored {
            fam.path_at(&w2_0, &w1_0)
        } else {
            fam.path_at(&w1_0, &w2_0)
        };
        let bd0 = decompose(&p0).ok()?;
        let same_pair = bd0.pair_of(p_v1) == bd0.pair_of(p_v2);
        if same_pair {
            adjusting_technique(&fam, mirrored, &w1_0, &w2_0, &w1_s, &w2_s, 40)?
        } else {
            (w1_0, w2_0)
        }
    };

    // C-class trajectories change w₂ first (Stage C-1); B-class change w₁
    // first (Stage D-1).
    let c_class = ring_class == AgentClass::C;
    let (mid_w1, mid_w2) = if c_class {
        (w1_0.clone(), w2_s.clone())
    } else {
        (w1_s.clone(), w2_0.clone())
    };

    let initial = eval(&w1_0, &w2_0)?;
    let mid = eval(&mid_w1, &mid_w2)?;
    let fin = eval(&w1_s, &w2_s)?;

    let stage1 = (&mid.u1 - &initial.u1, &mid.u2 - &initial.u2);
    let stage2 = (&fin.u1 - &mid.u1, &fin.u2 - &mid.u2);
    // Tolerance absorbing the bisection error of the Adjusting Technique
    // (the adjusted start is within 2⁻⁴⁰·w_v of the true critical point).
    let tol = &(&honest_u.abs() + &Rational::one()) / &Rational::from_integer(1 << 20);
    let zero = tol.clone();

    let mut checks = Vec::new();
    if c_class {
        // Lemma 16.
        checks.push(("Lemma 16: δ_v1(1) ≤ 0".into(), stage1.0 <= zero));
        checks.push(("Lemma 16: δ_v2(1) ≤ 0".into(), stage1.1 <= zero));
        // Lemma 18 / 19 depending on v¹'s final class.
        let (p_fin, v1_fin, _) = fam.path_at(
            if mirrored { &fin.w2 } else { &fin.w1 },
            if mirrored { &fin.w1 } else { &fin.w2 },
        );
        let fin_bd = decompose(&p_fin).ok()?;
        let v1_id = if mirrored { fam.v2() } else { v1_fin };
        let v1_final_class = fin_bd.class_of(v1_id);
        if matches!(v1_final_class, AgentClass::C) {
            checks.push((
                "Lemma 18: δ_v1(2) ≤ U_v".into(),
                stage2.0 <= &honest_u + &tol,
            ));
            checks.push(("Lemma 18: δ_v2(2) ≤ 0".into(), stage2.1 <= zero));
        }
        // Theorem-level bound holds in every branch (Lemma 19 covers the
        // B-class ending).
        let total_fin = &fin.u1 + &fin.u2;
        checks.push((
            "Theorem 8: U(w1*,w2*) ≤ 2·U_v".into(),
            total_fin <= &honest_u * &Rational::from_integer(2),
        ));
    } else {
        // Lemma 22.
        checks.push((
            "Lemma 22: Δ_v1(1) ≤ U_v".into(),
            stage1.0 <= &honest_u + &tol,
        ));
        checks.push(("Lemma 22: Δ_v2(1) = 0".into(), stage1.1.abs() <= tol));
        // Lemma 24.
        checks.push(("Lemma 24: Δ_v1(2) ≤ 0".into(), stage2.0 <= zero));
        checks.push(("Lemma 24: Δ_v2(2) ≤ 0".into(), stage2.1 <= zero));
        let total_fin = &fin.u1 + &fin.u2;
        checks.push((
            "Theorem 8: U(w1*,w2*) ≤ 2·U_v".into(),
            total_fin <= &honest_u * &Rational::from_integer(2),
        ));
    }

    Some(StageReport {
        ring_class,
        mirrored,
        honest_utility: honest_u,
        initial,
        mid,
        fin,
        stage1,
        stage2,
        checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{best_sybil_split, AttackConfig};
    use prs_graph::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> AttackConfig {
        AttackConfig::new()
            .with_grid(16)
            .with_zoom_levels(3)
            .with_keep(2)
    }

    #[test]
    fn stage_inequalities_hold_on_random_rings() {
        let mut rng = StdRng::seed_from_u64(55);
        for n in [4usize, 5, 6] {
            for _ in 0..8 {
                let g = random::random_ring(&mut rng, n, 1, 10);
                for v in 0..n.min(3) {
                    let out = best_sybil_split(&g, v, &cfg());
                    let w2_star = &g.weight(v).clone() - &out.best.w1;
                    if let Some(rep) = audit_stages(&g, v, &out.best.w1, &w2_star) {
                        assert!(
                            rep.all_hold(),
                            "failed checks {:?} on ring {:?} v={v}",
                            rep.checks.iter().filter(|(_, ok)| !ok).collect::<Vec<_>>(),
                            g.weights()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trajectory_to_honest_split_is_all_zero_deltas() {
        let mut rng = StdRng::seed_from_u64(60);
        let g = random::random_ring(&mut rng, 6, 1, 9);
        let (w1_0, w2_0) = crate::split::honest_split(&g, 1);
        if let Some(rep) = audit_stages(&g, 1, &w1_0, &w2_0) {
            assert!(rep.stage1.0.is_zero() && rep.stage1.1.is_zero());
            assert!(rep.stage2.0.is_zero() && rep.stage2.1.is_zero());
            assert!(rep.all_hold());
        }
    }
}
