//! Exact optimizer for the best Sybil split.
//!
//! `U(w₁) = U_{v¹}(w₁, w_v − w₁) + U_{v²}(w₁, w_v − w₁)` is piecewise smooth
//! with finitely many breakpoints (the split-path decomposition is
//! piecewise-constant in `w₁`). The optimizer runs a uniform exact-rational
//! grid and then recursively zooms on the best cell(s). Every evaluation is
//! an exact BD decomposition:
//!
//! * every reported payoff is a *certified lower bound* on the optimum, and
//! * the Theorem 8 check `payoff ≤ 2·U_v` is exact at every visited point —
//!   a single counterexample would be irrefutable.
//!
//! Since `U` may have interior maxima (both copies C-class trading off
//! hyperbolically), zooming keeps a few best cells per level, not just one.

// prs-lint: allow-file(panic, reason = "attack entry requires a validated positive-weight ring (asserted below); with that precondition the decomposition and the nonempty-curve invariant cannot fail without a solver bug")

use crate::split::SybilSplitFamily;
use prs_bd::par::{worker_threads, SessionPool};
use prs_bd::{DecompositionSession, SessionConfig};
use prs_graph::{Graph, VertexId};
use prs_numeric::Rational;

/// One evaluated split.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitSample {
    /// The first copy's weight (`w₂ = w_v − w₁`).
    pub w1: Rational,
    /// `U_{v¹}` at this split.
    pub u1: Rational,
    /// `U_{v²}` at this split.
    pub u2: Rational,
}

impl SplitSample {
    /// Total attacker payoff at this split.
    pub fn total(&self) -> Rational {
        &self.u1 + &self.u2
    }
}

/// Optimizer configuration.
///
/// Construct via [`AttackConfig::new`] + `with_*` builders; the struct is
/// `#[non_exhaustive]` so new knobs (like the session cache controls) land
/// without breaking callers.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct AttackConfig {
    /// Grid cells per zoom level.
    pub grid: usize,
    /// Zoom levels (each shrinks the bracket by `grid / (2 · keep)`).
    pub zoom_levels: usize,
    /// Number of best cells carried to the next level.
    pub keep: usize,
    /// Warm-start decompositions from per-worker session caches
    /// (default `true`; results are bit-identical either way).
    pub warm_start: bool,
    /// Shape-cache capacity of each worker session (default `32`).
    pub cache_capacity: usize,
}

impl AttackConfig {
    /// The default optimizer: 48-cell grid, 6 zoom levels, keep 3 cells.
    pub fn new() -> Self {
        AttackConfig {
            grid: 48,
            zoom_levels: 6,
            keep: 3,
            warm_start: true,
            cache_capacity: 32,
        }
    }

    /// Set the grid cells per zoom level.
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = grid;
        self
    }

    /// Set the number of zoom levels.
    pub fn with_zoom_levels(mut self, levels: usize) -> Self {
        self.zoom_levels = levels;
        self
    }

    /// Set the number of best cells carried to the next level.
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Enable or disable session warm-starts.
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Set the per-session shape-cache capacity.
    pub fn with_cache_capacity(mut self, cap: usize) -> Self {
        self.cache_capacity = cap;
        self
    }

    /// The session configuration implied by these optimizer knobs.
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig::new()
            .with_warm_start(self.warm_start)
            .with_cache_capacity(self.cache_capacity)
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig::new()
    }
}

/// Outcome of a Sybil attack optimization on one `(ring, v)`.
#[derive(Clone, Debug)]
pub struct SybilOutcome {
    /// The agent's honest utility `U_v` on the ring.
    pub honest_utility: Rational,
    /// Best split found.
    pub best: SplitSample,
    /// `ζ_v` lower bound: best payoff / honest utility.
    pub ratio: Rational,
    /// Coarse samples of the payoff curve (first grid level), for plots.
    pub curve: Vec<SplitSample>,
    /// Number of exact decompositions performed.
    pub evaluations: usize,
}

impl SybilOutcome {
    /// `ζ_v` as `f64` for reporting.
    pub fn ratio_f64(&self) -> f64 {
        self.ratio.to_f64()
    }
}

fn eval(
    fam: &SybilSplitFamily,
    w1: &Rational,
    session: &mut DecompositionSession,
) -> Option<SplitSample> {
    let mut sp = prs_trace::span("sybil", "split_eval");
    sp.attr("w1", || w1.to_string());
    fam.payoff_in(w1, session).map(|(u1, u2)| SplitSample {
        w1: w1.clone(),
        u1,
        u2,
    })
}

/// Evaluate every split in `xs` (exact decompositions, fanned out over
/// scoped workers with pooled warm sessions), keeping successful samples in
/// input order.
fn eval_batch(fam: &SybilSplitFamily, xs: &[Rational], pool: &SessionPool) -> Vec<SplitSample> {
    pool.map_indexed(xs.len(), worker_threads(xs.len()), |session, i| {
        eval(fam, &xs[i], session)
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Maximize the attacker payoff over `w₁ ∈ [0, w_v]` for agent `v` on a
/// ring. Exact at every sampled point.
///
/// ```
/// use prs_graph::builders;
/// use prs_numeric::{int, Rational};
/// use prs_sybil::{best_sybil_split, AttackConfig};
///
/// let ring = builders::ring(vec![int(6), int(1), int(4), int(2), int(5)]).unwrap();
/// let out = best_sybil_split(&ring, 0, &AttackConfig::default());
/// assert!(out.ratio >= Rational::one());               // Lemma 9 floor
/// assert!(out.ratio <= Rational::from_integer(2));     // Theorem 8
/// ```
pub fn best_sybil_split(ring: &Graph, v: VertexId, cfg: &AttackConfig) -> SybilOutcome {
    let mut sp = prs_trace::span("sybil", "attack");
    sp.attr("v", || v.to_string());
    sp.attr("grid", || cfg.grid.to_string());
    let fam = SybilSplitFamily::new(ring.clone(), v);
    let bd = prs_bd::decompose(ring).expect("ring decomposes");
    let honest = bd.utility(ring, v);

    let total = fam.total().clone();
    assert!(total.is_positive(), "agent must own positive weight");
    let mut evals = 0usize;
    // One pool for the whole optimization: zoom-level evaluations warm-start
    // from the shapes the level-0 grid certified.
    let pool = SessionPool::new(cfg.session_config());

    let grid_pts = |lo: &Rational, hi: &Rational, m: usize| -> Vec<Rational> {
        let width = &(hi - lo) / &Rational::from_integer(m as i64);
        (0..=m)
            .map(|i| lo + &(&width * &Rational::from_integer(i as i64)))
            .collect()
    };

    // Level 0: full-domain grid (also retained as the reported curve), plus
    // the honest split — Lemma 9 makes it the ratio-1 floor, so the
    // optimizer must always consider it. The grid evaluations fan out over
    // worker threads; `eval_batch` preserves input order, so the best-pick
    // below is identical to a sequential scan.
    let level0 = grid_pts(&Rational::zero(), &total, cfg.grid);
    evals += level0.len();
    let mut curve: Vec<SplitSample> = eval_batch(&fam, &level0, &pool);
    let (w1_honest, _) = crate::split::honest_split(ring, v);
    evals += 1;
    let mut session = pool.checkout();
    let honest_sample = eval(&fam, &w1_honest, &mut session);
    pool.checkin(session);
    if let Some(s) = honest_sample {
        curve.push(s);
        curve.sort_by(|a, b| a.w1.cmp(&b.w1));
        curve.dedup_by(|a, b| a.w1 == b.w1);
    }
    assert!(!curve.is_empty(), "no decomposable split found");
    let mut best = curve
        .iter()
        .max_by(|a, b| a.total().cmp(&b.total()))
        .expect("nonempty")
        .clone();

    // Zoom: keep the best cells, refine each.
    let cell = &total / &Rational::from_integer(cfg.grid as i64);
    let mut brackets: Vec<(Rational, Rational)> = {
        let mut ranked: Vec<&SplitSample> = curve.iter().collect();
        ranked.sort_by_key(|s| std::cmp::Reverse(s.total()));
        ranked
            .iter()
            .take(cfg.keep.max(1))
            .map(|s| {
                let lo = (&s.w1 - &cell).max(Rational::zero());
                let hi = (&s.w1 + &cell).min(total.clone());
                (lo, hi)
            })
            .collect()
    };

    for _ in 0..cfg.zoom_levels {
        let mut next: Vec<(Rational, Rational)> = Vec::new();
        for (lo, hi) in &brackets {
            if lo >= hi {
                continue;
            }
            let pts = grid_pts(lo, hi, cfg.grid.min(16));
            evals += pts.len();
            let local: Vec<SplitSample> = eval_batch(&fam, &pts, &pool);
            let Some(loc_best) = local.iter().max_by(|a, b| a.total().cmp(&b.total())) else {
                continue;
            };
            if loc_best.total() > best.total() {
                best = loc_best.clone();
            }
            let w = &(hi - lo) / &Rational::from_integer(cfg.grid.min(16) as i64);
            let nlo = (&loc_best.w1 - &w).max(lo.clone());
            let nhi = (&loc_best.w1 + &w).min(hi.clone());
            next.push((nlo, nhi));
        }
        brackets = next;
        if brackets.is_empty() {
            break;
        }
    }

    sp.attr("evaluations", || evals.to_string());
    // The honest split is always feasible: never report a ratio below 1
    // (Lemma 9 guarantees the attacker can do at least U_v).
    let ratio = if honest.is_positive() {
        let r = &best.total() / &honest;
        r.max(Rational::one())
    } else {
        Rational::one()
    };

    SybilOutcome {
        honest_utility: honest,
        best,
        ratio,
        curve,
        evaluations: evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::{builders, random};
    use prs_numeric::{int, Rational};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ints(vals: &[i64]) -> Vec<Rational> {
        vals.iter().map(|&v| int(v)).collect()
    }

    fn small_cfg() -> AttackConfig {
        AttackConfig::new()
            .with_grid(24)
            .with_zoom_levels(4)
            .with_keep(2)
    }

    #[test]
    fn uniform_ring_gains_nothing() {
        // Perfectly symmetric ring: splitting cannot help; ζ_v = 1.
        for n in [4usize, 5, 6] {
            let g = builders::uniform_ring(n, int(2)).unwrap();
            let out = best_sybil_split(&g, 0, &small_cfg());
            assert_eq!(out.honest_utility, int(2));
            assert_eq!(out.ratio, Rational::one(), "n={n}: {:?}", out.best);
        }
    }

    #[test]
    fn ratio_never_below_one_and_never_above_two() {
        let mut rng = StdRng::seed_from_u64(123);
        for n in [3usize, 4, 5, 6, 7] {
            for _ in 0..6 {
                let g = random::random_ring(&mut rng, n, 1, 10);
                for v in 0..n.min(3) {
                    let out = best_sybil_split(&g, v, &small_cfg());
                    assert!(out.ratio >= Rational::one());
                    assert!(
                        out.ratio <= int(2),
                        "Theorem 8 violated: ζ_{v} = {} on {:?}",
                        out.ratio,
                        g.weights()
                    );
                }
            }
        }
    }

    #[test]
    fn every_curve_sample_is_exact_and_bounded() {
        let g = builders::ring(ints(&[5, 1, 3, 1])).unwrap();
        let out = best_sybil_split(&g, 0, &small_cfg());
        let two_uv = &out.honest_utility * &int(2);
        for s in &out.curve {
            assert!(s.total() <= two_uv, "sample at w1={} exceeds 2·U_v", s.w1);
        }
    }

    #[test]
    fn honest_split_is_on_the_curve_when_sampled() {
        // The best found payoff is at least the honest utility.
        let mut rng = StdRng::seed_from_u64(9);
        let g = random::random_ring(&mut rng, 5, 1, 8);
        let out = best_sybil_split(&g, 2, &small_cfg());
        assert!(out.best.total() >= out.honest_utility);
    }

    #[test]
    fn asymmetric_ring_can_strictly_gain() {
        // A ring where some agent strictly profits from splitting. Weights
        // chosen so the manipulator's copies land in different pairs.
        // (Existence of *some* gain is the paper's premise for ζ > 1; the
        // search must find at least one strict gain across these instances.)
        let mut rng = StdRng::seed_from_u64(77);
        let mut found_gain = false;
        'outer: for _ in 0..20 {
            let g = random::random_ring(&mut rng, 5, 1, 12);
            for v in 0..5 {
                let out = best_sybil_split(&g, v, &small_cfg());
                if out.ratio > Rational::one() {
                    found_gain = true;
                    break 'outer;
                }
            }
        }
        assert!(
            found_gain,
            "no instance with a strictly profitable Sybil attack found"
        );
    }
}
