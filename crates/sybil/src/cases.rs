//! Lemma 14 / Lemma 20 (Fig. 4): classification of the initial split path.
//!
//! At the honest split `(w₁⁰, w₂⁰)` the path `P_v(w₁⁰, w₂⁰)` has one of four
//! decomposition shapes, keyed by `v`'s class on the original ring:
//!
//! * **Case C-1** — `v` C-class; a single pair with `v¹ ∈ B₁`, `v² ∈ C₁` and
//!   `α₁ = α_v`; B and C alternate along the (even) path.
//! * **Case C-2** — `v` C-class; `w₁⁰ = 0` with `v¹ ∈ B_j`, `v² ∈ C_i`.
//! * **Case C-3** — `v` C-class; both copies C-class, `v¹ ∈ C_j`, `v² ∈ C_i`
//!   with `j ≥ i`, i.e. `α_{v¹} ≥ α_{v²} = α_v`.
//! * **Case D-1** — `v` B-class; both copies B-class, `v¹ ∈ B_j`, `v² ∈ B_i`
//!   with `j ≤ i`, i.e. `α_{v¹} ≤ α_{v²} = α_v`.
//!
//! (The paper treats `α_v = 1` agents as C-class WLOG; so do we.)

// prs-lint: allow-file(panic, reason = "lemma auditor: an observed structure outside the published Lemma 14/20 cases is a counterexample and must abort with its witness; the entry decompose is covered by the validated-ring precondition")

use crate::split::{honest_split, SybilSplitFamily};
use prs_bd::{decompose, AgentClass};
use prs_graph::{Graph, VertexId};
use prs_numeric::Rational;

/// Which Lemma 14 / Lemma 20 case the initial path falls into.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InitialPathCase {
    /// Case C-1: one pair, `v¹ ∈ B₁`, `v² ∈ C₁`, `α₁ = α_v`.
    C1,
    /// Case C-2: `w₁⁰ = 0`, `v¹` B-class, `v²` C-class.
    C2,
    /// Case C-3: both copies C-class with `α_{v¹} ≥ α_{v²} = α_v`.
    C3,
    /// Case D-1 (Lemma 20): both copies B-class with `α_{v¹} ≤ α_{v²} = α_v`.
    D1,
}

/// Classification output, with the evidence used.
#[derive(Clone, Debug)]
pub struct InitialPathReport {
    /// The matched case.
    pub case: InitialPathCase,
    /// `v`'s class on the ring (Both is folded into C, as in the paper).
    pub ring_class: AgentClass,
    /// Honest weight of `v¹` (possibly relabeled to fit the paper's WLOG).
    pub w1_0: Rational,
    /// Honest weight of `v²`.
    pub w2_0: Rational,
    /// `α_v` on the original ring.
    pub alpha_v: Rational,
    /// `α_{v¹}` on the initial path.
    pub alpha_v1: Rational,
    /// `α_{v²}` on the initial path.
    pub alpha_v2: Rational,
}

/// Classify the decomposition of the initial path `P_v(w₁⁰, w₂⁰)` per
/// Lemma 14 (C cases) / Lemma 20 (D case), and verify the per-case
/// structural claims exactly. Panics (with diagnostics) if the observed
/// structure matches none of the published cases — i.e. a counterexample to
/// the lemmas.
pub fn classify_initial_path(ring: &Graph, v: VertexId) -> InitialPathReport {
    let ring_bd = decompose(ring).expect("ring decomposes");
    let alpha_v = ring_bd.alpha_of(v).clone();
    // Paper's WLOG: α_v = 1 vertices count as C-class.
    let ring_class = match ring_bd.class_of(v) {
        AgentClass::Both => AgentClass::C,
        c => c,
    };

    let (w1_0, w2_0) = honest_split(ring, v);
    let fam = SybilSplitFamily::new(ring.clone(), v);
    let (p, v1, v2) = fam.path_at(&w1_0, &w2_0);
    let pbd = decompose(&p).unwrap_or_else(|e| {
        panic!(
            "initial path undecomposable ({e}); ring {:?} v={v}",
            ring.weights()
        )
    });

    // The paper labels the copies WLOG so its case patterns come out
    // (e.g. Case C-2 is stated with w₁⁰ = 0, Case C-3 with j ≥ i). Our
    // v¹ is pinned to the ring successor, so mirror the labeling when the
    // pattern only matches the other way around.
    let raw = (
        pbd.class_of(v1),
        pbd.class_of(v2),
        pbd.alpha_of(v1).clone(),
        pbd.alpha_of(v2).clone(),
        w1_0.clone(),
        w2_0.clone(),
    );
    let mirrored_labels = match ring_class {
        // C cases: want (v¹ B-side with v² C-side) or (w₁⁰ = 0 B-side) or
        // (both C with α_{v¹} ≥ α_{v²}).
        AgentClass::C => {
            let fits =
                |c1: &AgentClass, c2: &AgentClass, a1: &Rational, a2: &Rational, w1: &Rational| {
                    (c1.is_b() && c2.is_c() && !w1.is_zero())
                        || (w1.is_zero() && c1.is_b() && c2.is_c())
                        || (c1.is_c() && c2.is_c() && a1 >= a2)
                };
            !fits(&raw.0, &raw.1, &raw.2, &raw.3, &raw.4)
                && fits(&raw.1, &raw.0, &raw.3, &raw.2, &raw.5)
        }
        // D case: both B-side with α_{v¹} ≤ α_{v²}.
        _ => raw.2 > raw.3,
    };
    let (class1, class2, alpha_v1, alpha_v2, w1_0, w2_0) = if mirrored_labels {
        (raw.1, raw.0, raw.3, raw.2, raw.5, raw.4)
    } else {
        raw
    };

    let case = match ring_class {
        AgentClass::C => {
            // Lemma 14's Case C-1 structure: a single pair on an
            // even-length path whose B/C classes alternate (the α = 1
            // `Both` class is compatible with either side). Even rings with
            // α = 1 produce an odd path instead — the paper relabels those
            // alternately and classifies them as C-2/C-3, so the structural
            // conditions are part of the *match*, not post-hoc assertions.
            let alternates = (0..p.n().saturating_sub(1)).all(|path_v| {
                let a = pbd.class_of(path_v);
                let b = pbd.class_of(path_v + 1);
                (a != AgentClass::B || b != AgentClass::B)
                    && (a != AgentClass::C || b != AgentClass::C)
            });
            if class1.is_b()
                && class2.is_c()
                && pbd.k() == 1
                && !w1_0.is_zero()
                && p.n() % 2 == 0
                && alternates
            {
                // Case C-1: single pair, v¹ B-side, v² C-side, α = α_v.
                assert_eq!(
                    alpha_v1,
                    alpha_v,
                    "Case C-1 requires α₁ = α_v (ring {:?}, v={v})",
                    ring.weights()
                );
                InitialPathCase::C1
            } else if w1_0.is_zero() && class1.is_b() && class2.is_c() {
                InitialPathCase::C2
            } else if class1.is_c() && class2.is_c() {
                // Case C-3: α_{v¹} ≥ α_{v²} = α_v.
                assert!(
                    alpha_v1 >= alpha_v2,
                    "Case C-3 requires α_(v¹) ≥ α_(v²) (ring {:?}, v={v})",
                    ring.weights()
                );
                assert_eq!(
                    alpha_v2,
                    alpha_v,
                    "Case C-3 requires α_(v²) = α_v (ring {:?}, v={v})",
                    ring.weights()
                );
                InitialPathCase::C3
            } else {
                panic!(
                    "Lemma 14 counterexample? ring {:?} v={v}: classes ({class1:?}, {class2:?}), \
                     w₁⁰={w1_0}, k={}",
                    ring.weights(),
                    pbd.k()
                );
            }
        }
        AgentClass::B => {
            // Lemma 20, Case D-1.
            assert!(
                class1.is_b() && class2.is_b(),
                "Lemma 20 counterexample? ring {:?} v={v}: classes ({class1:?}, {class2:?})",
                ring.weights()
            );
            assert!(
                alpha_v1 <= alpha_v2,
                "Case D-1 requires α_(v¹) ≤ α_(v²) (ring {:?}, v={v})",
                ring.weights()
            );
            assert_eq!(
                alpha_v2,
                alpha_v,
                "Case D-1 requires α_(v²) = α_v (ring {:?}, v={v})",
                ring.weights()
            );
            InitialPathCase::D1
        }
        AgentClass::Both => unreachable!("folded into C above"),
    };

    InitialPathReport {
        case,
        ring_class,
        w1_0,
        w2_0,
        alpha_v,
        alpha_v1,
        alpha_v2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_odd_ring_is_case_c1() {
        // All weights equal on an odd ring: single α = 1 pair; v is Both →
        // treated C; the split path alternates B/C — Case C-1 (the paper's
        // own example of C-1 is exactly this odd-ring α = 1 situation).
        let g = builders::uniform_ring(5, int(2)).unwrap();
        let rep = classify_initial_path(&g, 0);
        assert_eq!(rep.case, InitialPathCase::C1, "{rep:?}");
    }

    #[test]
    fn classification_total_on_random_rings() {
        // Every random ring/agent must fall into one of the four published
        // cases (classify_initial_path panics otherwise) — an executable
        // form of Lemmas 14 and 20.
        let mut rng = StdRng::seed_from_u64(41);
        let mut seen = std::collections::HashSet::new();
        for n in [3usize, 4, 5, 6, 7, 8] {
            for _ in 0..12 {
                let g = random::random_ring(&mut rng, n, 1, 10);
                for v in 0..n {
                    let rep = classify_initial_path(&g, v);
                    seen.insert(format!("{:?}", rep.case));
                }
            }
        }
        // The families above are rich enough to exhibit C-class and B-class
        // manipulators.
        assert!(seen.len() >= 2, "only saw cases {seen:?}");
    }

    #[test]
    fn b_class_agent_is_case_d1() {
        // Ring (1, 10, 1, 10): vertices 1 and 3 are heavy; the bottleneck is
        // {0, 2}? α({0,2}) = 20/2 = 10 > 1 — no. α({1,3}) = 2/20 = 1/10:
        // B = {1, 3}, C = {0, 2}. So agent 1 is B-class → Case D-1.
        let g = builders::ring(vec![int(1), int(10), int(1), int(10)]).unwrap();
        let rep = classify_initial_path(&g, 1);
        assert_eq!(rep.ring_class, AgentClass::B);
        assert_eq!(rep.case, InitialPathCase::D1, "{rep:?}");
    }

    #[test]
    fn c_class_agent_cases() {
        let g = builders::ring(vec![int(1), int(10), int(1), int(10)]).unwrap();
        // Agent 0 is C-class (in C = {0, 2}).
        let rep = classify_initial_path(&g, 0);
        assert_eq!(rep.ring_class, AgentClass::C);
        assert!(
            matches!(
                rep.case,
                InitialPathCase::C1 | InitialPathCase::C2 | InitialPathCase::C3
            ),
            "{rep:?}"
        );
    }
}
