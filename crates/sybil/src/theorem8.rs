//! Theorem 8 verification: `ζ = 2` on rings.
//!
//! Two halves:
//!
//! * **Upper bound** ([`check_ring_theorem8`]): for a concrete ring, verify
//!   `ζ_v ≤ 2` for every agent, with every evaluated split exact. Over
//!   instance families this is a randomized refutation attempt — a single
//!   violated sample would disprove the theorem (none exists).
//! * **Lower bound** ([`worst_case_search`]): search instance space for
//!   rings whose best-known `ζ_v` approaches 2, exhibiting the tightness
//!   half of the theorem. The search runs coordinate-ascent over weights
//!   from random restarts, parallelized with crossbeam scoped threads.

// prs-lint: allow-file(panic, reason = "search harness: rings are built from strictly positive literals and powers of two, and the remaining expects are poison/join propagation of the restart fan-out")

use crate::attack::{best_sybil_split, AttackConfig, SybilOutcome};
use prs_graph::{builders, Graph, VertexId};
use prs_numeric::Rational;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-ring Theorem 8 audit.
#[derive(Clone, Debug)]
pub struct RingTheorem8Report {
    /// Best (largest) `ζ_v` over all agents.
    pub max_ratio: Rational,
    /// The agent achieving it.
    pub argmax_vertex: VertexId,
    /// Each agent's outcome.
    pub outcomes: Vec<SybilOutcome>,
    /// `ζ_v ≤ 2` held for every agent and every sampled split.
    pub upper_bound_holds: bool,
}

/// Check `ζ_v ≤ 2` for every agent of `ring`; exact at all sampled splits.
pub fn check_ring_theorem8(ring: &Graph, cfg: &AttackConfig) -> RingTheorem8Report {
    assert!(ring.is_ring());
    let two = Rational::from_integer(2);
    let mut outcomes = Vec::with_capacity(ring.n());
    let mut max_ratio = Rational::zero();
    let mut argmax_vertex = 0;
    let mut holds = true;
    for v in 0..ring.n() {
        let out = best_sybil_split(ring, v, cfg);
        if out.ratio > max_ratio {
            max_ratio = out.ratio.clone();
            argmax_vertex = v;
        }
        if out.ratio > two {
            holds = false;
        }
        outcomes.push(out);
    }
    RingTheorem8Report {
        max_ratio,
        argmax_vertex,
        outcomes,
        upper_bound_holds: holds,
    }
}

/// Result of a randomized worst-case search.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Best `ζ_v` found across all instances.
    pub best_ratio: Rational,
    /// The ring weights achieving it.
    pub best_weights: Vec<Rational>,
    /// The manipulative agent achieving it.
    pub best_vertex: VertexId,
    /// Number of (instance, vertex) attacks evaluated.
    pub attacks_evaluated: usize,
    /// True iff no evaluated attack exceeded ratio 2 (Theorem 8 upper bound).
    pub upper_bound_holds: bool,
}

/// Coordinate-ascent refinement: greedily rescale single weights to push the
/// manipulator's ratio up, keeping everything exact.
fn refine_instance(
    weights: &mut Vec<Rational>,
    v: VertexId,
    cfg: &AttackConfig,
    rounds: usize,
    evals: &mut usize,
) -> Rational {
    let factors = [
        Rational::from_ratio(1, 4),
        Rational::from_ratio(1, 2),
        Rational::from_ratio(3, 4),
        Rational::from_ratio(4, 3),
        Rational::from_ratio(2, 1),
        Rational::from_ratio(4, 1),
    ];
    let eval = |w: &[Rational], evals: &mut usize| -> Rational {
        *evals += 1;
        let g = builders::ring(w.to_vec()).expect("valid ring");
        best_sybil_split(&g, v, cfg).ratio
    };
    let mut best = eval(weights, evals);
    for _ in 0..rounds {
        let mut improved = false;
        for i in 0..weights.len() {
            if i == v {
                continue; // the manipulator's weight is the split budget
            }
            for f in &factors {
                let mut cand = weights.clone();
                cand[i] = &cand[i] * f;
                if cand[i].is_zero() {
                    continue;
                }
                let r = eval(&cand, evals);
                if r > best {
                    best = r;
                    *weights = cand;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

/// Randomized + coordinate-ascent search for high-incentive-ratio rings of
/// size `n`. `restarts` random starting instances are refined concurrently
/// on `threads` workers.
pub fn worst_case_search(
    n: usize,
    restarts: usize,
    refine_rounds: usize,
    seed: u64,
    cfg: &AttackConfig,
    threads: usize,
) -> SearchReport {
    assert!(n >= 3);
    let threads = threads.max(1).min(restarts.max(1));
    let cursor = AtomicUsize::new(0);
    // Per-restart result slots, reduced deterministically after the join
    // (first restart index wins ties, independent of thread interleaving).
    type RestartSlot = Mutex<Option<(Rational, Vec<Rational>, VertexId, usize)>>;
    let slots: Vec<RestartSlot> = (0..restarts).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= restarts {
                    break;
                }
                let mut rng =
                    StdRng::seed_from_u64(seed ^ (k as u64).wrapping_mul(0x9E3779B97F4A7C15));
                // Random start: weights 2^e with e ∈ [-4, 4] expose the
                // scale-separated structures high ratios need.
                let mut weights: Vec<Rational> = (0..n)
                    .map(|_| {
                        let e: i32 = rng.gen_range(-4..=4);
                        Rational::from_integer(2).pow(e)
                    })
                    .collect();
                let v = rng.gen_range(0..n);
                let mut evals = 0usize;
                let ratio = refine_instance(&mut weights, v, cfg, refine_rounds, &mut evals);
                *slots[k].lock().expect("poisoned") = Some((ratio, weights, v, evals));
            });
        }
    })
    .expect("search worker panicked");

    let two = Rational::from_integer(2);
    let mut best: Option<(Rational, Vec<Rational>, VertexId)> = None;
    let mut attacks_evaluated = 0;
    let mut upper_bound_holds = true;
    for slot in slots {
        let (ratio, weights, v, evals) = slot
            .into_inner()
            .expect("poisoned")
            .expect("every restart produced a result");
        attacks_evaluated += evals;
        if ratio > two {
            upper_bound_holds = false;
        }
        if best.as_ref().is_none_or(|(r, _, _)| ratio > *r) {
            best = Some((ratio, weights, v));
        }
    }
    let (best_ratio, best_weights, best_vertex) = best.expect("restarts >= 1");
    SearchReport {
        best_ratio,
        best_weights,
        best_vertex,
        attacks_evaluated,
        upper_bound_holds,
    }
}

/// The lower-bound ring family: `ζ_{v} → 2` as `k → ∞`.
///
/// The 5-ring `(2⁻ᵏ, 1, 1, 2ᵏ, 2⁻ᵏ)` with manipulator `v = 1` (discovered by
/// [`worst_case_search`] and then parameterized). Why it works: honestly,
/// `v` sits in a bottleneck pair of α-ratio ≈ 1 and earns `U_v ≈ w_v = 1`.
/// Splitting lets one copy keep ≈ 1 from the balanced side while the other
/// copy, with a vanishing weight, joins the `C`-side of the heavy vertex's
/// pair — whose α-ratio ≈ 2⁻ᵏ lets it extract ≈ its weight *divided by* that
/// ratio, another ≈ 1. Total → 2·U_v. Measured ratios (experiment E11):
/// `k = 4 → 1.885`, `k = 8 → 1.992`, `k = 10 → 1.998`.
///
/// Returns the ring; the manipulative agent is vertex `1`.
pub fn lower_bound_ring(k: u32) -> Graph {
    let eps = Rational::from_integer(2).pow(-(k as i32));
    let big = Rational::from_integer(2).pow(k as i32);
    builders::ring(vec![
        eps.clone(),
        Rational::one(),
        Rational::one(),
        big,
        eps,
    ])
    .expect("valid 5-ring")
}

/// The manipulative agent of [`lower_bound_ring`].
pub const LOWER_BOUND_AGENT: VertexId = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::random;
    use prs_numeric::int;

    fn cfg() -> AttackConfig {
        AttackConfig::new()
            .with_grid(16)
            .with_zoom_levels(3)
            .with_keep(2)
    }

    #[test]
    fn theorem8_holds_on_random_rings() {
        let mut rng = StdRng::seed_from_u64(2718);
        for n in [3usize, 5, 7] {
            let g = random::random_ring(&mut rng, n, 1, 16);
            let rep = check_ring_theorem8(&g, &cfg());
            assert!(rep.upper_bound_holds, "violated on {:?}", g.weights());
            assert!(rep.max_ratio >= Rational::one());
            assert_eq!(rep.outcomes.len(), n);
        }
    }

    #[test]
    fn worst_case_search_respects_upper_bound() {
        let rep = worst_case_search(4, 6, 2, 99, &cfg(), 3);
        assert!(rep.upper_bound_holds);
        assert!(rep.best_ratio >= Rational::one());
        assert!(rep.best_ratio <= int(2));
        assert!(!rep.best_weights.is_empty());
        assert!(rep.attacks_evaluated > 0);
    }

    #[test]
    fn search_is_deterministic_given_seed() {
        let a = worst_case_search(4, 4, 1, 7, &cfg(), 2);
        let b = worst_case_search(4, 4, 1, 7, &cfg(), 4);
        assert_eq!(a.best_ratio, b.best_ratio);
        assert_eq!(a.best_weights, b.best_weights);
    }

    #[test]
    fn lower_bound_family_ratio_grows_toward_two() {
        let strong_cfg = AttackConfig::new()
            .with_grid(48)
            .with_zoom_levels(6)
            .with_keep(3);
        let mut prev = Rational::zero();
        for k in [2u32, 5, 8] {
            let g = lower_bound_ring(k);
            assert!(g.is_ring());
            let out = best_sybil_split(&g, LOWER_BOUND_AGENT, &strong_cfg);
            assert!(out.ratio <= int(2), "upper bound intact at k={k}");
            assert!(out.ratio > prev, "ratio must grow with k");
            prev = out.ratio;
        }
        // k = 8 is already within 1% of the tight bound of 2.
        assert!(
            prev > Rational::from_ratio(198, 100),
            "expected ζ > 1.98 at k = 8, got {prev}"
        );
    }
}
