//! Exhaustive Theorem 8 audits over full integer-weight grids.
//!
//! Randomized families leave sampling gaps; for very small rings we can do
//! better and sweep *every* weight tuple `w ∈ {1..W}ⁿ`. Since the incentive
//! ratio is invariant under uniform weight scaling and rotation of the
//! ring, the grid over-counts — but over-counting only strengthens the
//! audit. Used by experiment E15.

// prs-lint: allow-file(panic, reason = "poison/join propagation in the audit fan-out, plus ring construction from enumerated strictly-positive integer weights")

use crate::attack::{best_sybil_split, AttackConfig};
use prs_graph::builders;
use prs_numeric::Rational;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of an exhaustive grid audit.
#[derive(Clone, Debug)]
pub struct ExhaustiveReport {
    /// Ring size.
    pub n: usize,
    /// Weight ceiling (weights range over `1..=w_max`).
    pub w_max: i64,
    /// Number of weight tuples audited (`w_max^n`).
    pub instances: usize,
    /// Number of (instance, agent) attacks optimized.
    pub attacks: usize,
    /// Largest `ζ_v` observed.
    pub max_ratio: Rational,
    /// The weights achieving it.
    pub argmax_weights: Vec<i64>,
    /// The agent achieving it.
    pub argmax_vertex: usize,
    /// True iff no attack exceeded ratio 2.
    pub upper_bound_holds: bool,
}

/// Iterate every weight tuple in `{1..=w_max}^n` (odometer order), calling
/// `f` on each. Exposed for reuse by tests and experiments.
pub fn for_each_weight_tuple(n: usize, w_max: i64, mut f: impl FnMut(&[i64])) {
    let mut weights = vec![1i64; n];
    loop {
        f(&weights);
        let mut i = 0;
        loop {
            if i == n {
                return;
            }
            weights[i] += 1;
            if weights[i] <= w_max {
                break;
            }
            weights[i] = 1;
            i += 1;
        }
    }
}

/// Audit every ring in `{1..=w_max}^n` with every agent attacking,
/// in parallel over `threads` workers (tuples are dealt round-robin via an
/// atomic cursor over the mixed-radix index space).
pub fn exhaustive_ring_audit(
    n: usize,
    w_max: i64,
    cfg: &AttackConfig,
    threads: usize,
) -> ExhaustiveReport {
    assert!(n >= 3, "rings need n ≥ 3");
    assert!(w_max >= 1);
    let total: usize = (w_max as usize).pow(n as u32);
    let threads = threads.max(1).min(total);
    let cursor = AtomicUsize::new(0);
    let attacks = AtomicUsize::new(0);
    let best: Mutex<(Rational, Vec<i64>, usize, bool)> =
        Mutex::new((Rational::zero(), Vec::new(), 0, true));

    let decode = |mut idx: usize| -> Vec<i64> {
        let mut weights = vec![1i64; n];
        for w in weights.iter_mut() {
            *w = 1 + (idx % w_max as usize) as i64;
            idx /= w_max as usize;
        }
        weights
    };

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut local_best = Rational::zero();
                let mut local_arg: (Vec<i64>, usize) = (Vec::new(), 0);
                let mut local_holds = true;
                let mut local_attacks = 0usize;
                let two = Rational::from_integer(2);
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    let weights = decode(idx);
                    let g = builders::ring(
                        weights.iter().map(|&w| Rational::from_integer(w)).collect(),
                    )
                    .expect("n ≥ 3");
                    for v in 0..n {
                        let out = best_sybil_split(&g, v, cfg);
                        local_attacks += 1;
                        if out.ratio > two {
                            local_holds = false;
                        }
                        // Same total order as the global merge (ratio desc,
                        // then lexicographically smallest weights, then
                        // smallest agent) so the result is independent of
                        // how tuples are dealt to threads.
                        let better = out.ratio > local_best
                            || (out.ratio == local_best
                                && (local_arg.0.is_empty()
                                    || (weights.clone(), v) < local_arg.clone()));
                        if better {
                            local_best = out.ratio;
                            local_arg = (weights.clone(), v);
                        }
                    }
                }
                attacks.fetch_add(local_attacks, Ordering::Relaxed);
                let mut guard = best.lock().expect("poisoned");
                guard.3 &= local_holds;
                // Deterministic tie-break: prefer lexicographically smaller
                // argmax weights so runs are reproducible across thread
                // schedules.
                let better = local_best > guard.0
                    || (local_best == guard.0
                        && !local_arg.0.is_empty()
                        && (guard.1.is_empty()
                            || (local_arg.0.clone(), local_arg.1) < (guard.1.clone(), guard.2)));
                if better {
                    guard.0 = local_best;
                    guard.1 = local_arg.0;
                    guard.2 = local_arg.1;
                }
            });
        }
    })
    .expect("audit worker panicked");

    let (max_ratio, argmax_weights, argmax_vertex, upper_bound_holds) =
        best.into_inner().expect("poisoned");
    ExhaustiveReport {
        n,
        w_max,
        instances: total,
        attacks: attacks.load(Ordering::Relaxed),
        max_ratio,
        argmax_weights,
        argmax_vertex,
        upper_bound_holds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_numeric::{int, ratio};

    fn cfg() -> AttackConfig {
        AttackConfig::new()
            .with_grid(10)
            .with_zoom_levels(2)
            .with_keep(2)
    }

    #[test]
    fn tuple_iteration_covers_the_grid() {
        let mut seen = Vec::new();
        for_each_weight_tuple(2, 3, |w| seen.push(w.to_vec()));
        assert_eq!(seen.len(), 9);
        assert!(seen.contains(&vec![1, 1]));
        assert!(seen.contains(&vec![3, 3]));
        assert!(seen.contains(&vec![2, 3]));
        // No duplicates.
        let mut sorted = seen.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
    }

    #[test]
    fn exhaustive_tiny_grid_holds_theorem8() {
        let rep = exhaustive_ring_audit(3, 3, &cfg(), 4);
        assert!(rep.upper_bound_holds);
        assert_eq!(rep.instances, 27);
        assert_eq!(rep.attacks, 81);
        assert!(rep.max_ratio >= Rational::one());
        assert!(rep.max_ratio <= int(2));
    }

    #[test]
    fn exhaustive_is_deterministic_across_thread_counts() {
        let a = exhaustive_ring_audit(3, 3, &cfg(), 1);
        let b = exhaustive_ring_audit(3, 3, &cfg(), 8);
        assert_eq!(a.max_ratio, b.max_ratio);
        assert_eq!(a.argmax_weights, b.argmax_weights);
        assert_eq!(a.argmax_vertex, b.argmax_vertex);
    }

    #[test]
    fn known_max_on_3x6_grid() {
        // E15 measured max ζ = 1.4 at weights (6, 5, 1) on the {1..6}³ grid.
        let rep = exhaustive_ring_audit(3, 6, &cfg(), 8);
        assert!(rep.upper_bound_holds);
        assert_eq!(
            rep.max_ratio,
            ratio(7, 5),
            "expected ζ = 1.4, got {}",
            rep.max_ratio
        );
    }
}
