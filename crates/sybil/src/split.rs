//! The Sybil split-path family and the honest split (Lemma 9).

// prs-lint: allow-file(panic, reason = "split-family surface requires a validated positive-weight ring (asserted at every entry); under that precondition path construction and the ring decomposition cannot fail")

use prs_bd::{allocate, decompose, BdError};
use prs_deviation::GraphFamily;
use prs_graph::{builders, Graph, VertexId};
use prs_numeric::Rational;

/// The one-parameter family `w₁ ↦ P_v(w₁, w_v − w₁)` of split paths for a
/// manipulative agent `v` on a ring.
///
/// Path vertex ids: `0 = v¹` (attached to `v`'s ring successor),
/// `1..n-1` the other agents in ring order, `n = v²` (attached to `v`'s
/// ring predecessor).
#[derive(Clone)]
pub struct SybilSplitFamily {
    ring: Graph,
    v: VertexId,
}

impl SybilSplitFamily {
    /// Family for agent `v` on `ring`. Panics if `ring` is not a ring.
    pub fn new(ring: Graph, v: VertexId) -> Self {
        assert!(ring.is_ring(), "Sybil split requires a ring");
        assert!(v < ring.n());
        SybilSplitFamily { ring, v }
    }

    /// The original ring.
    pub fn ring(&self) -> &Graph {
        &self.ring
    }

    /// The manipulative agent.
    pub fn agent(&self) -> VertexId {
        self.v
    }

    /// `w_v`, the total weight being split.
    pub fn total(&self) -> &Rational {
        self.ring.weight(self.v)
    }

    /// The split path at `(w₁, w₂)`, plus the path ids of `v¹` and `v²`.
    pub fn path_at(&self, w1: &Rational, w2: &Rational) -> (Graph, VertexId, VertexId) {
        builders::sybil_split_path(&self.ring, self.v, w1.clone(), w2.clone())
            .expect("valid split path")
    }

    /// Path id of `v¹`.
    pub fn v1(&self) -> VertexId {
        0
    }

    /// Path id of `v²`.
    pub fn v2(&self) -> VertexId {
        self.ring.n()
    }

    /// Total payoff `U_{v¹} + U_{v²}` of the split `(w₁, w_v − w₁)`, exact.
    /// `None` if the path decomposition is undefined there (degenerate
    /// boundary).
    pub fn payoff(&self, w1: &Rational) -> Option<(Rational, Rational)> {
        self.payoff_in(w1, &mut prs_bd::DecompositionSession::detached())
    }

    /// [`payoff`](Self::payoff) through a caller-owned
    /// [`DecompositionSession`](prs_bd::DecompositionSession) — the grid
    /// optimizer's hot path (nearby splits share decomposition shapes).
    pub fn payoff_in(
        &self,
        w1: &Rational,
        session: &mut prs_bd::DecompositionSession,
    ) -> Option<(Rational, Rational)> {
        let w2 = self.total() - w1;
        let (p, v1, v2) = self.path_at(w1, &w2);
        match session.decompose(&p) {
            Ok(bd) => Some((bd.utility(&p, v1), bd.utility(&p, v2))),
            Err(BdError::ZeroAlpha { .. }) | Err(BdError::ZeroWeightResidue { .. }) => None,
            Err(e) => panic!("unexpected decomposition failure: {e}"),
        }
    }
}

impl GraphFamily for SybilSplitFamily {
    fn graph_at(&self, w1: &Rational) -> Graph {
        let w2 = self.total() - w1;
        self.path_at(w1, &w2).0
    }

    fn domain(&self) -> (Rational, Rational) {
        (Rational::zero(), self.total().clone())
    }

    /// The focus vertex for sweeps is `v¹`.
    fn focus_vertex(&self) -> VertexId {
        0
    }

    /// `w_{v¹} = x` (slope +1) and `w_{v²} = w_v − x` (slope −1); interior
    /// agents are fixed.
    fn weight_slope(&self, u: VertexId) -> i64 {
        if u == self.v1() {
            1
        } else if u == self.v2() {
            -1
        } else {
            0
        }
    }
}

/// The honest split `(w₁⁰, w₂⁰)`: the amounts `v` sends to its ring
/// successor and predecessor under the ring's BD allocation.
///
/// By Lemma 9, splitting with exactly these weights leaves every agent's
/// utility unchanged.
pub fn honest_split(ring: &Graph, v: VertexId) -> (Rational, Rational) {
    assert!(ring.is_ring());
    let bd = decompose(ring).expect("ring decomposes");
    let alloc = allocate(ring, &bd);
    // Ring neighbors in sorted order; the split path walks from the
    // *successor* = neighbors(v)[0] (see builders::sybil_split_path).
    let succ = ring.neighbors(v)[0];
    let pred = ring.neighbors(v)[1];
    (alloc.sent(v, succ), alloc.sent(v, pred))
}

/// Verify Lemma 9 exactly on one ring and agent: the honest split is
/// payoff-neutral, `U_{v¹}(w₁⁰, w₂⁰) + U_{v²}(w₁⁰, w₂⁰) = U_v`.
///
/// Returns `(U_v, split payoff)`.
pub fn lemma9_check(ring: &Graph, v: VertexId) -> (Rational, Rational) {
    let bd = decompose(ring).expect("ring decomposes");
    let honest_u = bd.utility(ring, v);
    let (w1, w2) = honest_split(ring, v);
    let fam = SybilSplitFamily::new(ring.clone(), v);
    let (p, v1, v2) = fam.path_at(&w1, &w2);
    let split_u = match decompose(&p) {
        Ok(pbd) => &pbd.utility(&p, v1) + &pbd.utility(&p, v2),
        Err(_) => {
            // Degenerate split (e.g. w₁⁰ = w₂⁰ = 0 is impossible for
            // positive w_v, but a zero side can make tiny paths
            // undecomposable); fall back to the equality claim vacuously.
            honest_u.clone()
        }
    };
    (honest_u, split_u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prs_graph::random;
    use prs_numeric::{int, ratio};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn honest_split_sums_to_weight() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = random::random_ring(&mut rng, 6, 1, 10);
            for v in 0..6 {
                let (w1, w2) = honest_split(&g, v);
                assert_eq!(&(&w1 + &w2), g.weight(v), "split must exhaust w_v");
                assert!(!w1.is_negative() && !w2.is_negative());
            }
        }
    }

    #[test]
    fn lemma9_exact_on_random_rings() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [3usize, 4, 5, 6, 8] {
            for _ in 0..8 {
                let g = random::random_ring(&mut rng, n, 1, 12);
                for v in 0..n {
                    let (honest, split) = lemma9_check(&g, v);
                    assert_eq!(
                        honest,
                        split,
                        "Lemma 9 violated at v={v} on {:?}",
                        g.weights()
                    );
                }
            }
        }
    }

    #[test]
    fn lemma9_exact_on_rational_weights() {
        let g = builders_ring(vec![ratio(7, 3), ratio(1, 2), ratio(5, 4), ratio(2, 7)]);
        for v in 0..4 {
            let (honest, split) = lemma9_check(&g, v);
            assert_eq!(honest, split);
        }
    }

    fn builders_ring(w: Vec<prs_numeric::Rational>) -> Graph {
        prs_graph::builders::ring(w).unwrap()
    }

    #[test]
    fn family_payoff_matches_direct_computation() {
        let g = builders_ring(vec![int(4), int(2), int(3), int(5)]);
        let fam = SybilSplitFamily::new(g, 0);
        let w1 = ratio(3, 2);
        let (u1, u2) = fam.payoff(&w1).unwrap();
        let (p, v1, v2) = fam.path_at(&w1, &ratio(5, 2));
        let bd = decompose(&p).unwrap();
        assert_eq!(u1, bd.utility(&p, v1));
        assert_eq!(u2, bd.utility(&p, v2));
    }

    #[test]
    fn split_path_has_copies_as_leaves() {
        let g = builders_ring(vec![int(1), int(2), int(3)]);
        let fam = SybilSplitFamily::new(g, 2);
        let (p, v1, v2) = fam.path_at(&int(1), &int(2));
        assert_eq!(p.degree(v1), 1);
        assert_eq!(p.degree(v2), 1);
        assert!(p.is_path());
    }
}
