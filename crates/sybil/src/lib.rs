#![warn(missing_docs)]
//! # prs-sybil — Sybil attacks on the BD mechanism over rings
//!
//! The paper's object of study: a manipulative agent `v` on a ring splits
//! into two fictitious nodes `v¹, v²` (on a ring, `d_v = 2`, so `m = 2` is
//! the only nontrivial Sybil split) and divides its weight `w_v = w₁ + w₂`.
//! Each ring neighbor of `v` is attached to one copy, turning the ring into
//! the path `P_v(w₁, w₂)` with the copies as leaves. The attacker's payoff
//! is `U_{v¹} + U_{v²}` under the BD allocation of the path; the **incentive
//! ratio** `ζ_v` is the best achievable payoff divided by the honest utility
//! `U_v` on the ring (Definition 7).
//!
//! **Theorem 8** (the paper's main result): `ζ = 2` exactly, tightening the
//! previous `[2, 3]` bracket. This crate makes the whole argument
//! executable:
//!
//! * [`split`] — the split-path family `P_v(w₁, w_v − w₁)`, the honest
//!   split `(w₁⁰, w₂⁰)` read off the ring's BD allocation, and the Lemma 9
//!   identity `U_{v¹}(w₁⁰, w₂⁰) + U_{v²}(w₁⁰, w₂⁰) = U_v`.
//! * [`attack`] — the exact-arithmetic optimizer for the best split
//!   (grid sweep + recursive zoom; every evaluated point is an exact BD
//!   decomposition, so every reported ratio is a certified lower bound on
//!   `ζ_v` and the `≤ 2` check is exact at every sample).
//! * [`cases`] — the Lemma 14 / Lemma 20 classification of the initial
//!   path's decomposition (Cases C-1, C-2, C-3, D-1; Fig. 4).
//! * [`stages`] — the two-stage trajectory decomposition of the proof
//!   (Stages C-1/C-2 and D-1/D-2) with the per-stage utility deltas
//!   `δ`, `Δ` and their lemma-level sign checks (Lemmas 16, 18, 19, 22, 24).
//! * [`theorem8`] — instance-level and family-level verification that
//!   `ζ_v ≤ 2`, plus a parallel worst-case search used to exhibit the lower
//!   bound (`ζ → 2`).

//!
//! The [`general`] module extends the attack machinery beyond rings —
//! neighbor partitions into `m ≤ d_v` copies on arbitrary graphs — making
//! the conclusion's conjecture (ζ = 2 for general networks) empirically
//! testable.

pub mod attack;
pub mod cases;
pub mod exact;
pub mod exhaustive;
pub mod extensions;
pub mod general;
pub mod split;
pub mod stages;
pub mod theorem8;

pub use attack::{best_sybil_split, AttackConfig, SplitSample, SybilOutcome};
pub use cases::{classify_initial_path, InitialPathCase};
pub use exact::{certified_best_split, CertifiedOutcome};
pub use exhaustive::{exhaustive_ring_audit, ExhaustiveReport};
pub use extensions::{
    best_collusion, best_split_with_withholding, CollusionOutcome, WithholdingOutcome,
};
pub use general::{best_general_sybil, GeneralAttackConfig, GeneralSybilOutcome};
pub use split::{honest_split, lemma9_check, SybilSplitFamily};
pub use theorem8::{check_ring_theorem8, worst_case_search, RingTheorem8Report, SearchReport};
