//! Extensions beyond the paper's attack model.
//!
//! Definition 7 forces the Sybil copies to carry the full weight
//! (`Σ w_{vⁱ} = w_v`). Two natural strengthenings of the attacker are
//! implemented here as *empirical* studies (experiments E17/E18):
//!
//! * **Withholding** ([`best_split_with_withholding`]): allow
//!   `w₁ + w₂ ≤ w_v`. Intuition from Theorem 10 (more reported weight never
//!   hurts) suggests withholding is useless; the optimizer confirms it
//!   instance-by-instance, which in turn means the Definition 7 constraint
//!   is *without loss of generality* for the attacker.
//! * **Collusion** ([`best_collusion`]): two ring agents Sybil-split
//!   simultaneously (the ring degenerates into two disjoint paths). The
//!   joint payoff over the pair's joint honest utility defines a coalition
//!   incentive ratio; empirically it also stays within 2.

// prs-lint: allow-file(panic, reason = "grid explorer over validated rings: degenerate-split decompose failures are handled as None; any other failure is a solver bug and the audit must abort")

use crate::general::split_graph;
use prs_bd::{decompose, BdError};
use prs_graph::{Graph, VertexId};
use prs_numeric::Rational;

/// Outcome of the withholding study for one `(ring, v)`.
#[derive(Clone, Debug)]
pub struct WithholdingOutcome {
    /// Honest utility `U_v`.
    pub honest_utility: Rational,
    /// Best payoff with the Definition 7 constraint `w₁ + w₂ = w_v`.
    pub best_full: Rational,
    /// Best payoff over the relaxed set `w₁ + w₂ ≤ w_v`.
    pub best_relaxed: Rational,
    /// The relaxed optimizer's best `(w₁, w₂)`.
    pub best_pair: (Rational, Rational),
    /// `true` iff withholding strictly helped (never observed).
    pub withholding_helped: bool,
}

/// Payoff of the two-copy split `(w₁, w₂)` of `v` on `ring`, allowing
/// `w₁ + w₂ ≤ w_v`. `None` on undecomposable degenerate splits.
pub fn split_payoff(ring: &Graph, v: VertexId, w1: &Rational, w2: &Rational) -> Option<Rational> {
    let (p, c1, c2) =
        prs_graph::builders::sybil_split_path(&ring.clone(), v, w1.clone(), w2.clone()).ok()?;
    match decompose(&p) {
        Ok(bd) => Some(&bd.utility(&p, c1) + &bd.utility(&p, c2)),
        Err(BdError::ZeroAlpha { .. }) | Err(BdError::ZeroWeightResidue { .. }) => None,
        Err(e) => panic!("unexpected decomposition failure: {e}"),
    }
}

/// Optimize the Sybil split over the *relaxed* budget `w₁ + w₂ ≤ w_v`
/// (triangular grid of granularity `grid`), and compare against the
/// Definition 7 frontier `w₁ + w₂ = w_v`.
pub fn best_split_with_withholding(ring: &Graph, v: VertexId, grid: usize) -> WithholdingOutcome {
    assert!(ring.is_ring());
    let bd = decompose(ring).expect("ring decomposes");
    let honest = bd.utility(ring, v);
    let w_v = ring.weight(v).clone();
    let unit = &w_v / &Rational::from_integer(grid as i64);

    let mut best_full = honest.clone(); // honest split lives on the frontier
    let mut best_relaxed = honest.clone();
    let mut best_pair = (w_v.clone(), Rational::zero());

    for i in 0..=grid {
        for j in 0..=(grid - i) {
            let w1 = &unit * &Rational::from_integer(i as i64);
            let w2 = &unit * &Rational::from_integer(j as i64);
            let Some(total) = split_payoff(ring, v, &w1, &w2) else {
                continue;
            };
            if i + j == grid && total > best_full {
                best_full = total.clone();
            }
            if total > best_relaxed {
                best_relaxed = total;
                best_pair = (w1, w2);
            }
        }
    }

    let withholding_helped = best_relaxed > best_full;
    WithholdingOutcome {
        honest_utility: honest,
        best_full,
        best_relaxed,
        best_pair,
        withholding_helped,
    }
}

/// Outcome of the collusion study for a pair of ring agents.
#[derive(Clone, Debug)]
pub struct CollusionOutcome {
    /// Joint honest utility `U_u + U_v`.
    pub honest_joint: Rational,
    /// Best joint payoff over both agents' simultaneous splits.
    pub best_joint: Rational,
    /// Coalition incentive ratio (joint payoff / joint honest utility).
    pub coalition_ratio: Rational,
    /// Best split weights `(u₁, v₁)` (the complements are forced).
    pub best_splits: (Rational, Rational),
}

/// Joint payoff when ring agents `u` and `v` split simultaneously with
/// first-copy weights `u1`, `v1` (full budgets, Definition 7 style).
/// `None` on degenerate decompositions.
pub fn collusion_payoff(
    ring: &Graph,
    u: VertexId,
    v: VertexId,
    u1: &Rational,
    v1: &Rational,
) -> Option<Rational> {
    assert!(u != v);
    let u2 = ring.weight(u) - u1;
    let v2 = ring.weight(v) - v1;
    // Split u first (neighbors split one each), then v on the result.
    // After the first split v keeps its id and still has its two original
    // neighbors, so the second split is well-defined.
    let (g1, u_copies) = split_graph(ring, u, &[0, 1], &[u1.clone(), u2]);
    let (g2, v_copies) = split_graph(&g1, v, &[0, 1], &[v1.clone(), v2]);
    let bd = decompose(&g2).ok()?;
    let u_total: Rational = u_copies.iter().map(|&c| bd.utility(&g2, c)).sum();
    let v_total: Rational = v_copies.iter().map(|&c| bd.utility(&g2, c)).sum();
    Some(&u_total + &v_total)
}

/// Grid-optimize a two-agent collusion on a ring.
pub fn best_collusion(ring: &Graph, u: VertexId, v: VertexId, grid: usize) -> CollusionOutcome {
    assert!(ring.is_ring());
    assert!(u != v);
    let bd = decompose(ring).expect("ring decomposes");
    let honest_joint = &bd.utility(ring, u) + &bd.utility(ring, v);

    let wu = ring.weight(u).clone();
    let wv = ring.weight(v).clone();
    let unit_u = &wu / &Rational::from_integer(grid as i64);
    let unit_v = &wv / &Rational::from_integer(grid as i64);

    let mut best_joint = honest_joint.clone();
    let mut best_splits = (wu.clone(), wv.clone());
    for i in 0..=grid {
        for j in 0..=grid {
            let u1 = &unit_u * &Rational::from_integer(i as i64);
            let v1 = &unit_v * &Rational::from_integer(j as i64);
            if let Some(total) = collusion_payoff(ring, u, v, &u1, &v1) {
                if total > best_joint {
                    best_joint = total;
                    best_splits = (u1, v1);
                }
            }
        }
    }
    let coalition_ratio = if honest_joint.is_positive() {
        (&best_joint / &honest_joint).max(Rational::one())
    } else {
        Rational::one()
    };
    CollusionOutcome {
        honest_joint,
        best_joint,
        coalition_ratio,
        best_splits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem8::{lower_bound_ring, LOWER_BOUND_AGENT};
    use prs_graph::{builders, random};
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn withholding_never_helps_on_random_rings() {
        let mut rng = StdRng::seed_from_u64(3141);
        for _ in 0..6 {
            let g = random::random_ring(&mut rng, 5, 1, 10);
            for v in 0..2 {
                let out = best_split_with_withholding(&g, v, 10);
                assert!(
                    !out.withholding_helped,
                    "withholding helped?! {:?} on {:?}",
                    out,
                    g.weights()
                );
                // Relaxed optimum is attained on the full-budget frontier.
                assert_eq!(out.best_relaxed, out.best_full);
            }
        }
    }

    #[test]
    fn withholding_never_helps_on_the_lower_bound_family() {
        let g = lower_bound_ring(5);
        let out = best_split_with_withholding(&g, LOWER_BOUND_AGENT, 12);
        assert!(!out.withholding_helped);
        assert!(out.best_full > &out.honest_utility * &prs_numeric::ratio(3, 2));
    }

    #[test]
    fn collusion_on_uniform_ring_gains_nothing() {
        let g = builders::uniform_ring(6, int(2)).unwrap();
        let out = best_collusion(&g, 0, 3, 8);
        assert_eq!(out.coalition_ratio, Rational::one());
    }

    #[test]
    fn collusion_ratio_bounded_by_two_empirically() {
        let mut rng = StdRng::seed_from_u64(2718);
        for _ in 0..4 {
            let g = random::random_ring(&mut rng, 5, 1, 10);
            let out = best_collusion(&g, 0, 2, 8);
            assert!(out.coalition_ratio >= Rational::one());
            assert!(
                out.coalition_ratio <= int(2),
                "coalition ratio {} on {:?}",
                out.coalition_ratio,
                g.weights()
            );
        }
    }

    #[test]
    fn collusion_payoff_matches_single_split_when_other_is_honest() {
        // If agent v uses its honest split, u's payoff landscape should
        // reproduce Lemma 9 at u's honest split too: the fully honest double
        // split is joint-utility-neutral.
        let g = builders::ring(vec![int(4), int(2), int(6), int(3), int(5)]).unwrap();
        let (u, v) = (0usize, 2usize);
        let (u1, _) = crate::split::honest_split(&g, u);
        // v's honest split on the *post-u-split* graph equals its honest
        // split on the ring only by Lemma 9-style neutrality; we check joint
        // neutrality directly.
        let (v1, _) = crate::split::honest_split(&g, v);
        let joint = collusion_payoff(&g, u, v, &u1, &v1).unwrap();
        let bd = decompose(&g).unwrap();
        let honest_joint = &bd.utility(&g, u) + &bd.utility(&g, v);
        assert_eq!(joint, honest_joint, "double honest split is neutral");
    }
}
