//! Certified attack optimization via symbolic per-interval payoffs.
//!
//! The grid+zoom optimizer in [`crate::attack`] produces certified *lower*
//! bounds on the optimal Sybil payoff. This module closes the gap: within a
//! constant-shape interval of the split family, each copy's utility is an
//! explicit rational function of `w₁`,
//!
//! ```text
//! U_{v¹}(w₁) = w₁ · α(w₁)^{±1},   α(w₁) = (p + q·w₁)/(r + s·w₁)  (Möbius)
//! ```
//!
//! (exponent −1 for C-class, +1 for B-class, constant for the α = 1 pair).
//! Summing the copies gives a degree-≤(2/2) rational function per interval;
//! its maximum lies at an endpoint or a critical point of a quadratic —
//! both computed by `prs-numeric::poly`. The result is the optimum *per
//! detected interval structure*: exact wherever the critical points are
//! rational, and localized to `2⁻ᵇⁱᵗˢ` otherwise, with every reported value
//! re-verified by a direct exact decomposition.

use crate::split::SybilSplitFamily;
use prs_bd::{decompose, AgentClass};
use prs_deviation::{pair_moebius, sweep, GraphFamily, SweepConfig};
use prs_graph::{Graph, VertexId};
use prs_numeric::{Poly, Rational, RationalFunction};

/// Result of the certified optimization.
#[derive(Clone, Debug)]
pub struct CertifiedOutcome {
    /// Honest utility `U_v` on the ring.
    pub honest_utility: Rational,
    /// Optimal `w₁` (exact, or a `2⁻ᵇⁱᵗˢ`-localized critical point).
    pub best_w1: Rational,
    /// Payoff at `best_w1`, re-verified by direct decomposition.
    pub best_payoff: Rational,
    /// `ζ_v`: `best_payoff / U_v` (≥ 1 by Lemma 9).
    pub ratio: Rational,
    /// Number of constant-shape intervals analyzed.
    pub intervals: usize,
}

/// The utility of one split copy as a symbolic rational function of `w₁`
/// on a constant-shape interval, derived from the decomposition at `x0`.
fn copy_utility_model(
    fam: &SybilSplitFamily,
    x0: &Rational,
    copy: VertexId,
) -> Option<RationalFunction> {
    let g = fam.graph_at(x0);
    let bd = decompose(&g).ok()?;
    let pair_idx = bd.pair_of(copy);
    let m = pair_moebius(fam, x0, pair_idx)?;
    // The copy's weight as a polynomial of x: w(x) = offset + slope·x.
    let slope = fam.weight_slope(copy);
    let offset = &g.weight(copy).clone() - &(&Rational::from_integer(slope) * x0);
    let w_poly = Poly::linear(offset, Rational::from_integer(slope));
    let alpha_num = Poly::linear(m.p.clone(), m.q.clone());
    let alpha_den = Poly::linear(m.r.clone(), m.s.clone());
    let model = match bd.class_of(copy) {
        AgentClass::B => {
            // U = w(x)·α(x).
            RationalFunction::new(&w_poly * &alpha_num, alpha_den)
        }
        AgentClass::C => {
            // U = w(x)/α(x).
            RationalFunction::new(&w_poly * &alpha_den, alpha_num)
        }
        AgentClass::Both => RationalFunction::from_poly(w_poly),
    };
    Some(model)
}

/// Certified-optimal Sybil split for agent `v` on a ring.
///
/// `grid` controls the interval-detection sweep; `bits` the localization of
/// breakpoints and irrational critical points. Every candidate optimum is
/// re-evaluated by a direct exact decomposition, so `best_payoff` (and thus
/// the ratio) is exact even when `best_w1` is a localized critical point.
pub fn certified_best_split(ring: &Graph, v: VertexId, grid: usize, bits: u32) -> CertifiedOutcome {
    let fam = SybilSplitFamily::new(ring.clone(), v);
    // prs-lint: allow(panic, reason = "validated positive-weight ring precondition: the decomposition always exists")
    let bd = decompose(ring).expect("ring decomposes");
    let honest = bd.utility(ring, v);

    let res = sweep(
        &fam,
        &SweepConfig::new().with_grid(grid).with_refine_bits(bits),
    );

    // Seed with the honest split (Lemma 9 floor).
    let (w1_honest, _) = crate::split::honest_split(ring, v);
    let mut best_w1 = w1_honest;
    let mut best_payoff = honest.clone();

    let mut consider = |x: &Rational| {
        if let Some((u1, u2)) = fam.payoff(x) {
            let total = &u1 + &u2;
            if total > best_payoff {
                best_payoff = total;
                best_w1 = x.clone();
            }
        }
    };

    for iv in &res.intervals {
        if iv.lo > iv.hi {
            continue;
        }
        // Build the symbolic payoff from the interval's start sample.
        let model = copy_utility_model(&fam, &iv.lo, fam.v1())
            .zip(copy_utility_model(&fam, &iv.lo, fam.v2()))
            .map(|(a, b)| a.add(&b));
        match model {
            Some(total_fn) => {
                let (argmax, _symbolic_max) = total_fn.maximize(&iv.lo, &iv.hi, bits);
                consider(&argmax);
                // Endpoints are distinct candidates when the argmax is
                // interior (maximize already includes them, but re-verify
                // through the exact decomposition anyway — cheap).
                consider(&iv.lo);
                consider(&iv.hi);
            }
            None => {
                // Degenerate sample: fall back to the endpoints.
                consider(&iv.lo);
                consider(&iv.hi);
            }
        }
    }

    let ratio = if honest.is_positive() {
        (&best_payoff / &honest).max(Rational::one())
    } else {
        Rational::one()
    };
    CertifiedOutcome {
        honest_utility: honest,
        best_w1,
        best_payoff,
        ratio,
        intervals: res.intervals.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::{best_sybil_split, AttackConfig};
    use crate::theorem8::{lower_bound_ring, LOWER_BOUND_AGENT};
    use prs_graph::random;
    use prs_numeric::int;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn symbolic_model_matches_direct_evaluation() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = random::random_ring(&mut rng, 5, 1, 10);
        let fam = SybilSplitFamily::new(g.clone(), 0);
        let res = sweep(&fam, &SweepConfig::new().with_grid(16).with_refine_bits(16));
        for iv in &res.intervals {
            let Some(m1) = copy_utility_model(&fam, &iv.lo, fam.v1()) else {
                continue;
            };
            let Some(m2) = copy_utility_model(&fam, &iv.lo, fam.v2()) else {
                continue;
            };
            // The model must reproduce the exact utilities at both interval
            // ends.
            for x in [&iv.lo, &iv.hi] {
                let Some((u1, u2)) = fam.payoff(x) else {
                    continue;
                };
                assert_eq!(m1.eval(x).unwrap(), u1, "v1 model at {x}");
                assert_eq!(m2.eval(x).unwrap(), u2, "v2 model at {x}");
            }
        }
    }

    #[test]
    fn certified_never_below_grid_optimizer() {
        let mut rng = StdRng::seed_from_u64(13);
        for n in [4usize, 5, 6] {
            let g = random::random_ring(&mut rng, n, 1, 10);
            for v in 0..2 {
                let grid_out = best_sybil_split(
                    &g,
                    v,
                    &AttackConfig::new()
                        .with_grid(16)
                        .with_zoom_levels(3)
                        .with_keep(2),
                );
                let cert = certified_best_split(&g, v, 24, 30);
                assert!(
                    cert.best_payoff >= grid_out.best.total(),
                    "certified {} < grid {} on {:?} v={v}",
                    cert.best_payoff,
                    grid_out.best.total(),
                    g.weights()
                );
                assert!(cert.ratio <= int(2), "Theorem 8");
            }
        }
    }

    #[test]
    fn certified_on_lower_bound_family() {
        let g = lower_bound_ring(6);
        let cert = certified_best_split(&g, LOWER_BOUND_AGENT, 32, 35);
        // E11 measured ≈ 1.9695 at k = 6; the certified optimizer must do
        // at least as well and stay under 2.
        assert!(cert.ratio.to_f64() > 1.969, "got {}", cert.ratio.to_f64());
        assert!(cert.ratio <= int(2));
    }

    #[test]
    fn honest_floor_respected() {
        let g = prs_graph::builders::uniform_ring(5, int(3)).unwrap();
        let cert = certified_best_split(&g, 0, 16, 20);
        assert_eq!(cert.ratio, prs_numeric::Rational::one());
        assert_eq!(cert.best_payoff, cert.honest_utility);
    }
}
