#![warn(missing_docs)]
//! # prs-p2psim — a round-based P2P bandwidth-sharing simulator
//!
//! The paper's motivating system is BitTorrent-style bandwidth exchange: in
//! each protocol round an agent observes how much each peer uploaded to it
//! and responds by splitting its own upload capacity proportionally
//! (tit-for-tat, formalized as the proportional response dynamics of
//! Definition 1). This crate simulates that protocol at the *message* level:
//!
//! * [`agent::AgentState`] — per-agent protocol state: peers, last-round
//!   receipts, upload capacity, and a [`agent::Strategy`].
//! * [`swarm::Swarm`] — the round loop: deliver uploads, let every agent
//!   compute next-round responses, collect metrics. A **Sybil attacker**
//!   participates *in-protocol*: it presents a distinct fictitious identity
//!   to each neighbor with its capacity split between them, exactly the
//!   Definition 7 manipulation on a ring.
//! * [`swarm::SwarmMetrics`] — utility traces, convergence round,
//!   fairness, and attacker gain against the honest baseline.
//! * [`parallel`] — run many swarms concurrently (crossbeam scoped
//!   threads), for the protocol-level Theorem 8 experiment (E13).
//! * [`soa`] — the struct-of-arrays core behind [`swarm::Swarm`]: flat
//!   capacity/utility lanes, CSR peer adjacency, contiguous per-edge
//!   send/receive lanes, and a deterministic partitioned parallel runner.
//!   Rounds are two allocation-free passes, which is what takes the
//!   simulator from n = 64 rings to 10⁶-agent swarms.
//! * [`membership`] — dynamic membership between rounds: join, leave, and
//!   Tsoukatos-style reciprocity rewiring with free-list slot recycling
//!   and incremental CSR patching.
//!
//! The simulator is deliberately *independent* of `prs-dynamics`: it models
//! identities and messages rather than a global allocation vector, so
//! agreement between the two engines (asserted in tests) is a genuine
//! cross-validation of the protocol semantics — and its fixed point is the
//! BD allocation, tying the whole stack back to `prs-bd`.
//!
//! Simulation of real swarms (the paper's deployment context) is the
//! substitution documented in DESIGN.md: same code path, synthetic
//! topologies.

pub mod agent;
pub mod membership;
pub mod metrics;
pub mod parallel;
pub mod soa;
pub mod swarm;

pub use agent::{AgentId, AgentState, Strategy};
pub use membership::{MembershipError, MembershipEvent, MembershipOutcome};
pub use metrics::{attack_impact, jain_fairness, AttackImpact};
pub use soa::{CsrTopology, SoaSwarm};
pub use swarm::{Swarm, SwarmConfig, SwarmMetrics};
